// ds_report -- offline run analytics over sweep observability output.
//
// Usage:
//   ds_report <events.jsonl> [--summary summary.json] [--json out.json]
//   ds_report --serve <events.jsonl>
//   ds_report --bench BENCH_sweep.json --baseline base.json
//             [--max-regress pct] [--json out.json]
//
// Events mode joins the JSON-lines job-lifecycle stream a sweep wrote
// with `--events-out` into per-run analytics: job latency percentiles
// (from `completed` wall_ms), outcome/retry/quarantine breakdowns,
// chaos-injection and journal-recovery tallies, and bus drop
// accounting. With `--summary`, the reconstruction is cross-checked
// against the RunSummary JSON the same run wrote (`--summary-json`);
// any disagreement -- a lost event, a miscounted retry -- exits
// nonzero, which is how CI proves the event stream is a faithful
// record and not a lossy approximation.
//
// Serve mode reads the event stream a `darksilicon serve` daemon wrote
// (--events-out) and breaks the service plane down per client and per
// sweep: queue-wait vs run latency, admission rejects by reason, and
// cancellations -- who got capacity, who got turned away, and how long
// everyone waited.
//
// Bench mode diffs two BENCH_*.json perf reports (same schema as
// bench_common.hpp WriteSweepReport) and exits nonzero when any
// bench's throughput regressed by more than --max-regress percent
// (default 10). Each entry gates on its native throughput metric:
// rows_per_s when present (BENCH_serve.json), jobs_per_s otherwise.
// BENCH_thermal.json's flat batch_{scalar_,}us_k<k> pairs get their
// own section: batched lockstep member-steps/s vs the scalar GEMV
// lane, with the per-k speedup gated against the baseline.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

using ds::telemetry::JsonValue;
using ds::telemetry::ParseJson;

int Usage() {
  std::cerr
      << "usage: ds_report <events.jsonl> [--summary summary.json]\n"
         "                 [--json out.json]\n"
         "       ds_report --serve <events.jsonl>\n"
         "       ds_report --bench BENCH.json --baseline base.json\n"
         "                 [--max-regress pct] [--json out.json]\n";
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

double NumField(const JsonValue& obj, const std::string& key,
                double def = 0.0) {
  const JsonValue* v = obj.Find(key);
  return (v != nullptr && v->is_number()) ? v->number : def;
}

std::string StrField(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.Find(key);
  return (v != nullptr && v->is_string()) ? v->str : std::string();
}

/// Nearest-rank percentile of a sorted sample (p in [0, 100]).
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

/// Everything ds_report reconstructs from one events file.
struct RunReport {
  // run_start / run_end envelope.
  bool has_run_start = false;
  bool has_run_end = false;
  std::size_t jobs_total = 0;
  std::size_t jobs_resumed = 0;
  std::size_t run_end_executed = 0;
  std::size_t run_end_failed = 0;
  std::size_t run_end_quarantined = 0;
  std::uint64_t run_end_retries = 0;
  double wall_s = 0.0;

  // Per-kind tallies.
  std::size_t scheduled = 0;
  std::size_t started = 0;        // scalar attempt starts (untagged)
  std::size_t cohort_starts = 0;  // cohort-lane starts (detail "cohort")
  std::size_t retries = 0;
  std::size_t backoffs = 0;
  std::size_t heartbeats = 0;
  std::size_t cache_evicts = 0;
  double cache_evict_bytes = 0.0;
  std::size_t chaos_fail = 0;
  std::size_t chaos_delay = 0;
  std::size_t journal_corrupt = 0;
  std::size_t journal_dedup = 0;
  std::size_t journal_torn = 0;
  double journal_torn_bytes = 0.0;

  // completed outcomes, keyed by detail.
  std::map<std::string, std::size_t> outcomes;  // ok/skipped/failed/quarantined
  std::size_t completed = 0;

  // Per-job retry chains: job -> (attempts, outcome).
  std::map<std::int64_t, std::pair<std::size_t, std::string>> retried_jobs;
  std::vector<std::int64_t> quarantined_jobs;

  // Latency sample (completed wall_ms), sorted ascending after parse.
  std::vector<double> wall_ms;

  // bus_close accounting.
  std::uint64_t bus_written = 0;
  std::uint64_t bus_dropped = 0;
};

/// Parses the JSON-lines event stream. Throws std::runtime_error with a
/// line-annotated message on malformed input.
RunReport ParseEvents(const std::string& text) {
  RunReport r;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  std::map<std::int64_t, std::size_t> retries_by_job;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    JsonValue ev;
    try {
      ev = ParseJson(line);
    } catch (const std::exception& e) {
      throw std::runtime_error("line " + std::to_string(line_no) + ": " +
                               e.what());
    }
    if (!ev.is_object())
      throw std::runtime_error("line " + std::to_string(line_no) +
                               ": not a JSON object");
    const std::string kind = StrField(ev, "ev");
    const auto job = static_cast<std::int64_t>(NumField(ev, "job", -1.0));
    if (kind == "run_start") {
      r.has_run_start = true;
      r.jobs_total = static_cast<std::size_t>(NumField(ev, "jobs_total"));
      r.jobs_resumed = static_cast<std::size_t>(NumField(ev, "jobs_resumed"));
    } else if (kind == "run_end") {
      r.has_run_end = true;
      r.run_end_executed = static_cast<std::size_t>(NumField(ev, "executed"));
      r.run_end_failed = static_cast<std::size_t>(NumField(ev, "failed"));
      r.run_end_quarantined =
          static_cast<std::size_t>(NumField(ev, "quarantined"));
      r.run_end_retries = static_cast<std::uint64_t>(NumField(ev, "retries"));
      r.wall_s = NumField(ev, "wall_s");
    } else if (kind == "scheduled") {
      ++r.scheduled;
    } else if (kind == "started") {
      // A detached cohort member re-runs scalar and publishes a second,
      // untagged start; keeping the lanes separate keeps per-attempt
      // accounting exact (untagged starts == scalar attempts).
      if (StrField(ev, "detail") == "cohort")
        ++r.cohort_starts;
      else
        ++r.started;
    } else if (kind == "retry") {
      ++r.retries;
      ++retries_by_job[job];
    } else if (kind == "backoff") {
      ++r.backoffs;
    } else if (kind == "quarantined") {
      r.quarantined_jobs.push_back(job);
    } else if (kind == "cache_evict") {
      ++r.cache_evicts;
      r.cache_evict_bytes += NumField(ev, "bytes");
    } else if (kind == "chaos_inject") {
      const std::string detail = StrField(ev, "detail");
      if (detail == "delay")
        ++r.chaos_delay;
      else
        ++r.chaos_fail;
    } else if (kind == "journal_skip") {
      const std::string detail = StrField(ev, "detail");
      if (detail == "corrupt_record") ++r.journal_corrupt;
      if (detail == "dedup_drop") ++r.journal_dedup;
      if (detail == "torn_tail") {
        ++r.journal_torn;
        r.journal_torn_bytes += NumField(ev, "bytes");
      }
    } else if (kind == "completed") {
      ++r.completed;
      const std::string outcome = StrField(ev, "detail");
      ++r.outcomes[outcome];
      r.wall_ms.push_back(NumField(ev, "wall_ms"));
      const auto attempts = static_cast<std::size_t>(NumField(ev, "attempt"));
      if (attempts > 1) r.retried_jobs[job] = {attempts, outcome};
    } else if (kind == "heartbeat") {
      ++r.heartbeats;
    } else if (kind == "bus_close") {
      r.bus_written = static_cast<std::uint64_t>(NumField(ev, "written"));
      r.bus_dropped = static_cast<std::uint64_t>(NumField(ev, "dropped"));
    }
  }
  std::sort(r.wall_ms.begin(), r.wall_ms.end());
  std::sort(r.quarantined_jobs.begin(), r.quarantined_jobs.end());
  return r;
}

void PrintReport(const RunReport& r) {
  std::cout << "run: " << r.jobs_total << " jobs (" << r.jobs_resumed
            << " resumed), " << r.completed << " completed this run";
  if (r.has_run_end)
    std::cout << " in " << r.wall_s << " s";
  std::cout << "\n";

  ds::util::Table outcomes({"outcome", "jobs"});
  for (const auto& [name, count] : r.outcomes)
    outcomes.Row().Cell(name.empty() ? "(none)" : name).Cell(count);
  outcomes.Print(std::cout);

  if (!r.wall_ms.empty()) {
    ds::util::Table lat({"latency [ms]", "value"});
    double sum = 0.0;
    for (const double v : r.wall_ms) sum += v;
    lat.Row().Cell("mean").Cell(sum / static_cast<double>(r.wall_ms.size()),
                                3);
    lat.Row().Cell("p50").Cell(Percentile(r.wall_ms, 50.0), 3);
    lat.Row().Cell("p90").Cell(Percentile(r.wall_ms, 90.0), 3);
    lat.Row().Cell("p99").Cell(Percentile(r.wall_ms, 99.0), 3);
    lat.Row().Cell("max").Cell(r.wall_ms.back(), 3);
    lat.Print(std::cout);
  }

  std::cout << "resilience: " << r.retries << " retries, " << r.backoffs
            << " backoffs, " << r.quarantined_jobs.size() << " quarantined; "
            << "chaos: " << r.chaos_fail << " faults, " << r.chaos_delay
            << " delays\n";
  if (!r.retried_jobs.empty()) {
    ds::util::Table chains({"job", "attempts", "outcome"});
    for (const auto& [job, info] : r.retried_jobs)
      chains.Row()
          .Cell(static_cast<std::size_t>(job))
          .Cell(info.first)
          .Cell(info.second);
    chains.Print(std::cout);
  }
  if (r.journal_corrupt > 0 || r.journal_dedup > 0 || r.journal_torn > 0)
    std::cout << "journal recovery: " << r.journal_corrupt
              << " corrupt records, " << r.journal_dedup << " dedup drops, "
              << r.journal_torn_bytes << " torn bytes\n";
  if (r.cache_evicts > 0)
    std::cout << "cache: " << r.cache_evicts << " evictions ("
              << r.cache_evict_bytes << " bytes)\n";
  std::cout << "bus: " << r.bus_written << " written, " << r.bus_dropped
            << " dropped, " << r.heartbeats << " heartbeats\n";
}

void WriteReportJson(const RunReport& r, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << "{\n";
  out << "  \"jobs_total\": " << r.jobs_total << ",\n";
  out << "  \"jobs_resumed\": " << r.jobs_resumed << ",\n";
  out << "  \"completed\": " << r.completed << ",\n";
  out << "  \"retries\": " << r.retries << ",\n";
  out << "  \"quarantined\": " << r.quarantined_jobs.size() << ",\n";
  out << "  \"chaos_fail\": " << r.chaos_fail << ",\n";
  out << "  \"chaos_delay\": " << r.chaos_delay << ",\n";
  out << "  \"journal_corrupt\": " << r.journal_corrupt << ",\n";
  out << "  \"journal_dedup\": " << r.journal_dedup << ",\n";
  out << "  \"cache_evicts\": " << r.cache_evicts << ",\n";
  out << "  \"heartbeats\": " << r.heartbeats << ",\n";
  out << "  \"bus_written\": " << r.bus_written << ",\n";
  out << "  \"bus_dropped\": " << r.bus_dropped << ",\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", Percentile(r.wall_ms, 50.0));
  out << "  \"wall_ms_p50\": " << buf << ",\n";
  std::snprintf(buf, sizeof(buf), "%.6f", Percentile(r.wall_ms, 99.0));
  out << "  \"wall_ms_p99\": " << buf << ",\n";
  std::snprintf(buf, sizeof(buf), "%.6f",
                r.wall_ms.empty() ? 0.0 : r.wall_ms.back());
  out << "  \"wall_ms_max\": " << buf << "\n";
  out << "}\n";
}

/// Cross-checks the event-stream reconstruction against the RunSummary
/// JSON written by the same run. Returns the number of mismatches.
int VerifyAgainstSummary(const RunReport& r, const JsonValue& summary) {
  int mismatches = 0;
  const auto check = [&mismatches](const char* what, double events,
                                   double summary_value) {
    if (events == summary_value) return;  // exact integral counts
    std::cerr << "ds_report: MISMATCH " << what << ": events say " << events
              << ", summary says " << summary_value << "\n";
    ++mismatches;
  };
  check("jobs_total", static_cast<double>(r.jobs_total),
        NumField(summary, "sweep_jobs_total"));
  check("jobs_resumed", static_cast<double>(r.jobs_resumed),
        NumField(summary, "sweep_jobs_resumed"));
  check("jobs_executed", static_cast<double>(r.completed),
        NumField(summary, "sweep_jobs_executed"));
  std::size_t failed = 0;
  for (const auto& [name, count] : r.outcomes)
    if (name == "failed" || name == "quarantined") failed += count;
  check("jobs_failed", static_cast<double>(failed),
        NumField(summary, "sweep_jobs_failed"));
  check("journal_corrupt_records", static_cast<double>(r.journal_corrupt),
        NumField(summary, "journal_corrupt_records"));
  check("journal_dedup_drops", static_cast<double>(r.journal_dedup),
        NumField(summary, "journal_dedup_drops"));
  check("journal_truncated_bytes", r.journal_torn_bytes,
        NumField(summary, "journal_truncated_bytes"));

  // Internal consistency of the stream itself.
  check("quarantined (events vs run_end)",
        static_cast<double>(r.quarantined_jobs.size()),
        static_cast<double>(r.run_end_quarantined));
  check("retries (events vs run_end)", static_cast<double>(r.retries),
        static_cast<double>(r.run_end_retries));
  check("executed (events vs run_end)", static_cast<double>(r.completed),
        static_cast<double>(r.run_end_executed));
  return mismatches;
}

int RunEventsMode(const ds::util::ArgParser& args) {
  const std::string events_path = args.positionals()[0];
  std::string text;
  if (!ReadFile(events_path, &text)) {
    std::cerr << "ds_report: cannot open " << events_path << "\n";
    return 1;
  }
  RunReport r;
  try {
    r = ParseEvents(text);
  } catch (const std::exception& e) {
    std::cerr << "ds_report: " << events_path << ": " << e.what() << "\n";
    return 1;
  }
  if (!r.has_run_start || r.bus_written == 0) {
    std::cerr << "ds_report: " << events_path
              << ": missing run_start or bus_close record\n";
    return 1;
  }
  PrintReport(r);

  const std::string json_path = args.GetString("json");
  if (!json_path.empty()) WriteReportJson(r, json_path);

  const std::string summary_path = args.GetString("summary");
  if (!summary_path.empty()) {
    std::string summary_text;
    if (!ReadFile(summary_path, &summary_text)) {
      std::cerr << "ds_report: cannot open " << summary_path << "\n";
      return 1;
    }
    JsonValue summary;
    try {
      summary = ParseJson(summary_text);
    } catch (const std::exception& e) {
      std::cerr << "ds_report: " << summary_path << ": " << e.what() << "\n";
      return 1;
    }
    const int mismatches = VerifyAgainstSummary(r, summary);
    if (mismatches > 0) {
      std::cerr << "ds_report: " << mismatches
                << " mismatch(es) between events and " << summary_path << "\n";
      return 1;
    }
    std::cout << "summary check: events reconstruct " << summary_path
              << " exactly\n";
  }
  return 0;
}

/// Per-client aggregation of the service-plane events.
struct ServeClient {
  std::size_t submits = 0;
  std::size_t rejects = 0;
  std::size_t cancels = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  double rows = 0.0;
  std::vector<double> queue_wait_ms;
  std::vector<double> run_ms;
};

/// Per-sweep lifecycle joined across submit/sweep_start/sweep_end.
struct ServeSweep {
  std::string client;
  double jobs_total = 0.0;
  double queue_wait_ms = -1.0;  // -1: never left the queue
  double run_ms = -1.0;
  double rows = 0.0;
  std::string outcome = "queued";
};

int RunServeMode(const ds::util::ArgParser& args) {
  const std::string events_path = args.GetString("serve");
  std::string text;
  if (!ReadFile(events_path, &text)) {
    std::cerr << "ds_report: cannot open " << events_path << "\n";
    return 1;
  }

  std::map<std::string, ServeClient> clients;
  std::map<std::int64_t, ServeSweep> sweeps;
  std::size_t service_events = 0;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    JsonValue ev;
    try {
      ev = ParseJson(line);
    } catch (const std::exception& e) {
      std::cerr << "ds_report: " << events_path << ": line "
                << std::to_string(line_no) << ": " << e.what() << "\n";
      return 1;
    }
    if (!ev.is_object()) continue;
    const std::string kind = StrField(ev, "ev");
    const std::string client = StrField(ev, "detail");
    const auto seq = static_cast<std::int64_t>(NumField(ev, "job", -1.0));
    if (kind == "submit") {
      ++service_events;
      ++clients[client].submits;
      sweeps[seq].client = client;
      sweeps[seq].jobs_total = NumField(ev, "jobs_total");
    } else if (kind == "reject") {
      ++service_events;
      ++clients[client].rejects;
    } else if (kind == "cancel") {
      ++service_events;
      ++clients[client].cancels;
    } else if (kind == "sweep_start") {
      ++service_events;
      const double wait = NumField(ev, "queue_wait_ms");
      clients[client].queue_wait_ms.push_back(wait);
      sweeps[seq].client = client;
      sweeps[seq].queue_wait_ms = wait;
      if (sweeps[seq].outcome == "queued") sweeps[seq].outcome = "running";
    } else if (kind == "sweep_end") {
      ++service_events;
      ServeClient& c = clients[client];
      ServeSweep& s = sweeps[seq];
      s.client = client;
      s.run_ms = NumField(ev, "run_ms");
      s.rows = NumField(ev, "rows");
      c.run_ms.push_back(s.run_ms);
      c.rows += s.rows;
      if (NumField(ev, "cancelled") > 0.0) {
        s.outcome = "cancelled";
        ++c.cancelled;
      } else if (NumField(ev, "failed") > 0.0) {
        s.outcome = "failed";
        ++c.failed;
      } else {
        s.outcome = "done";
        ++c.done;
      }
    }
  }
  if (service_events == 0) {
    std::cerr << "ds_report: " << events_path
              << ": no service-plane events (submit/sweep_start/...)\n";
    return 1;
  }

  ds::util::Table by_client({"client", "submits", "rejects", "cancels",
                             "done", "failed", "cancelled", "rows",
                             "p50 wait [ms]", "p50 run [ms]"});
  for (auto& [name, c] : clients) {
    std::sort(c.queue_wait_ms.begin(), c.queue_wait_ms.end());
    std::sort(c.run_ms.begin(), c.run_ms.end());
    by_client.Row()
        .Cell(name.empty() ? "(none)" : name)
        .Cell(c.submits)
        .Cell(c.rejects)
        .Cell(c.cancels)
        .Cell(c.done)
        .Cell(c.failed)
        .Cell(c.cancelled)
        .Cell(static_cast<std::size_t>(c.rows))
        .Cell(Percentile(c.queue_wait_ms, 50.0), 3)
        .Cell(Percentile(c.run_ms, 50.0), 3);
  }
  by_client.Print(std::cout);

  ds::util::Table by_sweep(
      {"seq", "client", "jobs", "wait [ms]", "run [ms]", "outcome"});
  for (const auto& [seq, s] : sweeps)
    by_sweep.Row()
        .Cell(static_cast<std::size_t>(seq))
        .Cell(s.client)
        .Cell(static_cast<std::size_t>(s.jobs_total))
        .Cell(std::max(s.queue_wait_ms, 0.0), 3)
        .Cell(std::max(s.run_ms, 0.0), 3)
        .Cell(s.outcome);
  std::cout << "\n";
  by_sweep.Print(std::cout);
  return 0;
}

int RunBenchMode(const ds::util::ArgParser& args) {
  const std::string bench_path = args.GetString("bench");
  const std::string base_path = args.GetString("baseline");
  const double max_regress = args.GetDouble("max-regress", 10.0);
  std::string bench_text;
  std::string base_text;
  if (!ReadFile(bench_path, &bench_text)) {
    std::cerr << "ds_report: cannot open " << bench_path << "\n";
    return 1;
  }
  if (!ReadFile(base_path, &base_text)) {
    std::cerr << "ds_report: cannot open " << base_path << "\n";
    return 1;
  }
  JsonValue bench;
  JsonValue base;
  try {
    bench = ParseJson(bench_text);
    base = ParseJson(base_text);
  } catch (const std::exception& e) {
    std::cerr << "ds_report: " << e.what() << "\n";
    return 1;
  }
  if (!bench.is_object() || !base.is_object()) {
    std::cerr << "ds_report: bench reports must be JSON objects\n";
    return 1;
  }
  ds::util::Table t({"bench", "metric", "base", "now", "delta %"});
  int regressions = 0;
  for (const auto& [name, entry] : bench.object) {
    if (!entry.is_object()) continue;  // schema_version / git stamps
    // Each entry gates on its native throughput metric: the serve
    // bench reports rows_per_s, the sweep benches jobs_per_s.
    const char* metric =
        entry.Find("rows_per_s") != nullptr ? "rows_per_s" : "jobs_per_s";
    const double now = NumField(entry, metric);
    const JsonValue* base_entry = base.Find(name);
    if (base_entry == nullptr || !base_entry->is_object()) {
      t.Row().Cell(name).Cell(metric).Cell("(new)").Cell(now, 3).Cell("-");
      continue;
    }
    const double was = NumField(*base_entry, metric);
    const double delta_pct = was > 0.0 ? 100.0 * (now - was) / was : 0.0;
    t.Row().Cell(name).Cell(metric).Cell(was, 3).Cell(now, 3).Cell(delta_pct,
                                                                   2);
    if (was > 0.0 && delta_pct < -max_regress) {
      std::cerr << "ds_report: REGRESSION " << name << ": " << metric << " "
                << was << " -> " << now << " (" << delta_pct << "% < -"
                << max_regress << "%)\n";
      ++regressions;
    }
  }
  t.Print(std::cout);

  // Flat thermal kernel reports (BENCH_thermal.json) carry the batched
  // lockstep A/B section as per-k scalar/batched us-per-member-step
  // pairs. Convert to member-steps/s, show batched vs the scalar GEMV
  // baseline, and gate the batched speedup against --baseline so a
  // panel-kernel regression fails CI the same way a throughput
  // regression in the sweep benches does.
  ds::util::Table bt({"cohort", "scalar steps/s", "batched steps/s",
                      "speedup", "base speedup"});
  static const std::string kBatchUs = "batch_us_k";
  bool have_batch = false;
  for (const auto& [name, entry] : bench.object) {
    if (!entry.is_number() || name.rfind(kBatchUs, 0) != 0) continue;
    const std::string k = name.substr(kBatchUs.size());
    const double batch_us = entry.number;
    const double scalar_us = NumField(bench, "batch_scalar_us_k" + k);
    if (batch_us <= 0.0 || scalar_us <= 0.0) continue;
    have_batch = true;
    const double speedup = scalar_us / batch_us;
    double base_speedup = 0.0;
    const JsonValue* base_us = base.Find(name);
    if (base_us != nullptr && base_us->is_number() && base_us->number > 0.0) {
      const double base_scalar = NumField(base, "batch_scalar_us_k" + k);
      if (base_scalar > 0.0) base_speedup = base_scalar / base_us->number;
    }
    bt.Row()
        .Cell("k=" + k)
        .Cell(1e6 / scalar_us, 0)
        .Cell(1e6 / batch_us, 0)
        .Cell(speedup, 2);
    if (base_speedup > 0.0) {
      bt.Cell(base_speedup, 2);
      const double delta_pct = 100.0 * (speedup - base_speedup) / base_speedup;
      if (delta_pct < -max_regress) {
        std::cerr << "ds_report: REGRESSION batch k=" << k << ": speedup "
                  << base_speedup << "x -> " << speedup << "x (" << delta_pct
                  << "% < -" << max_regress << "%)\n";
        ++regressions;
      }
    } else {
      bt.Cell("-");
    }
  }
  if (have_batch) {
    std::cout << "\nbatched lockstep stepping (vs scalar GEMV lane)\n";
    bt.Print(std::cout);
  }
  return regressions > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const ds::util::ArgParser args(argc, argv);
  const bool bench_mode = args.Has("bench");
  if (bench_mode) {
    if (args.GetString("bench").empty() || args.GetString("baseline").empty())
      return Usage();
    return RunBenchMode(args);
  }
  if (args.Has("serve")) {
    if (args.GetString("serve").empty()) return Usage();
    return RunServeMode(args);
  }
  if (args.positionals().empty()) return Usage();
  return RunEventsMode(args);
}
