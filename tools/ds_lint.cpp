// ds_lint: a zero-dependency style/correctness checker for the dark
// silicon library tree. Runs as a ctest over src/ and fails the build
// when a rule fires without a suppression.
//
// Rules
//   bare-assert       `assert(` in library code outside src/util/.
//                     Asserts compile out under NDEBUG, so a Release
//                     build silently drops the check; library code must
//                     use the DS_REQUIRE/DS_ENSURE/DS_INVARIANT macros
//                     (src/util/contracts.hpp), which stay live.
//   float-equals      `==` or `!=` with a floating-point literal
//                     operand. Exact comparison against a float literal
//                     is almost always a tolerance bug in numerical
//                     code.
//   io-in-library     printf/std::cout/std::cerr in library code.
//                     Libraries report through return values, telemetry
//                     or exceptions; only tools/ and benches print.
//   raw-stderr        `stderr`/`stdout`/`std::clog`/`perror` in
//                     src/runtime or src/telemetry. These are the two
//                     layers that own structured reporting (the event
//                     bus, metrics, RunSummary); a raw stream write
//                     there bypasses the drop-accounted observability
//                     plane and tears the --progress status line.
//   naked-new         `new`/`delete` expressions. Ownership must go
//                     through std::unique_ptr/std::make_unique; the few
//                     intentional leaks (function-local singletons) are
//                     suppressed explicitly.
//   missing-contract  A constructor definition in a library .cpp that
//                     takes `double` parameters (physical quantities)
//                     but whose body neither checks a contract
//                     (DS_REQUIRE/...) nor throws nor delegates to a
//                     Validate() helper.
//   static-mutable    A mutable function-local `static` in library
//                     code. Hidden shared state breaks the sweep
//                     engine's pure-job determinism contract and is a
//                     data race waiting for a parallel caller. Statics
//                     that are const/constexpr, references, or
//                     std::atomic/std::mutex/std::once_flag (their own
//                     synchronization) are fine.
//   swallowed-catch   A `catch` handler in src/runtime/ whose body
//                     neither rethrows nor records the failure (no
//                     `throw`, telemetry count, Record/log call, or
//                     assignment into an error field). The resilient
//                     sweep runtime's whole contract is that every
//                     failure is classified and surfaced -- a silent
//                     catch there turns a poison job into a silently
//                     wrong sweep row.
//   alloc-in-loop     A std::vector or util::Matrix constructed inside
//                     a loop body in src/thermal/. The transient
//                     stepping path is called once per simulated
//                     millisecond across every sweep job; per-iteration
//                     heap allocation there is a measured hot-loop cost
//                     (and allocator contention under the parallel
//                     sweep engine). Hoist the buffer out of the loop
//                     or reuse a member scratch vector. Cold loops
//                     (one-time model construction) suppress with a
//                     justification.
//
// Suppressions: append `// ds_lint: allow(<rule>)` to the offending
// line, or place it alone on the line directly above. Every
// suppression documents an intentional exception at the point of use.
//
// Usage: ds_lint <file-or-directory>...
// Exit status: 0 when clean, 1 when any finding survives suppression,
// 2 on usage/IO errors.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  std::size_t line;
  std::string rule;
  std::string message;
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Replaces comments, string literals and char literals with spaces so
/// the rule scanners never match inside them. Line structure (newlines)
/// is preserved. Suppression comments are collected before blanking.
struct CleanSource {
  std::string text;                 // blanked source, newlines kept
  std::vector<std::string> allows;  // allows[i] = rules allowed on line i+1
};

CleanSource Blank(const std::string& raw) {
  CleanSource out;
  out.text = raw;
  const std::size_t line_count =
      1 + static_cast<std::size_t>(
              std::count(raw.begin(), raw.end(), '\n'));
  out.allows.assign(line_count, std::string());

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::size_t line = 0;
  std::string comment;  // current comment text, for suppression parsing

  auto record_allow = [&](const std::string& c, std::size_t at_line) {
    const std::string tag = "ds_lint: allow(";
    std::size_t pos = c.find(tag);
    while (pos != std::string::npos) {
      const std::size_t open = pos + tag.size();
      const std::size_t close = c.find(')', open);
      if (close == std::string::npos) break;
      if (at_line < out.allows.size())
        out.allows[at_line] += c.substr(open, close - open) + ",";
      pos = c.find(tag, close);
    }
  };

  for (std::size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment.clear();
          out.text[i] = out.text[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment.clear();
          out.text[i] = out.text[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out.text[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out.text[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          record_allow(comment, line);
          state = State::kCode;
        } else {
          comment += c;
          out.text[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          record_allow(comment, line);
          state = State::kCode;
          out.text[i] = out.text[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          comment += c;
          out.text[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out.text[i] = ' ';
          if (next != '\n') {
            out.text[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
          out.text[i] = ' ';
        } else if (c != '\n') {
          out.text[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out.text[i] = ' ';
          if (next != '\n') {
            out.text[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
          out.text[i] = ' ';
        } else if (c != '\n') {
          out.text[i] = ' ';
        }
        break;
    }
    if (c == '\n') ++line;
  }
  return out;
}

bool Allowed(const CleanSource& src, std::size_t line_no,
             std::string_view rule) {
  auto has = [&](std::size_t idx) {
    if (idx >= src.allows.size()) return false;
    return src.allows[idx].find(rule) != std::string::npos;
  };
  // Same line, or the line directly above (a standalone comment).
  return has(line_no) || (line_no > 0 && has(line_no - 1));
}

std::size_t LineOf(const std::string& text, std::size_t pos) {
  return static_cast<std::size_t>(
      std::count(text.begin(),
                 text.begin() + static_cast<std::ptrdiff_t>(pos), '\n'));
}

/// True if `text[pos..]` starts with `word` as a whole identifier.
bool MatchWord(const std::string& text, std::size_t pos,
               std::string_view word) {
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && IsIdentChar(text[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end >= text.size() || !IsIdentChar(text[end]);
}

bool IsUtilFile(const std::string& path) {
  return path.find("/util/") != std::string::npos ||
         path.rfind("util/", 0) == 0;
}

/// True if `pos` sits on a preprocessor line (`#include <new>` must not
/// count as a `new` expression).
bool OnPreprocessorLine(const std::string& text, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 && text[i - 1] != '\n') --i;
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
  return i < text.size() && text[i] == '#';
}

// ---------------------------------------------------------------- rules

void RuleBareAssert(const std::string& path, const CleanSource& src,
                    std::vector<Finding>* findings) {
  if (IsUtilFile(path)) return;  // contracts.hpp itself and util helpers
  for (std::size_t pos = src.text.find("assert"); pos != std::string::npos;
       pos = src.text.find("assert", pos + 1)) {
    if (!MatchWord(src.text, pos, "assert")) continue;
    std::size_t after = pos + 6;
    while (after < src.text.size() && src.text[after] == ' ') ++after;
    if (after >= src.text.size() || src.text[after] != '(') continue;
    if (pos > 0 && src.text[pos - 1] == '_') continue;  // static_assert
    const std::size_t line_no = LineOf(src.text, pos);
    if (Allowed(src, line_no, "bare-assert")) continue;
    findings->push_back({path, line_no + 1, "bare-assert",
                         "assert() compiles out in Release; use DS_REQUIRE "
                         "/ DS_ENSURE / DS_INVARIANT"});
  }
}

bool LooksLikeFloatLiteral(std::string_view tok) {
  // 1.0, .5, 1., 1e-9, 1.5e3, 0.0f -- but not plain integers and not
  // member accesses (handled by the caller stripping identifiers).
  bool digit = false, dot = false, exp = false;
  for (std::size_t i = 0; i < tok.size(); ++i) {
    const char c = tok[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c == '.') {
      if (dot) return false;
      dot = true;
    } else if ((c == 'e' || c == 'E') && digit && i + 1 < tok.size()) {
      exp = true;
      if (tok[i + 1] == '+' || tok[i + 1] == '-') ++i;
    } else if ((c == 'f' || c == 'F') && i == tok.size() - 1) {
      // float suffix
    } else {
      return false;
    }
  }
  return digit && (dot || exp);
}

/// Extracts the token adjacent to position `pos`, scanning left or right.
std::string AdjacentToken(const std::string& text, std::size_t pos,
                          bool left) {
  std::string tok;
  if (left) {
    std::size_t i = pos;
    while (i > 0) {
      const char c = text[i - 1];
      if (c == ' ' && tok.empty()) {
        --i;
        continue;
      }
      if (IsIdentChar(c) || c == '.' || c == '+' || c == '-') {
        tok.insert(tok.begin(), c);
        --i;
      } else {
        break;
      }
    }
  } else {
    std::size_t i = pos;
    while (i < text.size()) {
      const char c = text[i];
      if (c == ' ' && tok.empty()) {
        ++i;
        continue;
      }
      if (IsIdentChar(c) || c == '.' || c == '+' || c == '-') {
        tok += c;
        ++i;
      } else {
        break;
      }
    }
  }
  // Strip a leading sign.
  if (!tok.empty() && (tok[0] == '+' || tok[0] == '-')) tok.erase(0, 1);
  return tok;
}

void RuleFloatEquals(const std::string& path, const CleanSource& src,
                     std::vector<Finding>* findings) {
  const std::string& t = src.text;
  for (std::size_t pos = 0; pos + 1 < t.size(); ++pos) {
    if (t[pos + 1] != '=') continue;
    if (t[pos] != '=' && t[pos] != '!') continue;
    // Exclude <=, >=, ==>, = =, === and compound contexts: require the
    // char before to not be another comparison/assignment char.
    if (pos > 0 && (t[pos - 1] == '<' || t[pos - 1] == '>' ||
                    t[pos - 1] == '=' || t[pos - 1] == '!'))
      continue;
    if (pos + 2 < t.size() && t[pos + 2] == '=') continue;
    const std::string lhs = AdjacentToken(t, pos, /*left=*/true);
    const std::string rhs = AdjacentToken(t, pos + 2, /*left=*/false);
    if (!LooksLikeFloatLiteral(lhs) && !LooksLikeFloatLiteral(rhs)) continue;
    const std::size_t line_no = LineOf(t, pos);
    if (Allowed(src, line_no, "float-equals")) continue;
    findings->push_back({path, line_no + 1, "float-equals",
                         "exact comparison with a floating-point literal; "
                         "compare against a tolerance"});
  }
}

void RuleIoInLibrary(const std::string& path, const CleanSource& src,
                     std::vector<Finding>* findings) {
  const std::string& t = src.text;
  static const std::string_view kPatterns[] = {"printf", "fprintf",
                                               "std::cout", "std::cerr"};
  for (const std::string_view pat : kPatterns) {
    for (std::size_t pos = t.find(pat); pos != std::string::npos;
         pos = t.find(pat, pos + 1)) {
      if (IsIdentChar(t[pos > 0 ? pos - 1 : 0]) && pos > 0) continue;
      const std::size_t end = pos + pat.size();
      if (end < t.size() && IsIdentChar(t[end])) continue;
      const std::size_t line_no = LineOf(t, pos);
      if (Allowed(src, line_no, "io-in-library")) continue;
      findings->push_back({path, line_no + 1, "io-in-library",
                           "library code must not print; return data or "
                           "use telemetry"});
    }
  }
}

/// Flags raw stream handles in the two structured-reporting layers.
/// src/runtime and src/telemetry own the observability plane (event
/// bus, metrics, heartbeat); anything they report must flow through it
/// -- a stray fprintf(stderr, ...) is unaccounted, unparseable, and
/// interleaves with the `\r`-rewritten --progress line. Streams handed
/// in by the caller (std::ostream* parameters) are fine; the rule only
/// matches the global handles.
void RuleRawStderr(const std::string& path, const CleanSource& src,
                   std::vector<Finding>* findings) {
  const bool scoped = path.find("/runtime/") != std::string::npos ||
                      path.rfind("runtime/", 0) == 0 ||
                      path.find("/telemetry/") != std::string::npos ||
                      path.rfind("telemetry/", 0) == 0;
  if (!scoped) return;
  const std::string& t = src.text;
  static const std::string_view kHandles[] = {"stderr", "stdout", "std::clog",
                                              "perror"};
  for (const std::string_view pat : kHandles) {
    for (std::size_t pos = t.find(pat); pos != std::string::npos;
         pos = t.find(pat, pos + 1)) {
      if (pos > 0 && (IsIdentChar(t[pos - 1]) || t[pos - 1] == ':')) continue;
      const std::size_t end = pos + pat.size();
      if (end < t.size() && (IsIdentChar(t[end]) || t[end] == ':')) continue;
      const std::size_t line_no = LineOf(t, pos);
      if (Allowed(src, line_no, "raw-stderr")) continue;
      findings->push_back(
          {path, line_no + 1, "raw-stderr",
           std::string(pat) +
               " in a structured-reporting layer; emit through the event "
               "bus / telemetry, or take a std::ostream* from the caller"});
    }
  }
}

void RuleNakedNew(const std::string& path, const CleanSource& src,
                  std::vector<Finding>* findings) {
  const std::string& t = src.text;
  for (const std::string_view word : {"new", "delete"}) {
    for (std::size_t pos = t.find(word); pos != std::string::npos;
         pos = t.find(word, pos + 1)) {
      if (!MatchWord(t, pos, word)) continue;
      if (OnPreprocessorLine(t, pos)) continue;  // #include <new>
      // `= delete` / `= default` declarations are not expressions.
      std::size_t before = pos;
      while (before > 0 && t[before - 1] == ' ') --before;
      if (before > 0 && t[before - 1] == '=') continue;
      const std::size_t line_no = LineOf(t, pos);
      if (Allowed(src, line_no, "naked-new")) continue;
      findings->push_back(
          {path, line_no + 1, "naked-new",
           std::string("naked `") + std::string(word) +
               "`; use std::make_unique / RAII ownership"});
    }
  }
}

/// Finds constructor definitions `Class::Class(...)` whose parameter
/// list mentions `double` and whose body (up to the matching brace)
/// contains no contract check.
void RuleMissingContract(const std::string& path, const CleanSource& src,
                         std::vector<Finding>* findings) {
  if (path.size() < 4 || path.compare(path.size() - 4, 4, ".cpp") != 0)
    return;
  const std::string& t = src.text;
  for (std::size_t pos = t.find("::"); pos != std::string::npos;
       pos = t.find("::", pos + 2)) {
    // Name before :: and after :: must match -> constructor.
    std::size_t ls = pos;
    while (ls > 0 && IsIdentChar(t[ls - 1])) --ls;
    const std::string name = t.substr(ls, pos - ls);
    if (name.empty()) continue;
    const std::size_t after = pos + 2;
    if (t.compare(after, name.size(), name) != 0) continue;
    std::size_t paren = after + name.size();
    while (paren < t.size() && t[paren] == ' ') ++paren;
    if (paren >= t.size() || t[paren] != '(') continue;
    // Capture the parameter list.
    int depth = 1;
    std::size_t i = paren + 1;
    const std::size_t params_begin = i;
    while (i < t.size() && depth > 0) {
      if (t[i] == '(') ++depth;
      if (t[i] == ')') --depth;
      ++i;
    }
    if (depth != 0) continue;
    const std::string params = t.substr(params_begin, i - 1 - params_begin);
    if (params.find("double") == std::string::npos) continue;
    // Find the body start `{` (skip over the init list), then the body.
    std::size_t body = i;
    while (body < t.size() && t[body] != '{' && t[body] != ';') ++body;
    if (body >= t.size() || t[body] == ';') continue;  // declaration
    depth = 1;
    std::size_t j = body + 1;
    while (j < t.size() && depth > 0) {
      if (t[j] == '{') ++depth;
      if (t[j] == '}') --depth;
      ++j;
    }
    // A constructor taking physical quantities must validate: either
    // directly (contract macro / throw) or by delegating (Validate,
    // or construction of members that check -- init list counts).
    const std::string whole = t.substr(ls, j - ls);
    if (whole.find("DS_REQUIRE") != std::string::npos ||
        whole.find("DS_ENSURE") != std::string::npos ||
        whole.find("DS_INVARIANT") != std::string::npos ||
        whole.find("throw ") != std::string::npos ||
        whole.find("Validate") != std::string::npos ||
        whole.find("CheckInvariants") != std::string::npos)
      continue;
    const std::size_t line_no = LineOf(t, ls);
    if (Allowed(src, line_no, "missing-contract")) continue;
    findings->push_back(
        {path, line_no + 1, "missing-contract",
         name + "::" + name +
             " takes double (physical quantity) parameters but neither "
             "checks a DS_* contract nor throws nor calls Validate()"});
  }
}

/// Finds `static` declarations at function scope whose declaration
/// carries neither constness nor its own synchronization. Scope is
/// tracked with a brace stack: a `{` after `)` or `]` opens a function
/// (or lambda) body, `namespace`/`class`/`struct`/`enum`/`union` open
/// non-function scopes, and control-flow/initializer braces inherit
/// the enclosing scope -- so macro bodies at namespace scope (the
/// DS_TELEM_* do-while idiom) do not fire.
void RuleStaticMutable(const std::string& path, const CleanSource& src,
                       std::vector<Finding>* findings) {
  enum class Scope { kNamespace, kType, kFunction };
  const std::string& t = src.text;
  std::vector<Scope> stack;  // file scope (empty stack) == kNamespace

  auto effective = [&]() {
    return stack.empty() ? Scope::kNamespace : stack.back();
  };
  auto head_has = [&](std::string_view head, std::string_view word) {
    for (std::size_t p = head.find(word); p != std::string_view::npos;
         p = head.find(word, p + 1)) {
      const bool left_ok = p == 0 || !IsIdentChar(head[p - 1]);
      const std::size_t end = p + word.size();
      const bool right_ok = end >= head.size() || !IsIdentChar(head[end]);
      if (left_ok && right_ok) return true;
    }
    return false;
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    const char c = t[i];
    if (c == '}') {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    if (c == '{') {
      // The introducer: everything since the last ; { or }.
      std::size_t start = i;
      while (start > 0 && t[start - 1] != ';' && t[start - 1] != '{' &&
             t[start - 1] != '}')
        --start;
      const std::string_view head(&t[start], i - start);
      std::size_t last = head.size();
      while (last > 0 && std::isspace(static_cast<unsigned char>(
                             head[last - 1])) != 0)
        --last;
      const char prev = last > 0 ? head[last - 1] : '\0';
      Scope opened;
      if (head_has(head, "namespace")) {
        opened = Scope::kNamespace;
      } else if (head_has(head, "class") || head_has(head, "struct") ||
                 head_has(head, "union") || head_has(head, "enum")) {
        opened = Scope::kType;
      } else if (head_has(head, "if") || head_has(head, "for") ||
                 head_has(head, "while") || head_has(head, "switch") ||
                 head_has(head, "catch") || head_has(head, "do") ||
                 head_has(head, "else") || head_has(head, "try")) {
        opened = effective();  // control block: same scope kind
      } else if (prev == ')' || prev == ']') {
        opened = Scope::kFunction;  // function, ctor, or lambda body
      } else {
        opened = effective();  // initializer list, requires, etc.
      }
      stack.push_back(opened);
      continue;
    }
    if (c != 's' || !MatchWord(t, i, "static")) continue;
    if (effective() != Scope::kFunction) continue;
    // The declaration: `static` up to the terminating ';'. The part
    // before any '=' is the declarator (where a '&' means reference).
    const std::size_t semi = t.find(';', i);
    if (semi == std::string::npos) continue;
    const std::string_view decl(&t[i], semi - i);
    const std::size_t eq = decl.find('=');
    const std::string_view declarator =
        decl.substr(0, eq == std::string_view::npos ? decl.size() : eq);
    if (head_has(declarator, "const") || head_has(declarator, "constexpr") ||
        head_has(declarator, "thread_local") ||
        head_has(declarator, "atomic") || head_has(declarator, "mutex") ||
        head_has(declarator, "once_flag") ||
        declarator.find('&') != std::string_view::npos)
      continue;
    const std::size_t line_no = LineOf(t, i);
    if (Allowed(src, line_no, "static-mutable")) continue;
    findings->push_back(
        {path, line_no + 1, "static-mutable",
         "mutable function-local static; hidden shared state breaks "
         "parallel-sweep determinism -- make it const, synchronize it, or "
         "pass state explicitly"});
  }
}

/// Flags `catch` handlers under src/runtime/ that swallow the failure:
/// the handler body contains no rethrow, no telemetry, no Record/log
/// call and no assignment into an error field. The runtime layer is
/// the failure-classification boundary (retry vs quarantine vs abort);
/// an exception that dies silently there breaks the "every failure is
/// surfaced" contract the journal and ResultSink depend on.
void RuleSwallowedCatch(const std::string& path, const CleanSource& src,
                        std::vector<Finding>* findings) {
  if (path.find("/runtime/") == std::string::npos &&
      path.rfind("runtime/", 0) != 0)
    return;
  const std::string& t = src.text;
  for (std::size_t pos = t.find("catch"); pos != std::string::npos;
       pos = t.find("catch", pos + 1)) {
    if (!MatchWord(t, pos, "catch")) continue;
    // Skip the exception-declaration parens.
    std::size_t i = pos + 5;
    while (i < t.size() &&
           std::isspace(static_cast<unsigned char>(t[i])) != 0)
      ++i;
    if (i >= t.size() || t[i] != '(') continue;
    int depth = 1;
    ++i;
    while (i < t.size() && depth > 0) {
      if (t[i] == '(') ++depth;
      if (t[i] == ')') --depth;
      ++i;
    }
    while (i < t.size() &&
           std::isspace(static_cast<unsigned char>(t[i])) != 0)
      ++i;
    if (i >= t.size() || t[i] != '{') continue;
    // Capture the handler body up to the matching brace.
    depth = 1;
    const std::size_t body_begin = ++i;
    while (i < t.size() && depth > 0) {
      if (t[i] == '{') ++depth;
      if (t[i] == '}') --depth;
      ++i;
    }
    const std::string_view body(&t[body_begin], i - 1 - body_begin);
    auto has = [&](std::string_view w) {
      return body.find(w) != std::string_view::npos;
    };
    // Any of these marks the failure as handled: rethrown, counted,
    // recorded into a sink/journal, or stored in an error field.
    if (has("throw") || has("DS_TELEM") || has("Record") || has("error") ||
        has("Error") || has("log") || has("Log"))
      continue;
    const std::size_t line_no = LineOf(t, pos);
    if (Allowed(src, line_no, "swallowed-catch")) continue;
    findings->push_back(
        {path, line_no + 1, "swallowed-catch",
         "catch handler in the sweep runtime swallows the exception; "
         "rethrow, record it (telemetry / journal / sink), or store it "
         "in an error field"});
  }
}

/// Flags owning std::vector / util::Matrix declarations inside loop
/// bodies under src/thermal/. Loop scopes are tracked with the same
/// brace-stack technique as RuleStaticMutable: a `{` whose introducer
/// contains `for`, `while` or `do` opens a loop scope; inner braces
/// inherit it. References (`&` declarators) and uses of an existing
/// object (member access, calls) never match -- only a declaration
/// `std::vector<...> name ...` / `Matrix name(...)` that constructs a
/// fresh buffer each iteration.
void RuleAllocInLoop(const std::string& path, const CleanSource& src,
                     std::vector<Finding>* findings) {
  if (path.find("/thermal/") == std::string::npos &&
      path.rfind("thermal/", 0) != 0)
    return;
  const std::string& t = src.text;

  auto head_has = [&](std::string_view head, std::string_view word) {
    for (std::size_t p = head.find(word); p != std::string_view::npos;
         p = head.find(word, p + 1)) {
      const bool left_ok = p == 0 || !IsIdentChar(head[p - 1]);
      const std::size_t end = p + word.size();
      const bool right_ok = end >= head.size() || !IsIdentChar(head[end]);
      if (left_ok && right_ok) return true;
    }
    return false;
  };

  // depth of loop nesting per brace level; loop_depth > 0 == in a loop.
  std::vector<bool> stack;  // true: this brace level is a loop body
  std::size_t loop_depth = 0;

  auto flag = [&](std::size_t pos, std::string_view what) {
    const std::size_t line_no = LineOf(t, pos);
    if (Allowed(src, line_no, "alloc-in-loop")) return;
    findings->push_back(
        {path, line_no + 1, "alloc-in-loop",
         std::string(what) +
             " constructed inside a loop body; per-iteration heap "
             "allocation in the thermal hot path -- hoist or reuse a "
             "scratch buffer"});
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    const char c = t[i];
    if (c == '}') {
      if (!stack.empty()) {
        if (stack.back()) --loop_depth;
        stack.pop_back();
      }
      continue;
    }
    if (c == '{') {
      // Introducer: back to the last top-level ; { or }. Unlike the
      // static-mutable scan, semicolons inside parentheses must not
      // terminate, or `for (a; b; c)` loses its `for`.
      std::size_t start = i;
      int parens = 0;
      while (start > 0) {
        const char p = t[start - 1];
        if (p == ')') ++parens;
        if (p == '(' && parens > 0) --parens;
        if (parens == 0 && (p == ';' || p == '{' || p == '}')) break;
        --start;
      }
      const std::string_view head(&t[start], i - start);
      const bool is_loop = head_has(head, "for") || head_has(head, "while") ||
                           head_has(head, "do");
      stack.push_back(is_loop);
      if (is_loop) ++loop_depth;
      continue;
    }
    if (loop_depth == 0) continue;

    // A declaration `std::vector<...> name` (not a reference binding).
    if (c == 's' && MatchWord(t, i, "std") &&
        t.compare(i, 12, "std::vector<") == 0) {
      std::size_t j = i + 12;
      int angle = 1;
      while (j < t.size() && angle > 0) {
        if (t[j] == '<') ++angle;
        if (t[j] == '>') --angle;
        ++j;
      }
      while (j < t.size() && t[j] == ' ') ++j;
      if (j < t.size() && IsIdentChar(t[j])) flag(i, "std::vector");
      i = j;
      continue;
    }
    // A declaration `Matrix name(...)` / `util::Matrix name(...)`.
    if (c == 'M' && MatchWord(t, i, "Matrix")) {
      std::size_t j = i + 6;
      while (j < t.size() && t[j] == ' ') ++j;
      if (j < t.size() && IsIdentChar(t[j])) flag(i, "util::Matrix");
      i = j;
      continue;
    }
  }
}

// ------------------------------------------------------------- driver

void LintFile(const fs::path& path, std::vector<Finding>* findings) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    findings->push_back({path.string(), 0, "io-error", "cannot read file"});
    return;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const CleanSource src = Blank(buf.str());
  const std::string p = path.generic_string();
  RuleBareAssert(p, src, findings);
  RuleFloatEquals(p, src, findings);
  RuleIoInLibrary(p, src, findings);
  RuleRawStderr(p, src, findings);
  RuleNakedNew(p, src, findings);
  RuleMissingContract(p, src, findings);
  RuleStaticMutable(p, src, findings);
  RuleSwallowedCatch(p, src, findings);
  RuleAllocInLoop(p, src, findings);
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: ds_lint <file-or-directory>...\n";
    return 2;
  }
  std::vector<Finding> findings;
  std::size_t files = 0;
  for (int a = 1; a < argc; ++a) {
    const fs::path root(argv[a]);
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      std::vector<fs::path> paths;
      for (const auto& entry : fs::recursive_directory_iterator(root, ec)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path()))
          paths.push_back(entry.path());
      }
      std::sort(paths.begin(), paths.end());
      for (const fs::path& p : paths) {
        LintFile(p, &findings);
        ++files;
      }
    } else if (fs::is_regular_file(root, ec)) {
      LintFile(root, &findings);
      ++files;
    } else {
      std::cerr << "ds_lint: no such file or directory: " << root << "\n";
      return 2;
    }
  }
  for (const Finding& f : findings)
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  std::cout << "ds_lint: " << files << " files, " << findings.size()
            << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}
