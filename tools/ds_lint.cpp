// ds_lint CLI: runs the rule engine in tools/lint_core.cpp over files
// and directories and prints findings. See lint_core.hpp for the rule
// catalogue and the suppression syntax.
//
// Usage: ds_lint [--sarif <path>] <file-or-directory>...
//
// --sarif <path> additionally writes the findings as a SARIF 2.1.0 log
// (consumed by github/codeql-action/upload-sarif in CI, so findings
// annotate the pull request diff).
//
// Exit status: 0 when clean, 1 when any finding survives suppression,
// 2 on usage/IO errors.

#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "lint_core.hpp"

int main(int argc, char** argv) {
  std::string sarif_path;
  std::vector<std::string> paths;
  for (int a = 1; a < argc; ++a) {
    const std::string_view arg = argv[a];
    if (arg == "--sarif") {
      if (a + 1 >= argc) {
        std::cerr << "ds_lint: --sarif requires a path\n";
        return 2;
      }
      sarif_path = argv[++a];
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: ds_lint [--sarif <path>] <file-or-directory>...\n";
    return 2;
  }

  ds::lint::LintResult result;
  try {
    result = ds::lint::LintPaths(paths);
  } catch (const std::exception& err) {
    std::cerr << "ds_lint: " << err.what() << "\n";
    return 2;
  }

  for (const ds::lint::Finding& f : result.findings)
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  std::cout << "ds_lint: " << result.files << " files, "
            << result.findings.size() << " finding(s)\n";

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    out << ds::lint::ToSarif(result);
    out.flush();
    if (!out) {
      std::cerr << "ds_lint: cannot write SARIF log: " << sarif_path << "\n";
      return 2;
    }
  }
  return result.findings.empty() ? 0 : 1;
}
