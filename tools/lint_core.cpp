// Implementation of the ds_lint rule engine; see lint_core.hpp for
// the rule catalogue and tools/ds_lint.cpp for the CLI. Everything is
// textual: rules scan comment/string-blanked source, so the linter
// builds in one translation unit with no compiler dependency.

#include "lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

namespace ds::lint {
namespace {

namespace fs = std::filesystem;

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// One `// ds_lint: allow(<rule>)` comment. `line` is 0-based; `used`
/// flips when a rule consults the suppression, and survivors become
/// unused-suppression findings.
struct Suppression {
  std::string rule;
  std::size_t line = 0;
  bool used = false;
};

/// Replaces comments, string literals and char literals with spaces so
/// the rule scanners never match inside them. Line structure (newlines)
/// is preserved. Suppression comments are collected before blanking.
struct CleanSource {
  std::string text;  // blanked source, newlines kept
  std::vector<Suppression> suppressions;
};

CleanSource Blank(const std::string& raw) {
  CleanSource out;
  out.text = raw;

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::size_t line = 0;
  std::string comment;  // current comment text, for suppression parsing

  auto record_allow = [&](const std::string& c, std::size_t at_line) {
    const std::string tag = "ds_lint: allow(";
    std::size_t pos = c.find(tag);
    while (pos != std::string::npos) {
      const std::size_t open = pos + tag.size();
      const std::size_t close = c.find(')', open);
      if (close == std::string::npos) break;
      // The paren contents name one or more rules, comma-separated.
      std::string rules = c.substr(open, close - open);
      std::size_t start = 0;
      while (start <= rules.size()) {
        std::size_t comma = rules.find(',', start);
        if (comma == std::string::npos) comma = rules.size();
        std::string rule = rules.substr(start, comma - start);
        const auto trim = [](std::string& s) {
          while (!s.empty() && std::isspace(static_cast<unsigned char>(
                                   s.front())) != 0)
            s.erase(s.begin());
          while (!s.empty() && std::isspace(static_cast<unsigned char>(
                                   s.back())) != 0)
            s.pop_back();
        };
        trim(rule);
        if (!rule.empty()) out.suppressions.push_back({rule, at_line, false});
        start = comma + 1;
      }
      pos = c.find(tag, close);
    }
  };

  for (std::size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment.clear();
          out.text[i] = out.text[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment.clear();
          out.text[i] = out.text[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out.text[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out.text[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          record_allow(comment, line);
          state = State::kCode;
        } else {
          comment += c;
          out.text[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          record_allow(comment, line);
          state = State::kCode;
          out.text[i] = out.text[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          comment += c;
          out.text[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out.text[i] = ' ';
          if (next != '\n') {
            out.text[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
          out.text[i] = ' ';
        } else if (c != '\n') {
          out.text[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out.text[i] = ' ';
          if (next != '\n') {
            out.text[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
          out.text[i] = ' ';
        } else if (c != '\n') {
          out.text[i] = ' ';
        }
        break;
    }
    if (c == '\n') ++line;
  }
  // A line comment on the last line of a file with no trailing newline.
  if (state == State::kLineComment) record_allow(comment, line);
  return out;
}

/// True (and marks the suppression used) when `rule` is allowed on
/// `line_no` -- same line, or the line directly above (a standalone
/// comment).
bool Allowed(CleanSource& src, std::size_t line_no, std::string_view rule) {
  bool hit = false;
  for (Suppression& s : src.suppressions) {
    if (s.rule != rule) continue;
    if (s.line == line_no || s.line + 1 == line_no) {
      s.used = true;
      hit = true;
    }
  }
  return hit;
}

std::size_t LineOf(const std::string& text, std::size_t pos) {
  return static_cast<std::size_t>(
      std::count(text.begin(),
                 text.begin() + static_cast<std::ptrdiff_t>(pos), '\n'));
}

/// True if `text[pos..]` starts with `word` as a whole identifier.
bool MatchWord(const std::string& text, std::size_t pos,
               std::string_view word) {
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && IsIdentChar(text[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end >= text.size() || !IsIdentChar(text[end]);
}

bool IsUtilFile(const std::string& path) {
  return path.find("/util/") != std::string::npos ||
         path.rfind("util/", 0) == 0;
}

/// True if `pos` sits on a preprocessor line (`#include <new>` must not
/// count as a `new` expression).
bool OnPreprocessorLine(const std::string& text, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 && text[i - 1] != '\n') --i;
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
  return i < text.size() && text[i] == '#';
}

// ---------------------------------------------------------- file rules

void RuleBareAssert(const std::string& path, CleanSource& src,
                    std::vector<Finding>* findings) {
  if (IsUtilFile(path)) return;  // contracts.hpp itself and util helpers
  for (std::size_t pos = src.text.find("assert"); pos != std::string::npos;
       pos = src.text.find("assert", pos + 1)) {
    if (!MatchWord(src.text, pos, "assert")) continue;
    std::size_t after = pos + 6;
    while (after < src.text.size() && src.text[after] == ' ') ++after;
    if (after >= src.text.size() || src.text[after] != '(') continue;
    if (pos > 0 && src.text[pos - 1] == '_') continue;  // static_assert
    const std::size_t line_no = LineOf(src.text, pos);
    if (Allowed(src, line_no, "bare-assert")) continue;
    findings->push_back({path, line_no + 1, "bare-assert",
                         "assert() compiles out in Release; use DS_REQUIRE "
                         "/ DS_ENSURE / DS_INVARIANT"});
  }
}

bool LooksLikeFloatLiteral(std::string_view tok) {
  // 1.0, .5, 1., 1e-9, 1.5e3, 0.0f -- but not plain integers and not
  // member accesses (handled by the caller stripping identifiers).
  bool digit = false, dot = false, exp = false;
  for (std::size_t i = 0; i < tok.size(); ++i) {
    const char c = tok[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c == '.') {
      if (dot) return false;
      dot = true;
    } else if ((c == 'e' || c == 'E') && digit && i + 1 < tok.size()) {
      exp = true;
      if (tok[i + 1] == '+' || tok[i + 1] == '-') ++i;
    } else if ((c == 'f' || c == 'F') && i == tok.size() - 1) {
      // float suffix
    } else {
      return false;
    }
  }
  return digit && (dot || exp);
}

/// Extracts the token adjacent to position `pos`, scanning left or right.
std::string AdjacentToken(const std::string& text, std::size_t pos,
                          bool left) {
  std::string tok;
  if (left) {
    std::size_t i = pos;
    while (i > 0) {
      const char c = text[i - 1];
      if (c == ' ' && tok.empty()) {
        --i;
        continue;
      }
      if (IsIdentChar(c) || c == '.' || c == '+' || c == '-') {
        tok.insert(tok.begin(), c);
        --i;
      } else {
        break;
      }
    }
  } else {
    std::size_t i = pos;
    while (i < text.size()) {
      const char c = text[i];
      if (c == ' ' && tok.empty()) {
        ++i;
        continue;
      }
      if (IsIdentChar(c) || c == '.' || c == '+' || c == '-') {
        tok += c;
        ++i;
      } else {
        break;
      }
    }
  }
  // Strip a leading sign.
  if (!tok.empty() && (tok[0] == '+' || tok[0] == '-')) tok.erase(0, 1);
  return tok;
}

void RuleFloatEquals(const std::string& path, CleanSource& src,
                     std::vector<Finding>* findings) {
  const std::string& t = src.text;
  for (std::size_t pos = 0; pos + 1 < t.size(); ++pos) {
    if (t[pos + 1] != '=') continue;
    if (t[pos] != '=' && t[pos] != '!') continue;
    // Exclude <=, >=, ==>, = =, === and compound contexts: require the
    // char before to not be another comparison/assignment char.
    if (pos > 0 && (t[pos - 1] == '<' || t[pos - 1] == '>' ||
                    t[pos - 1] == '=' || t[pos - 1] == '!'))
      continue;
    if (pos + 2 < t.size() && t[pos + 2] == '=') continue;
    const std::string lhs = AdjacentToken(t, pos, /*left=*/true);
    const std::string rhs = AdjacentToken(t, pos + 2, /*left=*/false);
    if (!LooksLikeFloatLiteral(lhs) && !LooksLikeFloatLiteral(rhs)) continue;
    const std::size_t line_no = LineOf(t, pos);
    if (Allowed(src, line_no, "float-equals")) continue;
    findings->push_back({path, line_no + 1, "float-equals",
                         "exact comparison with a floating-point literal; "
                         "compare against a tolerance"});
  }
}

void RuleIoInLibrary(const std::string& path, CleanSource& src,
                     std::vector<Finding>* findings) {
  const std::string& t = src.text;
  static const std::string_view kPatterns[] = {"printf", "fprintf",
                                               "std::cout", "std::cerr"};
  for (const std::string_view pat : kPatterns) {
    for (std::size_t pos = t.find(pat); pos != std::string::npos;
         pos = t.find(pat, pos + 1)) {
      if (IsIdentChar(t[pos > 0 ? pos - 1 : 0]) && pos > 0) continue;
      const std::size_t end = pos + pat.size();
      if (end < t.size() && IsIdentChar(t[end])) continue;
      const std::size_t line_no = LineOf(t, pos);
      if (Allowed(src, line_no, "io-in-library")) continue;
      findings->push_back({path, line_no + 1, "io-in-library",
                           "library code must not print; return data or "
                           "use telemetry"});
    }
  }
}

/// Flags raw stream handles in the two structured-reporting layers.
/// src/runtime, src/telemetry, src/net and src/service own the
/// observability and service planes (event bus, metrics, heartbeat,
/// the serve daemon); anything they report must flow through it
/// -- a stray fprintf(stderr, ...) is unaccounted, unparseable, and
/// interleaves with the `\r`-rewritten --progress line. Streams handed
/// in by the caller (std::ostream* parameters) are fine; the rule only
/// matches the global handles.
void RuleRawStderr(const std::string& path, CleanSource& src,
                   std::vector<Finding>* findings) {
  const bool scoped = path.find("/runtime/") != std::string::npos ||
                      path.rfind("runtime/", 0) == 0 ||
                      path.find("/telemetry/") != std::string::npos ||
                      path.rfind("telemetry/", 0) == 0 ||
                      path.find("/net/") != std::string::npos ||
                      path.rfind("net/", 0) == 0 ||
                      path.find("/service/") != std::string::npos ||
                      path.rfind("service/", 0) == 0;
  if (!scoped) return;
  const std::string& t = src.text;
  static const std::string_view kHandles[] = {"stderr", "stdout", "std::clog",
                                              "perror"};
  for (const std::string_view pat : kHandles) {
    for (std::size_t pos = t.find(pat); pos != std::string::npos;
         pos = t.find(pat, pos + 1)) {
      if (pos > 0 && (IsIdentChar(t[pos - 1]) || t[pos - 1] == ':')) continue;
      const std::size_t end = pos + pat.size();
      if (end < t.size() && (IsIdentChar(t[end]) || t[end] == ':')) continue;
      const std::size_t line_no = LineOf(t, pos);
      if (Allowed(src, line_no, "raw-stderr")) continue;
      findings->push_back(
          {path, line_no + 1, "raw-stderr",
           std::string(pat) +
               " in a structured-reporting layer; emit through the event "
               "bus / telemetry, or take a std::ostream* from the caller"});
    }
  }
}

void RuleNakedNew(const std::string& path, CleanSource& src,
                  std::vector<Finding>* findings) {
  const std::string& t = src.text;
  for (const std::string_view word : {"new", "delete"}) {
    for (std::size_t pos = t.find(word); pos != std::string::npos;
         pos = t.find(word, pos + 1)) {
      if (!MatchWord(t, pos, word)) continue;
      if (OnPreprocessorLine(t, pos)) continue;  // #include <new>
      // `= delete` declarations are not expressions -- but the same
      // cannot be said of `= new`, which is exactly the assignment
      // form the rule exists to catch.
      if (word == "delete") {
        std::size_t before = pos;
        while (before > 0 && t[before - 1] == ' ') --before;
        if (before > 0 && t[before - 1] == '=') continue;
      }
      const std::size_t line_no = LineOf(t, pos);
      if (Allowed(src, line_no, "naked-new")) continue;
      findings->push_back(
          {path, line_no + 1, "naked-new",
           std::string("naked `") + std::string(word) +
               "`; use std::make_unique / RAII ownership"});
    }
  }
}

/// Finds constructor definitions `Class::Class(...)` whose parameter
/// list mentions `double` and whose body (up to the matching brace)
/// contains no contract check.
void RuleMissingContract(const std::string& path, CleanSource& src,
                         std::vector<Finding>* findings) {
  if (path.size() < 4 || path.compare(path.size() - 4, 4, ".cpp") != 0)
    return;
  const std::string& t = src.text;
  for (std::size_t pos = t.find("::"); pos != std::string::npos;
       pos = t.find("::", pos + 2)) {
    // Name before :: and after :: must match -> constructor.
    std::size_t ls = pos;
    while (ls > 0 && IsIdentChar(t[ls - 1])) --ls;
    const std::string name = t.substr(ls, pos - ls);
    if (name.empty()) continue;
    const std::size_t after = pos + 2;
    if (t.compare(after, name.size(), name) != 0) continue;
    std::size_t paren = after + name.size();
    while (paren < t.size() && t[paren] == ' ') ++paren;
    if (paren >= t.size() || t[paren] != '(') continue;
    // Capture the parameter list.
    int depth = 1;
    std::size_t i = paren + 1;
    const std::size_t params_begin = i;
    while (i < t.size() && depth > 0) {
      if (t[i] == '(') ++depth;
      if (t[i] == ')') --depth;
      ++i;
    }
    if (depth != 0) continue;
    const std::string params = t.substr(params_begin, i - 1 - params_begin);
    if (params.find("double") == std::string::npos) continue;
    // Find the body start `{` (skip over the init list), then the body.
    std::size_t body = i;
    while (body < t.size() && t[body] != '{' && t[body] != ';') ++body;
    if (body >= t.size() || t[body] == ';') continue;  // declaration
    depth = 1;
    std::size_t j = body + 1;
    while (j < t.size() && depth > 0) {
      if (t[j] == '{') ++depth;
      if (t[j] == '}') --depth;
      ++j;
    }
    // A constructor taking physical quantities must validate: either
    // directly (contract macro / throw) or by delegating (Validate,
    // or construction of members that check -- init list counts).
    const std::string whole = t.substr(ls, j - ls);
    if (whole.find("DS_REQUIRE") != std::string::npos ||
        whole.find("DS_ENSURE") != std::string::npos ||
        whole.find("DS_INVARIANT") != std::string::npos ||
        whole.find("throw ") != std::string::npos ||
        whole.find("Validate") != std::string::npos ||
        whole.find("CheckInvariants") != std::string::npos)
      continue;
    const std::size_t line_no = LineOf(t, ls);
    if (Allowed(src, line_no, "missing-contract")) continue;
    findings->push_back(
        {path, line_no + 1, "missing-contract",
         name + "::" + name +
             " takes double (physical quantity) parameters but neither "
             "checks a DS_* contract nor throws nor calls Validate()"});
  }
}

/// Finds `static` declarations at function scope whose declaration
/// carries neither constness nor its own synchronization. Scope is
/// tracked with a brace stack: a `{` after `)` or `]` opens a function
/// (or lambda) body, `namespace`/`class`/`struct`/`enum`/`union` open
/// non-function scopes, and control-flow/initializer braces inherit
/// the enclosing scope -- so macro bodies at namespace scope (the
/// DS_TELEM_* do-while idiom) do not fire.
void RuleStaticMutable(const std::string& path, CleanSource& src,
                       std::vector<Finding>* findings) {
  enum class Scope { kNamespace, kType, kFunction };
  const std::string& t = src.text;
  std::vector<Scope> stack;  // file scope (empty stack) == kNamespace

  auto effective = [&]() {
    return stack.empty() ? Scope::kNamespace : stack.back();
  };
  auto head_has = [&](std::string_view head, std::string_view word) {
    for (std::size_t p = head.find(word); p != std::string_view::npos;
         p = head.find(word, p + 1)) {
      const bool left_ok = p == 0 || !IsIdentChar(head[p - 1]);
      const std::size_t end = p + word.size();
      const bool right_ok = end >= head.size() || !IsIdentChar(head[end]);
      if (left_ok && right_ok) return true;
    }
    return false;
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    const char c = t[i];
    if (c == '}') {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    if (c == '{') {
      // The introducer: everything since the last ; { or }.
      std::size_t start = i;
      while (start > 0 && t[start - 1] != ';' && t[start - 1] != '{' &&
             t[start - 1] != '}')
        --start;
      const std::string_view head(&t[start], i - start);
      std::size_t last = head.size();
      while (last > 0 && std::isspace(static_cast<unsigned char>(
                             head[last - 1])) != 0)
        --last;
      const char prev = last > 0 ? head[last - 1] : '\0';
      Scope opened;
      if (head_has(head, "namespace")) {
        opened = Scope::kNamespace;
      } else if (head_has(head, "class") || head_has(head, "struct") ||
                 head_has(head, "union") || head_has(head, "enum")) {
        opened = Scope::kType;
      } else if (head_has(head, "if") || head_has(head, "for") ||
                 head_has(head, "while") || head_has(head, "switch") ||
                 head_has(head, "catch") || head_has(head, "do") ||
                 head_has(head, "else") || head_has(head, "try")) {
        opened = effective();  // control block: same scope kind
      } else if (prev == ')' || prev == ']') {
        opened = Scope::kFunction;  // function, ctor, or lambda body
      } else {
        opened = effective();  // initializer list, requires, etc.
      }
      stack.push_back(opened);
      continue;
    }
    if (c != 's' || !MatchWord(t, i, "static")) continue;
    if (effective() != Scope::kFunction) continue;
    // The declaration: `static` up to the terminating ';'. The part
    // before any '=' is the declarator (where a '&' means reference).
    const std::size_t semi = t.find(';', i);
    if (semi == std::string::npos) continue;
    const std::string_view decl(&t[i], semi - i);
    const std::size_t eq = decl.find('=');
    const std::string_view declarator =
        decl.substr(0, eq == std::string_view::npos ? decl.size() : eq);
    if (head_has(declarator, "const") || head_has(declarator, "constexpr") ||
        head_has(declarator, "thread_local") ||
        head_has(declarator, "atomic") || head_has(declarator, "mutex") ||
        head_has(declarator, "once_flag") ||
        declarator.find('&') != std::string_view::npos)
      continue;
    const std::size_t line_no = LineOf(t, i);
    if (Allowed(src, line_no, "static-mutable")) continue;
    findings->push_back(
        {path, line_no + 1, "static-mutable",
         "mutable function-local static; hidden shared state breaks "
         "parallel-sweep determinism -- make it const, synchronize it, or "
         "pass state explicitly"});
  }
}

/// Flags `catch` handlers under src/runtime/, src/net/ and
/// src/service/ that swallow the failure:
/// the handler body contains no rethrow, no telemetry, no Record/log
/// call and no assignment into an error field. The runtime layer is
/// the failure-classification boundary (retry vs quarantine vs abort);
/// an exception that dies silently there breaks the "every failure is
/// surfaced" contract the journal and ResultSink depend on.
void RuleSwallowedCatch(const std::string& path, CleanSource& src,
                        std::vector<Finding>* findings) {
  if (path.find("/runtime/") == std::string::npos &&
      path.rfind("runtime/", 0) != 0 &&
      path.find("/net/") == std::string::npos &&
      path.rfind("net/", 0) != 0 &&
      path.find("/service/") == std::string::npos &&
      path.rfind("service/", 0) != 0)
    return;
  const std::string& t = src.text;
  for (std::size_t pos = t.find("catch"); pos != std::string::npos;
       pos = t.find("catch", pos + 1)) {
    if (!MatchWord(t, pos, "catch")) continue;
    // Skip the exception-declaration parens.
    std::size_t i = pos + 5;
    while (i < t.size() &&
           std::isspace(static_cast<unsigned char>(t[i])) != 0)
      ++i;
    if (i >= t.size() || t[i] != '(') continue;
    int depth = 1;
    ++i;
    while (i < t.size() && depth > 0) {
      if (t[i] == '(') ++depth;
      if (t[i] == ')') --depth;
      ++i;
    }
    while (i < t.size() &&
           std::isspace(static_cast<unsigned char>(t[i])) != 0)
      ++i;
    if (i >= t.size() || t[i] != '{') continue;
    // Capture the handler body up to the matching brace.
    depth = 1;
    const std::size_t body_begin = ++i;
    while (i < t.size() && depth > 0) {
      if (t[i] == '{') ++depth;
      if (t[i] == '}') --depth;
      ++i;
    }
    const std::string_view body(&t[body_begin], i - 1 - body_begin);
    auto has = [&](std::string_view w) {
      return body.find(w) != std::string_view::npos;
    };
    // Any of these marks the failure as handled: rethrown, counted,
    // recorded into a sink/journal, or stored in an error field.
    if (has("throw") || has("DS_TELEM") || has("Record") || has("error") ||
        has("Error") || has("log") || has("Log"))
      continue;
    const std::size_t line_no = LineOf(t, pos);
    if (Allowed(src, line_no, "swallowed-catch")) continue;
    findings->push_back(
        {path, line_no + 1, "swallowed-catch",
         "catch handler in the sweep runtime swallows the exception; "
         "rethrow, record it (telemetry / journal / sink), or store it "
         "in an error field"});
  }
}

/// Flags owning std::vector / util::Matrix declarations inside loop
/// bodies under src/thermal/ and src/runtime/ -- the stepping kernels
/// and the batch gather/scatter loops that feed them (cohort panel
/// staging in the sweep engine and scenario runners must hoist their
/// buffers). Loop scopes are tracked with the same brace-stack
/// technique as RuleStaticMutable: a `{` whose introducer contains
/// `for`, `while` or `do` opens a loop scope; inner braces inherit it.
/// References (`&` declarators) and uses of an existing object (member
/// access, calls) never match -- only a declaration
/// `std::vector<...> name ...` / `Matrix name(...)` that constructs a
/// fresh buffer each iteration.
void RuleAllocInLoop(const std::string& path, CleanSource& src,
                     std::vector<Finding>* findings) {
  const bool thermal = path.find("/thermal/") != std::string::npos ||
                       path.rfind("thermal/", 0) == 0;
  const bool runtime = path.find("/runtime/") != std::string::npos ||
                       path.rfind("runtime/", 0) == 0;
  if (!thermal && !runtime) return;
  const std::string& t = src.text;

  auto head_has = [&](std::string_view head, std::string_view word) {
    for (std::size_t p = head.find(word); p != std::string_view::npos;
         p = head.find(word, p + 1)) {
      const bool left_ok = p == 0 || !IsIdentChar(head[p - 1]);
      const std::size_t end = p + word.size();
      const bool right_ok = end >= head.size() || !IsIdentChar(head[end]);
      if (left_ok && right_ok) return true;
    }
    return false;
  };

  // depth of loop nesting per brace level; loop_depth > 0 == in a loop.
  std::vector<bool> stack;  // true: this brace level is a loop body
  std::size_t loop_depth = 0;

  auto flag = [&](std::size_t pos, std::string_view what) {
    const std::size_t line_no = LineOf(t, pos);
    if (Allowed(src, line_no, "alloc-in-loop")) return;
    findings->push_back(
        {path, line_no + 1, "alloc-in-loop",
         std::string(what) +
             " constructed inside a loop body; per-iteration heap "
             "allocation in the thermal hot path -- hoist or reuse a "
             "scratch buffer"});
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    const char c = t[i];
    if (c == '}') {
      if (!stack.empty()) {
        if (stack.back()) --loop_depth;
        stack.pop_back();
      }
      continue;
    }
    if (c == '{') {
      // Introducer: back to the last top-level ; { or }. Unlike the
      // static-mutable scan, semicolons inside parentheses must not
      // terminate, or `for (a; b; c)` loses its `for`.
      std::size_t start = i;
      int parens = 0;
      while (start > 0) {
        const char p = t[start - 1];
        if (p == ')') ++parens;
        if (p == '(' && parens > 0) --parens;
        if (parens == 0 && (p == ';' || p == '{' || p == '}')) break;
        --start;
      }
      const std::string_view head(&t[start], i - start);
      const bool is_loop = head_has(head, "for") || head_has(head, "while") ||
                           head_has(head, "do");
      stack.push_back(is_loop);
      if (is_loop) ++loop_depth;
      continue;
    }
    if (loop_depth == 0) continue;

    // A declaration `std::vector<...> name` (not a reference binding).
    if (c == 's' && MatchWord(t, i, "std") &&
        t.compare(i, 12, "std::vector<") == 0) {
      std::size_t j = i + 12;
      int angle = 1;
      while (j < t.size() && angle > 0) {
        if (t[j] == '<') ++angle;
        if (t[j] == '>') --angle;
        ++j;
      }
      while (j < t.size() && t[j] == ' ') ++j;
      if (j < t.size() && IsIdentChar(t[j])) flag(i, "std::vector");
      i = j;
      continue;
    }
    // A declaration `Matrix name(...)` / `util::Matrix name(...)`.
    if (c == 'M' && MatchWord(t, i, "Matrix")) {
      std::size_t j = i + 6;
      while (j < t.size() && t[j] == ' ') ++j;
      if (j < t.size() && IsIdentChar(t[j])) flag(i, "util::Matrix");
      i = j;
      continue;
    }
  }
}

// --------------------------------------------------- concurrency rules
//
// These need the whole file set before they can run: hierarchy levels
// come from `constexpr int kName = N;` wherever it appears, mutex
// declarations usually live in a header while the acquisitions live in
// the matching .cpp, and a std::thread member declared in a header is
// joined in its implementation file. Mutex and join lookups therefore
// resolve within a file *stem* (event_bus.hpp + event_bus.cpp share
// "event_bus").

/// One annotated-mutex declaration `Mutex name{...::kLevel};`.
struct MutexDecl {
  std::string var;
  int level = kUnknownLevel;

  static constexpr int kUnknownLevel = -1;
  static constexpr int kAmbiguous = -2;  // same name, conflicting levels
};

/// Collects `constexpr int kName = N;` hierarchy levels. First
/// declaration wins; the linted tree declares each level exactly once
/// (util/lock_levels.hpp) and fixtures self-declare their own.
void CollectLevels(const CleanSource& src, std::map<std::string, int>* out) {
  const std::string& t = src.text;
  for (std::size_t pos = t.find("constexpr"); pos != std::string::npos;
       pos = t.find("constexpr", pos + 9)) {
    if (!MatchWord(t, pos, "constexpr")) continue;
    std::size_t i = pos + 9;
    auto skip_ws = [&]() {
      while (i < t.size() &&
             std::isspace(static_cast<unsigned char>(t[i])) != 0)
        ++i;
    };
    skip_ws();
    if (!MatchWord(t, i, "int")) continue;
    i += 3;
    skip_ws();
    const std::size_t name_begin = i;
    while (i < t.size() && IsIdentChar(t[i])) ++i;
    if (i == name_begin) continue;
    const std::string name = t.substr(name_begin, i - name_begin);
    skip_ws();
    if (i >= t.size() || t[i] != '=') continue;
    ++i;
    skip_ws();
    bool negative = false;
    if (i < t.size() && t[i] == '-') {
      negative = true;
      ++i;
    }
    const std::size_t digits_begin = i;
    int value = 0;
    while (i < t.size() && std::isdigit(static_cast<unsigned char>(t[i]))) {
      value = value * 10 + (t[i] - '0');
      ++i;
    }
    if (i == digits_begin) continue;
    skip_ws();
    if (i >= t.size() || t[i] != ';') continue;
    out->emplace(name, negative ? -value : value);
  }
}

/// Reads the `kLevelName` identifier out of a mutex brace initializer
/// like `{locks::kJournal}`.
std::string LevelNameIn(std::string_view init) {
  for (std::size_t i = 0; i < init.size(); ++i) {
    if (init[i] != 'k') continue;
    if (i > 0 && IsIdentChar(init[i - 1])) continue;
    if (i + 1 >= init.size() ||
        std::isupper(static_cast<unsigned char>(init[i + 1])) == 0)
      continue;
    std::size_t end = i + 1;
    while (end < init.size() && IsIdentChar(init[end])) ++end;
    return std::string(init.substr(i, end - i));
  }
  return {};
}

/// Collects `Mutex name{...};` declarations (ds::Mutex included; the
/// keyword match is on the unqualified word). Declarations without a
/// recognizable level stay at kUnknownLevel -- they cannot be checked,
/// but they do not poison names that are declared with one.
void CollectMutexDecls(const CleanSource& src,
                       const std::map<std::string, int>& levels,
                       std::map<std::string, int>* out) {
  const std::string& t = src.text;
  for (std::size_t pos = t.find("Mutex"); pos != std::string::npos;
       pos = t.find("Mutex", pos + 5)) {
    if (!MatchWord(t, pos, "Mutex")) continue;
    std::size_t i = pos + 5;
    while (i < t.size() &&
           std::isspace(static_cast<unsigned char>(t[i])) != 0)
      ++i;
    if (i >= t.size() || !IsIdentChar(t[i]) ||
        std::isdigit(static_cast<unsigned char>(t[i])) != 0)
      continue;  // class definition, param, constructor -- not a decl
    const std::size_t var_begin = i;
    while (i < t.size() && IsIdentChar(t[i])) ++i;
    const std::string var = t.substr(var_begin, i - var_begin);
    while (i < t.size() &&
           std::isspace(static_cast<unsigned char>(t[i])) != 0)
      ++i;
    int level = MutexDecl::kUnknownLevel;
    if (i < t.size() && t[i] == '{') {
      int depth = 1;
      const std::size_t init_begin = ++i;
      while (i < t.size() && depth > 0) {
        if (t[i] == '{') ++depth;
        if (t[i] == '}') --depth;
        ++i;
      }
      const std::string name = LevelNameIn(
          std::string_view(&t[init_begin], i - 1 - init_begin));
      const auto it = levels.find(name);
      if (it != levels.end()) level = it->second;
    }
    if (level == MutexDecl::kUnknownLevel) continue;
    const auto [it, inserted] = out->emplace(var, level);
    if (!inserted && it->second != level) it->second = MutexDecl::kAmbiguous;
  }
}

/// The identifier a MutexLock argument resolves to: the trailing
/// identifier of the expression (`mu_`, `reg.mu` -> `mu`,
/// `entry->tsp_mu` -> `tsp_mu`).
std::string TrailingIdent(std::string_view expr) {
  std::size_t end = expr.size();
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(expr[end - 1])) != 0)
    --end;
  std::size_t begin = end;
  while (begin > 0 && IsIdentChar(expr[begin - 1])) --begin;
  return std::string(expr.substr(begin, end - begin));
}

/// Checks every `MutexLock guard(expr);` acquisition against the locks
/// still held in the enclosing brace scopes: each new level must be
/// strictly below every held level (util/lock_levels.hpp). Scoped
/// locks release at the closing brace of the block that declared them,
/// which a brace stack models exactly.
void RuleLockOrder(const std::string& path, CleanSource& src,
                   const std::map<std::string, int>& mutexes,
                   std::vector<Finding>* findings) {
  const std::string& t = src.text;
  struct Held {
    std::string var;
    int level;
    int depth;
  };
  std::vector<Held> held;
  int depth = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const char c = t[i];
    if (c == '{') {
      ++depth;
      continue;
    }
    if (c == '}') {
      --depth;
      while (!held.empty() && held.back().depth > depth) held.pop_back();
      continue;
    }
    if (c != 'M' || !MatchWord(t, i, "MutexLock")) continue;
    std::size_t j = i + 9;
    while (j < t.size() &&
           std::isspace(static_cast<unsigned char>(t[j])) != 0)
      ++j;
    // Require `MutexLock <guard-name> (` -- the class definition,
    // constructor and `MutexLock&` parameters all fail this shape.
    if (j >= t.size() || !IsIdentChar(t[j])) continue;
    while (j < t.size() && IsIdentChar(t[j])) ++j;
    while (j < t.size() &&
           std::isspace(static_cast<unsigned char>(t[j])) != 0)
      ++j;
    if (j >= t.size() || t[j] != '(') continue;
    int parens = 1;
    const std::size_t expr_begin = ++j;
    while (j < t.size() && parens > 0) {
      if (t[j] == '(') ++parens;
      if (t[j] == ')') --parens;
      ++j;
    }
    const std::string var =
        TrailingIdent(std::string_view(&t[expr_begin], j - 1 - expr_begin));
    const auto it = mutexes.find(var);
    i = j - 1;
    if (it == mutexes.end() || it->second == MutexDecl::kAmbiguous) continue;
    const int level = it->second;
    const std::size_t line_no = LineOf(t, expr_begin);
    for (const Held& h : held) {
      if (level < h.level) continue;
      if (Allowed(src, line_no, "lock-order")) break;
      std::ostringstream msg;
      msg << "acquiring '" << var << "' (level " << level
          << ") while holding '" << h.var << "' (level " << h.level
          << "); the lock hierarchy (util/lock_levels.hpp) requires "
             "strictly descending levels";
      findings->push_back({path, line_no + 1, "lock-order", msg.str()});
      break;
    }
    held.push_back({var, level, depth});
  }
}

/// Flags raw standard-library synchronization declarations. Library
/// code declares ds::Mutex / ds::CondVar so the Clang thread-safety
/// analysis (and the lock-order rule above) can see every acquisition;
/// the only raw declarations live inside the wrappers themselves,
/// explicitly suppressed.
void RuleUnannotatedMutex(const std::string& path, CleanSource& src,
                          std::vector<Finding>* findings) {
  const std::string& t = src.text;
  static const std::string_view kTypes[] = {
      "std::mutex",        "std::timed_mutex",
      "std::recursive_mutex", "std::recursive_timed_mutex",
      "std::shared_mutex", "std::shared_timed_mutex",
      "std::condition_variable", "std::condition_variable_any"};
  for (const std::string_view type : kTypes) {
    for (std::size_t pos = t.find(type); pos != std::string::npos;
         pos = t.find(type, pos + 1)) {
      if (!MatchWord(t, pos, type)) continue;
      std::size_t i = pos + type.size();
      while (i < t.size() &&
             std::isspace(static_cast<unsigned char>(t[i])) != 0)
        ++i;
      // Only a declaration `std::mutex name` counts; template
      // arguments (`std::unique_lock<std::mutex>`), references and
      // qualified uses all continue with punctuation.
      if (i >= t.size() || !IsIdentChar(t[i]) ||
          std::isdigit(static_cast<unsigned char>(t[i])) != 0)
        continue;
      const std::size_t line_no = LineOf(t, pos);
      if (Allowed(src, line_no, "unannotated-mutex")) continue;
      findings->push_back(
          {path, line_no + 1, "unannotated-mutex",
           std::string("raw `") + std::string(type) +
               "` declaration; use ds::Mutex / ds::CondVar "
               "(util/thread_annotations.hpp) so -Wthread-safety and the "
               "lock-order lint can see it"});
    }
  }
}

/// Flags named std::thread declarations whose file stem never joins,
/// and every .detach() call. A thread that outlives its owner tears
/// the shutdown order the annotations document (stop flag under the
/// kShutdown mutex, then join, then close fds).
void RuleUnjoinedThread(const std::string& path, CleanSource& src,
                        bool stem_joins, std::vector<Finding>* findings) {
  const std::string& t = src.text;
  for (std::size_t pos = t.find("std::thread"); pos != std::string::npos;
       pos = t.find("std::thread", pos + 1)) {
    if (!MatchWord(t, pos, "std::thread")) continue;
    std::size_t i = pos + 11;
    while (i < t.size() &&
           std::isspace(static_cast<unsigned char>(t[i])) != 0)
      ++i;
    // Declarations only: `std::thread name`. Temporaries
    // (`std::thread(...)`), references, vector elements and
    // `std::thread::hardware_concurrency()` continue with punctuation.
    if (i >= t.size() || !IsIdentChar(t[i]) ||
        std::isdigit(static_cast<unsigned char>(t[i])) != 0)
      continue;
    if (stem_joins) continue;
    const std::size_t line_no = LineOf(t, pos);
    if (Allowed(src, line_no, "unjoined-thread")) continue;
    findings->push_back(
        {path, line_no + 1, "unjoined-thread",
         "std::thread declared but this file stem never calls .join(); "
         "join it in the owner's shutdown path"});
  }
  for (const std::string_view pat : {".detach(", "->detach("}) {
    for (std::size_t pos = t.find(pat); pos != std::string::npos;
         pos = t.find(pat, pos + 1)) {
      const std::size_t line_no = LineOf(t, pos);
      if (Allowed(src, line_no, "unjoined-thread")) continue;
      findings->push_back(
          {path, line_no + 1, "unjoined-thread",
           "detached thread; nothing can join it, so it races the "
           "process shutdown order -- keep the handle and join"});
    }
  }
}

/// Every suppression must pay its way: a `// ds_lint: allow(<rule>)`
/// that no finding consumed is stale and hides the next real finding
/// on that line. Deliberately not suppressible -- the fix is deletion.
void RuleUnusedSuppression(const std::string& path, const CleanSource& src,
                           std::vector<Finding>* findings) {
  for (const Suppression& s : src.suppressions) {
    if (s.used) continue;
    findings->push_back(
        {path, s.line + 1, "unused-suppression",
         "suppression `allow(" + s.rule +
             ")` matches no finding; delete the stale comment"});
  }
}

// ------------------------------------------------------------- driver

struct FileUnit {
  std::string path;  // generic (forward-slash) path, as reported
  std::string stem;  // filename without extension, for sibling lookup
  CleanSource src;
};

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"bare-assert",
       "assert() compiles out under NDEBUG; use the DS_* contract macros"},
      {"float-equals",
       "exact ==/!= against a floating-point literal; compare against a "
       "tolerance"},
      {"io-in-library",
       "library code must not print; return data or use telemetry"},
      {"raw-stderr",
       "raw stream handle in a structured-reporting layer (src/runtime, "
       "src/telemetry)"},
      {"naked-new", "naked new/delete; use std::make_unique / RAII"},
      {"missing-contract",
       "constructor takes double (physical quantity) parameters without a "
       "DS_* contract check"},
      {"static-mutable",
       "mutable function-local static; hidden shared state breaks "
       "parallel-sweep determinism"},
      {"swallowed-catch",
       "catch handler in the sweep runtime drops the failure unrecorded"},
      {"alloc-in-loop",
       "per-iteration heap allocation in the thermal / batch-stepping "
       "hot path"},
      {"lock-order",
       "mutex acquisition violates the declared lock hierarchy "
       "(util/lock_levels.hpp): levels must strictly descend"},
      {"unannotated-mutex",
       "raw std::mutex / std::shared_mutex / std::condition_variable; use "
       "ds::Mutex / ds::CondVar (util/thread_annotations.hpp)"},
      {"unjoined-thread",
       "std::thread never joined in its file stem, or detached outright"},
      {"unused-suppression",
       "a ds_lint: allow(...) comment that no finding consumed; delete it"},
      {"io-error", "a file passed to the linter could not be read"},
  };
  return kRules;
}

LintResult LintPaths(const std::vector<std::string>& paths) {
  std::vector<fs::path> files;
  for (const std::string& arg : paths) {
    const fs::path root(arg);
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      std::vector<fs::path> dir_files;
      for (const auto& entry : fs::recursive_directory_iterator(root, ec)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path()))
          dir_files.push_back(entry.path());
      }
      std::sort(dir_files.begin(), dir_files.end());
      files.insert(files.end(), dir_files.begin(), dir_files.end());
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      throw std::runtime_error("no such file or directory: " + arg);
    }
  }

  LintResult result;
  std::vector<FileUnit> units;
  units.reserve(files.size());
  for (const fs::path& path : files) {
    ++result.files;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      result.findings.push_back(
          {path.generic_string(), 0, "io-error", "cannot read file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    units.push_back(
        {path.generic_string(), path.stem().string(), Blank(buf.str())});
  }

  for (FileUnit& u : units) {
    RuleBareAssert(u.path, u.src, &result.findings);
    RuleFloatEquals(u.path, u.src, &result.findings);
    RuleIoInLibrary(u.path, u.src, &result.findings);
    RuleRawStderr(u.path, u.src, &result.findings);
    RuleNakedNew(u.path, u.src, &result.findings);
    RuleMissingContract(u.path, u.src, &result.findings);
    RuleStaticMutable(u.path, u.src, &result.findings);
    RuleSwallowedCatch(u.path, u.src, &result.findings);
    RuleAllocInLoop(u.path, u.src, &result.findings);
  }

  // The concurrency pass: gather levels, per-stem mutex declarations
  // and per-stem join evidence across the whole set, then check each
  // file against its stem's declarations.
  std::map<std::string, int> levels;
  for (const FileUnit& u : units) CollectLevels(u.src, &levels);
  std::map<std::string, std::map<std::string, int>> decls_by_stem;
  std::set<std::string> join_stems;
  for (const FileUnit& u : units) {
    CollectMutexDecls(u.src, levels, &decls_by_stem[u.stem]);
    if (u.src.text.find(".join(") != std::string::npos ||
        u.src.text.find("->join(") != std::string::npos)
      join_stems.insert(u.stem);
  }
  for (FileUnit& u : units) {
    RuleLockOrder(u.path, u.src, decls_by_stem[u.stem], &result.findings);
    RuleUnannotatedMutex(u.path, u.src, &result.findings);
    RuleUnjoinedThread(u.path, u.src, join_stems.count(u.stem) != 0,
                       &result.findings);
  }

  // Last: anything still unconsumed is a stale suppression.
  for (const FileUnit& u : units)
    RuleUnusedSuppression(u.path, u.src, &result.findings);

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return result;
}

std::string ToSarif(const LintResult& result) {
  const std::vector<RuleInfo>& rules = Rules();
  std::map<std::string_view, std::size_t> rule_index;
  for (std::size_t i = 0; i < rules.size(); ++i)
    rule_index.emplace(rules[i].id, i);

  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"ds_lint\",\n"
      << "          \"rules\": [\n";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << "            {\"id\": \"" << rules[i].id
        << "\", \"shortDescription\": {\"text\": \""
        << JsonEscape(rules[i].summary) << "\"}}"
        << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    out << "        {\"ruleId\": \"" << JsonEscape(f.rule) << "\"";
    const auto it = rule_index.find(f.rule);
    if (it != rule_index.end()) out << ", \"ruleIndex\": " << it->second;
    out << ", \"level\": \"error\", \"message\": {\"text\": \""
        << JsonEscape(f.message)
        << "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << JsonEscape(f.file) << "\"}, \"region\": {\"startLine\": "
        << (f.line == 0 ? 1 : f.line) << "}}}]}"
        << (i + 1 < result.findings.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace ds::lint
