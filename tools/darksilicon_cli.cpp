// darksilicon -- command-line driver for the library.
//
// Subcommands:
//   info                               platforms, applications, ladders
//   tsp <node> [--count m] [--mapping worst|spread]
//   estimate <node> <app> [--tdp W] [--thermal] [--threads n] [--freq f]
//            [--mapping contiguous|spread|checkerboard|densest]
//   map <node> --count m [--policy ...]   ASCII view of a core selection
//   boost <node> <app> --instances k [--cap W]
//   ntc <node> <app> [--instances k]
//   characterize [app]                 first-principles Eq.(1) constants
//   sim <node> [--duration s] [--rate r] [--seed n] [--fault-* ...]
//                                      closed-loop co-sim, fault injection
//   sweep <spec.json> [--threads n] [--out csv] [--json path]
//         [--checkpoint path] [--resume]
//                                      parallel scenario sweep
//   serve [--port p] [--max-clients n] [--queue-depth n]
//         [--journal-dir d]            persistent multi-tenant daemon
//   submit <spec.json> --port p        submit to a daemon + stream rows
//
// Nodes: 16nm | 11nm | 8nm (paper platforms: 100/198/361 cores).
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "apps/app_profile.hpp"
#include "arch/platform.hpp"
#include "core/boosting.hpp"
#include "core/estimator.hpp"
#include "core/mapping.hpp"
#include "core/ntc.hpp"
#include "core/tsp.hpp"
#include "net/http_client.hpp"
#include "net/http_server.hpp"
#include "runtime/model_cache.hpp"
#include "runtime/result_sink.hpp"
#include "runtime/sweep_engine.hpp"
#include "runtime/sweep_spec.hpp"
#include "service/sweep_service.hpp"
#include "sim/chip_sim.hpp"
#include "telemetry/event_bus.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics_http.hpp"
#include "telemetry/run_summary.hpp"
#include "telemetry/scoped.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "thermal/thermal_map.hpp"
#include "uarch/characterize.hpp"
#include "util/args.hpp"
#include "util/contracts.hpp"
#include "util/table.hpp"

namespace {

using namespace ds;

int Usage() {
  std::cout <<
      "usage: darksilicon <command> [options]\n"
      "  info\n"
      "  tsp <node> [--count m] [--mapping worst|spread]\n"
      "  estimate <node> <app> [--tdp W] [--thermal] [--threads n]\n"
      "           [--freq f] [--mapping policy]\n"
      "  map <node> --count m [--policy policy]\n"
      "  boost <node> <app> --instances k [--cap W]\n"
      "  ntc <node> <app> [--instances k]\n"
      "  characterize [app]\n"
      "  sim <node> [--duration s] [--rate jobs/epoch] [--seed n]\n"
      "      [--threads n] [--metrics-out path] [--trace-out path]\n"
      "      [--trace-level off|decision|span|verbose]\n"
      "      [--fault-seed n] [--fault-log-csv path]\n"
      "      [--fault-sensor-dropout r] [--fault-sensor-nan r]\n"
      "      [--fault-sensor-stuck r] [--fault-sensor-drift r]\n"
      "      [--fault-sensor-noise sigma] [--fault-core-failstop r]\n"
      "      [--fault-core-transient r] [--fault-dvfs-stuck r]\n"
      "      [--fault-solver r] [--fault-max-failed-cores m]\n"
      "  sweep <spec.json> [--threads n] [--out csv] [--json path]\n"
      "      [--checkpoint path] [--resume] [--metrics-out path]\n"
      "      [--stop-after n] [--job-deadline-ms t] [--job-retries n]\n"
      "      [--retry-backoff-ms t] [--journal-sync none|batch|always]\n"
      "      [--cache-budget-mb m] [--batch-max-k k]\n"
      "      [--chaos-fail r] [--chaos-delay r] [--chaos-delay-ms t]\n"
      "      [--chaos-seed n] [--chaos-max-faulty-attempts k]\n"
      "      [--chaos-log-csv path]\n"
      "      [--events-out path] [--progress] [--heartbeat-ms t]\n"
      "      [--metrics-port p] [--summary-json path]\n"
      "      [--trace-out path] [--trace-level off|decision|span|verbose]\n"
      "  serve [--port p] [--max-clients n] [--queue-depth n]\n"
      "      [--per-client n] [--aging-ms t] [--threads n]\n"
      "      [--journal-dir d] [--cache-budget-mb m] [--max-body-kb n]\n"
      "      [--max-connections n] [--job-retries n] [--job-deadline-ms t]\n"
      "      [--journal-sync none|batch|always] [--events-out path]\n"
      "  submit <spec.json> --port p [--client name] [--out csv]\n"
      "      [--no-wait]\n"
      "nodes: 16nm 11nm 8nm; apps: x264 blackscholes bodytrack ferret\n"
      "canneal dedup swaptions; policies: contiguous spread checkerboard\n"
      "densest; fault rates are per control step (per core where\n"
      "applicable), 0 disables the class; --metrics-out / --trace-out\n"
      "enable the telemetry subsystem (--trace-out opens in Perfetto);\n"
      "chaos rates are per job attempt (transient failure / delay\n"
      "injection into the sweep executor); --events-out streams\n"
      "JSON-lines job-lifecycle events; --metrics-port serves live\n"
      "OpenMetrics on 127.0.0.1 at /metrics (+ /healthz), 0 = ephemeral;\n"
      "serve runs the persistent multi-tenant daemon (POST /v1/sweeps,\n"
      "GET /v1/sweeps/{id}/rows streams CSV byte-identical to batch\n"
      "sweep, DELETE cancels; --port 0 = ephemeral, printed on stderr);\n"
      "submit posts a spec and streams the rows until the sweep ends\n";
  return 2;
}

telemetry::TraceLevel TraceLevelByName(const std::string& name) {
  if (name == "off") return telemetry::TraceLevel::kOff;
  if (name == "decision") return telemetry::TraceLevel::kDecision;
  if (name == "span") return telemetry::TraceLevel::kSpan;
  if (name == "verbose") return telemetry::TraceLevel::kVerbose;
  throw std::invalid_argument("unknown trace level: " + name);
}

core::MappingPolicy PolicyByName(const std::string& name) {
  if (name == "contiguous") return core::MappingPolicy::kContiguous;
  if (name == "spread") return core::MappingPolicy::kSpread;
  if (name == "checkerboard") return core::MappingPolicy::kCheckerboard;
  if (name == "densest") return core::MappingPolicy::kDensest;
  throw std::invalid_argument("unknown mapping policy: " + name);
}

int CmdInfo() {
  util::Table t({"node", "cores", "die [mm]", "V_nom [V]", "f_nom [GHz]",
                 "core area [mm2]"});
  for (const power::TechNode node :
       {power::TechNode::N16, power::TechNode::N11, power::TechNode::N8}) {
    const arch::Platform plat = arch::Platform::PaperPlatform(node);
    t.Row()
        .Cell(plat.tech().name)
        .Cell(plat.num_cores())
        .Cell(util::FormatFixed(plat.floorplan().die_width_mm(), 1) + " x " +
              util::FormatFixed(plat.floorplan().die_height_mm(), 1))
        .Cell(plat.tech().nominal_vdd, 3)
        .Cell(plat.tech().nominal_freq, 1)
        .Cell(plat.tech().core_area_mm2, 2);
  }
  t.Print(std::cout);

  util::Table a({"app", "Ceff22 [nF]", "Pind22 [W]", "serial frac", "IPC",
                 "speedup(8)"});
  for (const apps::AppProfile& app : apps::ParsecSuite()) {
    a.Row()
        .Cell(app.name)
        .Cell(app.ceff22_nf, 2)
        .Cell(app.pind22, 2)
        .Cell(app.serial_fraction, 2)
        .Cell(app.ipc, 2)
        .Cell(app.Speedup(8), 2);
  }
  std::cout << "\n";
  a.Print(std::cout);
  return 0;
}

int CmdTsp(const util::ArgParser& args) {
  if (args.positionals().size() < 2) return Usage();
  const arch::Platform plat = arch::Platform::PaperPlatform(
      power::TechByName(args.positionals()[1]).node);
  const core::Tsp tsp(plat);
  const bool spread = args.GetString("mapping", "worst") == "spread";
  const int count = args.GetInt("count", 0);
  auto budget = [&](std::size_t m) {
    return spread ? tsp.BestCase(m) : tsp.WorstCase(m);
  };
  if (count > 0) {
    std::cout << "TSP(" << count << ") = "
              << util::FormatFixed(budget(static_cast<std::size_t>(count)), 3)
              << " W/core (" << (spread ? "spread" : "worst-case")
              << " mapping)\n";
    return 0;
  }
  util::Table t({"active cores", "TSP [W/core]", "total [W]"});
  for (std::size_t m = plat.num_cores() / 10; m <= plat.num_cores();
       m += plat.num_cores() / 10) {
    const double b = budget(m);
    t.Row().Cell(m).Cell(b, 3).Cell(b * static_cast<double>(m), 1);
  }
  t.Print(std::cout);
  return 0;
}

int CmdEstimate(const util::ArgParser& args) {
  if (args.positionals().size() < 3) return Usage();
  const arch::Platform plat = arch::Platform::PaperPlatform(
      power::TechByName(args.positionals()[1]).node);
  const apps::AppProfile& app = apps::AppByName(args.positionals()[2]);
  const core::DarkSiliconEstimator estimator(plat);
  const std::size_t threads =
      static_cast<std::size_t>(args.GetInt("threads", 8));
  const double freq =
      args.GetDouble("freq", plat.tech().nominal_freq);
  const std::size_t level = plat.ladder().LevelAtOrBelow(freq);
  const core::MappingPolicy policy =
      PolicyByName(args.GetString("mapping", "contiguous"));

  core::Estimate e;
  if (args.Has("thermal")) {
    e = estimator.UnderTemperature(app, threads, level, policy);
    std::cout << "constraint: T_DTM = " << plat.tdtm_c() << " C\n";
  } else {
    const double tdp = args.GetDouble("tdp", 185.0);
    e = estimator.UnderPowerBudget(app, threads, level, tdp, policy);
    std::cout << "constraint: TDP = " << tdp << " W\n";
  }
  util::Table t({"active", "dark %", "instances", "power [W]", "peak T [C]",
                 "violation", "GIPS"});
  t.Row()
      .Cell(e.active_cores)
      .Cell(100.0 * e.dark_fraction, 1)
      .Cell(e.instances)
      .Cell(e.total_power_w, 1)
      .Cell(e.peak_temp_c, 1)
      .Cell(e.thermal_violation ? "YES" : "no")
      .Cell(e.total_gips, 1);
  t.Print(std::cout);
  return 0;
}

int CmdMap(const util::ArgParser& args) {
  if (args.positionals().size() < 2) return Usage();
  const arch::Platform plat = arch::Platform::PaperPlatform(
      power::TechByName(args.positionals()[1]).node);
  const std::size_t count = static_cast<std::size_t>(
      args.GetInt("count", static_cast<int>(plat.num_cores() / 2)));
  const core::MappingPolicy policy =
      PolicyByName(args.GetString("policy", "spread"));
  const auto set = core::SelectCores(plat, count, policy);
  const auto mask = core::ActiveMask(plat.num_cores(), set);
  for (std::size_t r = 0; r < plat.floorplan().rows(); ++r) {
    for (std::size_t c = 0; c < plat.floorplan().cols(); ++c)
      std::cout << (mask[plat.floorplan().IndexOf(r, c)] ? '#' : '.');
    std::cout << '\n';
  }
  const core::Tsp tsp(plat);
  std::cout << count << " cores, policy "
            << core::MappingPolicyName(policy) << ", TSP = "
            << util::FormatFixed(tsp.ForMapping(set), 3) << " W/core\n";
  return 0;
}

int CmdBoost(const util::ArgParser& args) {
  if (args.positionals().size() < 3) return Usage();
  const arch::Platform plat = arch::Platform::PaperPlatform(
      power::TechByName(args.positionals()[1]).node);
  const apps::AppProfile& app = apps::AppByName(args.positionals()[2]);
  const std::size_t instances =
      static_cast<std::size_t>(args.GetInt("instances", 8));
  const double cap = args.GetDouble("cap", 500.0);
  const core::BoostingSimulator sim(plat, app, instances, 8);
  std::size_t level = 0;
  if (!sim.MaxSafeConstantLevel(cap, &level)) {
    std::cerr << "no thermally safe constant level\n";
    return 1;
  }
  const auto qs = sim.EstimateBoosting(plat.tdtm_c(), cap);
  util::Table t({"scheme", "f [GHz]", "GIPS", "avg P [W]", "peak P [W]"});
  const core::Estimate steady = sim.SteadyAtLevel(level);
  t.Row()
      .Cell("constant")
      .Cell(plat.ladder()[level].freq, 1)
      .Cell(sim.GipsAtLevel(level), 1)
      .Cell(steady.total_power_w, 0)
      .Cell(steady.total_power_w, 0);
  t.Row()
      .Cell("boosting")
      .Cell(plat.ladder()[qs.base_level].freq, 1)
      .Cell(qs.avg_gips, 1)
      .Cell(qs.avg_power_w, 0)
      .Cell(qs.peak_power_w, 0);
  t.Print(std::cout);
  return 0;
}

int CmdNtc(const util::ArgParser& args) {
  if (args.positionals().size() < 3) return Usage();
  const arch::Platform plat = arch::Platform::PaperPlatform(
      power::TechByName(args.positionals()[1]).node);
  const apps::AppProfile& app = apps::AppByName(args.positionals()[2]);
  const std::size_t instances =
      static_cast<std::size_t>(args.GetInt("instances", 12));
  const core::NtcAnalysis analysis(plat);
  const core::NtcComparison c = analysis.Compare(app, instances, {1.0, 8});
  util::Table t({"config", "f [GHz]", "Vdd [V]", "GIPS", "P [W]",
                 "energy [kJ]"});
  auto add = [&](const char* name, const core::RegionResult& r) {
    t.Row()
        .Cell(name)
        .Cell(r.freq, 2)
        .Cell(r.vdd, 2)
        .Cell(r.gips, 1)
        .Cell(r.power_w, 1)
        .Cell(r.energy_kj, 2);
  };
  add("NTC 8thr", c.ntc);
  add("STC 1thr", c.stc1);
  add("STC 2thr", c.stc2);
  t.Print(std::cout);
  return 0;
}

int CmdCharacterize(const util::ArgParser& args) {
  util::Table t({"app", "IPC", "Ceff22 [nF]", "Pind22 [W]", "L1 miss %",
                 "L2 MPKI", "branch miss %"});
  auto add = [&](const uarch::Characterization& c) {
    t.Row()
        .Cell(c.name)
        .Cell(c.ipc, 2)
        .Cell(c.ceff22_nf, 2)
        .Cell(c.pind22_w, 2)
        .Cell(100.0 * c.sim.l1_miss_rate, 1)
        .Cell(c.sim.mpki_l2, 1)
        .Cell(100.0 * c.sim.branch_mispredict_rate, 1);
  };
  if (args.positionals().size() >= 2) {
    add(uarch::Characterize(
        uarch::TraceParamsByName(args.positionals()[1])));
  } else {
    for (const auto& c : uarch::CharacterizeParsec()) add(c);
  }
  t.Print(std::cout);
  return 0;
}

int CmdSim(const util::ArgParser& args) {
  if (args.positionals().size() < 2) return Usage();
  const arch::Platform plat = arch::Platform::PaperPlatform(
      power::TechByName(args.positionals()[1]).node);

  sim::SimConfig cfg;
  cfg.duration_s = args.GetDouble("duration", 2.0);
  cfg.arrival_rate = args.GetDouble("rate", cfg.arrival_rate);
  cfg.threads_per_job =
      static_cast<std::size_t>(args.GetInt("threads", 8));
  cfg.seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));

  faults::FaultConfig& f = cfg.faults;
  f.seed = static_cast<std::uint64_t>(args.GetInt("fault-seed", 42));
  f.sensor_dropout_rate = args.GetDouble("fault-sensor-dropout", 0.0);
  f.sensor_nan_rate = args.GetDouble("fault-sensor-nan", 0.0);
  f.sensor_stuck_rate = args.GetDouble("fault-sensor-stuck", 0.0);
  f.sensor_drift_rate = args.GetDouble("fault-sensor-drift", 0.0);
  f.sensor_noise_sigma_c = args.GetDouble("fault-sensor-noise", 0.0);
  f.core_failstop_rate = args.GetDouble("fault-core-failstop", 0.0);
  f.core_transient_rate = args.GetDouble("fault-core-transient", 0.0);
  f.dvfs_stuck_rate = args.GetDouble("fault-dvfs-stuck", 0.0);
  f.solver_fail_rate = args.GetDouble("fault-solver", 0.0);
  if (args.Has("fault-max-failed-cores"))
    f.max_failed_cores =
        static_cast<std::size_t>(args.GetInt("fault-max-failed-cores", 0));
  f.enabled = true;
  f.enabled = f.AnyFaultPossible();  // stay on the fault-free path if all 0

  // Telemetry is opt-in: any output flag switches it on for the run.
  const std::string metrics_path = args.GetString("metrics-out");
  const std::string trace_path = args.GetString("trace-out");
  if (!metrics_path.empty() || !trace_path.empty()) {
    telemetry::SetEnabled(true);
    telemetry::SetTraceLevel(
        TraceLevelByName(args.GetString("trace-level", "span")));
  }

  const telemetry::WallTimer wall;
  const sim::FullSimResult r = sim::ChipSimulator(plat, cfg).Run();
  const double wall_s = wall.Seconds();

  util::Table t({"metric", "value"});
  t.Row().Cell("avg GIPS").Cell(r.avg_gips, 1);
  t.Row().Cell("avg power [W]").Cell(r.avg_power_w, 1);
  t.Row().Cell("energy [J]").Cell(r.energy_j, 1);
  t.Row().Cell("max T [C]").Cell(r.max_temp_c, 1);
  t.Row().Cell("time > T_DTM [ms]").Cell(1e3 * r.time_above_tdtm_s, 1);
  t.Row().Cell("jobs arrived").Cell(r.jobs_arrived);
  t.Row().Cell("jobs completed").Cell(r.jobs_completed);
  if (f.enabled) {
    t.Row().Cell("safe-state [ms]").Cell(1e3 * r.safe_state_s, 1);
    t.Row().Cell("jobs requeued").Cell(r.jobs_requeued);
    t.Row().Cell("cores failed").Cell(r.cores_failed);
    t.Row().Cell("sensor substitutions").Cell(r.sensor_substitutions);
    t.Row().Cell("solver retries").Cell(r.solver_retries);
    t.Row()
        .Cell("faults injected")
        .Cell(r.fault_log.CountEvents(faults::FaultEventKind::kInjected));
    t.Row()
        .Cell("faults mitigated")
        .Cell(r.fault_log.CountEvents(faults::FaultEventKind::kMitigated));
  }
  t.Print(std::cout);

  const std::string log_path = args.GetString("fault-log-csv");
  if (!log_path.empty()) {
    r.fault_log.WriteCsv(log_path);
    std::cout << "fault log written to " << log_path << "\n";
  }

  telemetry::RunSummary summary;
  summary.title = "sim " + args.positionals()[1];
  summary.sim_time_s = cfg.duration_s;
  // Only telemetry-enabled runs report wall time: the default `sim`
  // output stays byte-identical across runs (fixed seeds everywhere).
  if (telemetry::Enabled()) summary.wall_time_s = wall_s;
  summary.epochs = r.trace.size();
  summary.control_steps = static_cast<std::size_t>(
      std::lround(cfg.duration_s / cfg.control_period_s));
  summary.jobs_arrived = r.jobs_arrived;
  summary.jobs_completed = r.jobs_completed;
  summary.jobs_requeued = r.jobs_requeued;
  summary.peak_temp_c = r.max_temp_c;
  summary.time_above_tdtm_s = r.time_above_tdtm_s;
  summary.avg_gips = r.avg_gips;
  summary.avg_power_w = r.avg_power_w;
  summary.sensor_fallbacks = r.sensor_substitutions;
  summary.solver_retries = r.solver_retries;
  summary.cores_failed = r.cores_failed;
  summary.safe_state_s = r.safe_state_s;
  summary.CollectTelemetry();
  std::cout << "\n";
  summary.Print(std::cout);

  if (!metrics_path.empty()) {
    telemetry::Registry().WriteCsv(metrics_path);
    std::cout << "metrics written to " << metrics_path << "\n";
  }
  if (!trace_path.empty()) {
    telemetry::WriteChromeTrace(trace_path);
    std::cout << "trace written to " << trace_path
              << " (open in https://ui.perfetto.dev)\n";
  }
  return 0;
}

int CmdSweep(const util::ArgParser& args) {
  if (args.positionals().size() < 2) return Usage();

  // Telemetry is opt-in: any metrics/trace output (or the live
  // endpoint) switches the registry on for the run.
  const std::string metrics_path = args.GetString("metrics-out");
  const std::string trace_path = args.GetString("trace-out");
  const bool serve_metrics = args.Has("metrics-port");
  if (!metrics_path.empty() || !trace_path.empty() || serve_metrics) {
    telemetry::SetEnabled(true);
    telemetry::SetTraceLevel(
        TraceLevelByName(args.GetString("trace-level", "span")));
  }

  const runtime::SweepSpec spec =
      runtime::SweepSpec::FromJsonFile(args.positionals()[1]);

  runtime::SweepOptions opts;
  opts.threads = static_cast<std::size_t>(args.GetInt("threads", 0));
  opts.checkpoint_path = args.GetString("checkpoint");
  opts.resume = args.Has("resume");
  opts.stop_after_jobs =
      static_cast<std::size_t>(args.GetInt("stop-after", 0));
  opts.job_deadline_ms = args.GetDouble("job-deadline-ms", 0.0);
  opts.job_retries = static_cast<std::size_t>(args.GetInt("job-retries", 2));
  opts.retry_backoff_ms = args.GetDouble("retry-backoff-ms", 10.0);
  opts.journal_sync =
      runtime::JournalSyncByName(args.GetString("journal-sync", "batch"));
  opts.cache_budget_mb = args.GetDouble("cache-budget-mb", 0.0);
  opts.chaos.fail_rate = args.GetDouble("chaos-fail", 0.0);
  opts.chaos.delay_rate = args.GetDouble("chaos-delay", 0.0);
  opts.chaos.delay_ms = args.GetDouble("chaos-delay-ms", 50.0);
  opts.chaos.seed = static_cast<std::uint64_t>(args.GetInt("chaos-seed", 42));
  if (args.Has("chaos-max-faulty-attempts"))
    opts.chaos.max_faulty_attempts =
        static_cast<std::size_t>(args.GetInt("chaos-max-faulty-attempts", 1));
  opts.chaos.enabled =
      opts.chaos.fail_rate > 0.0 || opts.chaos.delay_rate > 0.0;
  if (args.Has("progress")) opts.progress_stream = &std::cerr;
  opts.heartbeat_ms = args.GetDouble("heartbeat-ms", 500.0);
  opts.batch_max_k = static_cast<std::size_t>(args.GetInt("batch-max-k", 16));

  // The event bus outlives the ambient-pointer guard below
  // (declaration order), so the pointer is always uninstalled --
  // even on exception unwind -- before the bus itself is destroyed.
  const std::string events_path = args.GetString("events-out");
  std::unique_ptr<telemetry::EventBus> events;
  struct AmbientBusGuard {
    bool active = false;
    ~AmbientBusGuard() {
      if (active) telemetry::SetProcessEventBus(nullptr);
    }
  };
  AmbientBusGuard bus_guard;
  if (!events_path.empty()) {
    events = std::make_unique<telemetry::EventBus>(events_path);
    telemetry::SetProcessEventBus(events.get());
    bus_guard.active = true;
  }

  std::unique_ptr<telemetry::MetricsHttpServer> http;
  if (serve_metrics) {
    telemetry::MetricsHttpServer::Options ho;
    ho.port = static_cast<std::uint16_t>(args.GetInt("metrics-port", 0));
    http = std::make_unique<telemetry::MetricsHttpServer>(ho);
    std::cerr << "metrics endpoint: http://127.0.0.1:" << http->port()
              << "/metrics\n";
  }

  runtime::SweepEngine engine(spec, opts);
  const runtime::SweepOutcome out = engine.Run();
  const runtime::ResultSink sink(spec, spec.Jobs());

  const std::string csv_path = args.GetString("out");
  const std::string json_path = args.GetString("json");
  if (!csv_path.empty()) sink.WriteCsv(csv_path, out.results);
  if (!json_path.empty()) sink.WriteJsonRows(json_path, out.results);
  if (csv_path.empty() && json_path.empty())
    sink.WriteCsv(std::cout, out.results);

  const std::string chaos_log_path = args.GetString("chaos-log-csv");
  if (!chaos_log_path.empty()) out.chaos_log.WriteCsv(chaos_log_path);

  const runtime::SweepStats& s = out.stats;
  std::cerr << "sweep '" << spec.name() << "': " << s.jobs_total << " jobs ("
            << s.jobs_executed << " executed, " << s.jobs_resumed
            << " resumed, " << s.jobs_skipped << " skipped, " << s.jobs_failed
            << " failed) on " << s.threads_used << " threads in "
            << util::FormatFixed(s.wall_s, 2) << " s\n"
            << "model cache: " << s.cache_hits << " hits, " << s.cache_misses
            << " misses";
  if (s.cache_evictions > 0 || opts.cache_budget_mb > 0.0)
    std::cerr << ", " << s.cache_evictions << " evictions, "
              << util::FormatFixed(
                     static_cast<double>(s.cache_bytes) / (1024.0 * 1024.0), 2)
              << " MiB resident";
  std::cerr << "; steals: " << s.steals << "\n";
  if (s.batch_cohorts > 0 || s.batch_detached > 0)
    std::cerr << "batching: " << s.batch_cohorts << " cohorts over "
              << s.batch_cohort_members << " jobs (mean k "
              << util::FormatFixed(
                     static_cast<double>(s.batch_cohort_members) /
                         static_cast<double>(std::max<std::size_t>(
                             s.batch_cohorts, 1)),
                     1)
              << "), " << s.batch_detached << " detached\n";
  if (s.jobs_retried > 0 || s.jobs_timed_out > 0 || s.jobs_quarantined > 0 ||
      s.retries_total > 0)
    std::cerr << "resilience: " << s.retries_total << " retries over "
              << s.jobs_retried << " jobs, " << s.jobs_timed_out
              << " timed out, " << s.jobs_quarantined << " quarantined\n";
  if (s.journal_corrupt_records > 0 || s.journal_truncated_bytes > 0 ||
      s.journal_dedup_drops > 0)
    std::cerr << "journal recovery: " << s.journal_corrupt_records
              << " corrupt records skipped, " << s.journal_truncated_bytes
              << " torn bytes truncated, " << s.journal_dedup_drops
              << " duplicate records dropped\n";
  std::cerr << "contract violations: " << ds::contracts::ViolationCount()
            << "\n";
  for (const runtime::JobResult& r : out.results)
    if (!r.ok && r.error != "not executed")
      std::cerr << "job " << r.index
                << (r.quarantined ? " quarantined: " : " failed: ") << r.error
                << " (attempts: " << r.attempts << ")\n";

  if (!metrics_path.empty()) {
    telemetry::Registry().WriteCsv(metrics_path);
    std::cerr << "metrics written to " << metrics_path << "\n";
  }
  if (!trace_path.empty()) {
    telemetry::WriteChromeTrace(trace_path);
    std::cerr << "trace written to " << trace_path
              << " (open in https://ui.perfetto.dev)\n";
  }

  const std::string summary_path = args.GetString("summary-json");
  if (!summary_path.empty()) {
    telemetry::RunSummary summary;
    summary.title = "sweep " + spec.name();
    summary.wall_time_s = s.wall_s;
    summary.sweep_jobs_total = s.jobs_total;
    summary.sweep_jobs_executed = s.jobs_executed;
    summary.sweep_jobs_resumed = s.jobs_resumed;
    summary.sweep_jobs_failed = s.jobs_failed;
    summary.journal_corrupt_records = s.journal_corrupt_records;
    summary.journal_truncated_bytes = s.journal_truncated_bytes;
    summary.journal_dedup_drops = s.journal_dedup_drops;
    summary.CollectTelemetry();
    std::ofstream f(summary_path);
    if (!f) throw std::runtime_error("cannot open " + summary_path);
    summary.WriteJson(f);
    std::cerr << "summary written to " << summary_path << "\n";
  }

  if (http != nullptr) http->Stop();
  if (events != nullptr) {
    telemetry::SetProcessEventBus(nullptr);
    bus_guard.active = false;
    events->Close();
    const telemetry::EventBusStats es = events->stats();
    std::cerr << "events: " << es.written << " written, " << es.dropped
              << " dropped -> " << events_path << "\n";
  }
  return s.jobs_failed > 0 ? 1 : 0;
}

std::atomic<bool> g_serve_stop{false};

extern "C" void ServeSignalHandler(int) { g_serve_stop.store(true); }

int CmdServe(const util::ArgParser& args) {
  telemetry::SetEnabled(true);

  // Ambient event bus, same lifetime discipline as CmdSweep.
  const std::string events_path = args.GetString("events-out");
  std::unique_ptr<telemetry::EventBus> events;
  struct AmbientBusGuard {
    bool active = false;
    ~AmbientBusGuard() {
      if (active) telemetry::SetProcessEventBus(nullptr);
    }
  };
  AmbientBusGuard bus_guard;
  if (!events_path.empty()) {
    events = std::make_unique<telemetry::EventBus>(events_path);
    telemetry::SetProcessEventBus(events.get());
    bus_guard.active = true;
  }

  service::SweepService::Options so;
  so.engine_threads = static_cast<std::size_t>(args.GetInt("threads", 0));
  so.queue_depth = static_cast<std::size_t>(args.GetInt("queue-depth", 16));
  so.per_client = static_cast<std::size_t>(args.GetInt("per-client", 4));
  so.max_clients = static_cast<std::size_t>(args.GetInt("max-clients", 16));
  so.aging_ms = args.GetDouble("aging-ms", 2000.0);
  so.journal_dir = args.GetString("journal-dir");
  so.cache_budget_mb = args.GetDouble("cache-budget-mb", 0.0);
  so.job_retries = static_cast<std::size_t>(args.GetInt("job-retries", 2));
  so.job_deadline_ms = args.GetDouble("job-deadline-ms", 0.0);
  so.journal_sync =
      runtime::JournalSyncByName(args.GetString("journal-sync", "batch"));
  service::SweepService service(so);
  if (service.recovered() > 0)
    std::cerr << "recovered " << service.recovered()
              << " unfinished sweep(s) from " << so.journal_dir << "\n";

  net::HttpServer::Options ho;
  ho.port = static_cast<std::uint16_t>(args.GetInt("port", 0));
  ho.max_body_kb = static_cast<std::size_t>(args.GetInt("max-body-kb", 1024));
  ho.max_connections =
      static_cast<std::size_t>(args.GetInt("max-connections", 64));
  net::HttpServer server(service.HttpHandler(), ho);
  std::cerr << "darksilicon serve: http://127.0.0.1:" << server.port()
            << " (POST /v1/sweeps, GET /v1/sweeps/{id}/rows, /metrics)\n";

  g_serve_stop.store(false);
  std::signal(SIGINT, ServeSignalHandler);
  std::signal(SIGTERM, ServeSignalHandler);
  while (!g_serve_stop.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::cerr << "darksilicon serve: shutting down\n";

  // Streams first, then the listener (HttpServer's shutdown contract).
  service.Stop();
  server.Stop();
  if (events != nullptr) {
    telemetry::SetProcessEventBus(nullptr);
    bus_guard.active = false;
    events->Close();
    const telemetry::EventBusStats es = events->stats();
    std::cerr << "events: " << es.written << " written, " << es.dropped
              << " dropped -> " << events_path << "\n";
  }
  return 0;
}

int CmdSubmit(const util::ArgParser& args) {
  if (args.positionals().size() < 2) return Usage();
  const int port = args.GetInt("port", 0);
  if (port <= 0 || port > 65535) {
    std::cerr << "error: submit requires --port <daemon port>\n";
    return 2;
  }

  std::ifstream in(args.positionals()[1], std::ios::binary);
  if (!in)
    throw std::runtime_error("cannot open " + args.positionals()[1]);
  std::string spec_text((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());

  net::FetchOptions post;
  post.headers.emplace_back("X-Client", args.GetString("client", "cli"));
  const net::ClientResponse admission =
      net::Fetch(static_cast<std::uint16_t>(port), "POST", "/v1/sweeps",
                 spec_text, post);
  if (admission.status_code != 202) {
    std::cerr << "submit rejected: " << admission.status_line << " "
              << admission.body;
    const std::string_view retry = admission.Header("retry-after");
    if (!retry.empty())
      std::cerr << "retry after " << retry << " s\n";
    return 1;
  }
  std::string id;
  const telemetry::JsonValue doc = telemetry::ParseJson(admission.body);
  if (const telemetry::JsonValue* v = doc.Find("id");
      v != nullptr && v->is_string())
    id = v->str;
  if (id.empty()) throw std::runtime_error("daemon returned no sweep id");
  std::cerr << "submitted " << id << "\n";
  if (args.Has("no-wait")) {
    std::cout << id << "\n";
    return 0;
  }

  const std::string out_path = args.GetString("out");
  std::ofstream file;
  std::ostream* os = &std::cout;
  if (!out_path.empty()) {
    file.open(out_path, std::ios::binary | std::ios::trunc);
    if (!file) throw std::runtime_error("cannot open " + out_path);
    os = &file;
  }
  net::FetchOptions stream;
  stream.body_sink = [os](std::string_view chunk) {
    os->write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  };
  const net::ClientResponse rows =
      net::Fetch(static_cast<std::uint16_t>(port), "GET",
                 "/v1/sweeps/" + id + "/rows", {}, stream);
  os->flush();
  if (rows.status_code != 200 || !os->good())
    throw std::runtime_error("row stream failed: " + rows.status_line);

  const net::ClientResponse status =
      net::Fetch(static_cast<std::uint16_t>(port), "GET",
                 "/v1/sweeps/" + id + "/status");
  std::string state = "unknown";
  if (status.status_code == 200) {
    const telemetry::JsonValue s = telemetry::ParseJson(status.body);
    if (const telemetry::JsonValue* v = s.Find("state");
        v != nullptr && v->is_string())
      state = v->str;
  }
  std::cerr << "sweep " << id << ": " << state;
  if (!out_path.empty()) std::cerr << ", rows -> " << out_path;
  std::cerr << "\n";
  return state == "done" ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  if (args.positionals().empty()) return Usage();
  const std::string cmd = args.positionals()[0];
  try {
    if (cmd == "info") return CmdInfo();
    if (cmd == "tsp") return CmdTsp(args);
    if (cmd == "estimate") return CmdEstimate(args);
    if (cmd == "map") return CmdMap(args);
    if (cmd == "boost") return CmdBoost(args);
    if (cmd == "ntc") return CmdNtc(args);
    if (cmd == "characterize") return CmdCharacterize(args);
    if (cmd == "sim") return CmdSim(args);
    if (cmd == "sweep") return CmdSweep(args);
    if (cmd == "serve") return CmdServe(args);
    if (cmd == "submit") return CmdSubmit(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return Usage();
}
