// trace_check -- validates telemetry output files.
//
// Usage: trace_check <trace.json>
//        trace_check --events <events.jsonl>
//        trace_check --openmetrics <metrics.txt>
//
// Default mode parses a Chrome trace_event JSON file with the telemetry
// JSON reader and applies the same structural checks Perfetto needs
// (traceEvents array, per-event name / ph / ts fields). `--events`
// validates a JSON-lines job-lifecycle event file (known kinds,
// correlation fields, terminal bus_close accounting record).
// `--openmetrics` validates an OpenMetrics exposition (family
// structure, counter/histogram suffixes, cumulative buckets, `# EOF`).
// Exit 0 and a one-line summary on success; exit 1 with the error
// otherwise. CI runs all three modes against the artifacts the
// `darksilicon sim` / `sweep` smoke tests produce.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "telemetry/event_bus.hpp"
#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"

namespace {

int Usage() {
  std::cerr << "usage: trace_check <trace.json>\n"
               "       trace_check --events <events.jsonl>\n"
               "       trace_check --openmetrics <metrics.txt>\n";
  return 2;
}

bool ReadFile(const char* path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

int CheckTrace(const char* path, const std::string& text) {
  std::size_t num_events = 0;
  std::string error;
  if (!ds::telemetry::ValidateChromeTrace(text, &num_events, &error)) {
    std::cerr << "trace_check: " << path << ": " << error << "\n";
    return 1;
  }
  if (num_events == 0) {
    std::cerr << "trace_check: " << path << ": trace has no events\n";
    return 1;
  }
  std::cout << "trace_check: " << path << ": OK (" << num_events
            << " events)\n";
  return 0;
}

int CheckEvents(const char* path, const std::string& text) {
  std::size_t num_events = 0;
  std::uint64_t num_dropped = 0;
  std::string error;
  if (!ds::telemetry::ValidateEventFile(text, &num_events, &num_dropped,
                                        &error)) {
    std::cerr << "trace_check: " << path << ": " << error << "\n";
    return 1;
  }
  std::cout << "trace_check: " << path << ": OK (" << num_events
            << " events, " << num_dropped << " dropped)\n";
  return 0;
}

int CheckOpenMetrics(const char* path, const std::string& text) {
  std::string error;
  if (!ds::telemetry::ValidateOpenMetrics(text, &error)) {
    std::cerr << "trace_check: " << path << ": " << error << "\n";
    return 1;
  }
  std::cout << "trace_check: " << path << ": OK (OpenMetrics)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  std::string mode = "trace";
  if (argc == 2) {
    path = argv[1];
  } else if (argc == 3 && std::string(argv[1]) == "--events") {
    mode = "events";
    path = argv[2];
  } else if (argc == 3 && std::string(argv[1]) == "--openmetrics") {
    mode = "openmetrics";
    path = argv[2];
  } else {
    return Usage();
  }

  std::string text;
  if (!ReadFile(path, &text)) {
    std::cerr << "trace_check: cannot open " << path << "\n";
    return 1;
  }
  if (mode == "events") return CheckEvents(path, text);
  if (mode == "openmetrics") return CheckOpenMetrics(path, text);
  return CheckTrace(path, text);
}
