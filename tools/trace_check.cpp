// trace_check -- validates a Chrome trace_event JSON file.
//
// Usage: trace_check <trace.json>
//
// Parses the file with the telemetry JSON reader and applies the same
// structural checks Perfetto needs (traceEvents array, per-event name /
// ph / ts fields). Exit 0 and a one-line summary on success; exit 1
// with the parse error otherwise. CI runs this against the trace the
// `darksilicon sim --trace-out` smoke test produced.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "telemetry/json.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: trace_check <trace.json>\n";
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "trace_check: cannot open " << argv[1] << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  std::size_t num_events = 0;
  std::string error;
  if (!ds::telemetry::ValidateChromeTrace(buf.str(), &num_events, &error)) {
    std::cerr << "trace_check: " << argv[1] << ": " << error << "\n";
    return 1;
  }
  if (num_events == 0) {
    std::cerr << "trace_check: " << argv[1] << ": trace has no events\n";
    return 1;
  }
  std::cout << "trace_check: " << argv[1] << ": OK (" << num_events
            << " events)\n";
  return 0;
}
