// Core of ds_lint, the zero-dependency style/correctness checker for
// the dark silicon library tree. The linting engine lives in this
// library (ds_lint_core) so tests/test_ds_lint.cpp can run the rules
// in-process against tests/lint_fixtures/ and assert exact findings;
// tools/ds_lint.cpp is the thin CLI on top.
//
// Per-file rules (scanned over comment/string-blanked source):
//   bare-assert        assert() in library code outside src/util/.
//   float-equals       ==/!= against a floating-point literal.
//   io-in-library      printf/std::cout/std::cerr in library code.
//   raw-stderr         raw stream handles in src/runtime, src/telemetry.
//   naked-new          new/delete expressions outside RAII owners.
//   missing-contract   ctor taking double params with no DS_* check.
//   static-mutable     mutable function-local static.
//   swallowed-catch    catch in src/runtime that drops the failure.
//   alloc-in-loop      vector/Matrix built per-iteration in src/thermal.
//
// Concurrency rules (need the whole file set -- levels, declarations
// and join sites can live in a sibling of the file being checked):
//   lock-order         a ds::MutexLock acquisition whose mutex's
//                      declared hierarchy level (util/lock_levels.hpp)
//                      is not strictly below every level already held
//                      in the enclosing scopes. Levels are read from
//                      `constexpr int kName = N;` declarations and
//                      mutexes from `Mutex name{locks::kName};`
//                      declarators anywhere in the linted set; mutex
//                      names resolve within their file stem (hpp
//                      declares, cpp locks).
//   unannotated-mutex  a raw std::mutex / std::shared_mutex /
//                      std::condition_variable declaration. Library
//                      code uses ds::Mutex / ds::CondVar
//                      (util/thread_annotations.hpp) so Clang's
//                      -Wthread-safety can see every acquisition.
//   unjoined-thread    a named std::thread whose file stem never calls
//                      .join(), or any .detach() call -- a detached
//                      thread outlives the telemetry/runtime shutdown
//                      order the annotations document.
//   unused-suppression a `// ds_lint: allow(<rule>)` comment that no
//                      finding consumed. Stale suppressions hide the
//                      next real finding on that line; delete them.
//                      Not itself suppressible -- the fix is removal.
//
// Suppressions: append `// ds_lint: allow(<rule>)` to the offending
// line, or place it alone on the line directly above. Every
// suppression documents an intentional exception at the point of use.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ds::lint {

/// One rule violation at a source location. `line` is 1-based (0 for
/// whole-file conditions such as io-error).
struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Outcome of one linting run over a set of files.
struct LintResult {
  std::vector<Finding> findings;
  std::size_t files = 0;  // files actually scanned
};

/// Static rule metadata, surfaced in the SARIF rules table.
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// Every rule ds_lint can emit, in stable order (SARIF ruleIndex
/// refers into this list).
const std::vector<RuleInfo>& Rules();

/// Lints files and directories (directories recurse over
/// .cpp/.hpp/.h/.cc, sorted for deterministic output). Unreadable
/// files produce an `io-error` finding; a path that does not exist at
/// all throws std::runtime_error (the CLI maps that to exit 2).
LintResult LintPaths(const std::vector<std::string>& paths);

/// Renders a result as a SARIF 2.1.0 log (one run, tool "ds_lint").
std::string ToSarif(const LintResult& result);

}  // namespace ds::lint
