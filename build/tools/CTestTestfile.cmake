# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_info "/root/repo/build/tools/darksilicon" "info")
set_tests_properties(cli_info PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_tsp_curve "/root/repo/build/tools/darksilicon" "tsp" "16nm")
set_tests_properties(cli_tsp_curve PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_tsp_count "/root/repo/build/tools/darksilicon" "tsp" "16nm" "--count" "60" "--mapping" "spread")
set_tests_properties(cli_tsp_count PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_estimate_tdp "/root/repo/build/tools/darksilicon" "estimate" "16nm" "swaptions" "--tdp" "220")
set_tests_properties(cli_estimate_tdp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_estimate_thermal "/root/repo/build/tools/darksilicon" "estimate" "16nm" "x264" "--thermal" "--mapping" "spread")
set_tests_properties(cli_estimate_thermal PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_map "/root/repo/build/tools/darksilicon" "map" "16nm" "--count" "30" "--policy" "checkerboard")
set_tests_properties(cli_map PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_boost "/root/repo/build/tools/darksilicon" "boost" "16nm" "x264" "--instances" "12")
set_tests_properties(cli_boost PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_ntc "/root/repo/build/tools/darksilicon" "ntc" "11nm" "canneal" "--instances" "24")
set_tests_properties(cli_ntc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_characterize "/root/repo/build/tools/darksilicon" "characterize" "blackscholes")
set_tests_properties(cli_characterize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_no_args "/root/repo/build/tools/darksilicon")
set_tests_properties(cli_no_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_node "/root/repo/build/tools/darksilicon" "tsp" "7nm")
set_tests_properties(cli_bad_node PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_app "/root/repo/build/tools/darksilicon" "estimate" "16nm" "doom")
set_tests_properties(cli_bad_app PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
