# Empty compiler generated dependencies file for darksilicon.
# This may be replaced when dependencies are built.
