file(REMOVE_RECURSE
  "CMakeFiles/darksilicon.dir/darksilicon_cli.cpp.o"
  "CMakeFiles/darksilicon.dir/darksilicon_cli.cpp.o.d"
  "darksilicon"
  "darksilicon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darksilicon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
