file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_ntc.dir/bench_fig14_ntc.cpp.o"
  "CMakeFiles/bench_fig14_ntc.dir/bench_fig14_ntc.cpp.o.d"
  "bench_fig14_ntc"
  "bench_fig14_ntc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_ntc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
