# Empty compiler generated dependencies file for bench_ext_ladder.
# This may be replaced when dependencies are built.
