file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_ladder.dir/bench_ext_ladder.cpp.o"
  "CMakeFiles/bench_ext_ladder.dir/bench_ext_ladder.cpp.o.d"
  "bench_ext_ladder"
  "bench_ext_ladder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
