file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_tdp_dark.dir/bench_fig05_tdp_dark.cpp.o"
  "CMakeFiles/bench_fig05_tdp_dark.dir/bench_fig05_tdp_dark.cpp.o.d"
  "bench_fig05_tdp_dark"
  "bench_fig05_tdp_dark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_tdp_dark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
