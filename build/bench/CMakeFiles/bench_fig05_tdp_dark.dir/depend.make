# Empty dependencies file for bench_fig05_tdp_dark.
# This may be replaced when dependencies are built.
