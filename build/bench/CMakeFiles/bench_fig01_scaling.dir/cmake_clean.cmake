file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_scaling.dir/bench_fig01_scaling.cpp.o"
  "CMakeFiles/bench_fig01_scaling.dir/bench_fig01_scaling.cpp.o.d"
  "bench_fig01_scaling"
  "bench_fig01_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
