
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig01_scaling.cpp" "bench/CMakeFiles/bench_fig01_scaling.dir/bench_fig01_scaling.cpp.o" "gcc" "bench/CMakeFiles/bench_fig01_scaling.dir/bench_fig01_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/ds_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/ds_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ds_power.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ds_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
