# Empty dependencies file for bench_fig03_power_fit.
# This may be replaced when dependencies are built.
