file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_dvfs.dir/bench_fig07_dvfs.cpp.o"
  "CMakeFiles/bench_fig07_dvfs.dir/bench_fig07_dvfs.cpp.o.d"
  "bench_fig07_dvfs"
  "bench_fig07_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
