# Empty dependencies file for bench_fig07_dvfs.
# This may be replaced when dependencies are built.
