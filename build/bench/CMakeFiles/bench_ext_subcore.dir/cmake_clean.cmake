file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_subcore.dir/bench_ext_subcore.cpp.o"
  "CMakeFiles/bench_ext_subcore.dir/bench_ext_subcore.cpp.o.d"
  "bench_ext_subcore"
  "bench_ext_subcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_subcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
