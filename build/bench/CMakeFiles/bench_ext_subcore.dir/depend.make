# Empty dependencies file for bench_ext_subcore.
# This may be replaced when dependencies are built.
