# Empty dependencies file for bench_fig11_boost_transient.
# This may be replaced when dependencies are built.
