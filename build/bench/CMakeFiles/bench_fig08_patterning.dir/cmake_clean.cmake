file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_patterning.dir/bench_fig08_patterning.cpp.o"
  "CMakeFiles/bench_fig08_patterning.dir/bench_fig08_patterning.cpp.o.d"
  "bench_fig08_patterning"
  "bench_fig08_patterning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_patterning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
