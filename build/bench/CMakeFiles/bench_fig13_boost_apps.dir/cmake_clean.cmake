file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_boost_apps.dir/bench_fig13_boost_apps.cpp.o"
  "CMakeFiles/bench_fig13_boost_apps.dir/bench_fig13_boost_apps.cpp.o.d"
  "bench_fig13_boost_apps"
  "bench_fig13_boost_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_boost_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
