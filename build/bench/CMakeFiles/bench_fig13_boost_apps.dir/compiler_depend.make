# Empty compiler generated dependencies file for bench_fig13_boost_apps.
# This may be replaced when dependencies are built.
