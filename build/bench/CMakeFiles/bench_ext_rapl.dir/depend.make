# Empty dependencies file for bench_ext_rapl.
# This may be replaced when dependencies are built.
