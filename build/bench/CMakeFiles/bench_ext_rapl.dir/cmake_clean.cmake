file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_rapl.dir/bench_ext_rapl.cpp.o"
  "CMakeFiles/bench_ext_rapl.dir/bench_ext_rapl.cpp.o.d"
  "bench_ext_rapl"
  "bench_ext_rapl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_rapl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
