# Empty compiler generated dependencies file for bench_ext_characterization.
# This may be replaced when dependencies are built.
