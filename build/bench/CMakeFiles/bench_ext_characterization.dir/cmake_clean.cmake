file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_characterization.dir/bench_ext_characterization.cpp.o"
  "CMakeFiles/bench_ext_characterization.dir/bench_ext_characterization.cpp.o.d"
  "bench_ext_characterization"
  "bench_ext_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
