file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_vf_curve.dir/bench_fig02_vf_curve.cpp.o"
  "CMakeFiles/bench_fig02_vf_curve.dir/bench_fig02_vf_curve.cpp.o.d"
  "bench_fig02_vf_curve"
  "bench_fig02_vf_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_vf_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
