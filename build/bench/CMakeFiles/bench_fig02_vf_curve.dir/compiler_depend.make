# Empty compiler generated dependencies file for bench_fig02_vf_curve.
# This may be replaced when dependencies are built.
