# Empty compiler generated dependencies file for bench_ext_sprint.
# This may be replaced when dependencies are built.
