file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_sprint.dir/bench_ext_sprint.cpp.o"
  "CMakeFiles/bench_ext_sprint.dir/bench_ext_sprint.cpp.o.d"
  "bench_ext_sprint"
  "bench_ext_sprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
