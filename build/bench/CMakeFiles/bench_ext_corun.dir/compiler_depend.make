# Empty compiler generated dependencies file for bench_ext_corun.
# This may be replaced when dependencies are built.
