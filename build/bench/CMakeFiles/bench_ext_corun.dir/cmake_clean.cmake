file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_corun.dir/bench_ext_corun.cpp.o"
  "CMakeFiles/bench_ext_corun.dir/bench_ext_corun.cpp.o.d"
  "bench_ext_corun"
  "bench_ext_corun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_corun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
