file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_boost_cores.dir/bench_fig12_boost_cores.cpp.o"
  "CMakeFiles/bench_fig12_boost_cores.dir/bench_fig12_boost_cores.cpp.o.d"
  "bench_fig12_boost_cores"
  "bench_fig12_boost_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_boost_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
