# Empty dependencies file for bench_fig12_boost_cores.
# This may be replaced when dependencies are built.
