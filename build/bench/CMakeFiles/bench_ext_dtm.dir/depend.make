# Empty dependencies file for bench_ext_dtm.
# This may be replaced when dependencies are built.
