file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_dtm.dir/bench_ext_dtm.cpp.o"
  "CMakeFiles/bench_ext_dtm.dir/bench_ext_dtm.cpp.o.d"
  "bench_ext_dtm"
  "bench_ext_dtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
