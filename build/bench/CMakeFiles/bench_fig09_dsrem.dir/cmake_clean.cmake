file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_dsrem.dir/bench_fig09_dsrem.cpp.o"
  "CMakeFiles/bench_fig09_dsrem.dir/bench_fig09_dsrem.cpp.o.d"
  "bench_fig09_dsrem"
  "bench_fig09_dsrem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_dsrem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
