file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_model_ablations.dir/bench_ext_model_ablations.cpp.o"
  "CMakeFiles/bench_ext_model_ablations.dir/bench_ext_model_ablations.cpp.o.d"
  "bench_ext_model_ablations"
  "bench_ext_model_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_model_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
