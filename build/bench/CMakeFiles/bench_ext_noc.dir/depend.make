# Empty dependencies file for bench_ext_noc.
# This may be replaced when dependencies are built.
