file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_noc.dir/bench_ext_noc.cpp.o"
  "CMakeFiles/bench_ext_noc.dir/bench_ext_noc.cpp.o.d"
  "bench_ext_noc"
  "bench_ext_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
