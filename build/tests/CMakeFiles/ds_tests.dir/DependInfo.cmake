
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aging.cpp" "tests/CMakeFiles/ds_tests.dir/test_aging.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_aging.cpp.o.d"
  "/root/repo/tests/test_app_profile.cpp" "tests/CMakeFiles/ds_tests.dir/test_app_profile.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_app_profile.cpp.o.d"
  "/root/repo/tests/test_args.cpp" "tests/CMakeFiles/ds_tests.dir/test_args.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_args.cpp.o.d"
  "/root/repo/tests/test_boosting.cpp" "tests/CMakeFiles/ds_tests.dir/test_boosting.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_boosting.cpp.o.d"
  "/root/repo/tests/test_branch_predictor.cpp" "tests/CMakeFiles/ds_tests.dir/test_branch_predictor.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_branch_predictor.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/ds_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_characterize.cpp" "tests/CMakeFiles/ds_tests.dir/test_characterize.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_characterize.cpp.o.d"
  "/root/repo/tests/test_chip_sim.cpp" "tests/CMakeFiles/ds_tests.dir/test_chip_sim.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_chip_sim.cpp.o.d"
  "/root/repo/tests/test_corun.cpp" "tests/CMakeFiles/ds_tests.dir/test_corun.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_corun.cpp.o.d"
  "/root/repo/tests/test_dsrem.cpp" "tests/CMakeFiles/ds_tests.dir/test_dsrem.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_dsrem.cpp.o.d"
  "/root/repo/tests/test_dtm.cpp" "tests/CMakeFiles/ds_tests.dir/test_dtm.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_dtm.cpp.o.d"
  "/root/repo/tests/test_dvfs.cpp" "tests/CMakeFiles/ds_tests.dir/test_dvfs.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_dvfs.cpp.o.d"
  "/root/repo/tests/test_estimator.cpp" "tests/CMakeFiles/ds_tests.dir/test_estimator.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_estimator.cpp.o.d"
  "/root/repo/tests/test_floorplan.cpp" "tests/CMakeFiles/ds_tests.dir/test_floorplan.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_floorplan.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/ds_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_leakage.cpp" "tests/CMakeFiles/ds_tests.dir/test_leakage.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_leakage.cpp.o.d"
  "/root/repo/tests/test_lu.cpp" "tests/CMakeFiles/ds_tests.dir/test_lu.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_lu.cpp.o.d"
  "/root/repo/tests/test_mapping.cpp" "tests/CMakeFiles/ds_tests.dir/test_mapping.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_mapping.cpp.o.d"
  "/root/repo/tests/test_matrix.cpp" "tests/CMakeFiles/ds_tests.dir/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_matrix.cpp.o.d"
  "/root/repo/tests/test_multicore.cpp" "tests/CMakeFiles/ds_tests.dir/test_multicore.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_multicore.cpp.o.d"
  "/root/repo/tests/test_noc.cpp" "tests/CMakeFiles/ds_tests.dir/test_noc.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_noc.cpp.o.d"
  "/root/repo/tests/test_ntc.cpp" "tests/CMakeFiles/ds_tests.dir/test_ntc.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_ntc.cpp.o.d"
  "/root/repo/tests/test_online_manager.cpp" "tests/CMakeFiles/ds_tests.dir/test_online_manager.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_online_manager.cpp.o.d"
  "/root/repo/tests/test_ooo_core.cpp" "tests/CMakeFiles/ds_tests.dir/test_ooo_core.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_ooo_core.cpp.o.d"
  "/root/repo/tests/test_platform.cpp" "tests/CMakeFiles/ds_tests.dir/test_platform.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_platform.cpp.o.d"
  "/root/repo/tests/test_power_model.cpp" "tests/CMakeFiles/ds_tests.dir/test_power_model.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_power_model.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/ds_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rc_model.cpp" "tests/CMakeFiles/ds_tests.dir/test_rc_model.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_rc_model.cpp.o.d"
  "/root/repo/tests/test_sprint.cpp" "tests/CMakeFiles/ds_tests.dir/test_sprint.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_sprint.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/ds_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_steady_state.cpp" "tests/CMakeFiles/ds_tests.dir/test_steady_state.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_steady_state.cpp.o.d"
  "/root/repo/tests/test_subcore.cpp" "tests/CMakeFiles/ds_tests.dir/test_subcore.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_subcore.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/ds_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_technology.cpp" "tests/CMakeFiles/ds_tests.dir/test_technology.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_technology.cpp.o.d"
  "/root/repo/tests/test_thermal_map.cpp" "tests/CMakeFiles/ds_tests.dir/test_thermal_map.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_thermal_map.cpp.o.d"
  "/root/repo/tests/test_thermal_physics.cpp" "tests/CMakeFiles/ds_tests.dir/test_thermal_physics.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_thermal_physics.cpp.o.d"
  "/root/repo/tests/test_trace_gen.cpp" "tests/CMakeFiles/ds_tests.dir/test_trace_gen.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_trace_gen.cpp.o.d"
  "/root/repo/tests/test_transient.cpp" "tests/CMakeFiles/ds_tests.dir/test_transient.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_transient.cpp.o.d"
  "/root/repo/tests/test_tsp.cpp" "tests/CMakeFiles/ds_tests.dir/test_tsp.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_tsp.cpp.o.d"
  "/root/repo/tests/test_variation.cpp" "tests/CMakeFiles/ds_tests.dir/test_variation.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_variation.cpp.o.d"
  "/root/repo/tests/test_vf_curve.cpp" "tests/CMakeFiles/ds_tests.dir/test_vf_curve.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_vf_curve.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/ds_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/ds_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/ds_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ds_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/ds_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/ds_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ds_power.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ds_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
