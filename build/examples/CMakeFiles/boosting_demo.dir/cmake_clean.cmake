file(REMOVE_RECURSE
  "CMakeFiles/boosting_demo.dir/boosting_demo.cpp.o"
  "CMakeFiles/boosting_demo.dir/boosting_demo.cpp.o.d"
  "boosting_demo"
  "boosting_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boosting_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
