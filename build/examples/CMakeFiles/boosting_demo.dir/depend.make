# Empty dependencies file for boosting_demo.
# This may be replaced when dependencies are built.
