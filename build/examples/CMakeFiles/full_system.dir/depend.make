# Empty dependencies file for full_system.
# This may be replaced when dependencies are built.
