# Empty dependencies file for thermal_patterns.
# This may be replaced when dependencies are built.
