file(REMOVE_RECURSE
  "CMakeFiles/thermal_patterns.dir/thermal_patterns.cpp.o"
  "CMakeFiles/thermal_patterns.dir/thermal_patterns.cpp.o.d"
  "thermal_patterns"
  "thermal_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
