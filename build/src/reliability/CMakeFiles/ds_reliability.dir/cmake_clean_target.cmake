file(REMOVE_RECURSE
  "libds_reliability.a"
)
