file(REMOVE_RECURSE
  "CMakeFiles/ds_reliability.dir/aging.cpp.o"
  "CMakeFiles/ds_reliability.dir/aging.cpp.o.d"
  "CMakeFiles/ds_reliability.dir/lifetime_sim.cpp.o"
  "CMakeFiles/ds_reliability.dir/lifetime_sim.cpp.o.d"
  "libds_reliability.a"
  "libds_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
