# Empty compiler generated dependencies file for ds_reliability.
# This may be replaced when dependencies are built.
