
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/boosting.cpp" "src/core/CMakeFiles/ds_core.dir/boosting.cpp.o" "gcc" "src/core/CMakeFiles/ds_core.dir/boosting.cpp.o.d"
  "/root/repo/src/core/dsrem.cpp" "src/core/CMakeFiles/ds_core.dir/dsrem.cpp.o" "gcc" "src/core/CMakeFiles/ds_core.dir/dsrem.cpp.o.d"
  "/root/repo/src/core/dtm.cpp" "src/core/CMakeFiles/ds_core.dir/dtm.cpp.o" "gcc" "src/core/CMakeFiles/ds_core.dir/dtm.cpp.o.d"
  "/root/repo/src/core/estimator.cpp" "src/core/CMakeFiles/ds_core.dir/estimator.cpp.o" "gcc" "src/core/CMakeFiles/ds_core.dir/estimator.cpp.o.d"
  "/root/repo/src/core/mapping.cpp" "src/core/CMakeFiles/ds_core.dir/mapping.cpp.o" "gcc" "src/core/CMakeFiles/ds_core.dir/mapping.cpp.o.d"
  "/root/repo/src/core/ntc.cpp" "src/core/CMakeFiles/ds_core.dir/ntc.cpp.o" "gcc" "src/core/CMakeFiles/ds_core.dir/ntc.cpp.o.d"
  "/root/repo/src/core/online_manager.cpp" "src/core/CMakeFiles/ds_core.dir/online_manager.cpp.o" "gcc" "src/core/CMakeFiles/ds_core.dir/online_manager.cpp.o.d"
  "/root/repo/src/core/sprint.cpp" "src/core/CMakeFiles/ds_core.dir/sprint.cpp.o" "gcc" "src/core/CMakeFiles/ds_core.dir/sprint.cpp.o.d"
  "/root/repo/src/core/tsp.cpp" "src/core/CMakeFiles/ds_core.dir/tsp.cpp.o" "gcc" "src/core/CMakeFiles/ds_core.dir/tsp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/ds_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/ds_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ds_power.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ds_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
