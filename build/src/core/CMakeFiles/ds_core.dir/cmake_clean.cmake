file(REMOVE_RECURSE
  "CMakeFiles/ds_core.dir/boosting.cpp.o"
  "CMakeFiles/ds_core.dir/boosting.cpp.o.d"
  "CMakeFiles/ds_core.dir/dsrem.cpp.o"
  "CMakeFiles/ds_core.dir/dsrem.cpp.o.d"
  "CMakeFiles/ds_core.dir/dtm.cpp.o"
  "CMakeFiles/ds_core.dir/dtm.cpp.o.d"
  "CMakeFiles/ds_core.dir/estimator.cpp.o"
  "CMakeFiles/ds_core.dir/estimator.cpp.o.d"
  "CMakeFiles/ds_core.dir/mapping.cpp.o"
  "CMakeFiles/ds_core.dir/mapping.cpp.o.d"
  "CMakeFiles/ds_core.dir/ntc.cpp.o"
  "CMakeFiles/ds_core.dir/ntc.cpp.o.d"
  "CMakeFiles/ds_core.dir/online_manager.cpp.o"
  "CMakeFiles/ds_core.dir/online_manager.cpp.o.d"
  "CMakeFiles/ds_core.dir/sprint.cpp.o"
  "CMakeFiles/ds_core.dir/sprint.cpp.o.d"
  "CMakeFiles/ds_core.dir/tsp.cpp.o"
  "CMakeFiles/ds_core.dir/tsp.cpp.o.d"
  "libds_core.a"
  "libds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
