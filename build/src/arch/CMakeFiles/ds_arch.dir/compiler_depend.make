# Empty compiler generated dependencies file for ds_arch.
# This may be replaced when dependencies are built.
