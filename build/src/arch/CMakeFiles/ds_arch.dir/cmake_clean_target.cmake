file(REMOVE_RECURSE
  "libds_arch.a"
)
