file(REMOVE_RECURSE
  "CMakeFiles/ds_arch.dir/platform.cpp.o"
  "CMakeFiles/ds_arch.dir/platform.cpp.o.d"
  "CMakeFiles/ds_arch.dir/variation.cpp.o"
  "CMakeFiles/ds_arch.dir/variation.cpp.o.d"
  "libds_arch.a"
  "libds_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
