file(REMOVE_RECURSE
  "CMakeFiles/ds_util.dir/args.cpp.o"
  "CMakeFiles/ds_util.dir/args.cpp.o.d"
  "CMakeFiles/ds_util.dir/csv.cpp.o"
  "CMakeFiles/ds_util.dir/csv.cpp.o.d"
  "CMakeFiles/ds_util.dir/lu.cpp.o"
  "CMakeFiles/ds_util.dir/lu.cpp.o.d"
  "CMakeFiles/ds_util.dir/matrix.cpp.o"
  "CMakeFiles/ds_util.dir/matrix.cpp.o.d"
  "CMakeFiles/ds_util.dir/stats.cpp.o"
  "CMakeFiles/ds_util.dir/stats.cpp.o.d"
  "CMakeFiles/ds_util.dir/table.cpp.o"
  "CMakeFiles/ds_util.dir/table.cpp.o.d"
  "libds_util.a"
  "libds_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
