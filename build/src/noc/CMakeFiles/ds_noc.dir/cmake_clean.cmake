file(REMOVE_RECURSE
  "CMakeFiles/ds_noc.dir/mesh.cpp.o"
  "CMakeFiles/ds_noc.dir/mesh.cpp.o.d"
  "libds_noc.a"
  "libds_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
