# Empty dependencies file for ds_noc.
# This may be replaced when dependencies are built.
