file(REMOVE_RECURSE
  "libds_noc.a"
)
