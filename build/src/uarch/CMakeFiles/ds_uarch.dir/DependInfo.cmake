
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/branch_predictor.cpp" "src/uarch/CMakeFiles/ds_uarch.dir/branch_predictor.cpp.o" "gcc" "src/uarch/CMakeFiles/ds_uarch.dir/branch_predictor.cpp.o.d"
  "/root/repo/src/uarch/cache.cpp" "src/uarch/CMakeFiles/ds_uarch.dir/cache.cpp.o" "gcc" "src/uarch/CMakeFiles/ds_uarch.dir/cache.cpp.o.d"
  "/root/repo/src/uarch/characterize.cpp" "src/uarch/CMakeFiles/ds_uarch.dir/characterize.cpp.o" "gcc" "src/uarch/CMakeFiles/ds_uarch.dir/characterize.cpp.o.d"
  "/root/repo/src/uarch/corun.cpp" "src/uarch/CMakeFiles/ds_uarch.dir/corun.cpp.o" "gcc" "src/uarch/CMakeFiles/ds_uarch.dir/corun.cpp.o.d"
  "/root/repo/src/uarch/energy_model.cpp" "src/uarch/CMakeFiles/ds_uarch.dir/energy_model.cpp.o" "gcc" "src/uarch/CMakeFiles/ds_uarch.dir/energy_model.cpp.o.d"
  "/root/repo/src/uarch/multicore.cpp" "src/uarch/CMakeFiles/ds_uarch.dir/multicore.cpp.o" "gcc" "src/uarch/CMakeFiles/ds_uarch.dir/multicore.cpp.o.d"
  "/root/repo/src/uarch/ooo_core.cpp" "src/uarch/CMakeFiles/ds_uarch.dir/ooo_core.cpp.o" "gcc" "src/uarch/CMakeFiles/ds_uarch.dir/ooo_core.cpp.o.d"
  "/root/repo/src/uarch/trace_gen.cpp" "src/uarch/CMakeFiles/ds_uarch.dir/trace_gen.cpp.o" "gcc" "src/uarch/CMakeFiles/ds_uarch.dir/trace_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/ds_power.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
