# Empty dependencies file for ds_uarch.
# This may be replaced when dependencies are built.
