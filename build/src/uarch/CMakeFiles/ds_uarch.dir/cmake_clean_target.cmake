file(REMOVE_RECURSE
  "libds_uarch.a"
)
