file(REMOVE_RECURSE
  "CMakeFiles/ds_uarch.dir/branch_predictor.cpp.o"
  "CMakeFiles/ds_uarch.dir/branch_predictor.cpp.o.d"
  "CMakeFiles/ds_uarch.dir/cache.cpp.o"
  "CMakeFiles/ds_uarch.dir/cache.cpp.o.d"
  "CMakeFiles/ds_uarch.dir/characterize.cpp.o"
  "CMakeFiles/ds_uarch.dir/characterize.cpp.o.d"
  "CMakeFiles/ds_uarch.dir/corun.cpp.o"
  "CMakeFiles/ds_uarch.dir/corun.cpp.o.d"
  "CMakeFiles/ds_uarch.dir/energy_model.cpp.o"
  "CMakeFiles/ds_uarch.dir/energy_model.cpp.o.d"
  "CMakeFiles/ds_uarch.dir/multicore.cpp.o"
  "CMakeFiles/ds_uarch.dir/multicore.cpp.o.d"
  "CMakeFiles/ds_uarch.dir/ooo_core.cpp.o"
  "CMakeFiles/ds_uarch.dir/ooo_core.cpp.o.d"
  "CMakeFiles/ds_uarch.dir/trace_gen.cpp.o"
  "CMakeFiles/ds_uarch.dir/trace_gen.cpp.o.d"
  "libds_uarch.a"
  "libds_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
