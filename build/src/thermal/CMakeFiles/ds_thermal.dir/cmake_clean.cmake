file(REMOVE_RECURSE
  "CMakeFiles/ds_thermal.dir/floorplan.cpp.o"
  "CMakeFiles/ds_thermal.dir/floorplan.cpp.o.d"
  "CMakeFiles/ds_thermal.dir/rc_model.cpp.o"
  "CMakeFiles/ds_thermal.dir/rc_model.cpp.o.d"
  "CMakeFiles/ds_thermal.dir/steady_state.cpp.o"
  "CMakeFiles/ds_thermal.dir/steady_state.cpp.o.d"
  "CMakeFiles/ds_thermal.dir/subcore.cpp.o"
  "CMakeFiles/ds_thermal.dir/subcore.cpp.o.d"
  "CMakeFiles/ds_thermal.dir/thermal_map.cpp.o"
  "CMakeFiles/ds_thermal.dir/thermal_map.cpp.o.d"
  "CMakeFiles/ds_thermal.dir/transient.cpp.o"
  "CMakeFiles/ds_thermal.dir/transient.cpp.o.d"
  "libds_thermal.a"
  "libds_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
