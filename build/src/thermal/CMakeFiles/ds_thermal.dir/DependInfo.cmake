
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/floorplan.cpp" "src/thermal/CMakeFiles/ds_thermal.dir/floorplan.cpp.o" "gcc" "src/thermal/CMakeFiles/ds_thermal.dir/floorplan.cpp.o.d"
  "/root/repo/src/thermal/rc_model.cpp" "src/thermal/CMakeFiles/ds_thermal.dir/rc_model.cpp.o" "gcc" "src/thermal/CMakeFiles/ds_thermal.dir/rc_model.cpp.o.d"
  "/root/repo/src/thermal/steady_state.cpp" "src/thermal/CMakeFiles/ds_thermal.dir/steady_state.cpp.o" "gcc" "src/thermal/CMakeFiles/ds_thermal.dir/steady_state.cpp.o.d"
  "/root/repo/src/thermal/subcore.cpp" "src/thermal/CMakeFiles/ds_thermal.dir/subcore.cpp.o" "gcc" "src/thermal/CMakeFiles/ds_thermal.dir/subcore.cpp.o.d"
  "/root/repo/src/thermal/thermal_map.cpp" "src/thermal/CMakeFiles/ds_thermal.dir/thermal_map.cpp.o" "gcc" "src/thermal/CMakeFiles/ds_thermal.dir/thermal_map.cpp.o.d"
  "/root/repo/src/thermal/transient.cpp" "src/thermal/CMakeFiles/ds_thermal.dir/transient.cpp.o" "gcc" "src/thermal/CMakeFiles/ds_thermal.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
