file(REMOVE_RECURSE
  "libds_thermal.a"
)
