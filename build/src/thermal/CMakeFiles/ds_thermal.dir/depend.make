# Empty dependencies file for ds_thermal.
# This may be replaced when dependencies are built.
