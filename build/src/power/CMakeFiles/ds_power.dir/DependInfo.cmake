
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/dvfs.cpp" "src/power/CMakeFiles/ds_power.dir/dvfs.cpp.o" "gcc" "src/power/CMakeFiles/ds_power.dir/dvfs.cpp.o.d"
  "/root/repo/src/power/leakage.cpp" "src/power/CMakeFiles/ds_power.dir/leakage.cpp.o" "gcc" "src/power/CMakeFiles/ds_power.dir/leakage.cpp.o.d"
  "/root/repo/src/power/power_model.cpp" "src/power/CMakeFiles/ds_power.dir/power_model.cpp.o" "gcc" "src/power/CMakeFiles/ds_power.dir/power_model.cpp.o.d"
  "/root/repo/src/power/technology.cpp" "src/power/CMakeFiles/ds_power.dir/technology.cpp.o" "gcc" "src/power/CMakeFiles/ds_power.dir/technology.cpp.o.d"
  "/root/repo/src/power/vf_curve.cpp" "src/power/CMakeFiles/ds_power.dir/vf_curve.cpp.o" "gcc" "src/power/CMakeFiles/ds_power.dir/vf_curve.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
