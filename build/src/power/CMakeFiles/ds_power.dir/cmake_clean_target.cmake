file(REMOVE_RECURSE
  "libds_power.a"
)
