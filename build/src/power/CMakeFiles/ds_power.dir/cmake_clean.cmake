file(REMOVE_RECURSE
  "CMakeFiles/ds_power.dir/dvfs.cpp.o"
  "CMakeFiles/ds_power.dir/dvfs.cpp.o.d"
  "CMakeFiles/ds_power.dir/leakage.cpp.o"
  "CMakeFiles/ds_power.dir/leakage.cpp.o.d"
  "CMakeFiles/ds_power.dir/power_model.cpp.o"
  "CMakeFiles/ds_power.dir/power_model.cpp.o.d"
  "CMakeFiles/ds_power.dir/technology.cpp.o"
  "CMakeFiles/ds_power.dir/technology.cpp.o.d"
  "CMakeFiles/ds_power.dir/vf_curve.cpp.o"
  "CMakeFiles/ds_power.dir/vf_curve.cpp.o.d"
  "libds_power.a"
  "libds_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
