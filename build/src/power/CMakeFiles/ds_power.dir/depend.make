# Empty dependencies file for ds_power.
# This may be replaced when dependencies are built.
