file(REMOVE_RECURSE
  "CMakeFiles/ds_apps.dir/app_profile.cpp.o"
  "CMakeFiles/ds_apps.dir/app_profile.cpp.o.d"
  "CMakeFiles/ds_apps.dir/workload.cpp.o"
  "CMakeFiles/ds_apps.dir/workload.cpp.o.d"
  "libds_apps.a"
  "libds_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
