
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_profile.cpp" "src/apps/CMakeFiles/ds_apps.dir/app_profile.cpp.o" "gcc" "src/apps/CMakeFiles/ds_apps.dir/app_profile.cpp.o.d"
  "/root/repo/src/apps/workload.cpp" "src/apps/CMakeFiles/ds_apps.dir/workload.cpp.o" "gcc" "src/apps/CMakeFiles/ds_apps.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/ds_power.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
