file(REMOVE_RECURSE
  "libds_apps.a"
)
