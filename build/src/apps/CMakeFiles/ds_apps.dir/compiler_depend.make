# Empty compiler generated dependencies file for ds_apps.
# This may be replaced when dependencies are built.
