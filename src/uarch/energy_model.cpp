#include "uarch/energy_model.hpp"

#include "power/technology.hpp"

namespace ds::uarch {

EnergyBreakdown ReduceToEquationOne(const SimResult& sim,
                                    const EnergyParams& params) {
  EnergyBreakdown out;
  if (sim.cycles == 0) return out;
  const ActivityCounters& a = sim.activity;
  const double total_pj =
      static_cast<double>(a.fetched) *
          (params.fetch_decode_rename + params.rob) +
      static_cast<double>(a.rf_reads) * params.rf_read +
      static_cast<double>(a.rf_writes) * params.rf_write +
      static_cast<double>(a.int_ops) * params.int_alu +
      static_cast<double>(a.mul_ops) * params.int_mul +
      static_cast<double>(a.fp_ops) * params.fp_alu +
      static_cast<double>(a.l1_accesses) * params.l1_access +
      static_cast<double>(a.l2_accesses) * params.l2_access +
      static_cast<double>(a.memory_accesses) * params.memory_access +
      static_cast<double>(a.branches) * params.branch_predict;

  out.dynamic_pj_per_cycle = total_pj / static_cast<double>(sim.cycles);
  out.clock_pj_per_cycle = params.clock_tree_per_cycle;

  const power::TechnologyParams& t22 = power::Tech(power::TechNode::N22);
  const double vdd2 = t22.nominal_vdd * t22.nominal_vdd;
  // pJ / V^2 = 1e-12 F = 1e-3 nF.
  out.ceff22_nf = out.dynamic_pj_per_cycle / vdd2 * 1e-3;
  // pJ * GHz = mW.
  out.pind22_w = out.clock_pj_per_cycle * t22.nominal_freq * 1e-3;
  return out;
}

}  // namespace ds::uarch
