// Set-associative cache simulation with true LRU, plus a two-level
// hierarchy (L1D -> L2 -> memory) that returns per-access load latency.
//
// Configurations default to an Alpha 21264-class memory system scaled
// to the paper's era: 64 KiB 2-way L1D (3 cycles), 2 MiB 16-way shared-
// slice L2 (12 cycles), 180-cycle memory.
#pragma once

#include <cstdint>
#include <vector>

namespace ds::uarch {

struct CacheConfig {
  std::size_t size_kb = 64;
  std::size_t line_bytes = 64;
  std::size_t ways = 2;
  int latency = 3;  // [cycles] hit latency
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  double MissRate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

/// One cache level with true-LRU replacement.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Looks up `addr`; allocates on miss. Returns true on hit.
  bool Access(std::uint64_t addr);

  /// Installs the line containing `addr` without touching the stats
  /// (prefetches).
  void Insert(std::uint64_t addr);

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  std::size_t num_sets() const { return sets_; }
  void ResetStats() { stats_ = CacheStats{}; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // last-use timestamp
    bool valid = false;
  };

  CacheConfig config_;
  std::size_t sets_;
  std::uint64_t tick_ = 0;
  std::vector<Line> lines_;  // sets_ x ways, row-major
  CacheStats stats_;
};

/// L1D -> L2 -> memory. Returns the load-to-use latency of an access.
class MemoryHierarchy {
 public:
  MemoryHierarchy(const CacheConfig& l1 = {64, 64, 2, 3},
                  const CacheConfig& l2 = {2048, 64, 16, 12},
                  int memory_latency = 180, bool next_line_prefetch = true);

  /// Performs the access and returns its latency in cycles. With
  /// next-line prefetching enabled, every L1 miss also installs the
  /// following cache line (sequential streams then miss once per
  /// stream, not once per line).
  int Access(std::uint64_t addr);

  const Cache& l1() const { return l1_; }
  const Cache& l2() const { return l2_; }
  int memory_latency() const { return memory_latency_; }
  void ResetStats();

 private:
  Cache l1_;
  Cache l2_;
  int memory_latency_;
  bool next_line_prefetch_;
};

}  // namespace ds::uarch
