#include "uarch/ooo_core.hpp"

#include <algorithm>
#include <vector>

namespace ds::uarch {

OooCore::OooCore(const CoreConfig& config) : config_(config) {}

SimResult OooCore::Run(std::span<const MicroOp> trace, std::size_t warmup) {
  SimResult result;
  if (warmup >= trace.size()) warmup = 0;
  result.instructions = trace.size() - warmup;
  if (trace.empty()) return result;

  MemoryHierarchy memory(config_.l1d, config_.l2, config_.memory_latency);
  GsharePredictor predictor;

  // Completion times of the in-flight window (circular by uop index).
  const std::size_t rob = static_cast<std::size_t>(config_.rob_size);
  std::vector<std::uint64_t> completion(trace.size(), 0);

  std::uint64_t fetch_available = 0;  // front-end stall horizon
  std::uint64_t last_completion = 0;
  std::uint64_t warmup_cycles = 0;
  ActivityCounters& act = result.activity;

  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i == warmup && warmup != 0) {
      // Measurement starts here: caches and predictor stay warm, all
      // statistics reset.
      warmup_cycles = last_completion;
      act = ActivityCounters{};
      memory.ResetStats();
      predictor.ResetStats();
    }
    const MicroOp& op = trace[i];

    // Dispatch: width-limited, ROB-limited, and after any refetch.
    std::uint64_t dispatch =
        std::max(fetch_available,
                 static_cast<std::uint64_t>(i / static_cast<std::size_t>(
                                                config_.width)));
    if (i >= rob) dispatch = std::max(dispatch, completion[i - rob]);

    // Operand readiness from producer distances.
    std::uint64_t ready = dispatch;
    if (op.dep1 != 0 && op.dep1 <= i)
      ready = std::max(ready, completion[i - op.dep1]);
    if (op.dep2 != 0 && op.dep2 <= i)
      ready = std::max(ready, completion[i - op.dep2]);
    if (op.dep1 != 0 && op.dep1 <= i) ++act.rf_reads;
    if (op.dep2 != 0 && op.dep2 <= i) ++act.rf_reads;

    int latency = ExecLatency(op.cls);
    switch (op.cls) {
      case OpClass::kIntAlu:
        ++act.int_ops;
        ++act.rf_writes;
        break;
      case OpClass::kIntMul:
        ++act.mul_ops;
        ++act.rf_writes;
        break;
      case OpClass::kFpAlu:
        ++act.fp_ops;
        ++act.rf_writes;
        break;
      case OpClass::kLoad: {
        const Cache& l1_before = memory.l1();
        const Cache& l2_before = memory.l2();
        const std::uint64_t l1_miss0 = l1_before.stats().misses;
        const std::uint64_t l2_acc0 = l2_before.stats().accesses;
        const std::uint64_t l2_miss0 = l2_before.stats().misses;
        latency += memory.Access(op.addr);
        ++act.l1_accesses;
        if (memory.l2().stats().accesses > l2_acc0) ++act.l2_accesses;
        if (memory.l2().stats().misses > l2_miss0) ++act.memory_accesses;
        (void)l1_miss0;
        ++act.rf_writes;
        break;
      }
      case OpClass::kStore: {
        const std::uint64_t l2_acc0 = memory.l2().stats().accesses;
        const std::uint64_t l2_miss0 = memory.l2().stats().misses;
        memory.Access(op.addr);  // store buffer hides the latency
        ++act.l1_accesses;
        if (memory.l2().stats().accesses > l2_acc0) ++act.l2_accesses;
        if (memory.l2().stats().misses > l2_miss0) ++act.memory_accesses;
        break;
      }
      case OpClass::kBranch: {
        ++act.branches;
        const bool correct = predictor.PredictAndUpdate(op.addr, op.taken);
        if (!correct) {
          // Refetch after the branch resolves.
          const std::uint64_t resolve = ready + static_cast<std::uint64_t>(
                                                     latency);
          fetch_available = std::max(
              fetch_available,
              resolve + static_cast<std::uint64_t>(
                            config_.mispredict_penalty));
        }
        break;
      }
    }
    ++act.fetched;

    completion[i] = ready + static_cast<std::uint64_t>(latency);
    last_completion = std::max(last_completion, completion[i]);
  }

  result.cycles = last_completion - warmup_cycles;
  result.ipc = static_cast<double>(result.instructions) /
               static_cast<double>(result.cycles);
  result.l1_miss_rate = memory.l1().stats().MissRate();
  result.l2_miss_rate = memory.l2().stats().MissRate();
  result.mpki_l2 = 1000.0 *
                   static_cast<double>(memory.l2().stats().misses) /
                   static_cast<double>(result.instructions);
  result.branch_mispredict_rate = predictor.stats().MispredictRate();
  return result;
}

}  // namespace ds::uarch
