#include "uarch/branch_predictor.hpp"

#include <stdexcept>

namespace ds::uarch {

GsharePredictor::GsharePredictor(unsigned table_bits) {
  if (table_bits == 0 || table_bits > 24)
    throw std::invalid_argument("GsharePredictor: table_bits out of range");
  table_.assign(1ULL << table_bits, 2);  // weakly taken
  mask_ = (1ULL << table_bits) - 1;
}

bool GsharePredictor::PredictAndUpdate(std::uint64_t pc, bool taken) {
  const std::size_t idx =
      static_cast<std::size_t>(((pc >> 2) ^ history_) & mask_);
  std::uint8_t& counter = table_[idx];
  const bool predicted = counter >= 2;
  ++stats_.predictions;
  if (predicted != taken) ++stats_.mispredictions;
  if (taken && counter < 3) ++counter;
  if (!taken && counter > 0) --counter;
  history_ = ((history_ << 1) | (taken ? 1 : 0)) & mask_;
  return predicted == taken;
}

}  // namespace ds::uarch
