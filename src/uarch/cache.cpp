#include "uarch/cache.hpp"

#include <stdexcept>

namespace ds::uarch {

Cache::Cache(const CacheConfig& config) : config_(config) {
  if (config.size_kb == 0 || config.line_bytes == 0 || config.ways == 0)
    throw std::invalid_argument("Cache: zero-sized configuration");
  const std::size_t total_lines =
      config.size_kb * 1024 / config.line_bytes;
  if (total_lines % config.ways != 0)
    throw std::invalid_argument("Cache: lines not divisible by ways");
  sets_ = total_lines / config.ways;
  if ((sets_ & (sets_ - 1)) != 0)
    throw std::invalid_argument("Cache: set count must be a power of two");
  lines_.resize(sets_ * config.ways);
}

bool Cache::Access(std::uint64_t addr) {
  ++stats_.accesses;
  ++tick_;
  const std::uint64_t line_addr = addr / config_.line_bytes;
  const std::size_t set = static_cast<std::size_t>(line_addr) & (sets_ - 1);
  const std::uint64_t tag = line_addr / sets_;
  Line* base = lines_.data() + set * config_.ways;

  for (std::size_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = tick_;
      return true;
    }
  }
  ++stats_.misses;
  // Victim: first invalid way, otherwise true LRU.
  Line* victim = base;
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.lru < victim->lru) victim = &line;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  return false;
}

void Cache::Insert(std::uint64_t addr) {
  ++tick_;
  const std::uint64_t line_addr = addr / config_.line_bytes;
  const std::size_t set = static_cast<std::size_t>(line_addr) & (sets_ - 1);
  const std::uint64_t tag = line_addr / sets_;
  Line* base = lines_.data() + set * config_.ways;
  Line* victim = base;
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = tick_;
      return;  // already present
    }
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.lru < victim->lru) victim = &line;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
}

MemoryHierarchy::MemoryHierarchy(const CacheConfig& l1,
                                 const CacheConfig& l2, int memory_latency,
                                 bool next_line_prefetch)
    : l1_(l1),
      l2_(l2),
      memory_latency_(memory_latency),
      next_line_prefetch_(next_line_prefetch) {}

int MemoryHierarchy::Access(std::uint64_t addr) {
  if (l1_.Access(addr)) return l1_.config().latency;
  if (next_line_prefetch_) {
    const std::uint64_t next =
        addr + static_cast<std::uint64_t>(l1_.config().line_bytes);
    l1_.Insert(next);
    l2_.Insert(next);
  }
  if (l2_.Access(addr)) return l1_.config().latency + l2_.config().latency;
  return l1_.config().latency + l2_.config().latency + memory_latency_;
}

void MemoryHierarchy::ResetStats() {
  l1_.ResetStats();
  l2_.ResetStats();
}

}  // namespace ds::uarch
