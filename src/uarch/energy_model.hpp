// Event-energy model (McPAT-lite) for the Alpha-class core at 22 nm.
//
// McPAT turns architectural activity counters into power; this compact
// equivalent assigns each micro-architectural event a per-access energy
// (order-of-magnitude values for a 22 nm high-performance process,
// uncore share included) and reduces a simulation's activity counters
// to the Eq. (1) constants:
//
//   Ceff  = E_dynamic_per_cycle / Vdd_nom^2           (per-app)
//   P_ind = E_clock_per_cycle * f_nom                 (clock tree/PLL)
//
// The absolute energy scale is calibrated once against the paper's
// Fig. 3 operating point (H.264, ~15 W total at 4 GHz single-thread).
#pragma once

#include "uarch/ooo_core.hpp"

namespace ds::uarch {

/// Per-event energies [pJ] at 22 nm, Vdd = 1.25 V.
struct EnergyParams {
  double fetch_decode_rename = 450.0;  // front-end, per uop
  double rob = 150.0;                  // allocate + commit, per uop
  double rf_read = 70.0;
  double rf_write = 90.0;
  double int_alu = 150.0;
  double int_mul = 400.0;
  double fp_alu = 550.0;
  double l1_access = 250.0;
  double l2_access = 1200.0;
  double memory_access = 3500.0;       // on-die controller + IO share
  double branch_predict = 50.0;
  double clock_tree_per_cycle = 260.0; // always-on while executing
};

struct EnergyBreakdown {
  double dynamic_pj_per_cycle = 0.0;  // excludes the clock tree
  double clock_pj_per_cycle = 0.0;
  double ceff22_nf = 0.0;             // Eq. (1) effective capacitance
  double pind22_w = 0.0;              // Eq. (1) independent power
};

/// Reduces a simulation result to Eq. (1) constants at 22 nm.
EnergyBreakdown ReduceToEquationOne(const SimResult& sim,
                                    const EnergyParams& params = {});

}  // namespace ds::uarch
