#include "uarch/multicore.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "util/rng.hpp"

namespace ds::uarch {

const std::vector<SyncParams>& ParsecSyncParams() {
  // critical_entry_prob * critical_length approximates the serialized
  // work fraction (the Amdahl limit is its reciprocal); barriers add
  // straggler losses on top. Targets: the serial fractions of the
  // calibrated table (x264 0.30, blackscholes 0.05, bodytrack 0.39,
  // ferret 0.20, canneal 0.58, dedup 0.25, swaptions 0.08).
  static const std::vector<SyncParams> params = {
      //  name           p_cs      L_cs  barrier  imbalance
      {"x264",           1.75e-3,  200,  40000,   0.20},
      {"blackscholes",   0.35e-3,  200,  200000,  0.08},
      {"bodytrack",      2.30e-3,  200,  25000,   0.25},
      {"ferret",         1.25e-3,  200,  60000,   0.15},
      {"canneal",        3.20e-3,  200,  15000,   0.30},
      {"dedup",          1.50e-3,  200,  50000,   0.18},
      {"swaptions",      0.60e-3,  200,  150000,  0.10},
  };
  return params;
}

const SyncParams& SyncParamsByName(const std::string& name) {
  for (const SyncParams& p : ParsecSyncParams())
    if (p.name == name) return p;
  throw std::invalid_argument("SyncParamsByName: unknown app " + name);
}

SpeedupResult SimulateSpeedup(const SyncParams& params, std::size_t threads,
                              std::size_t total_instructions,
                              std::uint64_t seed) {
  if (threads == 0)
    throw std::invalid_argument("SimulateSpeedup: need at least one thread");
  SpeedupResult result;
  result.threads = threads;
  if (threads == 1) return result;  // speedup 1 by definition

  util::Rng rng(seed);
  const double budget_per_thread =
      static_cast<double>(total_instructions) / static_cast<double>(threads);
  const std::size_t interval =
      params.barrier_interval == 0
          ? static_cast<std::size_t>(budget_per_thread)
          : params.barrier_interval;
  const std::size_t num_barriers = static_cast<std::size_t>(
      std::ceil(budget_per_thread / static_cast<double>(interval)));

  double barrier_start = 0.0;  // time at which the epoch began
  double lock_wait = 0.0;
  double barrier_wait = 0.0;

  for (std::size_t b = 0; b < num_barriers; ++b) {
    const double work_base = std::min(
        static_cast<double>(interval),
        budget_per_thread - static_cast<double>(b * interval));

    // Per-thread segment structure: section offsets within this epoch.
    struct ThreadState {
      std::vector<double> gaps;  // instruction gaps between sections
      std::size_t next_gap = 0;
      double time = 0.0;
      double finish = 0.0;
    };
    std::vector<ThreadState> ts(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      // Straggler imbalance: epoch work varies per thread.
      const double work =
          work_base * (1.0 + params.imbalance * rng.Uniform(-1.0, 1.0));
      // Number of critical sections this epoch.
      const double expected = work * params.critical_entry_prob;
      std::size_t k = static_cast<std::size_t>(expected);
      if (rng.Uniform(0.0, 1.0) < expected - static_cast<double>(k)) ++k;
      // Split the non-critical work into k+1 gaps (uniform stick
      // breaking around the mean keeps it simple and deterministic).
      const double non_critical = std::max(
          0.0, work - static_cast<double>(k) * params.critical_length);
      ThreadState& state = ts[t];
      state.gaps.assign(k + 1, non_critical / static_cast<double>(k + 1));
      state.time = barrier_start;
    }

    // FIFO lock: serve section requests in chronological order.
    using Request = std::pair<double, std::size_t>;  // (time, thread)
    std::priority_queue<Request, std::vector<Request>, std::greater<>> queue;
    for (std::size_t t = 0; t < threads; ++t) {
      ThreadState& state = ts[t];
      if (state.gaps.size() > 1) {
        queue.push({state.time + state.gaps[0], t});
        state.next_gap = 1;
      } else {
        state.finish = state.time + state.gaps[0];
      }
    }
    double lock_free = 0.0;
    while (!queue.empty()) {
      const auto [request_time, t] = queue.top();
      queue.pop();
      ThreadState& state = ts[t];
      const double acquire = std::max(request_time, lock_free);
      lock_wait += acquire - request_time;
      const double done =
          acquire + static_cast<double>(params.critical_length);
      lock_free = done;
      if (state.next_gap + 1 < state.gaps.size()) {
        queue.push({done + state.gaps[state.next_gap], t});
        ++state.next_gap;
      } else {
        state.finish = done + state.gaps[state.next_gap];
      }
    }

    double barrier_time = 0.0;
    for (const ThreadState& state : ts)
      barrier_time = std::max(barrier_time, state.finish);
    for (const ThreadState& state : ts)
      barrier_wait += barrier_time - state.finish;
    barrier_start = barrier_time;
  }

  const double parallel_time = barrier_start;
  result.speedup =
      static_cast<double>(total_instructions) / parallel_time;
  const double total_thread_time =
      parallel_time * static_cast<double>(threads);
  result.lock_wait_fraction = lock_wait / total_thread_time;
  result.barrier_wait_fraction = barrier_wait / total_thread_time;
  return result;
}

double FitSerialFraction(const std::vector<SpeedupResult>& curve) {
  double best_s = 0.0;
  double best_err = 1e300;
  for (double s = 0.0; s <= 1.0; s += 1e-4) {
    double err = 0.0;
    for (const SpeedupResult& point : curve) {
      const double n = static_cast<double>(point.threads);
      const double model = 1.0 / (s + (1.0 - s) / n);
      err += (model - point.speedup) * (model - point.speedup);
    }
    if (err < best_err) {
      best_err = err;
      best_s = s;
    }
  }
  return best_s;
}

}  // namespace ds::uarch
