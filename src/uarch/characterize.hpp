// End-to-end application characterization: synthetic trace -> OoO core
// + caches + predictor -> event energies -> Eq. (1) constants. This is
// the repository's substitute for the paper's "gem5 + McPAT for 22 nm"
// stage (Fig. 1, left box), and cross-validates the calibrated
// application table in src/apps (see bench_ext_characterization).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "uarch/energy_model.hpp"
#include "uarch/ooo_core.hpp"
#include "uarch/trace_gen.hpp"

namespace ds::uarch {

struct Characterization {
  std::string name;
  SimResult sim;
  EnergyBreakdown energy;
  double ipc = 0.0;        // convenience copy of sim.ipc
  double ceff22_nf = 0.0;  // convenience copy of energy.ceff22_nf
  double pind22_w = 0.0;
};

/// Characterizes one application from its trace statistics.
Characterization Characterize(const TraceParams& params,
                              const CoreConfig& core = {},
                              std::size_t trace_length = 800000,
                              std::uint64_t seed = 42);

/// Characterizes the whole Parsec set (deterministic).
std::vector<Characterization> CharacterizeParsec(
    const CoreConfig& core = {}, std::size_t trace_length = 800000,
    std::uint64_t seed = 42);

}  // namespace ds::uarch
