// Trace-driven out-of-order core timing model (Alpha 21264-class).
//
// A dependency-and-resource timing simulation in the spirit of interval
// analysis (Karkhanis & Smith): each micro-op dispatches subject to the
// front-end width, the ROB window and branch-misprediction refetch
// stalls, starts executing when its producers complete, and finishes
// after its class latency (loads add the cache-hierarchy latency).
// This captures exactly the effects the paper's application model
// needs -- ILP from dependency distances, the memory wall from the
// working set, and control stalls from branch behaviour -- at a cost of
// nanoseconds per simulated instruction.
#pragma once

#include <cstdint>
#include <span>

#include "uarch/branch_predictor.hpp"
#include "uarch/cache.hpp"
#include "uarch/uop.hpp"

namespace ds::uarch {

struct CoreConfig {
  int width = 4;              // fetch/dispatch/retire width
  int rob_size = 80;          // in-flight window (21264: 80)
  int mispredict_penalty = 7; // refetch cycles (21264 pipeline depth)
  CacheConfig l1d = {64, 64, 2, 3};
  CacheConfig l2 = {2048, 64, 16, 12};
  int memory_latency = 180;
};

/// Per-structure access counters feeding the energy model.
struct ActivityCounters {
  std::uint64_t fetched = 0;     // front-end slots used
  std::uint64_t rf_reads = 0;    // register-file read ports
  std::uint64_t rf_writes = 0;
  std::uint64_t int_ops = 0;
  std::uint64_t mul_ops = 0;
  std::uint64_t fp_ops = 0;
  std::uint64_t l1_accesses = 0;
  std::uint64_t l2_accesses = 0;
  std::uint64_t memory_accesses = 0;
  std::uint64_t branches = 0;
};

struct SimResult {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  double ipc = 0.0;
  double l1_miss_rate = 0.0;
  double l2_miss_rate = 0.0;   // of L2 accesses
  double mpki_l2 = 0.0;        // L2 misses per kilo-instruction
  double branch_mispredict_rate = 0.0;
  ActivityCounters activity;
};

class OooCore {
 public:
  explicit OooCore(const CoreConfig& config = {});

  /// Runs the trace to completion and returns aggregate statistics.
  /// The first `warmup` micro-ops execute normally (filling caches and
  /// the predictor) but are excluded from every reported statistic.
  SimResult Run(std::span<const MicroOp> trace, std::size_t warmup = 0);

 private:
  CoreConfig config_;
};

}  // namespace ds::uarch
