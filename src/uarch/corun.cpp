#include "uarch/corun.hpp"

#include <algorithm>

#include "uarch/branch_predictor.hpp"
#include "uarch/cache.hpp"

namespace ds::uarch {
namespace {

/// Per-core out-of-order timing state (the same dependency/window
/// arithmetic as OooCore::Run, factored for lockstep execution).
struct CoreState {
  std::vector<MicroOp> trace;
  std::vector<std::uint64_t> completion;
  std::size_t next = 0;
  std::uint64_t fetch_available = 0;
  std::uint64_t last_completion = 0;
  Cache l1;
  GsharePredictor predictor;

  explicit CoreState(const CacheConfig& l1_cfg) : l1(l1_cfg) {}
};

}  // namespace

CoRunResult SimulateCoRun(const TraceParams& params, std::size_t cores,
                          const CoreConfig& config,
                          std::size_t instructions_per_core,
                          std::uint64_t seed) {
  CoRunResult result;
  result.cores = cores;

  // Solo reference: the plain single-core simulation, same trace
  // length and no warmup, so cold-start effects cancel in the
  // degradation ratio.
  {
    OooCore solo(config);
    const SimResult r =
        solo.Run(GenerateTrace(params, instructions_per_core, seed));
    result.solo_ipc = r.ipc;
    result.solo_l2_miss_rate = r.l2_miss_rate;
  }
  if (cores == 0) return result;

  Cache shared_l2(config.l2);
  std::vector<CoreState> state;
  state.reserve(cores);
  for (std::size_t c = 0; c < cores; ++c) {
    CoreState s(config.l1d);
    s.trace = GenerateTrace(params, instructions_per_core, seed + c);
    s.completion.assign(s.trace.size(), 0);
    state.push_back(std::move(s));
  }

  const std::size_t rob = static_cast<std::size_t>(config.rob_size);
  // Lockstep round-robin: one instruction per core per turn, so the
  // shared L2 sees a temporally interleaved access stream.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (CoreState& s : state) {
      if (s.next >= s.trace.size()) continue;
      progressed = true;
      const std::size_t i = s.next++;
      const MicroOp& op = s.trace[i];

      std::uint64_t dispatch = std::max(
          s.fetch_available,
          static_cast<std::uint64_t>(
              i / static_cast<std::size_t>(config.width)));
      if (i >= rob) dispatch = std::max(dispatch, s.completion[i - rob]);
      std::uint64_t ready = dispatch;
      if (op.dep1 != 0 && op.dep1 <= i)
        ready = std::max(ready, s.completion[i - op.dep1]);
      if (op.dep2 != 0 && op.dep2 <= i)
        ready = std::max(ready, s.completion[i - op.dep2]);

      int latency = ExecLatency(op.cls);
      if (op.cls == OpClass::kLoad || op.cls == OpClass::kStore) {
        // Each instance owns a private working set: offset the core's
        // addresses into a disjoint region of the shared L2's space.
        const std::uint64_t addr =
            op.addr + (static_cast<std::uint64_t>(&s - state.data())
                       << 40);
        int mem_latency;
        if (s.l1.Access(addr)) {
          mem_latency = config.l1d.latency;
        } else {
          // Next-line prefetch, as in MemoryHierarchy.
          const std::uint64_t next =
              addr + static_cast<std::uint64_t>(config.l1d.line_bytes);
          s.l1.Insert(next);
          shared_l2.Insert(next);
          if (shared_l2.Access(addr)) {
            mem_latency = config.l1d.latency + config.l2.latency;
          } else {
            mem_latency = config.l1d.latency + config.l2.latency +
                          config.memory_latency;
          }
        }
        if (op.cls == OpClass::kLoad) latency += mem_latency;
      } else if (op.cls == OpClass::kBranch) {
        if (!s.predictor.PredictAndUpdate(op.addr, op.taken)) {
          const std::uint64_t resolve =
              ready + static_cast<std::uint64_t>(latency);
          s.fetch_available =
              std::max(s.fetch_available,
                       resolve + static_cast<std::uint64_t>(
                                     config.mispredict_penalty));
        }
      }
      s.completion[i] = ready + static_cast<std::uint64_t>(latency);
      s.last_completion = std::max(s.last_completion, s.completion[i]);
    }
  }

  double ipc_sum = 0.0;
  for (const CoreState& s : state) {
    ipc_sum += static_cast<double>(s.trace.size()) /
               static_cast<double>(std::max<std::uint64_t>(
                   1, s.last_completion));
  }
  result.avg_ipc = ipc_sum / static_cast<double>(cores);
  result.degradation = result.solo_ipc > 0.0
                           ? 1.0 - result.avg_ipc / result.solo_ipc
                           : 0.0;
  result.shared_l2_miss_rate = shared_l2.stats().MissRate();
  return result;
}

}  // namespace ds::uarch
