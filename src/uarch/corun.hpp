// Co-run interference: multiple cores sharing the last-level cache.
//
// Every multi-instance experiment in this repository places several
// cores' worth of work on one chip; the analytical application model
// treats their IPCs as independent, but real co-runners contend for
// the shared L2. This module simulates K cores in lockstep -- private
// L1s and branch predictors, one shared L2 -- and reports the
// per-core IPC with contention, quantifying how optimistic the
// independence assumption is per application.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "uarch/ooo_core.hpp"
#include "uarch/trace_gen.hpp"

namespace ds::uarch {

struct CoRunResult {
  std::size_t cores = 1;
  double avg_ipc = 0.0;            // mean per-core IPC while co-running
  double solo_ipc = 0.0;           // same trace statistics, run alone
  double degradation = 0.0;        // 1 - avg/solo
  double shared_l2_miss_rate = 0.0;
  double solo_l2_miss_rate = 0.0;
};

/// Runs `cores` instruction streams with the statistics of `params`
/// (distinct seeds) through private L1s and one shared L2, interleaved
/// round-robin. Deterministic in `seed`.
CoRunResult SimulateCoRun(const TraceParams& params, std::size_t cores,
                          const CoreConfig& config = {},
                          std::size_t instructions_per_core = 400000,
                          std::uint64_t seed = 1);

}  // namespace ds::uarch
