#include "uarch/characterize.hpp"

namespace ds::uarch {

Characterization Characterize(const TraceParams& params,
                              const CoreConfig& core,
                              std::size_t trace_length, std::uint64_t seed) {
  Characterization out;
  out.name = params.name;
  const std::vector<MicroOp> trace =
      GenerateTrace(params, trace_length, seed);
  OooCore sim(core);
  // Warm the caches and predictor on the first third of the trace.
  out.sim = sim.Run(trace, trace.size() / 2);
  out.energy = ReduceToEquationOne(out.sim);
  out.ipc = out.sim.ipc;
  out.ceff22_nf = out.energy.ceff22_nf;
  out.pind22_w = out.energy.pind22_w;
  return out;
}

std::vector<Characterization> CharacterizeParsec(const CoreConfig& core,
                                                 std::size_t trace_length,
                                                 std::uint64_t seed) {
  std::vector<Characterization> out;
  for (const TraceParams& params : ParsecTraceParams())
    out.push_back(Characterize(params, core, trace_length, seed));
  return out;
}

}  // namespace ds::uarch
