// Synthetic instruction-trace generation.
//
// Each application is described by a handful of trace statistics
// (instruction mix, dependency-distance distribution, branch behaviour,
// working-set size, spatial locality); the generator expands them into
// a concrete, deterministic micro-op stream. The statistics for the
// seven Parsec applications are chosen to match their published
// characterization (Bienia et al., PACT'08): blackscholes is a small-
// footprint FP kernel, canneal a pointer-chasing cache thrasher,
// swaptions FP-dense with regular control flow, dedup/ferret mixed
// integer pipelines, x264 and bodytrack branchy integer/FP media codes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "uarch/uop.hpp"

namespace ds::uarch {

struct TraceParams {
  std::string name;
  // Instruction mix (must sum to 1).
  double frac_int_alu = 0.45;
  double frac_int_mul = 0.05;
  double frac_fp = 0.10;
  double frac_load = 0.22;
  double frac_store = 0.08;
  double frac_branch = 0.10;
  // Dependencies: distance to the producer ~ Geometric with the given
  // mean; *larger* distances = looser chains = more ILP. `dep2_prob` is
  // the probability of a second source operand carrying a dependency.
  double avg_dep_distance = 6.0;
  double dep1_prob = 0.75;  // probability the op has an in-flight producer
  double dep2_prob = 0.3;
  // Branch behaviour: loops of `loop_length` iterations (predictable)
  // mixed with a `hard_branch_fraction` of data-dependent branches
  // taken with probability `hard_branch_bias`.
  std::size_t loop_length = 64;
  double hard_branch_fraction = 0.15;
  double hard_branch_bias = 0.5;
  // Memory behaviour: `num_streams` concurrent access streams; each
  // access re-touches a recent address with probability
  // `temporal_reuse`, otherwise continues its stream sequentially with
  // probability `spatial_locality`, otherwise jumps randomly inside the
  // working set.
  std::size_t working_set_kb = 512;
  double temporal_reuse = 0.55;
  double spatial_locality = 0.8;
  std::size_t num_streams = 4;
};

/// The per-application trace statistics used for characterization.
const std::vector<TraceParams>& ParsecTraceParams();
const TraceParams& TraceParamsByName(const std::string& name);

/// Expands `params` into `length` micro-ops, deterministically from
/// `seed`. Throws std::invalid_argument if the mix does not sum to ~1.
std::vector<MicroOp> GenerateTrace(const TraceParams& params,
                                   std::size_t length, std::uint64_t seed);

}  // namespace ds::uarch
