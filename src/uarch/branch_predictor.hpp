// Gshare branch predictor (two-bit saturating counters indexed by
// PC xor global-history), the standard baseline for the Alpha-class
// cores the paper simulates.
#pragma once

#include <cstdint>
#include <vector>

namespace ds::uarch {

struct PredictorStats {
  std::uint64_t predictions = 0;
  std::uint64_t mispredictions = 0;
  double MispredictRate() const {
    return predictions == 0 ? 0.0
                            : static_cast<double>(mispredictions) /
                                  static_cast<double>(predictions);
  }
};

class GsharePredictor {
 public:
  /// `table_bits` selects the counter-table size (2^bits entries).
  explicit GsharePredictor(unsigned table_bits = 12);

  /// Predicts the branch at `pc`, then updates with `taken`.
  /// Returns true if the prediction was correct.
  bool PredictAndUpdate(std::uint64_t pc, bool taken);

  const PredictorStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PredictorStats{}; }

 private:
  std::vector<std::uint8_t> table_;  // 2-bit counters, init weakly taken
  std::uint64_t history_ = 0;
  std::uint64_t mask_;
  PredictorStats stats_;
};

}  // namespace ds::uarch
