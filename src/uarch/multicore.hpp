// Multithreaded execution model: lock contention and barrier imbalance.
//
// The application model's speed-up curves (Fig. 4) are Amdahl fits; the
// underlying mechanics are critical sections (serialized on locks) and
// barriers (wait for the slowest worker). This module simulates those
// mechanics directly: n threads execute equal shares of an instruction
// budget at a per-thread IPC; entering a critical section requires the
// global lock (FIFO), and every `barrier_interval` instructions all
// threads synchronize. The resulting speed-up curve validates -- and
// can replace -- the Amdahl abstraction, including its saturation at
// high thread counts (the paper's "parallelism wall").
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ds::uarch {

struct SyncParams {
  std::string name;
  // Probability per instruction of entering a critical section, and
  // the section's length in instructions.
  double critical_entry_prob = 0.001;
  std::size_t critical_length = 200;
  // Barrier every `barrier_interval` instructions per thread (0 = no
  // barriers); `imbalance` is the relative spread of per-thread work
  // between barriers (stragglers).
  std::size_t barrier_interval = 50000;
  double imbalance = 0.10;
};

/// The per-application synchronization statistics (matched to the same
/// published Parsec characterization as the trace parameters: canneal's
/// fine-grained shared annealing state vs swaptions' independent paths).
const std::vector<SyncParams>& ParsecSyncParams();
const SyncParams& SyncParamsByName(const std::string& name);

struct SpeedupResult {
  std::size_t threads = 1;
  double speedup = 1.0;          // vs the same budget on one thread
  double lock_wait_fraction = 0.0;    // of total thread-time
  double barrier_wait_fraction = 0.0;
};

/// Simulates `total_instructions` split over `threads` workers and
/// returns the speed-up relative to single-threaded execution.
/// Deterministic in `seed`.
SpeedupResult SimulateSpeedup(const SyncParams& params, std::size_t threads,
                              std::size_t total_instructions = 2000000,
                              std::uint64_t seed = 1);

/// Least-squares Amdahl fit: the serial fraction s minimizing the error
/// of 1/(s + (1-s)/n) against the measured speed-ups.
double FitSerialFraction(const std::vector<SpeedupResult>& curve);

}  // namespace ds::uarch
