#include "uarch/trace_gen.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace ds::uarch {

const std::vector<TraceParams>& ParsecTraceParams() {
  // Statistics chosen to match the published Parsec characterization
  // (Bienia et al., PACT'08) and to land each application's simulated
  // IPC in the band of the calibrated table in src/apps.
  static const std::vector<TraceParams> params = [] {
    std::vector<TraceParams> v;
    {
      TraceParams p;  // x264: SIMD-like integer media kernels, high ILP
      p.name = "x264";
      p.frac_int_alu = 0.46;
      p.frac_int_mul = 0.06;
      p.frac_fp = 0.06;
      p.frac_load = 0.24;
      p.frac_store = 0.08;
      p.frac_branch = 0.10;
      p.avg_dep_distance = 10.0;
      p.dep1_prob = 0.70;
      p.dep2_prob = 0.20;
      p.loop_length = 16;
      p.hard_branch_fraction = 0.04;
      p.working_set_kb = 512;
      p.temporal_reuse = 0.60;
      p.spatial_locality = 0.95;
      v.push_back(p);
    }
    {
      TraceParams p;  // blackscholes: tiny-footprint FP kernel
      p.name = "blackscholes";
      p.frac_int_alu = 0.25;
      p.frac_int_mul = 0.02;
      p.frac_fp = 0.45;
      p.frac_load = 0.18;
      p.frac_store = 0.05;
      p.frac_branch = 0.05;
      p.avg_dep_distance = 5.0;  // FP chains limit ILP despite locality
      p.dep1_prob = 0.88;
      p.dep2_prob = 0.50;
      p.loop_length = 128;
      p.hard_branch_fraction = 0.01;
      p.working_set_kb = 64;
      p.temporal_reuse = 0.70;
      p.spatial_locality = 0.95;
      v.push_back(p);
    }
    {
      TraceParams p;  // bodytrack: branchy FP/int vision code
      p.name = "bodytrack";
      p.frac_int_alu = 0.38;
      p.frac_int_mul = 0.04;
      p.frac_fp = 0.22;
      p.frac_load = 0.22;
      p.frac_store = 0.06;
      p.frac_branch = 0.08;
      p.avg_dep_distance = 9.0;
      p.dep1_prob = 0.68;
      p.dep2_prob = 0.25;
      p.loop_length = 32;
      p.hard_branch_fraction = 0.06;
      p.working_set_kb = 1024;
      p.temporal_reuse = 0.60;
      p.spatial_locality = 0.92;
      v.push_back(p);
    }
    {
      TraceParams p;  // ferret: content-similarity pipeline, mixed
      p.name = "ferret";
      p.frac_int_alu = 0.40;
      p.frac_int_mul = 0.05;
      p.frac_fp = 0.18;
      p.frac_load = 0.24;
      p.frac_store = 0.06;
      p.frac_branch = 0.07;
      p.avg_dep_distance = 13.0;
      p.dep1_prob = 0.62;
      p.dep2_prob = 0.18;
      p.loop_length = 48;
      p.hard_branch_fraction = 0.04;
      p.working_set_kb = 1024;
      p.temporal_reuse = 0.65;
      p.spatial_locality = 0.92;
      v.push_back(p);
    }
    {
      TraceParams p;  // canneal: pointer-chasing, cache-hostile
      p.name = "canneal";
      p.frac_int_alu = 0.40;
      p.frac_int_mul = 0.02;
      p.frac_fp = 0.04;
      p.frac_load = 0.34;
      p.frac_store = 0.10;
      p.frac_branch = 0.10;
      p.avg_dep_distance = 4.0;  // serial pointer chains
      p.dep1_prob = 0.85;
      p.dep2_prob = 0.30;
      p.loop_length = 8;
      p.hard_branch_fraction = 0.15;
      p.working_set_kb = 16384;
      p.temporal_reuse = 0.72;
      p.spatial_locality = 0.78;
      p.num_streams = 2;
      v.push_back(p);
    }
    {
      TraceParams p;  // dedup: hashing + compression, integer heavy
      p.name = "dedup";
      p.frac_int_alu = 0.50;
      p.frac_int_mul = 0.08;
      p.frac_fp = 0.02;
      p.frac_load = 0.24;
      p.frac_store = 0.08;
      p.frac_branch = 0.08;
      p.avg_dep_distance = 10.0;
      p.dep1_prob = 0.68;
      p.dep2_prob = 0.22;
      p.loop_length = 24;
      p.hard_branch_fraction = 0.05;
      p.working_set_kb = 2048;
      p.temporal_reuse = 0.60;
      p.spatial_locality = 0.90;
      v.push_back(p);
    }
    {
      TraceParams p;  // swaptions: dense FP Monte-Carlo, regular
      p.name = "swaptions";
      p.frac_int_alu = 0.28;
      p.frac_int_mul = 0.04;
      p.frac_fp = 0.40;
      p.frac_load = 0.18;
      p.frac_store = 0.05;
      p.frac_branch = 0.05;
      p.avg_dep_distance = 6.0;  // independent Monte-Carlo paths
      p.dep1_prob = 0.82;
      p.dep2_prob = 0.45;
      p.loop_length = 256;
      p.hard_branch_fraction = 0.02;
      p.working_set_kb = 256;
      p.temporal_reuse = 0.65;
      p.spatial_locality = 0.92;
      v.push_back(p);
    }
    return v;
  }();
  return params;
}

const TraceParams& TraceParamsByName(const std::string& name) {
  for (const TraceParams& p : ParsecTraceParams())
    if (p.name == name) return p;
  throw std::invalid_argument("TraceParamsByName: unknown app " + name);
}

std::vector<MicroOp> GenerateTrace(const TraceParams& params,
                                   std::size_t length, std::uint64_t seed) {
  const double mix_sum = params.frac_int_alu + params.frac_int_mul +
                         params.frac_fp + params.frac_load +
                         params.frac_store + params.frac_branch;
  if (std::abs(mix_sum - 1.0) > 1e-6)
    throw std::invalid_argument("GenerateTrace: instruction mix must sum to 1");
  if (params.avg_dep_distance < 1.0)
    throw std::invalid_argument("GenerateTrace: avg_dep_distance < 1");

  util::Rng rng(seed);
  std::vector<MicroOp> trace;
  trace.reserve(length);

  // Memory streams: independent sequential pointers inside the working
  // set, plus a small buffer of recently touched addresses for
  // temporal reuse.
  const std::uint64_t ws_bytes =
      static_cast<std::uint64_t>(params.working_set_kb) * 1024;
  std::vector<std::uint64_t> stream_ptr(
      std::max<std::size_t>(1, params.num_streams));
  for (auto& p : stream_ptr)
    p = static_cast<std::uint64_t>(rng.Uniform(0.0, 1.0) *
                                   static_cast<double>(ws_bytes)) &
        ~7ULL;
  std::array<std::uint64_t, 16> recent{};
  std::size_t recent_next = 0;

  std::size_t loop_counter = 0;
  const double dep_p = 1.0 / params.avg_dep_distance;
  auto dep_distance = [&]() -> std::uint16_t {
    std::uint16_t d = 1;
    while (rng.Uniform(0.0, 1.0) > dep_p && d < 128) ++d;
    return d;
  };

  for (std::size_t i = 0; i < length; ++i) {
    MicroOp op;
    const double r = rng.Uniform(0.0, 1.0);
    double acc = params.frac_int_alu;
    if (r < acc) {
      op.cls = OpClass::kIntAlu;
    } else if (r < (acc += params.frac_int_mul)) {
      op.cls = OpClass::kIntMul;
    } else if (r < (acc += params.frac_fp)) {
      op.cls = OpClass::kFpAlu;
    } else if (r < (acc += params.frac_load)) {
      op.cls = OpClass::kLoad;
    } else if (r < (acc += params.frac_store)) {
      op.cls = OpClass::kStore;
    } else {
      op.cls = OpClass::kBranch;
    }

    if (rng.Uniform(0.0, 1.0) < params.dep1_prob) op.dep1 = dep_distance();
    if (rng.Uniform(0.0, 1.0) < params.dep2_prob) op.dep2 = dep_distance();

    if (op.cls == OpClass::kLoad || op.cls == OpClass::kStore) {
      if (rng.Uniform(0.0, 1.0) < params.temporal_reuse &&
          recent[0] != 0) {
        // Re-touch one of the recently used addresses.
        op.addr = recent[static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<int>(recent.size()) - 1))];
      } else {
        const std::size_t s = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<int>(stream_ptr.size()) - 1));
        if (rng.Uniform(0.0, 1.0) < params.spatial_locality) {
          stream_ptr[s] = (stream_ptr[s] + 8) % ws_bytes;  // next word
        } else {
          stream_ptr[s] = static_cast<std::uint64_t>(
                              rng.Uniform(0.0, 1.0) *
                              static_cast<double>(ws_bytes)) &
                          ~7ULL;
        }
        op.addr = stream_ptr[s];
        recent[recent_next] = op.addr;
        recent_next = (recent_next + 1) % recent.size();
      }
    } else if (op.cls == OpClass::kBranch) {
      if (rng.Uniform(0.0, 1.0) < params.hard_branch_fraction) {
        // Data-dependent branch at a rotating set of PCs.
        op.addr = 0x1000 + 64 * static_cast<std::uint64_t>(
                                    rng.UniformInt(0, 15));
        op.taken = rng.Uniform(0.0, 1.0) < params.hard_branch_bias;
      } else {
        // Loop back-edge: taken except every loop_length-th time.
        op.addr = 0x2000;
        ++loop_counter;
        op.taken = (loop_counter % params.loop_length) != 0;
      }
    }
    trace.push_back(op);
  }
  return trace;
}

}  // namespace ds::uarch
