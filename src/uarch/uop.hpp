// Micro-operation representation for the trace-driven core simulator.
//
// The paper characterizes applications with gem5 (cycle-accurate Alpha
// 21264) + McPAT. This directory is our substitute substrate: synthetic
// instruction traces with application-specific statistics are run
// through an out-of-order timing model (ooo_core.hpp), a cache
// hierarchy (cache.hpp) and a branch predictor (branch_predictor.hpp);
// an event-energy model (energy_model.hpp) then derives the Eq. (1)
// constants the rest of the repository uses.
#pragma once

#include <cstdint>

namespace ds::uarch {

enum class OpClass : std::uint8_t {
  kIntAlu,   // integer ALU, 1-cycle latency
  kIntMul,   // integer multiply, 3 cycles
  kFpAlu,    // floating point, 4 cycles
  kLoad,     // memory read, latency from the cache hierarchy
  kStore,    // memory write (fire-and-forget through the store buffer)
  kBranch,   // conditional branch, resolved at execute
};

inline constexpr int kNumOpClasses = 6;

struct MicroOp {
  OpClass cls = OpClass::kIntAlu;
  std::uint64_t addr = 0;   // effective address (loads/stores), PC (branches)
  bool taken = false;       // branch outcome
  std::uint16_t dep1 = 0;   // distance (in uops) to first producer, 0 = none
  std::uint16_t dep2 = 0;   // distance to second producer, 0 = none
};

/// Fixed execution latency of an op class, memory ops excluded
/// (their latency comes from the hierarchy).
inline int ExecLatency(OpClass cls) {
  switch (cls) {
    case OpClass::kIntAlu:
      return 1;
    case OpClass::kIntMul:
      return 3;
    case OpClass::kFpAlu:
      return 4;
    case OpClass::kLoad:
      return 1;  // address generation; cache latency added on top
    case OpClass::kStore:
      return 1;
    case OpClass::kBranch:
      return 1;
  }
  return 1;
}

}  // namespace ds::uarch
