// 2D-mesh network-on-chip model (the uncore).
//
// The paper's DAC'15 special session partner, "Core vs Uncore: The
// Heart of Darkness" [8], argues the uncore's share of the power budget
// is a first-order term of the dark-silicon problem. This module makes
// that share computable for the repository's platforms: one router per
// core tile, XY dimension-order routing, analytic flow accumulation.
//
// Traffic comes from the application model: each instance's worker
// threads exchange data with the instance's master thread
// (comm_bytes_per_instr) and every core streams its memory traffic
// (mem_bytes_per_instr) to the nearest of four edge memory controllers.
// Flows are routed once and accumulated per router and per link; power
// follows from per-flit energies, latency from hop counts plus an
// M/M/1-style contention factor on the bottleneck link.
#pragma once

#include <cstddef>
#include <vector>

#include "apps/workload.hpp"
#include "thermal/floorplan.hpp"

namespace ds::noc {

struct NocParams {
  double flit_bytes = 16.0;
  double router_energy_pj = 80.0;       // per flit per hop (22 nm class)
  double link_energy_pj_per_mm = 25.0;  // per flit per millimetre
  double router_static_w = 0.05;        // per router, leakage + clock
  double link_bandwidth_gbs = 64.0;     // per link (both directions)
  double router_latency_cycles = 3.0;   // per hop at the core clock
};

struct NocResult {
  std::vector<double> per_core_power_w;  // router + adjacent link power
  double total_power_w = 0.0;
  double avg_hops = 0.0;                 // traffic-weighted
  double avg_latency_cycles = 0.0;       // incl. contention
  double peak_link_utilization = 0.0;    // of the bottleneck link [0,1]
  double total_traffic_gbs = 0.0;
};

class MeshNoc {
 public:
  explicit MeshNoc(const thermal::Floorplan& fp, const NocParams& params = {});

  /// Evaluates the uncore for `workload` placed on `active_set` (core
  /// slots in instance order, as in DarkSiliconEstimator). Instance
  /// instruction rates follow from IPC x frequency x activity.
  /// Throws std::invalid_argument on size mismatch.
  NocResult Evaluate(const apps::Workload& workload,
                     const std::vector<std::size_t>& active_set) const;

  const thermal::Floorplan& floorplan() const { return fp_; }
  const NocParams& params() const { return params_; }

  /// The four memory-controller tiles (mid-edge positions).
  const std::vector<std::size_t>& memory_controllers() const {
    return mem_ctrl_;
  }

 private:
  /// Adds a flow of `gbs` from tile a to tile b along the XY route,
  /// accumulating per-router forwarding rates and per-link loads.
  void RouteFlow(std::size_t a, std::size_t b, double gbs,
                 std::vector<double>& router_gbs,
                 std::vector<double>& link_gbs, double* hops_acc) const;

  thermal::Floorplan fp_;
  NocParams params_;
  std::vector<std::size_t> mem_ctrl_;
};

}  // namespace ds::noc
