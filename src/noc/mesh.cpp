#include "noc/mesh.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/contracts.hpp"

namespace ds::noc {
namespace {

constexpr double kGbToFlitsFactor = 1e9;  // GB/s -> B/s
constexpr double kPjToJ = 1e-12;

}  // namespace

MeshNoc::MeshNoc(const thermal::Floorplan& fp, const NocParams& params)
    : fp_(fp), params_(params) {
  // Memory controllers at the four mid-edge tiles.
  const std::size_t rows = fp_.rows();
  const std::size_t cols = fp_.cols();
  mem_ctrl_ = {fp_.IndexOf(0, cols / 2), fp_.IndexOf(rows - 1, cols / 2),
               fp_.IndexOf(rows / 2, 0), fp_.IndexOf(rows / 2, cols - 1)};
}

void MeshNoc::RouteFlow(std::size_t a, std::size_t b, double gbs,
                        std::vector<double>& router_gbs,
                        std::vector<double>& link_gbs,
                        double* hops_acc) const {
  const std::size_t cols = fp_.cols();
  const auto pa = fp_.PosOf(a);
  const auto pb = fp_.PosOf(b);
  // Link ids: horizontal (r,c)->(r,c+1) first, then vertical.
  const std::size_t h_links = fp_.rows() * (cols - 1);
  auto h_link = [&](std::size_t r, std::size_t c) {
    return r * (cols - 1) + c;
  };
  auto v_link = [&](std::size_t r, std::size_t c) {
    return h_links + r * cols + c;
  };

  std::size_t r = pa.row, c = pa.col;
  router_gbs[fp_.IndexOf(r, c)] += gbs;
  double hops = 0.0;
  while (c != pb.col) {  // X first
    const std::size_t c_next = c < pb.col ? c + 1 : c - 1;
    link_gbs[h_link(r, std::min(c, c_next))] += gbs;
    c = c_next;
    router_gbs[fp_.IndexOf(r, c)] += gbs;
    hops += 1.0;
  }
  while (r != pb.row) {  // then Y
    const std::size_t r_next = r < pb.row ? r + 1 : r - 1;
    link_gbs[v_link(std::min(r, r_next), c)] += gbs;
    r = r_next;
    router_gbs[fp_.IndexOf(r, c)] += gbs;
    hops += 1.0;
  }
  if (hops_acc) *hops_acc += hops * gbs;
}

NocResult MeshNoc::Evaluate(
    const apps::Workload& workload,
    const std::vector<std::size_t>& active_set) const {
  DS_REQUIRE(active_set.size() == workload.TotalCores(),
             "MeshNoc::Evaluate: active set of " << active_set.size()
                 << " cores for a workload needing "
                 << workload.TotalCores());
  const std::size_t n = fp_.num_cores();
  for (const std::size_t c : active_set)
    DS_REQUIRE(c < n, "MeshNoc::Evaluate: core index " << c
                          << " out of range for " << n << " cores");

  std::vector<double> router_gbs(n, 0.0);
  const std::size_t num_links =
      fp_.rows() * (fp_.cols() - 1) + (fp_.rows() - 1) * fp_.cols();
  std::vector<double> link_gbs(num_links, 0.0);
  double weighted_hops = 0.0;
  double total_gbs = 0.0;

  std::size_t slot = 0;
  for (const apps::Instance& inst : workload.instances()) {
    // Aggregate instruction rate of the instance [Ginstr/s], split
    // evenly over its threads.
    const double ginstr_s = inst.app->InstanceGips(inst.threads, inst.freq);
    const double per_thread = ginstr_s / static_cast<double>(inst.threads);
    const std::size_t master = active_set[slot];
    for (std::size_t t = 0; t < inst.threads; ++t) {
      const std::size_t core = active_set[slot + t];
      // Worker <-> master traffic (workers only; the master's own
      // state stays local).
      if (t != 0 && inst.app->comm_bytes_per_instr > 0.0) {
        const double gbs = inst.app->comm_bytes_per_instr * per_thread;
        RouteFlow(core, master, gbs, router_gbs, link_gbs, &weighted_hops);
        total_gbs += gbs;
      }
      // Memory traffic to the nearest controller.
      if (inst.app->mem_bytes_per_instr > 0.0) {
        const double gbs = inst.app->mem_bytes_per_instr * per_thread;
        std::size_t best = mem_ctrl_[0];
        for (const std::size_t m : mem_ctrl_) {
          if (fp_.TileDistance(core, m) < fp_.TileDistance(core, best))
            best = m;
        }
        RouteFlow(core, best, gbs, router_gbs, link_gbs, &weighted_hops);
        total_gbs += gbs;
      }
    }
    slot += inst.threads;
  }

  NocResult result;
  result.total_traffic_gbs = total_gbs;
  result.per_core_power_w.assign(n, params_.router_static_w);

  const double flits_per_gb = kGbToFlitsFactor / params_.flit_bytes;
  for (std::size_t i = 0; i < n; ++i) {
    result.per_core_power_w[i] += router_gbs[i] * flits_per_gb *
                                  params_.router_energy_pj * kPjToJ;
  }
  // Link power: energy per flit per mm times link length (tile pitch),
  // split between the two endpoint tiles.
  const std::size_t h_links = fp_.rows() * (fp_.cols() - 1);
  double peak_util = 0.0;
  for (std::size_t l = 0; l < num_links; ++l) {
    const double len_mm =
        l < h_links ? fp_.core_width_mm() : fp_.core_height_mm();
    const double p = link_gbs[l] * flits_per_gb *
                     params_.link_energy_pj_per_mm * len_mm * kPjToJ;
    // Endpoints of the link.
    std::size_t a, b;
    if (l < h_links) {
      const std::size_t r = l / (fp_.cols() - 1);
      const std::size_t c = l % (fp_.cols() - 1);
      a = fp_.IndexOf(r, c);
      b = fp_.IndexOf(r, c + 1);
    } else {
      const std::size_t v = l - h_links;
      const std::size_t r = v / fp_.cols();
      const std::size_t c = v % fp_.cols();
      a = fp_.IndexOf(r, c);
      b = fp_.IndexOf(r + 1, c);
    }
    result.per_core_power_w[a] += p / 2.0;
    result.per_core_power_w[b] += p / 2.0;
    peak_util = std::max(peak_util, link_gbs[l] / params_.link_bandwidth_gbs);
  }

  for (const double p : result.per_core_power_w) result.total_power_w += p;
  result.peak_link_utilization = peak_util;
  result.avg_hops = total_gbs > 0.0 ? weighted_hops / total_gbs : 0.0;
  const double contention =
      1.0 / (1.0 - std::min(peak_util, 0.95));
  result.avg_latency_cycles =
      result.avg_hops * params_.router_latency_cycles * contention;
  return result;
}

}  // namespace ds::noc
