#include "arch/variation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace ds::arch {
namespace {

/// Smooth systematic field over the die, normalized to zero mean and
/// unit RMS over the tile grid: tilted plane + radial bowl, with the
/// plane direction, bowl centre and mixing drawn from the seed.
std::vector<double> SystematicField(const thermal::Floorplan& fp,
                                    util::Rng& rng) {
  const double w = fp.die_width_mm();
  const double h = fp.die_height_mm();
  const double angle = rng.Uniform(0.0, 2.0 * M_PI);
  const double cx = rng.Uniform(0.25 * w, 0.75 * w);
  const double cy = rng.Uniform(0.25 * h, 0.75 * h);
  const double mix = rng.Uniform(0.3, 0.7);  // plane vs bowl weight

  std::vector<double> field(fp.num_cores());
  for (std::size_t i = 0; i < fp.num_cores(); ++i) {
    const double x = fp.CenterX(i);
    const double y = fp.CenterY(i);
    const double plane =
        (std::cos(angle) * (x - w / 2.0) + std::sin(angle) * (y - h / 2.0)) /
        std::max(w, h);
    const double r = std::hypot(x - cx, y - cy) / std::max(w, h);
    field[i] = mix * plane + (1.0 - mix) * (r * r - 0.25);
  }
  // Normalize to zero mean, unit RMS.
  const double mean =
      std::accumulate(field.begin(), field.end(), 0.0) /
      static_cast<double>(field.size());
  double rms = 0.0;
  for (double& v : field) {
    v -= mean;
    rms += v * v;
  }
  rms = std::sqrt(rms / static_cast<double>(field.size()));
  if (rms > 1e-12)
    for (double& v : field) v /= rms;
  return field;
}

}  // namespace

VariationMap VariationMap::Generate(const thermal::Floorplan& fp,
                                    std::uint64_t seed,
                                    const VariationParams& params) {
  util::Rng rng(seed);
  const std::vector<double> sys_leak = SystematicField(fp, rng);
  const std::vector<double> sys_freq = SystematicField(fp, rng);

  std::vector<double> leakage(fp.num_cores());
  std::vector<double> freq(fp.num_cores());
  for (std::size_t i = 0; i < fp.num_cores(); ++i) {
    const double log_leak =
        params.leakage_sigma_systematic * sys_leak[i] +
        rng.Normal(0.0, params.leakage_sigma_random);
    leakage[i] = std::exp(log_leak);
    // Fast (leaky) corners are also the fast-frequency corners:
    // frequency variation is positively correlated with leakage.
    const double df = params.freq_sigma_systematic * sys_leak[i] * 0.5 +
                      params.freq_sigma_systematic * sys_freq[i] * 0.5 +
                      rng.Normal(0.0, params.freq_sigma_random);
    freq[i] = std::max(0.5, 1.0 + df);
  }
  return VariationMap(std::move(leakage), std::move(freq));
}

VariationMap VariationMap::Uniform(std::size_t num_cores) {
  return VariationMap(std::vector<double>(num_cores, 1.0),
                      std::vector<double>(num_cores, 1.0));
}

std::vector<std::size_t> VariationMap::LowestLeakageCores(
    std::size_t count) const {
  if (count > num_cores())
    throw std::invalid_argument(
        "VariationMap::LowestLeakageCores: count exceeds core count");
  std::vector<std::size_t> idx(num_cores());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return leakage_[a] < leakage_[b];
  });
  idx.resize(count);
  std::sort(idx.begin(), idx.end());
  return idx;
}

std::vector<std::size_t> VariationMap::FastestCores(
    std::size_t count) const {
  if (count > num_cores())
    throw std::invalid_argument(
        "VariationMap::FastestCores: count exceeds core count");
  std::vector<std::size_t> idx(num_cores());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return freq_[a] > freq_[b];
  });
  idx.resize(count);
  std::sort(idx.begin(), idx.end());
  return idx;
}

double VariationMap::MinFrequencyFactor(
    const std::vector<std::size_t>& active) const {
  double m = 1e300;
  for (const std::size_t c : active) m = std::min(m, freq_[c]);
  return active.empty() ? 1.0 : m;
}

}  // namespace ds::arch
