#include "arch/platform.hpp"

#include <cmath>
#include <stdexcept>

#include "util/contracts.hpp"

namespace ds::arch {

Platform::Platform(power::TechNode node, std::size_t num_cores,
                   double ladder_step_ghz)
    : tech_(&power::Tech(node)),
      floorplan_(
          thermal::Floorplan::MakeGrid(num_cores, tech_->core_area_mm2)),
      ladder_(*tech_, 1.0, tech_->boost_max_freq, ladder_step_ghz),
      power_model_(*tech_),
      vf_curve_(*tech_) {
  DS_REQUIRE(num_cores >= 1, "Platform: core count must be >= 1");
  DS_REQUIRE(ladder_step_ghz > 0.0 && std::isfinite(ladder_step_ghz),
             "Platform: ladder step " << ladder_step_ghz
                                      << " GHz must be positive");
}

Platform Platform::PaperPlatform(power::TechNode node) {
  switch (node) {
    case power::TechNode::N16:
      return Platform(node, 100);
    case power::TechNode::N11:
      return Platform(node, 198);
    case power::TechNode::N8:
      return Platform(node, 361);
    case power::TechNode::N22:
      break;
  }
  throw std::invalid_argument(
      "Platform::PaperPlatform: 22 nm is the calibration node only");
}

const thermal::RcModel& Platform::thermal_model() const {
  if (!rc_) rc_ = std::make_unique<thermal::RcModel>(floorplan_);
  return *rc_;
}

const thermal::SteadyStateSolver& Platform::solver() const {
  if (!solver_)
    solver_ = std::make_unique<thermal::SteadyStateSolver>(thermal_model());
  return *solver_;
}

}  // namespace ds::arch
