#include "arch/platform.hpp"

#include <cmath>
#include <stdexcept>

#include "util/contracts.hpp"

namespace ds::arch {

Platform::Platform(power::TechNode node, std::size_t num_cores,
                   double ladder_step_ghz)
    : tech_(&power::Tech(node)),
      floorplan_(
          thermal::Floorplan::MakeGrid(num_cores, tech_->core_area_mm2)),
      ladder_(*tech_, 1.0, tech_->boost_max_freq, ladder_step_ghz),
      power_model_(*tech_),
      vf_curve_(*tech_) {
  DS_REQUIRE(num_cores >= 1, "Platform: core count must be >= 1");
  DS_REQUIRE(ladder_step_ghz > 0.0 && std::isfinite(ladder_step_ghz),
             "Platform: ladder step " << ladder_step_ghz
                                      << " GHz must be positive");
}

Platform Platform::PaperPlatform(power::TechNode node) {
  switch (node) {
    case power::TechNode::N16:
      return Platform(node, 100);
    case power::TechNode::N11:
      return Platform(node, 198);
    case power::TechNode::N8:
      return Platform(node, 361);
    case power::TechNode::N22:
      break;
  }
  throw std::invalid_argument(
      "Platform::PaperPlatform: 22 nm is the calibration node only");
}

const thermal::RcModel& Platform::thermal_model() const {
  if (!rc_) rc_ = std::make_shared<const thermal::RcModel>(floorplan_);
  return *rc_;
}

const thermal::SteadyStateSolver& Platform::solver() const {
  if (!solver_)
    solver_ =
        std::make_shared<const thermal::SteadyStateSolver>(thermal_model());
  return *solver_;
}

std::shared_ptr<const thermal::PropagatorSet> Platform::propagators() const {
  if (!propagators_)
    propagators_ = std::make_shared<const thermal::PropagatorSet>();
  return propagators_;
}

thermal::TransientSimulator Platform::MakeTransient(double dt_s) const {
  return thermal::TransientSimulator(thermal_model(), dt_s,
                                     thermal::StepKernel::kAuto,
                                     propagators());
}

void Platform::AdoptThermalAssets(
    std::shared_ptr<const thermal::RcModel> rc,
    std::shared_ptr<const thermal::SteadyStateSolver> solver,
    std::shared_ptr<const thermal::PropagatorSet> propagators) {
  DS_REQUIRE(rc != nullptr && solver != nullptr,
             "Platform::AdoptThermalAssets: null asset");
  DS_REQUIRE(&solver->model() == rc.get(),
             "Platform::AdoptThermalAssets: solver not factored from rc");
  const thermal::Floorplan& fp = rc->floorplan();
  DS_REQUIRE(fp.rows() == floorplan_.rows() && fp.cols() == floorplan_.cols(),
             "Platform::AdoptThermalAssets: grid "
                 << fp.rows() << "x" << fp.cols() << " != platform "
                 << floorplan_.rows() << "x" << floorplan_.cols());
  DS_REQUIRE(fp.core_width_mm() == floorplan_.core_width_mm() &&
                 fp.core_height_mm() == floorplan_.core_height_mm(),
             "Platform::AdoptThermalAssets: core tile geometry differs");
  // A PropagatorSet is tied to one RcModel instance: adopting a new
  // model invalidates any private set built against the old one.
  if (propagators != nullptr) {
    propagators_ = std::move(propagators);
  } else if (rc_.get() != rc.get()) {
    propagators_.reset();
  }
  rc_ = std::move(rc);
  solver_ = std::move(solver);
}

}  // namespace ds::arch
