// Process variation maps.
//
// The dark-silicon management work the paper builds on (DaSim [5],
// Hayat [3]) is *variability-aware*: cores on the same die differ in
// leakage current and maximum stable frequency because of within-die
// process variation. This module synthesizes deterministic, spatially
// correlated variation maps in the standard systematic + random
// decomposition:
//
//   factor(core) = exp( systematic(x, y) + random(core) )
//
// where systematic(x, y) is a smooth across-die gradient (a randomly
// oriented plane plus a radial bowl, the usual first-order model of
// lens aberration and etch non-uniformity) and random(core) is i.i.d.
// Gaussian. Leakage factors are lognormal around 1 with sigma ~0.2-0.3
// (ITRS-era within-die spread); frequency factors are tighter (~5%).
#pragma once

#include <cstdint>
#include <vector>

#include "thermal/floorplan.hpp"

namespace ds::arch {

struct VariationParams {
  double leakage_sigma_systematic = 0.20;  // lognormal sigma, smooth part
  double leakage_sigma_random = 0.10;      // lognormal sigma, per-core
  double freq_sigma_systematic = 0.04;     // relative, smooth part
  double freq_sigma_random = 0.02;         // relative, per-core
};

/// Per-core multiplicative variation factors for one die.
class VariationMap {
 public:
  /// Deterministic generation from a seed (same seed, same map).
  static VariationMap Generate(const thermal::Floorplan& fp,
                               std::uint64_t seed,
                               const VariationParams& params = {});

  /// A no-variation map (all factors exactly 1).
  static VariationMap Uniform(std::size_t num_cores);

  std::size_t num_cores() const { return leakage_.size(); }

  /// Multiplies the core's leakage current; lognormal around ~1.
  double LeakageFactor(std::size_t core) const { return leakage_[core]; }

  /// Multiplies the core's maximum stable frequency; ~1 +- a few %.
  /// A core may only run ladder levels whose frequency is below
  /// factor * nominal maximum.
  double FrequencyFactor(std::size_t core) const { return freq_[core]; }

  const std::vector<double>& leakage_factors() const { return leakage_; }
  const std::vector<double>& frequency_factors() const { return freq_; }

  /// Indices of the `count` cores with the lowest leakage factors
  /// (ties broken by index; used by variability-aware mapping).
  std::vector<std::size_t> LowestLeakageCores(std::size_t count) const;

  /// Indices of the `count` cores with the highest frequency factors
  /// (chip-wide DVFS is derated by the *slowest active* core, so
  /// picking fast cores recovers nominal frequency).
  std::vector<std::size_t> FastestCores(std::size_t count) const;

  /// The chip-wide frequency derating of an active set: the minimum
  /// frequency factor over its cores.
  double MinFrequencyFactor(const std::vector<std::size_t>& active) const;

 private:
  VariationMap(std::vector<double> leakage, std::vector<double> freq)
      : leakage_(std::move(leakage)), freq_(std::move(freq)) {}

  std::vector<double> leakage_;
  std::vector<double> freq_;
};

}  // namespace ds::arch
