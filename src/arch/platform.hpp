// Platform: a manycore chip = technology node + floorplan + DVFS ladder
// + thermal model, with the expensive thermal assets (conductance
// factorization, influence matrix) built lazily and cached.
//
// The paper's three platforms keep total die area roughly constant
// (~510 mm^2) while scaling the node:
//   100 cores @ 16 nm (5.1 mm^2/core), 198 @ 11 nm (2.7), 361 @ 8 nm (1.4).
#pragma once

#include <memory>

#include "power/dvfs.hpp"
#include "power/power_model.hpp"
#include "power/technology.hpp"
#include "power/vf_curve.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/propagator.hpp"
#include "thermal/rc_model.hpp"
#include "thermal/steady_state.hpp"
#include "thermal/transient.hpp"

namespace ds::arch {

class Platform {
 public:
  /// A chip of `num_cores` cores at `node`, with the node's default
  /// 200 MHz DVFS ladder. Core area comes from the node's table.
  /// `ladder_step_ghz` overrides the v/f granularity (the paper's
  /// controller moves one step per millisecond, so the step size sets
  /// how close the constant-frequency baseline can sit to T_DTM).
  Platform(power::TechNode node, std::size_t num_cores,
           double ladder_step_ghz = 0.2);

  /// The paper's platform for a node (Sec. 2.1 pairing above).
  /// Throws std::invalid_argument for 22 nm (never thermally simulated).
  static Platform PaperPlatform(power::TechNode node);

  const power::TechnologyParams& tech() const { return *tech_; }
  const thermal::Floorplan& floorplan() const { return floorplan_; }
  std::size_t num_cores() const { return floorplan_.num_cores(); }
  const power::DvfsLadder& ladder() const { return ladder_; }
  const power::PowerModel& power_model() const { return power_model_; }
  const power::VfCurve& vf_curve() const { return vf_curve_; }

  /// Thermal RC network (built on first use, cached). Lazy build is
  /// not synchronized: share a Platform instance across threads only
  /// after the thermal assets exist (AdoptThermalAssets or a prior
  /// call on one thread).
  const thermal::RcModel& thermal_model() const;

  /// Steady-state solver with factored conductance (cached).
  const thermal::SteadyStateSolver& solver() const;

  /// The dt -> step-propagator cache tied to this platform's thermal
  /// model (created lazily; internally thread-safe once it exists).
  /// Every transient simulator built via MakeTransient shares it, so
  /// repeated runs at one control period fold the dense step operator
  /// exactly once per platform -- or once per sweep when the set was
  /// adopted from runtime::ModelCache.
  std::shared_ptr<const thermal::PropagatorSet> propagators() const;

  /// Transient simulator over this platform's thermal model with the
  /// shared propagator set attached. The control loops in src/core and
  /// src/sim build their simulators through this.
  thermal::TransientSimulator MakeTransient(double dt_s) const;

  /// Installs externally built (typically runtime::ModelCache-shared)
  /// thermal assets instead of building private copies. `solver` must
  /// be factored from `*rc`, and `rc` must match this platform's
  /// floorplan; both requirements are contract-checked. `propagators`
  /// (optional) shares a step-propagator cache as well; when null the
  /// platform lazily creates a private set (a set built against a
  /// previously installed model is dropped).
  void AdoptThermalAssets(
      std::shared_ptr<const thermal::RcModel> rc,
      std::shared_ptr<const thermal::SteadyStateSolver> solver,
      std::shared_ptr<const thermal::PropagatorSet> propagators = nullptr);

  /// Thermal threshold that triggers DTM (paper: 80 C).
  double tdtm_c() const { return tdtm_c_; }
  void set_tdtm_c(double t) { tdtm_c_ = t; }

 private:
  const power::TechnologyParams* tech_;
  thermal::Floorplan floorplan_;
  power::DvfsLadder ladder_;
  power::PowerModel power_model_;
  power::VfCurve vf_curve_;
  double tdtm_c_ = power::kTdtmC;
  mutable std::shared_ptr<const thermal::RcModel> rc_;
  mutable std::shared_ptr<const thermal::SteadyStateSolver> solver_;
  mutable std::shared_ptr<const thermal::PropagatorSet> propagators_;
};

}  // namespace ds::arch
