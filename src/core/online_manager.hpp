// Online dark-silicon-aware resource management.
//
// The paper's conclusion points at runtime resource management
// (invasive computing [26]) as the consumer of TSP and thermal-aware
// mapping. This module simulates an open system: application instances
// arrive over time, run for a while and leave; an admission policy
// decides when the chip is "full":
//
//   * kTdpBudget     -- classic: admit while the sum of budget powers
//                       stays below a fixed TDP; place contiguously.
//   * kThermalSafe   -- TSP-style: admit while the *predicted steady
//                       peak temperature* (influence matrix, leakage at
//                       T_DTM) stays below T_DTM; place incrementally
//                       dispersed (running jobs cannot migrate).
//
// The comparison quantifies the paper's thesis at the system level:
// power budgets leave thermal headroom unused (or violate it), while
// the temperature constraint is the real resource.
// Core faults (OnlineConfig::faults) exercise graceful degradation:
// jobs running on a core that fail-stops are requeued at the head of
// the admission queue and re-admitted -- with the thermal-safe
// predicate re-evaluated -- on the degraded core set. One epoch is one
// fault-injection control step. Sensor and DVFS faults do not apply at
// this epoch-level abstraction (the manager evaluates steady states,
// it does not sample sensors); use ChipSimulator for those.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "apps/app_profile.hpp"
#include "arch/platform.hpp"
#include "core/estimator.hpp"
#include "faults/fault_injector.hpp"
#include "util/rng.hpp"

namespace ds::core {

enum class AdmissionPolicy { kTdpBudget, kThermalSafe };

const char* AdmissionPolicyName(AdmissionPolicy policy);

struct OnlineConfig {
  double arrival_rate = 1.0;       // expected job arrivals per epoch
  std::size_t min_duration = 5;    // epochs
  std::size_t max_duration = 20;   // epochs
  std::size_t threads = 8;         // per job
  double tdp_w = 185.0;            // kTdpBudget only
  std::uint64_t seed = 1;
  faults::FaultConfig faults;      // disabled by default (zero-cost off)

  /// Rejects non-finite/negative rates, zero threads, inverted duration
  /// bounds and a non-positive TDP with std::invalid_argument.
  void Validate() const;
};

struct OnlineResult {
  std::size_t jobs_arrived = 0;
  std::size_t jobs_completed = 0;
  std::size_t jobs_rejected = 0;   // still queued at the end
  double avg_wait_epochs = 0.0;    // admission delay of admitted jobs
  double avg_gips = 0.0;
  double avg_active_cores = 0.0;
  double max_peak_temp_c = 0.0;
  std::size_t violation_epochs = 0;  // epochs with peak > T_DTM
  std::vector<double> epoch_gips;
  std::vector<double> epoch_peak_temp;
  // Robustness accounting (all zero when fault injection is off).
  faults::FaultLog fault_log;
  std::size_t jobs_requeued = 0;   // migrations off failed cores
  std::size_t cores_failed = 0;    // cores down at the end of the run
};

class OnlineManager {
 public:
  /// Throws std::invalid_argument when `config` fails Validate().
  OnlineManager(const arch::Platform& platform, AdmissionPolicy policy,
                OnlineConfig config = {});

  /// Simulates `epochs` scheduling epochs; each epoch runs admitted
  /// jobs at the nominal v/f level and evaluates the true thermal
  /// steady state.
  OnlineResult Run(std::size_t epochs) const;

 private:
  const arch::Platform* platform_;
  AdmissionPolicy policy_;
  OnlineConfig config_;
};

}  // namespace ds::core
