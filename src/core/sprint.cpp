#include "core/sprint.hpp"

#include <cmath>
#include <stdexcept>

#include "thermal/transient.hpp"
#include "util/matrix.hpp"

namespace ds::core {

SprintAnalysis::SprintAnalysis(const arch::Platform& platform)
    : platform_(&platform) {}

SprintResult SprintAnalysis::Measure(const apps::AppProfile& app,
                                     std::size_t instances,
                                     std::size_t threads, std::size_t level,
                                     double idle_fraction,
                                     MappingPolicy policy,
                                     double max_duration_s,
                                     double dt_s) const {
  const std::size_t n = platform_->num_cores();
  if (instances * threads > n)
    throw std::invalid_argument("SprintAnalysis: workload does not fit");
  if (idle_fraction < 0.0 || idle_fraction > 1.0)
    throw std::invalid_argument("SprintAnalysis: idle_fraction in [0,1]");

  const power::VfLevel& vf = platform_->ladder()[level];
  const power::PowerModel& pm = platform_->power_model();
  const double t_dtm = platform_->tdtm_c();
  const auto active = SelectCores(*platform_, instances * threads, policy);
  const std::vector<bool> mask = ActiveMask(n, active);
  const double activity = app.Activity(threads);

  auto powers_at = [&](const std::vector<double>& temps, double scale) {
    std::vector<double> p(n);
    for (std::size_t c = 0; c < n; ++c) {
      p[c] = mask[c]
                 ? scale * pm.TotalPower(activity, app.ceff22_nf, app.pind22,
                                         vf.vdd, vf.freq, temps[c])
                 : pm.DarkCorePower(temps[c]);
    }
    return p;
  };

  thermal::TransientSimulator sim = platform_->MakeTransient(dt_s);
  // Background state: steady state at idle_fraction of the sprint power.
  {
    std::vector<double> temps(n, platform_->thermal_model().ambient_c());
    for (int it = 0; it < 3; ++it) {
      sim.InitializeSteadyState(powers_at(temps, idle_fraction));
      temps = sim.DieTemps();
    }
  }

  SprintResult result;
  result.start_peak_c = sim.PeakDieTemp();
  result.sprint_gips =
      static_cast<double>(instances) * app.InstanceGips(threads, vf.freq);

  // Where would the sprint settle? (Fixed point at full power.)
  {
    std::vector<double> temps(n, platform_->thermal_model().ambient_c());
    thermal::TransientSimulator probe = platform_->MakeTransient(dt_s);
    for (int it = 0; it < 5; ++it) {
      probe.InitializeSteadyState(powers_at(temps, 1.0));
      temps = probe.DieTemps();
    }
    result.steady_peak_c = probe.PeakDieTemp();
  }
  if (result.steady_peak_c <= t_dtm) {
    result.unlimited = true;
    result.duration_s = max_duration_s;
    return result;
  }
  if (result.start_peak_c >= t_dtm) return result;  // no sprint budget

  const std::size_t max_steps =
      static_cast<std::size_t>(std::lround(max_duration_s / dt_s));
  for (std::size_t s = 0; s < max_steps; ++s) {
    const std::vector<double> temps = sim.DieTemps();
    sim.Step(powers_at(temps, 1.0));
    if (sim.PeakDieTemp() >= t_dtm) {
      result.duration_s = sim.time();
      return result;
    }
  }
  result.duration_s = max_duration_s;
  return result;
}

}  // namespace ds::core
