// Dynamic Thermal Management (DTM).
//
// Sec. 3.1 of the paper: "Exceeding this critical temperature triggers
// Dynamic Thermal Management (DTM) on the chip ... which might power
// down additional cores, resulting in more dark silicon." This module
// makes that claim quantitative: it runs a workload transiently and
// lets a DTM policy react whenever the peak temperature crosses the
// critical threshold.
//
// Policies:
//   * kThrottleGlobal  -- step the chip-wide v/f ladder one level down
//                         on violation, one level back up (toward the
//                         original level) when a hysteresis margin of
//                         headroom reappears. Models clock throttling.
//   * kShutdownHottest -- power-gate the hottest active core on each
//                         violating control period. Gated cores stay
//                         off (the paper's "additional dark silicon").
// The controller reads temperatures through a faults::SensorBus: when
// fault injection is armed (DtmRunOptions::faults), implausible or
// stale readings are replaced by the bus's EWMA estimate, a watchdog
// safe-state pins the ladder at its lowest level, fail-stopped cores
// drop out of the workload, and DVFS commands go through the possibly
// stuck actuator. With faults disabled the loop is bit-identical to
// the fault-free implementation.
#pragma once

#include <cstddef>
#include <vector>

#include "apps/app_profile.hpp"
#include "arch/platform.hpp"
#include "core/mapping.hpp"
#include "faults/fault_injector.hpp"
#include "thermal/transient.hpp"

namespace ds::core {

enum class DtmPolicy { kThrottleGlobal, kShutdownHottest };

const char* DtmPolicyName(DtmPolicy policy);

struct DtmRunOptions {
  double control_period_s = 1e-3;
  double hysteresis_c = 2.0;
  faults::FaultConfig faults;  // disabled by default

  /// Rejects non-positive control period and negative hysteresis.
  void Validate() const;
};

struct DtmResult {
  double avg_gips = 0.0;
  double nominal_gips = 0.0;       // what the mapping would deliver un-DTM'd
  double performance_loss = 0.0;   // 1 - avg/nominal
  double max_temp_c = 0.0;
  double time_above_critical_s = 0.0;
  std::size_t cores_shut_down = 0;    // kShutdownHottest only
  double final_dark_fraction = 0.0;   // including DTM-induced dark cores
  double min_freq_ghz = 0.0;          // lowest level reached (throttling)
  std::vector<double> time_s;         // sampled trace
  std::vector<double> gips;
  std::vector<double> peak_temp_c;
  // Robustness accounting (all zero when fault injection is off).
  faults::FaultLog fault_log;
  double safe_state_s = 0.0;          // time in the watchdog safe-state
  std::size_t cores_failed = 0;       // fault outages (not DTM gating)
  std::size_t solver_retries = 0;
  std::size_t sensor_substitutions = 0;
};

/// Transient DTM simulation of a homogeneous workload (instances of one
/// application, 8 threads each) mapped by `policy_map`.
class DtmSimulator {
 public:
  DtmSimulator(const arch::Platform& platform, const apps::AppProfile& app,
               std::size_t instances, std::size_t threads,
               MappingPolicy placement = MappingPolicy::kContiguous);

  /// Runs `duration_s` at `start_level` with the DTM policy armed at
  /// the platform's T_DTM. `hysteresis_c` is the headroom required
  /// before throttling is relaxed.
  DtmResult Run(DtmPolicy policy, std::size_t start_level,
                double duration_s, double control_period_s = 1e-3,
                double hysteresis_c = 2.0) const {
    DtmRunOptions options;
    options.control_period_s = control_period_s;
    options.hysteresis_c = hysteresis_c;
    return Run(policy, start_level, duration_s, options);
  }

  /// Full-option run, including the fault-injection scenario. Throws
  /// std::invalid_argument for a non-positive duration or invalid
  /// options.
  DtmResult Run(DtmPolicy policy, std::size_t start_level,
                double duration_s, const DtmRunOptions& options) const;

  std::size_t active_cores() const { return active_set_.size(); }

 private:
  const arch::Platform* platform_;
  const apps::AppProfile* app_;
  std::size_t instances_;
  std::size_t threads_;
  std::vector<std::size_t> active_set_;
};

}  // namespace ds::core
