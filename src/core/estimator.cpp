#include "core/estimator.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/contracts.hpp"

namespace ds::core {
namespace {

/// Per-slot operating parameters, aligned with the workload's core slots.
struct SlotParams {
  double activity;
  double ceff22;
  double pind22;
  double vdd;
  double freq;
};

std::vector<SlotParams> SlotsOf(const apps::Workload& workload) {
  std::vector<SlotParams> slots;
  slots.reserve(workload.TotalCores());
  for (const apps::Instance& inst : workload.instances()) {
    const SlotParams s{inst.app->Activity(inst.threads), inst.app->ceff22_nf,
                       inst.app->pind22, inst.vdd, inst.freq};
    for (std::size_t t = 0; t < inst.threads; ++t) slots.push_back(s);
  }
  return slots;
}

}  // namespace

DarkSiliconEstimator::DarkSiliconEstimator(const arch::Platform& platform)
    : platform_(&platform) {}

double DarkSiliconEstimator::BudgetCorePower(const apps::AppProfile& app,
                                             std::size_t threads,
                                             std::size_t level) const {
  const power::VfLevel& vf = platform_->ladder()[level];
  return platform_->power_model().TotalPower(app.Activity(threads),
                                             app.ceff22_nf, app.pind22,
                                             vf.vdd, vf.freq,
                                             platform_->tdtm_c());
}

Estimate DarkSiliconEstimator::EvaluateWorkload(
    const apps::Workload& workload, MappingPolicy policy) const {
  return EvaluateWorkload(
      workload, SelectCores(*platform_, workload.TotalCores(), policy));
}

Estimate DarkSiliconEstimator::EvaluateWorkload(
    const apps::Workload& workload,
    std::vector<std::size_t> active_set) const {
  return EvaluateImpl(workload, std::move(active_set), nullptr);
}

Estimate DarkSiliconEstimator::EvaluateWorkload(
    const apps::Workload& workload, std::vector<std::size_t> active_set,
    const arch::VariationMap& variation) const {
  if (variation.num_cores() != platform_->num_cores())
    throw std::invalid_argument(
        "EvaluateWorkload: variation map size mismatch");
  return EvaluateImpl(workload, std::move(active_set), &variation);
}

Estimate DarkSiliconEstimator::EvaluateWorkloadWithUncore(
    const apps::Workload& workload, std::vector<std::size_t> active_set,
    const std::vector<double>& extra_per_tile_w) const {
  if (extra_per_tile_w.size() != platform_->num_cores())
    throw std::invalid_argument(
        "EvaluateWorkloadWithUncore: extra power size mismatch");
  return EvaluateImpl(workload, std::move(active_set), nullptr,
                      &extra_per_tile_w);
}

Estimate DarkSiliconEstimator::EvaluateImpl(
    const apps::Workload& workload, std::vector<std::size_t> active_set,
    const arch::VariationMap* variation,
    const std::vector<double>* extra_per_tile_w) const {
  DS_REQUIRE(active_set.size() == workload.TotalCores(),
             "EvaluateWorkload: active set of " << active_set.size()
                 << " cores for a workload needing " << workload.TotalCores());
  const std::size_t n = platform_->num_cores();
  const auto slots = SlotsOf(workload);
  const power::PowerModel& pm = platform_->power_model();

  // slot_of[core] = index into slots, or npos for dark cores.
  constexpr std::size_t kDark = static_cast<std::size_t>(-1);
  std::vector<std::size_t> slot_of(n, kDark);
  for (std::size_t k = 0; k < active_set.size(); ++k) {
    DS_REQUIRE(active_set[k] < n,
               "EvaluateWorkload: active core " << active_set[k]
                   << " out of range for " << n << " cores");
    slot_of[active_set[k]] = k;
  }

  auto leak_factor = [&](std::size_t core) {
    return variation != nullptr ? variation->LeakageFactor(core) : 1.0;
  };
  auto extra = [&](std::size_t core) {
    return extra_per_tile_w != nullptr ? (*extra_per_tile_w)[core] : 0.0;
  };
  std::vector<double> converged_powers;
  const std::vector<double> temps =
      platform_->solver().SolveWithFeedback(
          [&](std::size_t core, double t_c) {
            const std::size_t k = slot_of[core];
            if (k == kDark)
              return extra(core) + leak_factor(core) * pm.DarkCorePower(t_c);
            const SlotParams& s = slots[k];
            return extra(core) +
                   pm.DynamicPower(s.activity, s.ceff22, s.vdd, s.freq) +
                   leak_factor(core) * pm.LeakagePower(s.vdd, t_c) +
                   pm.IndependentPower(s.pind22, s.vdd);
          },
          &converged_powers);

  Estimate e;
  e.active_cores = active_set.size();
  e.instances = workload.size();
  e.dark_fraction =
      1.0 - static_cast<double>(e.active_cores) / static_cast<double>(n);
  double total = 0.0;
  for (const double p : converged_powers) total += p;
  e.total_power_w = total;
  e.budget_power_w = workload.TotalPower(pm, platform_->tdtm_c());
  e.peak_temp_c = util::MaxElement(temps);
  e.total_gips = workload.TotalGips();
  e.thermal_violation = e.peak_temp_c > platform_->tdtm_c() + 1e-6;
  e.active_set = std::move(active_set);
  e.core_temps = temps;
  e.workload = workload;
  return e;
}

apps::Workload DarkSiliconEstimator::PlanUnderPowerBudget(
    const apps::AppProfile& app, std::size_t threads, std::size_t level,
    double tdp_w) const {
  const std::size_t n = platform_->num_cores();
  const power::VfLevel& vf = platform_->ladder()[level];
  const double p_core = BudgetCorePower(app, threads, level);

  // Full instances within the budget and the core count.
  std::size_t m = static_cast<std::size_t>(
      tdp_w / (p_core * static_cast<double>(threads)));
  m = std::min(m, n / threads);

  apps::Workload w;
  w.AddN({&app, threads, vf.freq, vf.vdd}, m);
  double used = static_cast<double>(m * threads) * p_core;

  // One final smaller instance if budget and cores allow.
  const std::size_t cores_left = n - m * threads;
  for (std::size_t t = std::min(threads - 1, cores_left); t >= 1; --t) {
    const double p_t = BudgetCorePower(app, t, level);
    if (used + static_cast<double>(t) * p_t <= tdp_w) {
      w.Add({&app, t, vf.freq, vf.vdd});
      break;
    }
    if (t == 1) break;
  }
  return w;
}

Estimate DarkSiliconEstimator::UnderPowerBudget(const apps::AppProfile& app,
                                                std::size_t threads,
                                                std::size_t level,
                                                double tdp_w,
                                                MappingPolicy policy) const {
  return EvaluateWorkload(PlanUnderPowerBudget(app, threads, level, tdp_w),
                          policy);
}

Estimate DarkSiliconEstimator::UnderTemperature(const apps::AppProfile& app,
                                                std::size_t threads,
                                                std::size_t level,
                                                MappingPolicy policy) const {
  const std::size_t n = platform_->num_cores();
  const power::VfLevel& vf = platform_->ladder()[level];
  const std::size_t max_instances = n / threads;

  auto evaluate = [&](std::size_t instances,
                      std::size_t extra_threads) -> Estimate {
    apps::Workload w;
    w.AddN({&app, threads, vf.freq, vf.vdd}, instances);
    if (extra_threads > 0) w.Add({&app, extra_threads, vf.freq, vf.vdd});
    return EvaluateWorkload(w, policy);
  };

  auto feasible = [&](std::size_t instances, std::size_t extra) -> bool {
    if (instances == 0 && extra == 0) return true;
    try {
      return !evaluate(instances, extra).thermal_violation;
    } catch (const std::runtime_error&) {
      return false;  // leakage/temperature runaway: not feasible
    }
  };

  // Binary search the largest feasible number of full instances.
  std::size_t lo = 0;  // feasible
  std::size_t hi = max_instances + 1;  // first infeasible candidate bound
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (feasible(mid, 0))
      lo = mid;
    else
      hi = mid;
  }

  // Try to grow with one smaller instance.
  std::size_t extra = 0;
  const std::size_t cores_left = n - lo * threads;
  for (std::size_t t = std::min(threads - 1, cores_left); t >= 1; --t) {
    if (feasible(lo, t)) {
      extra = t;
      break;
    }
    if (t == 1) break;
  }
  if (lo == 0 && extra == 0) {
    Estimate empty;
    empty.active_set.clear();
    return empty;
  }
  return evaluate(lo, extra);
}

}  // namespace ds::core
