#include "core/dsrem.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "telemetry/scoped.hpp"
#include "util/contracts.hpp"

namespace ds::core {
namespace {

constexpr double kThermalMarginC = 0.2;  // stop raising this close to TDTM

}  // namespace

JobList MakeJobList(const std::vector<const apps::AppProfile*>& apps,
                    std::size_t count) {
  DS_REQUIRE(!apps.empty() || count == 0,
             "MakeJobList: cannot draw " << count << " jobs from an empty "
                                            "application set");
  JobList jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    jobs.push_back(apps[i % apps.size()]);
  return jobs;
}

Estimate TdpMap::Run(const JobList& jobs, double tdp_w) const {
  DS_REQUIRE(tdp_w >= 0.0 && std::isfinite(tdp_w),
             "TdpMap::Run: TDP " << tdp_w << " W must be >= 0");
  DS_TELEM_SPAN("controller", "tdpmap_run", ds::telemetry::TraceLevel::kSpan);
  DS_TELEM_COUNT("dsrem.tdpmap_runs", 1);
  const arch::Platform& plat = estimator_.platform();
  const std::size_t level = plat.ladder().NominalLevel();
  const power::VfLevel& vf = plat.ladder()[level];
  const std::size_t n = plat.num_cores();

  apps::Workload w;
  double used = 0.0;
  std::size_t cores_used = 0;
  for (const apps::AppProfile* app : jobs) {
    const std::size_t threads = apps::kMaxThreadsPerInstance;
    const double p = estimator_.BudgetCorePower(*app, threads, level) *
                     static_cast<double>(threads);
    // "Once TDP is reached, no more applications can be mapped."
    if (cores_used + threads > n || used + p > tdp_w) break;
    w.Add({app, threads, vf.freq, vf.vdd});
    used += p;
    cores_used += threads;
  }
  if (w.empty()) {
    Estimate empty;
    return empty;
  }
  return estimator_.EvaluateWorkload(w, MappingPolicy::kContiguous);
}

apps::Workload DsRem::PackUnderTdp(const JobList& jobs, double tdp_w) const {
  DS_REQUIRE(tdp_w >= 0.0 && std::isfinite(tdp_w),
             "DsRem::PackUnderTdp: TDP " << tdp_w << " W must be >= 0");
  const arch::Platform& plat = estimator_.platform();
  const power::DvfsLadder& ladder = plat.ladder();
  const std::size_t nominal = ladder.NominalLevel();
  const std::size_t n = plat.num_cores();

  // The job set is fixed, so this is a resource-allocation problem:
  // maximize total GIPS over per-job (threads, level) subject to the
  // TDP and the core count. Marginal-utility greedy: every job starts
  // minimal (1 thread, lowest level); then the single upgrade -- one
  // more thread or one level up for one job -- with the best marginal
  // GIPS per unit of the binding resource is applied until nothing fits.
  struct Alloc {
    const apps::AppProfile* app;
    std::size_t threads;
    std::size_t level;
    bool placed;
  };
  std::vector<Alloc> allocs;
  allocs.reserve(jobs.size());

  double power_left = tdp_w;
  std::size_t cores_left = n;
  auto job_power = [&](const Alloc& a, std::size_t threads,
                       std::size_t level) {
    return estimator_.BudgetCorePower(*a.app, threads, level) *
           static_cast<double>(threads);
  };

  for (const apps::AppProfile* app : jobs) {
    Alloc a{app, 1, 0, false};
    const double p = job_power(a, 1, 0);
    if (cores_left >= 1 && p <= power_left) {
      a.placed = true;
      power_left -= p;
      cores_left -= 1;
    }
    allocs.push_back(a);
  }

  while (true) {
    double best_score = 0.0;
    std::size_t best_job = allocs.size();
    bool best_is_thread = false;
    for (std::size_t j = 0; j < allocs.size(); ++j) {
      Alloc& a = allocs[j];
      if (!a.placed) continue;
      const double p_now = job_power(a, a.threads, a.level);
      const double gips_now =
          a.app->InstanceGips(a.threads, ladder[a.level].freq);
      // Upgrade 1: one more thread.
      if (a.threads < apps::kMaxThreadsPerInstance && cores_left >= 1) {
        const double dp = job_power(a, a.threads + 1, a.level) - p_now;
        if (dp <= power_left) {
          const double dg =
              a.app->InstanceGips(a.threads + 1, ladder[a.level].freq) -
              gips_now;
          const double cost = std::max(dp / tdp_w,
                                       1.0 / static_cast<double>(n));
          if (dg / cost > best_score) {
            best_score = dg / cost;
            best_job = j;
            best_is_thread = true;
          }
        }
      }
      // Upgrade 2: one level up (stage 1 stays at or below nominal).
      if (a.level < nominal) {
        const double dp = job_power(a, a.threads, a.level + 1) - p_now;
        if (dp <= power_left) {
          const double dg =
              a.app->InstanceGips(a.threads, ladder[a.level + 1].freq) -
              gips_now;
          const double cost = std::max(dp / tdp_w, 1e-12);
          if (dg / cost > best_score) {
            best_score = dg / cost;
            best_job = j;
            best_is_thread = false;
          }
        }
      }
    }
    if (best_job == allocs.size()) break;
    Alloc& a = allocs[best_job];
    const double p_before = job_power(a, a.threads, a.level);
    if (best_is_thread) {
      ++a.threads;
      --cores_left;
    } else {
      ++a.level;
    }
    power_left -= job_power(a, a.threads, a.level) - p_before;
  }

  apps::Workload w;
  for (const Alloc& a : allocs) {
    if (!a.placed) continue;
    const power::VfLevel& vf = ladder[a.level];
    w.Add({a.app, a.threads, vf.freq, vf.vdd});
  }
  return w;
}

Estimate DsRem::Run(const JobList& jobs, double tdp_w) const {
  DS_TELEM_SPAN("controller", "dsrem_run", ds::telemetry::TraceLevel::kSpan);
  DS_TELEM_COUNT("dsrem.runs", 1);
  DS_TELEM_TIMER("dsrem.run_us");
  const arch::Platform& plat = estimator_.platform();
  const power::DvfsLadder& ladder = plat.ladder();
  const std::size_t nominal = ladder.NominalLevel();

  apps::Workload w = PackUnderTdp(jobs, tdp_w);
  if (w.empty()) return Estimate{};

  // Stage 2: temperature is the real constraint. Work on a mutable
  // copy of the instance list; placement is DaSim-style patterning.
  std::vector<apps::Instance> insts = w.instances();
  auto rebuild = [&]() {
    apps::Workload out;
    for (const apps::Instance& i : insts) out.Add(i);
    return out;
  };
  auto evaluate = [&](const apps::Workload& wl) {
    return estimator_.EvaluateWorkload(wl, MappingPolicy::kSpread);
  };

  Estimate current = evaluate(rebuild());

  // (a) Remove thermal violations: step down the level of the
  // highest-frequency instance until feasible (or floor reached).
  while (current.thermal_violation) {
    std::size_t hottest = insts.size();
    double f_max = 0.0;
    for (std::size_t i = 0; i < insts.size(); ++i) {
      if (insts[i].freq > f_max) {
        f_max = insts[i].freq;
        hottest = i;
      }
    }
    if (hottest == insts.size()) break;
    const std::size_t lvl = ladder.LevelAtOrBelow(insts[hottest].freq);
    if (lvl == 0) {
      // Cannot throttle further: drop the instance entirely.
      insts.erase(insts.begin() + static_cast<std::ptrdiff_t>(hottest));
      if (insts.empty()) return Estimate{};
    } else {
      const power::VfLevel& vf = ladder[lvl - 1];
      insts[hottest].freq = vf.freq;
      insts[hottest].vdd = vf.vdd;
    }
    current = evaluate(rebuild());
  }

  // (b) Exploit thermal headroom: repeatedly apply the single upgrade
  // -- one v/f level (up to nominal) or one more thread -- with the
  // largest GIPS gain, as long as the peak temperature allows it. A
  // rejected upgrade freezes its instance (its neighbourhood of the
  // thermal map is saturated).
  std::vector<bool> frozen(insts.size(), false);
  while (true) {
    std::size_t total_cores = 0;
    for (const apps::Instance& inst : insts) total_cores += inst.threads;

    std::size_t best = insts.size();
    bool best_is_thread = false;
    double best_gain = 0.0;
    for (std::size_t i = 0; i < insts.size(); ++i) {
      if (frozen[i]) continue;
      const std::size_t lvl = ladder.LevelAtOrBelow(insts[i].freq);
      if (lvl < nominal) {
        const double gain =
            insts[i].app->InstanceGips(insts[i].threads,
                                       ladder[lvl + 1].freq) -
            insts[i].Gips();
        if (gain > best_gain) {
          best_gain = gain;
          best = i;
          best_is_thread = false;
        }
      }
      if (insts[i].threads < apps::kMaxThreadsPerInstance &&
          total_cores < plat.num_cores()) {
        const double gain =
            insts[i].app->InstanceGips(insts[i].threads + 1,
                                       insts[i].freq) -
            insts[i].Gips();
        if (gain > best_gain) {
          best_gain = gain;
          best = i;
          best_is_thread = true;
        }
      }
    }
    if (best == insts.size()) break;

    const apps::Instance saved = insts[best];
    if (best_is_thread) {
      ++insts[best].threads;
    } else {
      const std::size_t lvl = ladder.LevelAtOrBelow(insts[best].freq);
      insts[best].freq = ladder[lvl + 1].freq;
      insts[best].vdd = ladder[lvl + 1].vdd;
    }
    Estimate trial = evaluate(rebuild());
    if (trial.thermal_violation ||
        trial.peak_temp_c > plat.tdtm_c() - kThermalMarginC) {
      insts[best] = saved;  // revert; this instance is at its limit
      frozen[best] = true;
    } else {
      current = std::move(trial);
    }
  }
  return current;
}

}  // namespace ds::core
