#include "core/dtm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ds::core {

const char* DtmPolicyName(DtmPolicy policy) {
  switch (policy) {
    case DtmPolicy::kThrottleGlobal:
      return "throttle-global";
    case DtmPolicy::kShutdownHottest:
      return "shutdown-hottest";
  }
  return "?";
}

DtmSimulator::DtmSimulator(const arch::Platform& platform,
                           const apps::AppProfile& app,
                           std::size_t instances, std::size_t threads,
                           MappingPolicy placement)
    : platform_(&platform),
      app_(&app),
      instances_(instances),
      threads_(threads) {
  if (instances * threads > platform.num_cores())
    throw std::invalid_argument("DtmSimulator: workload does not fit");
  active_set_ = SelectCores(platform, instances * threads, placement);
}

DtmResult DtmSimulator::Run(DtmPolicy policy, std::size_t start_level,
                            double duration_s, double control_period_s,
                            double hysteresis_c) const {
  const power::DvfsLadder& ladder = platform_->ladder();
  const power::PowerModel& pm = platform_->power_model();
  const double t_crit = platform_->tdtm_c();
  const std::size_t n = platform_->num_cores();

  thermal::TransientSimulator sim(platform_->thermal_model(),
                                  control_period_s);

  // Per-core run state: on = contributing its activity; off = gated.
  std::vector<bool> on(n, false);
  for (const std::size_t c : active_set_) on[c] = true;
  std::size_t level = start_level;
  const double activity = app_->Activity(threads_);

  // Per-active-core share of its instance's GIPS: losing a core costs
  // the instance proportionally (the remaining threads stall on it).
  const double gips_per_core =
      app_->InstanceGips(threads_, 1.0) / static_cast<double>(threads_);

  auto core_powers = [&](std::size_t lvl,
                         const std::vector<double>& temps) {
    const power::VfLevel& vf = ladder[lvl];
    std::vector<double> p(n);
    for (std::size_t c = 0; c < n; ++c) {
      p[c] = on[c] ? pm.TotalPower(activity, app_->ceff22_nf, app_->pind22,
                                   vf.vdd, vf.freq, temps[c])
                   : pm.DarkCorePower(temps[c]);
    }
    return p;
  };
  auto current_gips = [&](std::size_t lvl) {
    std::size_t alive = 0;
    for (const std::size_t c : active_set_)
      if (on[c]) ++alive;
    return static_cast<double>(alive) * gips_per_core * ladder[lvl].freq;
  };

  // Warm start: steady state of the *requested* operating point. This
  // is exactly the situation the paper describes -- a mapping admitted
  // by an optimistic TDP whose steady state violates T_DTM.
  {
    std::vector<double> temps(n, platform_->thermal_model().ambient_c());
    for (int it = 0; it < 3; ++it) {
      sim.InitializeSteadyState(core_powers(start_level, temps));
      temps = sim.DieTemps();
    }
  }

  DtmResult result;
  result.nominal_gips = current_gips(start_level);
  result.min_freq_ghz = ladder[level].freq;
  const std::size_t steps = static_cast<std::size_t>(
      std::lround(duration_s / control_period_s));
  const std::size_t stride = std::max<std::size_t>(1, steps / 500);
  double gips_acc = 0.0;

  for (std::size_t s = 0; s < steps; ++s) {
    const std::vector<double> temps = sim.DieTemps();
    const double peak = *std::max_element(temps.begin(), temps.end());
    if (peak > t_crit) {
      result.time_above_critical_s += control_period_s;
      if (policy == DtmPolicy::kThrottleGlobal) {
        level = ladder.StepDown(level);
      } else {
        // Gate the hottest still-running core.
        std::size_t hottest = n;
        double t_max = -1.0;
        for (const std::size_t c : active_set_) {
          if (on[c] && temps[c] > t_max) {
            t_max = temps[c];
            hottest = c;
          }
        }
        if (hottest < n) {
          on[hottest] = false;
          ++result.cores_shut_down;
        }
      }
    } else if (policy == DtmPolicy::kThrottleGlobal &&
               peak < t_crit - hysteresis_c && level < start_level) {
      level = ladder.StepUp(level);
    }

    sim.Step(core_powers(level, temps));
    const double gips = current_gips(level);
    gips_acc += gips;
    result.max_temp_c = std::max(result.max_temp_c, sim.PeakDieTemp());
    result.min_freq_ghz = std::min(result.min_freq_ghz, ladder[level].freq);
    if (s % stride == 0) {
      result.time_s.push_back(sim.time());
      result.gips.push_back(gips);
      result.peak_temp_c.push_back(sim.PeakDieTemp());
    }
  }

  result.avg_gips = gips_acc / static_cast<double>(steps);
  result.performance_loss =
      result.nominal_gips > 0.0
          ? 1.0 - result.avg_gips / result.nominal_gips
          : 0.0;
  std::size_t alive = 0;
  for (const std::size_t c : active_set_)
    if (on[c]) ++alive;
  result.final_dark_fraction =
      1.0 - static_cast<double>(alive) / static_cast<double>(n);
  return result;
}

}  // namespace ds::core
