#include "core/dtm.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "faults/sensor_bus.hpp"
#include "telemetry/scoped.hpp"
#include "util/contracts.hpp"

namespace ds::core {

const char* DtmPolicyName(DtmPolicy policy) {
  switch (policy) {
    case DtmPolicy::kThrottleGlobal:
      return "throttle-global";
    case DtmPolicy::kShutdownHottest:
      return "shutdown-hottest";
  }
  return "?";
}

void DtmRunOptions::Validate() const {
  DS_REQUIRE(control_period_s > 0.0 && std::isfinite(control_period_s),
             "DtmRunOptions: control_period_s " << control_period_s
                 << " must be positive");
  DS_REQUIRE(hysteresis_c >= 0.0 && std::isfinite(hysteresis_c),
             "DtmRunOptions: hysteresis_c " << hysteresis_c
                 << " must be finite and >= 0");
  faults.Validate();
}

DtmSimulator::DtmSimulator(const arch::Platform& platform,
                           const apps::AppProfile& app,
                           std::size_t instances, std::size_t threads,
                           MappingPolicy placement)
    : platform_(&platform),
      app_(&app),
      instances_(instances),
      threads_(threads) {
  DS_REQUIRE(instances * threads <= platform.num_cores(),
             "DtmSimulator: " << instances << " x " << threads
                 << " threads do not fit on " << platform.num_cores()
                 << " cores");
  active_set_ = SelectCores(platform, instances * threads, placement);
}

DtmResult DtmSimulator::Run(DtmPolicy policy, std::size_t start_level,
                            double duration_s,
                            const DtmRunOptions& options) const {
  DS_REQUIRE(duration_s > 0.0 && std::isfinite(duration_s),
             "DtmSimulator: duration_s " << duration_s
                 << " must be positive");
  options.Validate();
  DS_TELEM_SPAN_ARG("controller", "dtm_run", ds::telemetry::TraceLevel::kSpan,
                    "duration_s", duration_s);
  const double control_period_s = options.control_period_s;
  const double hysteresis_c = options.hysteresis_c;

  const power::DvfsLadder& ladder = platform_->ladder();
  const power::PowerModel& pm = platform_->power_model();
  const double t_crit = platform_->tdtm_c();
  const std::size_t n = platform_->num_cores();

  thermal::TransientSimulator sim = platform_->MakeTransient(control_period_s);

  // Fault machinery; null when disabled keeps the fault-free loop
  // bit-identical (the bus then passes true temperatures through).
  std::unique_ptr<faults::FaultInjector> injector;
  if (options.faults.enabled)
    injector = std::make_unique<faults::FaultInjector>(options.faults, n);
  faults::SensorBus bus(n, platform_->thermal_model().ambient_c());
  bus.AttachInjector(injector.get());

  // Per-core run state: on = contributing its activity; off = gated by
  // DTM. `down` tracks fault outages separately so a transient outage
  // can end without un-gating a DTM decision.
  std::vector<bool> on(n, false);
  std::vector<bool> down(n, false);
  for (const std::size_t c : active_set_) on[c] = true;
  std::size_t level = start_level;
  const double activity = app_->Activity(threads_);

  // Per-active-core share of its instance's GIPS: losing a core costs
  // the instance proportionally (the remaining threads stall on it).
  const double gips_per_core =
      app_->InstanceGips(threads_, 1.0) / static_cast<double>(threads_);

  auto core_powers = [&](std::size_t lvl,
                         const std::vector<double>& temps) {
    const power::VfLevel& vf = ladder[lvl];
    std::vector<double> p(n);
    for (std::size_t c = 0; c < n; ++c) {
      p[c] = down[c] ? 0.0
             : on[c] ? pm.TotalPower(activity, app_->ceff22_nf, app_->pind22,
                                     vf.vdd, vf.freq, temps[c])
                     : pm.DarkCorePower(temps[c]);
    }
    return p;
  };
  auto current_gips = [&](std::size_t lvl) {
    std::size_t alive = 0;
    for (const std::size_t c : active_set_)
      if (on[c] && !down[c]) ++alive;
    return static_cast<double>(alive) * gips_per_core * ladder[lvl].freq;
  };

  DtmResult result;

  // Warm start: steady state of the *requested* operating point. This
  // is exactly the situation the paper describes -- a mapping admitted
  // by an optimistic TDP whose steady state violates T_DTM.
  {
    std::vector<double> temps(n, platform_->thermal_model().ambient_c());
    for (int it = 0; it < 3; ++it) {
      const bool inject_solver_fault =
          injector != nullptr && injector->ConsumeSolverFault();
      if (sim.InitializeSteadyStateRobust(core_powers(start_level, temps),
                                          inject_solver_fault)) {
        ++result.solver_retries;
        if (injector)
          injector->log().Record(
              0.0, faults::FaultEventKind::kMitigated,
              faults::FaultKind::kSolverNonConvergence, faults::kNoCore,
              0.0, "warm start retried with perturbed pivoting");
      }
      temps = sim.DieTemps();
    }
  }

  result.nominal_gips = current_gips(start_level);
  result.min_freq_ghz = ladder[level].freq;
  const std::size_t steps = static_cast<std::size_t>(
      std::lround(duration_s / control_period_s));
  const std::size_t stride = std::max<std::size_t>(1, steps / 500);
  double gips_acc = 0.0;
  bool was_safe = false;

  for (std::size_t s = 0; s < steps; ++s) {
    DS_TELEM_COUNT("dtm.control_steps", 1);
    const double now_s = static_cast<double>(s) * control_period_s;
    if (injector) {
      injector->BeginStep(now_s, control_period_s);
      for (const std::size_t c : injector->TakeNewlyRecoveredCores())
        down[c] = false;
      for (const std::size_t c : injector->TakeNewlyDownCores()) {
        down[c] = true;
        injector->log().Record(
            now_s, faults::FaultEventKind::kMitigated,
            injector->CoreDownPermanent(c)
                ? faults::FaultKind::kCoreFailStop
                : faults::FaultKind::kCoreTransient,
            c, 0.0, "core dropped from workload (share stalls)");
      }
    }

    const std::vector<double> temps = sim.DieTemps();
    const std::vector<double>& sensed = bus.Sample(now_s, temps);
    const double peak = *std::max_element(sensed.begin(), sensed.end());
    const double true_peak =
        *std::max_element(temps.begin(), temps.end());
    std::size_t requested = level;
    if (bus.InSafeState()) {
      requested = 0;  // watchdog: pin the ladder at its lowest level
    } else if (peak > t_crit) {
      if (policy == DtmPolicy::kThrottleGlobal) {
        requested = ladder.StepDown(level);
      } else {
        // Gate the hottest still-running core (by sensed temperature).
        std::size_t hottest = n;
        double t_max = -1.0;
        for (const std::size_t c : active_set_) {
          if (on[c] && !down[c] && sensed[c] > t_max) {
            t_max = sensed[c];
            hottest = c;
          }
        }
        if (hottest < n) {
          on[hottest] = false;
          ++result.cores_shut_down;
          DS_TELEM_COUNT("dtm.cores_gated", 1);
          ds::telemetry::EmitInstant("controller", "dtm_gate_core",
                                     ds::telemetry::TraceLevel::kDecision,
                                     "core", static_cast<double>(hottest),
                                     "sim_time_s", now_s);
        }
      }
    } else if (policy == DtmPolicy::kThrottleGlobal &&
               peak < t_crit - hysteresis_c && level < start_level) {
      requested = ladder.StepUp(level);
    }
    const std::size_t prev_level = level;
    level = injector ? injector->ApplyDvfs(requested, level) : requested;
    if (level != prev_level) {
      DS_TELEM_COUNT("dtm.throttle_events", 1);
      ds::telemetry::EmitInstant(
          "controller", level < prev_level ? "dtm_throttle" : "dtm_relax",
          ds::telemetry::TraceLevel::kDecision, "freq_ghz",
          ladder[level].freq, "sim_time_s", now_s);
    }
    if (bus.InSafeState() != was_safe) {
      was_safe = bus.InSafeState();
      ds::telemetry::EmitInstant(
          "controller", was_safe ? "safe_state_enter" : "safe_state_exit",
          ds::telemetry::TraceLevel::kDecision, "sim_time_s", now_s);
    }
    if (true_peak > t_crit) result.time_above_critical_s += control_period_s;
    if (bus.InSafeState()) result.safe_state_s += control_period_s;

    sim.Step(core_powers(level, temps));
    const double gips = current_gips(level);
    gips_acc += gips;
    result.max_temp_c = std::max(result.max_temp_c, sim.PeakDieTemp());
    result.min_freq_ghz = std::min(result.min_freq_ghz, ladder[level].freq);
    if (s % stride == 0) {
      result.time_s.push_back(sim.time());
      result.gips.push_back(gips);
      result.peak_temp_c.push_back(sim.PeakDieTemp());
    }
  }

  result.avg_gips = gips_acc / static_cast<double>(steps);
  result.performance_loss =
      result.nominal_gips > 0.0
          ? 1.0 - result.avg_gips / result.nominal_gips
          : 0.0;
  std::size_t alive = 0;
  for (const std::size_t c : active_set_)
    if (on[c] && !down[c]) ++alive;
  result.final_dark_fraction =
      1.0 - static_cast<double>(alive) / static_cast<double>(n);
  result.sensor_substitutions = bus.substitutions();
  if (injector) {
    result.cores_failed = injector->num_down_cores();
    result.fault_log = std::move(injector->log());
  }
  return result;
}

}  // namespace ds::core
