#include "core/mapping.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "telemetry/scoped.hpp"
#include "util/contracts.hpp"

namespace ds::core {
namespace {

std::vector<std::size_t> SelectContiguous(const thermal::Floorplan&,
                                          std::size_t count) {
  std::vector<std::size_t> out(count);
  std::iota(out.begin(), out.end(), 0);  // row-major block from the top
  return out;
}

std::vector<std::size_t> SelectDensest(const thermal::Floorplan& fp,
                                       std::size_t count) {
  const double cx = fp.die_width_mm() / 2.0;
  const double cy = fp.die_height_mm() / 2.0;
  std::vector<std::size_t> all(fp.num_cores());
  std::iota(all.begin(), all.end(), 0);
  std::stable_sort(all.begin(), all.end(), [&](std::size_t a, std::size_t b) {
    const double da = std::hypot(fp.CenterX(a) - cx, fp.CenterY(a) - cy);
    const double db = std::hypot(fp.CenterX(b) - cx, fp.CenterY(b) - cy);
    return da < db;
  });
  all.resize(count);
  return all;
}

std::vector<std::size_t> SelectCheckerboard(const thermal::Floorplan& fp,
                                            std::size_t count) {
  std::vector<std::size_t> out;
  out.reserve(count);
  for (int parity = 0; parity < 2 && out.size() < count; ++parity) {
    for (std::size_t r = 0; r < fp.rows() && out.size() < count; ++r) {
      for (std::size_t c = 0; c < fp.cols() && out.size() < count; ++c) {
        if ((r + c) % 2 == static_cast<std::size_t>(parity))
          out.push_back(fp.IndexOf(r, c));
      }
    }
  }
  return out;
}

}  // namespace

const char* MappingPolicyName(MappingPolicy policy) {
  switch (policy) {
    case MappingPolicy::kContiguous:
      return "contiguous";
    case MappingPolicy::kDensest:
      return "densest";
    case MappingPolicy::kCheckerboard:
      return "checkerboard";
    case MappingPolicy::kSpread:
      return "spread";
  }
  return "?";
}

std::vector<std::size_t> SelectSpread(const util::Matrix& influence,
                                      std::size_t count) {
  const std::size_t n = influence.rows();
  DS_REQUIRE(count <= n, "SelectSpread: count " << count << " exceeds "
                             << n << " cores");
  std::vector<bool> chosen(n, false);
  // row_sum[i] = current steady-state rise at core i per watt applied
  // uniformly on the chosen set.
  std::vector<double> row_sum(n, 0.0);
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::size_t step = 0; step < count; ++step) {
    std::size_t best = n;
    double best_peak = std::numeric_limits<double>::infinity();
    for (std::size_t cand = 0; cand < n; ++cand) {
      if (chosen[cand]) continue;
      // Peak over *active* rows if cand is added. Peaks occur on active
      // cores (self-influence dominates), so restricting to them is
      // both faster and matches how TSP evaluates a mapping.
      double peak = row_sum[cand] + influence(cand, cand);
      for (const std::size_t i : out)
        peak = std::max(peak, row_sum[i] + influence(i, cand));
      if (peak < best_peak) {
        best_peak = peak;
        best = cand;
      }
    }
    DS_INVARIANT(best < n, "SelectSpread: greedy step " << step
                               << " found no candidate");
    chosen[best] = true;
    out.push_back(best);
    for (std::size_t i = 0; i < n; ++i) row_sum[i] += influence(i, best);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> SelectVariationAware(
    const util::Matrix& influence,
    const std::vector<double>& leakage_factors, std::size_t count,
    double leak_weight) {
  const std::size_t n = influence.rows();
  DS_REQUIRE(count <= n, "SelectVariationAware: count " << count
                             << " exceeds " << n << " cores");
  DS_REQUIRE(leakage_factors.size() == n,
             "SelectVariationAware: " << leakage_factors.size()
                 << " leakage factors for " << n << " cores");
  // Same greedy as SelectSpread, but core j contributes
  // w_j = (1 - leak_weight) + leak_weight * leak_j per unit of nominal
  // power: a leaky core heats its neighbourhood more.
  std::vector<double> weight(n);
  for (std::size_t j = 0; j < n; ++j)
    weight[j] = (1.0 - leak_weight) + leak_weight * leakage_factors[j];

  std::vector<bool> chosen(n, false);
  std::vector<double> row_sum(n, 0.0);
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::size_t step = 0; step < count; ++step) {
    std::size_t best = n;
    double best_peak = std::numeric_limits<double>::infinity();
    for (std::size_t cand = 0; cand < n; ++cand) {
      if (chosen[cand]) continue;
      double peak = row_sum[cand] + influence(cand, cand) * weight[cand];
      for (const std::size_t i : out)
        peak = std::max(peak, row_sum[i] + influence(i, cand) * weight[cand]);
      if (peak < best_peak) {
        best_peak = peak;
        best = cand;
      }
    }
    DS_INVARIANT(best < n, "SelectVariationAware: greedy step " << step
                               << " found no candidate");
    chosen[best] = true;
    out.push_back(best);
    for (std::size_t i = 0; i < n; ++i)
      row_sum[i] += influence(i, best) * weight[best];
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> SelectCoresGeometric(const thermal::Floorplan& fp,
                                              std::size_t count,
                                              MappingPolicy policy) {
  DS_REQUIRE(count <= fp.num_cores(),
             "SelectCores: count " << count << " exceeds "
                                   << fp.num_cores() << " cores");
  switch (policy) {
    case MappingPolicy::kContiguous:
      return SelectContiguous(fp, count);
    case MappingPolicy::kDensest:
      return SelectDensest(fp, count);
    case MappingPolicy::kCheckerboard:
    case MappingPolicy::kSpread:
      return SelectCheckerboard(fp, count);
  }
  throw std::invalid_argument("SelectCores: unknown policy");
}

std::vector<std::size_t> SelectCores(const arch::Platform& platform,
                                     std::size_t count,
                                     MappingPolicy policy) {
  DS_TELEM_COUNT("mapping.selections", 1);
  DS_TELEM_TIMER("mapping.select_us");
  if (policy == MappingPolicy::kSpread)
    return SelectSpread(platform.solver().InfluenceMatrix(), count);
  return SelectCoresGeometric(platform.floorplan(), count, policy);
}

std::vector<bool> ActiveMask(std::size_t num_cores,
                             const std::vector<std::size_t>& active) {
  std::vector<bool> mask(num_cores, false);
  for (const std::size_t i : active) {
    DS_REQUIRE(i < num_cores, "ActiveMask: core index " << i
                                  << " out of range for " << num_cores
                                  << " cores");
    mask[i] = true;
  }
  return mask;
}

}  // namespace ds::core
