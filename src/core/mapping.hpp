// Spatial mapping policies: which cores of the chip are activated.
//
// The paper (Sec. 4, Fig. 8) shows that two mappings with identical
// core counts and v/f levels can differ by several Kelvin in peak
// temperature; "dark silicon patterning" (DaSim) chooses active-core
// positions that interleave dark cores as heat buffers.
//
// Policies:
//   * kContiguous   -- row-major block fill (the naive baseline).
//   * kDensest      -- tiles closest to the die centre first; this is
//                      the thermally worst reasonable mapping, used for
//                      worst-case TSP.
//   * kCheckerboard -- alternate-parity tiles first (simple pattern).
//   * kSpread       -- DaSim-style greedy dispersion: each step adds
//                      the core that minimizes the resulting worst-case
//                      thermal row-sum of the influence matrix.
#pragma once

#include <cstddef>
#include <vector>

#include "arch/platform.hpp"
#include "thermal/floorplan.hpp"
#include "util/matrix.hpp"

namespace ds::core {

enum class MappingPolicy { kContiguous, kDensest, kCheckerboard, kSpread };

const char* MappingPolicyName(MappingPolicy policy);

/// Returns the indices of `count` cores selected by `policy`.
/// kSpread requires the platform's influence matrix; the other policies
/// are purely geometric. Throws std::invalid_argument if count exceeds
/// the core count.
std::vector<std::size_t> SelectCores(const arch::Platform& platform,
                                     std::size_t count, MappingPolicy policy);

/// Geometric-only variant (no influence matrix; kSpread falls back to
/// kCheckerboard). Useful for tests that avoid the O(n^3) factorization.
std::vector<std::size_t> SelectCoresGeometric(const thermal::Floorplan& fp,
                                              std::size_t count,
                                              MappingPolicy policy);

/// Greedy dispersion on an explicit influence matrix.
std::vector<std::size_t> SelectSpread(const util::Matrix& influence,
                                      std::size_t count);

/// Variability-aware patterning (DaSim [5]): greedy dispersion on the
/// influence matrix with each core's heat contribution weighted by its
/// process-variation leakage factor, so leaky cores are both avoided
/// and kept apart. `leak_weight` is the fraction of a core's power that
/// is leakage (sets how strongly variation matters; ~0.25 for the
/// paper's operating points).
std::vector<std::size_t> SelectVariationAware(
    const util::Matrix& influence,
    const std::vector<double>& leakage_factors, std::size_t count,
    double leak_weight = 0.25);

/// Boolean activity mask from an active set.
std::vector<bool> ActiveMask(std::size_t num_cores,
                             const std::vector<std::size_t>& active);

}  // namespace ds::core
