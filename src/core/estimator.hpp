// Dark-silicon estimation under a power budget (TDP) or a temperature
// constraint (Secs. 3.1 and 3.2 of the paper).
//
// Both estimators map instances of one application (n dependent threads
// per instance, Sec. 2.3) onto the chip until the constraint binds:
//   * UnderPowerBudget: total active-core power (leakage conservatively
//     at T_DTM, as a budget must be) may not exceed the TDP;
//   * UnderTemperature: the steady-state peak die temperature (with the
//     full leakage/temperature fixed point) may not exceed T_DTM.
// After filling with full instances, one final smaller instance
// (threads-1 .. 1) is added if it still fits, which matches the paper's
// fractional active-core percentages.
#pragma once

#include <cstddef>
#include <vector>

#include "apps/app_profile.hpp"
#include "apps/workload.hpp"
#include "arch/platform.hpp"
#include "arch/variation.hpp"
#include "core/mapping.hpp"

namespace ds::core {

struct Estimate {
  std::size_t active_cores = 0;
  std::size_t instances = 0;
  double dark_fraction = 1.0;   // dark cores / total cores
  double total_power_w = 0.0;   // converged (actual-temperature) power
  double budget_power_w = 0.0;  // power as accounted against the budget
  double peak_temp_c = 0.0;
  double total_gips = 0.0;
  bool thermal_violation = false;  // peak > T_DTM
  std::vector<std::size_t> active_set;
  std::vector<double> core_temps;  // converged per-core temperatures [C]
  apps::Workload workload;
};

class DarkSiliconEstimator {
 public:
  /// The platform must outlive the estimator.
  explicit DarkSiliconEstimator(const arch::Platform& platform);

  /// Budget-side packing only (no thermal evaluation): the workload of
  /// full 8-thread-or-fewer instances of (app, threads, level) that fits
  /// under `tdp_w`. Used directly by DVFS searches that compare many
  /// configurations before evaluating the winner thermally.
  apps::Workload PlanUnderPowerBudget(const apps::AppProfile& app,
                                      std::size_t threads, std::size_t level,
                                      double tdp_w) const;

  /// Dark silicon when TDP is the constraint (Sec. 3.1). `level` indexes
  /// the platform ladder.
  Estimate UnderPowerBudget(
      const apps::AppProfile& app, std::size_t threads, std::size_t level,
      double tdp_w,
      MappingPolicy policy = MappingPolicy::kContiguous) const;

  /// Dark silicon when the peak temperature is the constraint
  /// (Sec. 3.2): instances are mapped until T_peak would exceed T_DTM.
  Estimate UnderTemperature(
      const apps::AppProfile& app, std::size_t threads, std::size_t level,
      MappingPolicy policy = MappingPolicy::kContiguous) const;

  /// Thermal/power/performance evaluation of an arbitrary workload
  /// mapped with `policy` (or onto an explicit active set, which must
  /// have exactly workload.TotalCores() entries).
  Estimate EvaluateWorkload(const apps::Workload& workload,
                            MappingPolicy policy) const;
  Estimate EvaluateWorkload(const apps::Workload& workload,
                            std::vector<std::size_t> active_set) const;

  /// Variation-aware evaluation: each core's leakage is multiplied by
  /// its process-variation factor (DaSim-style analysis). `variation`
  /// must cover the whole chip.
  Estimate EvaluateWorkload(const apps::Workload& workload,
                            std::vector<std::size_t> active_set,
                            const arch::VariationMap& variation) const;

  /// Evaluation with additional temperature-independent per-tile power
  /// (e.g. the NoC's router/link power from noc::MeshNoc). `extra`
  /// must have one entry per core tile.
  Estimate EvaluateWorkloadWithUncore(
      const apps::Workload& workload, std::vector<std::size_t> active_set,
      const std::vector<double>& extra_per_tile_w) const;

  /// Per-core power of (app, threads) at `level` with leakage at T_DTM
  /// -- the budget-side accounting used against a TDP.
  double BudgetCorePower(const apps::AppProfile& app, std::size_t threads,
                         std::size_t level) const;

  const arch::Platform& platform() const { return *platform_; }

 private:
  Estimate EvaluateImpl(const apps::Workload& workload,
                        std::vector<std::size_t> active_set,
                        const arch::VariationMap* variation,
                        const std::vector<double>* extra_per_tile_w =
                            nullptr) const;

  const arch::Platform* platform_;
};

}  // namespace ds::core
