// STC vs NTC at iso-performance (Sec. 6, Fig. 14).
//
// The NTC configuration runs many threads per instance at a
// near-threshold operating point (the paper: 8 threads at 1 GHz/0.46 V
// in 11 nm); each STC configuration runs the *same number of instances*
// with fewer threads, at the frequency that matches the NTC
// performance: f_stc(n) = f_ntc * speedup(8) / speedup(n). Energy is
// compared over a fixed amount of work (what the NTC configuration
// completes in a reference interval), so iso-performance means
// iso-time, and a capped STC frequency (> max boost) means longer
// execution at lower throughput.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "apps/app_profile.hpp"
#include "arch/platform.hpp"
#include "core/estimator.hpp"
#include "power/vf_curve.hpp"

namespace ds::core {

struct NtcOperatingPoint {
  double freq;  // [GHz]
  std::size_t threads;
};

/// One configuration's outcome.
struct RegionResult {
  double freq = 0.0;          // [GHz] used
  double vdd = 0.0;           // [V]
  power::VoltageRegion region = power::VoltageRegion::kSuperThreshold;
  bool freq_capped = false;   // requested frequency exceeded max boost
  double gips = 0.0;
  double power_w = 0.0;       // converged steady-state total power
  double time_s = 0.0;        // to complete the reference work
  double energy_kj = 0.0;
};

struct NtcComparison {
  std::string app;
  RegionResult ntc;    // 8 threads, near-threshold
  RegionResult stc1;   // 1 thread
  RegionResult stc2;   // 2 threads
};

class NtcAnalysis {
 public:
  explicit NtcAnalysis(const arch::Platform& platform);

  /// Compares NTC against 1- and 2-thread STC for `instances` instances
  /// of `app`. `ref_duration_s` defines the reference work (NTC
  /// execution time). Throws if a configuration does not fit the chip.
  NtcComparison Compare(const apps::AppProfile& app, std::size_t instances,
                        const NtcOperatingPoint& ntc,
                        double ref_duration_s = 10.0) const;

 private:
  RegionResult Evaluate(const apps::AppProfile& app, std::size_t instances,
                        std::size_t threads, double freq,
                        double work_ginstr) const;

  const arch::Platform* platform_;
  DarkSiliconEstimator estimator_;
};

}  // namespace ds::core
