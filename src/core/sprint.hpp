// Computational sprinting analysis.
//
// TSP answers "what can run *forever*"; the package's thermal
// capacitance also allows running far above that budget for a bounded
// time (the same physics behind the paper's boosting transients in
// Fig. 11: the die heats in milliseconds, the heat sink in tens of
// seconds). This module measures the sprint budget: how long a given
// number of cores can run an application at a given v/f level before
// the peak temperature first reaches T_DTM, starting from a chosen
// background state.
#pragma once

#include <cstddef>

#include "apps/app_profile.hpp"
#include "arch/platform.hpp"
#include "core/mapping.hpp"

namespace ds::core {

struct SprintResult {
  double duration_s = 0.0;       // time to first T_DTM crossing
  bool unlimited = false;        // steady state never violates
  double steady_peak_c = 0.0;    // where the sprint would settle
  double start_peak_c = 0.0;     // temperature at sprint start
  double sprint_gips = 0.0;      // performance while sprinting
};

class SprintAnalysis {
 public:
  explicit SprintAnalysis(const arch::Platform& platform);

  /// Sprint of `instances` x `threads` cores of `app` at ladder level
  /// `level`, mapped by `policy`. The chip starts from the steady state
  /// of `idle_fraction` of the sprint power (0 = fully cooled chip,
  /// 1 = already at the sprint's steady state).
  /// `max_duration_s` bounds the search.
  SprintResult Measure(const apps::AppProfile& app, std::size_t instances,
                       std::size_t threads, std::size_t level,
                       double idle_fraction = 0.0,
                       MappingPolicy policy = MappingPolicy::kContiguous,
                       double max_duration_s = 120.0,
                       double dt_s = 1e-2) const;

 private:
  const arch::Platform* platform_;
};

}  // namespace ds::core
