// TSP -- Thermal Safe Power (Pagani et al., CODES+ISSS'14; paper Sec. 5).
//
// TSP(m) is the per-core power budget that keeps the peak steady-state
// temperature at or below T_DTM when m cores are active. Unlike a single
// TDP number, it is a *function of the number of active cores*: fewer
// active cores may each consume more power (run at higher v/f) without
// violating the thermal constraint.
//
// Because the RC network is linear, the peak temperature of a mapping S
// with uniform per-core power u is
//
//   T_peak = T_amb + u * max_i sum_{j in S} A[i][j] + (dark residuals),
//
// so TSP is closed-form per mapping:
//
//   TSP(S) = min_i ( T_DTM - T_amb - sum_{j not in S} A[i][j] p_dark )
//                 / ( sum_{j in S} A[i][j] )
//
// Leakage inside the budget is handled by the consumer evaluating
// Eq. (1) at T = T_DTM (conservative, as in the TSP paper).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "apps/app_profile.hpp"
#include "arch/platform.hpp"
#include "core/mapping.hpp"

namespace ds::core {

class Tsp {
 public:
  /// Uses (and, on first use, builds) the platform's influence matrix.
  /// The platform must outlive this object.
  explicit Tsp(const arch::Platform& platform);

  /// TSP for a specific active set [W per active core].
  double ForMapping(std::span<const std::size_t> active) const;

  /// Worst-case TSP(m): the densest mapping of m cores (centre cluster),
  /// i.e. a budget that is safe for *any* mapping of m active cores.
  double WorstCase(std::size_t m) const;

  /// Best-case TSP(m): the spread (patterned) mapping of m cores.
  double BestCase(std::size_t m) const;

  /// Highest DVFS level whose per-core power (Eq. (1) with leakage at
  /// T_DTM) fits within `budget_w` for the given application/threads.
  /// Returns false if even the lowest level does not fit.
  bool MaxLevelWithinBudget(const apps::AppProfile& app, std::size_t threads,
                            double budget_w, std::size_t* level_out) const;

  /// Inverse TSP (Sec. 5: "for a given number of active cores ... we
  /// compute TSP accordingly"): the largest number of active cores whose
  /// TSP budget still admits `per_core_power_w`, i.e. the most cores
  /// that can run an application consuming that much each without
  /// violating T_DTM under the given mapping assumption. Returns 0 if
  /// even one core exceeds the budget.
  std::size_t MaxActiveCores(double per_core_power_w,
                             MappingPolicy policy = MappingPolicy::kDensest)
      const;

  /// Per-core power of (app, threads) at ladder level `level`, with
  /// leakage conservatively evaluated at T_DTM.
  double CorePowerAtLevel(const apps::AppProfile& app, std::size_t threads,
                          std::size_t level) const;

  const arch::Platform& platform() const { return *platform_; }

 private:
  const arch::Platform* platform_;
};

}  // namespace ds::core
