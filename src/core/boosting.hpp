// Boosting vs constant-frequency execution (Sec. 6, Figs. 11-13).
//
// Boosting follows Intel Turbo Boost's closed-loop control: every
// control period (1 ms) the peak core temperature is compared against
// the critical threshold and the chip-wide frequency moves one 200 MHz
// ladder step up or down. The constant-frequency baseline runs at the
// highest level whose *steady-state* peak temperature stays below the
// threshold (and whose power stays below the electrical budget), i.e.
// "a few degrees below critical due to the available v/f steps".
#pragma once

#include <cstddef>
#include <vector>

#include "apps/app_profile.hpp"
#include "apps/workload.hpp"
#include "arch/platform.hpp"
#include "core/estimator.hpp"
#include "core/mapping.hpp"
#include "thermal/transient.hpp"

namespace ds::core {

/// Time series and aggregates of one transient run.
struct BoostTrace {
  std::vector<double> time_s;       // sampled once per control period
  std::vector<double> gips;
  std::vector<double> peak_temp_c;
  std::vector<double> power_w;
  double avg_gips = 0.0;
  double avg_power_w = 0.0;
  double max_power_w = 0.0;
  double max_temp_c = 0.0;
  double energy_j = 0.0;
  double duration_s = 0.0;
};

/// Simulates a homogeneous workload (m instances of one application,
/// n threads each) under chip-wide DVFS control.
class BoostingSimulator {
 public:
  /// Throws std::invalid_argument if the instances do not fit the chip.
  BoostingSimulator(const arch::Platform& platform,
                    const apps::AppProfile& app, std::size_t instances,
                    std::size_t threads,
                    MappingPolicy policy = MappingPolicy::kContiguous);

  /// Constant chip-wide level for `duration_s`, starting from the
  /// steady state of that level (the paper's steady traces).
  BoostTrace RunConstant(std::size_t level, double duration_s) const;

  /// Closed-loop boosting around `threshold_c`: one ladder step per
  /// control period, never exceeding `power_cap_w` (the paper's 500 W
  /// electrical constraint). Starts from the steady state of
  /// `start_level`.
  BoostTrace RunBoosting(std::size_t start_level, double threshold_c,
                         double power_cap_w, double duration_s,
                         double control_period_s = 1e-3) const;

  /// Quasi-steady boosting estimate: the closed-loop controller settles
  /// into an oscillation between the highest thermally safe level L and
  /// L+1; its long-run averages follow from the duty cycle d at which
  /// the power mix d*P(L+1) + (1-d)*P(L) pins the steady peak exactly
  /// at the threshold. Orders of magnitude faster than the transient
  /// run and accurate once the package has warmed up -- used for the
  /// Fig. 12/13 sweeps, and validated against RunBoosting in the tests.
  struct QuasiSteadyBoost {
    double avg_gips = 0.0;
    double avg_power_w = 0.0;
    double peak_power_w = 0.0;  // power at the boosted level
    double duty = 0.0;          // fraction of time at L+1
    std::size_t base_level = 0;
    bool boosted = false;       // false if already at ladder top / cap
  };
  QuasiSteadyBoost EstimateBoosting(double threshold_c,
                                    double power_cap_w) const;

  /// Per-instance (per-voltage-domain) boosting: each application
  /// instance owns a DVFS domain and the controller steps it by its own
  /// hottest core, instead of the paper's single chip-wide step. Cooler
  /// domains (die-edge instances) can hold boost levels the chip-wide
  /// loop must give up, so this quantifies what finer-grained DVFS
  /// hardware buys under the same thermal constraint.
  BoostTrace RunPerInstanceBoosting(std::size_t start_level,
                                    double threshold_c, double power_cap_w,
                                    double duration_s,
                                    double control_period_s = 1e-3) const;

  /// RAPL-style boosting (Sandy Bridge power architecture, paper ref
  /// [21]): the controller steps the frequency so that an exponentially
  /// weighted moving average of package power stays at PL1, while
  /// instantaneous power may burst to PL2. The thermal threshold still
  /// backstops the loop (a violation forces a step down). `tau_s` is
  /// the averaging window.
  BoostTrace RunRaplBoosting(std::size_t start_level, double pl1_w,
                             double pl2_w, double tau_s, double threshold_c,
                             double duration_s,
                             double control_period_s = 1e-3) const;

  /// Highest ladder level (<= ladder max) whose steady state satisfies
  /// peak temperature <= T_DTM and total power <= `power_cap_w`.
  /// Returns false if no level qualifies.
  bool MaxSafeConstantLevel(double power_cap_w, std::size_t* level_out) const;

  /// Aggregate performance [GIPS] of the workload at a ladder level.
  double GipsAtLevel(std::size_t level) const;

  /// Per-core power vector of the active mapping at `level` given the
  /// current die temperatures (leakage feedback) -- the same numbers
  /// the internal closed loops step with. Public for the batched
  /// transient boosting runner (runtime/scenarios.cpp),
  /// which drives cohort members through a shared lockstep stepper
  /// outside this class.
  std::vector<double> CorePowersAt(std::size_t level,
                                   std::vector<double>& die_temps) const {
    return CorePowers(level, die_temps);
  }

  /// Steady-state estimate at a ladder level (power, peak temperature).
  Estimate SteadyAtLevel(std::size_t level) const;

  std::size_t active_cores() const { return active_set_.size(); }

 private:
  apps::Workload WorkloadAtLevel(std::size_t level) const;
  std::vector<double> CorePowers(std::size_t level,
                                 std::vector<double>& die_temps) const;

  const arch::Platform* platform_;
  const apps::AppProfile* app_;
  std::size_t instances_;
  std::size_t threads_;
  std::vector<std::size_t> active_set_;
  DarkSiliconEstimator estimator_;
};

}  // namespace ds::core
