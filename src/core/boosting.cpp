#include "core/boosting.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/scoped.hpp"
#include "util/contracts.hpp"

namespace ds::core {

BoostingSimulator::BoostingSimulator(const arch::Platform& platform,
                                     const apps::AppProfile& app,
                                     std::size_t instances,
                                     std::size_t threads,
                                     MappingPolicy policy)
    : platform_(&platform),
      app_(&app),
      instances_(instances),
      threads_(threads),
      estimator_(platform) {
  if (instances * threads > platform.num_cores())
    throw std::invalid_argument(
        "BoostingSimulator: workload does not fit the chip");
  active_set_ = SelectCores(platform, instances * threads, policy);
}

apps::Workload BoostingSimulator::WorkloadAtLevel(std::size_t level) const {
  const power::VfLevel& vf = platform_->ladder()[level];
  apps::Workload w;
  w.AddN({app_, threads_, vf.freq, vf.vdd}, instances_);
  return w;
}

double BoostingSimulator::GipsAtLevel(std::size_t level) const {
  return WorkloadAtLevel(level).TotalGips();
}

Estimate BoostingSimulator::SteadyAtLevel(std::size_t level) const {
  return estimator_.EvaluateWorkload(WorkloadAtLevel(level), active_set_);
}

bool BoostingSimulator::MaxSafeConstantLevel(double power_cap_w,
                                             std::size_t* level_out) const {
  DS_REQUIRE(level_out != nullptr,
             "MaxSafeConstantLevel: level_out must not be null");
  bool found = false;
  for (std::size_t level = 0; level < platform_->ladder().size(); ++level) {
    Estimate e;
    try {
      e = SteadyAtLevel(level);
    } catch (const std::runtime_error&) {
      break;  // thermal runaway at this level and above
    }
    if (!e.thermal_violation && e.total_power_w <= power_cap_w) {
      *level_out = level;
      found = true;
    }
  }
  return found;
}

BoostTrace BoostingSimulator::RunPerInstanceBoosting(
    std::size_t start_level, double threshold_c, double power_cap_w,
    double duration_s, double control_period_s) const {
  const power::DvfsLadder& ladder = platform_->ladder();
  const power::PowerModel& pm = platform_->power_model();
  const std::size_t n = platform_->num_cores();
  thermal::TransientSimulator sim = platform_->MakeTransient(control_period_s);
  {
    std::vector<double> temps(n, platform_->thermal_model().ambient_c());
    for (int it = 0; it < 3; ++it) {
      std::vector<double> p = CorePowers(start_level, temps);
      sim.InitializeSteadyState(p);
      temps = sim.DieTemps();
    }
  }

  // Per-instance domain levels and core ownership.
  std::vector<std::size_t> domain_level(instances_, start_level);
  std::vector<std::size_t> domain_of(n, instances_);  // sentinel = dark
  for (std::size_t i = 0; i < instances_; ++i)
    for (std::size_t t = 0; t < threads_; ++t)
      domain_of[active_set_[i * threads_ + t]] = i;
  const double activity = app_->Activity(threads_);

  auto powers_at = [&](const std::vector<double>& temps) {
    std::vector<double> p(n);
    for (std::size_t c = 0; c < n; ++c) {
      const std::size_t d = domain_of[c];
      if (d == instances_) {
        p[c] = pm.DarkCorePower(temps[c]);
      } else {
        const power::VfLevel& vf = ladder[domain_level[d]];
        p[c] = pm.TotalPower(activity, app_->ceff22_nf, app_->pind22,
                             vf.vdd, vf.freq, temps[c]);
      }
    }
    return p;
  };

  const std::size_t steps =
      static_cast<std::size_t>(std::lround(duration_s / control_period_s));
  BoostTrace trace;
  trace.duration_s = duration_s;
  const std::size_t stride = std::max<std::size_t>(1, steps / 1000);
  double gips_acc = 0.0;
  double energy_acc = 0.0;

  for (std::size_t s = 0; s < steps; ++s) {
    const std::vector<double> temps = sim.DieTemps();
    // Per-domain control from each domain's hottest core.
    double total_now = 0.0;
    for (const double p : powers_at(temps)) total_now += p;
    for (std::size_t d = 0; d < instances_; ++d) {
      double hottest = 0.0;
      for (std::size_t t = 0; t < threads_; ++t)
        hottest =
            std::max(hottest, temps[active_set_[d * threads_ + t]]);
      if (hottest >= threshold_c) {
        domain_level[d] = ladder.StepDown(domain_level[d]);
      } else if (total_now < power_cap_w) {
        domain_level[d] = ladder.StepUp(domain_level[d]);
      }
    }

    const std::vector<double> powers = powers_at(temps);
    double total_power = 0.0;
    for (const double p : powers) total_power += p;
    sim.Step(powers);

    double gips = 0.0;
    for (std::size_t d = 0; d < instances_; ++d)
      gips += app_->InstanceGips(threads_, ladder[domain_level[d]].freq);
    gips_acc += gips;
    energy_acc += total_power * control_period_s;
    trace.max_power_w = std::max(trace.max_power_w, total_power);
    trace.max_temp_c = std::max(trace.max_temp_c, sim.PeakDieTemp());
    if (s % stride == 0) {
      trace.time_s.push_back(sim.time());
      trace.gips.push_back(gips);
      trace.peak_temp_c.push_back(sim.PeakDieTemp());
      trace.power_w.push_back(total_power);
    }
  }
  trace.avg_gips = gips_acc / static_cast<double>(steps);
  trace.energy_j = energy_acc;
  trace.avg_power_w = energy_acc / duration_s;
  return trace;
}

BoostTrace BoostingSimulator::RunRaplBoosting(std::size_t start_level,
                                              double pl1_w, double pl2_w,
                                              double tau_s,
                                              double threshold_c,
                                              double duration_s,
                                              double control_period_s) const {
  const power::DvfsLadder& ladder = platform_->ladder();
  thermal::TransientSimulator sim = platform_->MakeTransient(control_period_s);
  {
    std::vector<double> temps(platform_->num_cores(),
                              platform_->thermal_model().ambient_c());
    for (int it = 0; it < 3; ++it) {
      std::vector<double> p = CorePowers(start_level, temps);
      sim.InitializeSteadyState(p);
      temps = sim.DieTemps();
    }
  }

  std::size_t level = start_level;
  const double alpha = control_period_s / tau_s;  // EWMA coefficient
  double ewma = 0.0;
  {
    std::vector<double> temps = sim.DieTemps();
    for (const double p : CorePowers(level, temps)) ewma += p;
  }

  const std::size_t steps =
      static_cast<std::size_t>(std::lround(duration_s / control_period_s));
  BoostTrace trace;
  trace.duration_s = duration_s;
  const std::size_t stride = std::max<std::size_t>(1, steps / 1000);
  double gips_acc = 0.0;
  double energy_acc = 0.0;

  for (std::size_t s = 0; s < steps; ++s) {
    std::vector<double> temps = sim.DieTemps();
    // Control: thermal backstop first, then the power-limit logic.
    if (sim.PeakDieTemp() > threshold_c) {
      level = ladder.StepDown(level);
    } else if (ewma > pl1_w) {
      level = ladder.StepDown(level);
    } else {
      const std::size_t up = ladder.StepUp(level);
      if (up != level) {
        const std::vector<double> p_up = CorePowers(up, temps);
        double total_up = 0.0;
        for (const double p : p_up) total_up += p;
        if (total_up <= pl2_w) level = up;  // bursts may reach PL2
      }
    }

    const std::vector<double> powers = CorePowers(level, temps);
    double total_power = 0.0;
    for (const double p : powers) total_power += p;
    ewma += alpha * (total_power - ewma);
    sim.Step(powers);

    const double gips = GipsAtLevel(level);
    gips_acc += gips;
    energy_acc += total_power * control_period_s;
    trace.max_power_w = std::max(trace.max_power_w, total_power);
    trace.max_temp_c = std::max(trace.max_temp_c, sim.PeakDieTemp());
    if (s % stride == 0) {
      trace.time_s.push_back(sim.time());
      trace.gips.push_back(gips);
      trace.peak_temp_c.push_back(sim.PeakDieTemp());
      trace.power_w.push_back(total_power);
    }
  }
  trace.avg_gips = gips_acc / static_cast<double>(steps);
  trace.energy_j = energy_acc;
  trace.avg_power_w = energy_acc / duration_s;
  return trace;
}

BoostingSimulator::QuasiSteadyBoost BoostingSimulator::EstimateBoosting(
    double threshold_c, double power_cap_w) const {
  QuasiSteadyBoost out;
  // Highest level whose steady peak stays at or below the threshold.
  bool have_base = false;
  Estimate base;
  std::size_t base_level = 0;
  for (std::size_t level = 0; level < platform_->ladder().size(); ++level) {
    Estimate e;
    try {
      e = SteadyAtLevel(level);
    } catch (const std::runtime_error&) {
      break;
    }
    if (e.peak_temp_c <= threshold_c && e.total_power_w <= power_cap_w) {
      base = e;
      base_level = level;
      have_base = true;
    }
  }
  if (!have_base) {
    // Even the lowest level violates: the controller pins the floor.
    base = SteadyAtLevel(0);
    base_level = 0;
  }
  out.base_level = base_level;

  const std::size_t up = platform_->ladder().StepUp(base_level);
  if (up == base_level) {
    out.avg_gips = GipsAtLevel(base_level);
    out.avg_power_w = out.peak_power_w = base.total_power_w;
    return out;
  }
  Estimate boosted;
  bool boosted_ok = true;
  try {
    boosted = SteadyAtLevel(up);
  } catch (const std::runtime_error&) {
    boosted_ok = false;  // runaway at the boosted level: never boost
  }
  if (!boosted_ok || boosted.total_power_w > power_cap_w) {
    out.avg_gips = GipsAtLevel(base_level);
    out.avg_power_w = out.peak_power_w = base.total_power_w;
    return out;
  }
  const double denom = boosted.peak_temp_c - base.peak_temp_c;
  const double d =
      denom <= 1e-9
          ? 1.0
          : std::clamp((threshold_c - base.peak_temp_c) / denom, 0.0, 1.0);
  out.boosted = d > 0.0;
  out.duty = d;
  out.avg_gips =
      (1.0 - d) * GipsAtLevel(base_level) + d * GipsAtLevel(up);
  out.avg_power_w =
      (1.0 - d) * base.total_power_w + d * boosted.total_power_w;
  out.peak_power_w = boosted.total_power_w;
  return out;
}

std::vector<double> BoostingSimulator::CorePowers(
    std::size_t level, std::vector<double>& die_temps) const {
  const power::VfLevel& vf = platform_->ladder()[level];
  const power::PowerModel& pm = platform_->power_model();
  const double activity = app_->Activity(threads_);
  std::vector<double> p(platform_->num_cores());
  std::vector<bool> active(platform_->num_cores(), false);
  for (const std::size_t i : active_set_) active[i] = true;
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] = active[i]
               ? pm.TotalPower(activity, app_->ceff22_nf, app_->pind22,
                               vf.vdd, vf.freq, die_temps[i])
               : pm.DarkCorePower(die_temps[i]);
  }
  return p;
}

BoostTrace BoostingSimulator::RunConstant(std::size_t level,
                                          double duration_s) const {
  // At a fixed level the trajectory starting from its own steady state
  // is constant; evaluate once and synthesize the (flat) trace.
  const Estimate e = SteadyAtLevel(level);
  const double gips = GipsAtLevel(level);
  BoostTrace trace;
  const std::size_t samples =
      static_cast<std::size_t>(std::lround(duration_s / 1e-3));
  const std::size_t stride = std::max<std::size_t>(1, samples / 1000);
  for (std::size_t s = 0; s < samples; s += stride) {
    trace.time_s.push_back(static_cast<double>(s) * 1e-3);
    trace.gips.push_back(gips);
    trace.peak_temp_c.push_back(e.peak_temp_c);
    trace.power_w.push_back(e.total_power_w);
  }
  trace.avg_gips = gips;
  trace.avg_power_w = e.total_power_w;
  trace.max_power_w = e.total_power_w;
  trace.max_temp_c = e.peak_temp_c;
  trace.duration_s = duration_s;
  trace.energy_j = e.total_power_w * duration_s;
  return trace;
}

BoostTrace BoostingSimulator::RunBoosting(std::size_t start_level,
                                          double threshold_c,
                                          double power_cap_w,
                                          double duration_s,
                                          double control_period_s) const {
  DS_TELEM_SPAN_ARG("controller", "boosting_run",
                    ds::telemetry::TraceLevel::kSpan, "duration_s",
                    duration_s);
  const power::DvfsLadder& ladder = platform_->ladder();
  thermal::TransientSimulator sim = platform_->MakeTransient(control_period_s);
  {
    // Warm start from the steady state of the starting level.
    std::vector<double> temps(platform_->num_cores(),
                              platform_->thermal_model().ambient_c());
    // A couple of fixed-point passes align initial leakage and state.
    for (int it = 0; it < 3; ++it) {
      std::vector<double> p = CorePowers(start_level, temps);
      sim.InitializeSteadyState(p);
      temps = sim.DieTemps();
    }
  }

  std::size_t level = start_level;
  const std::size_t steps =
      static_cast<std::size_t>(std::lround(duration_s / control_period_s));
  BoostTrace trace;
  trace.duration_s = duration_s;
  const std::size_t stride = std::max<std::size_t>(1, steps / 1000);

  double gips_acc = 0.0;
  double energy_acc = 0.0;
  for (std::size_t s = 0; s < steps; ++s) {
    // Control decision from the temperature at the period start.
    const double peak = sim.PeakDieTemp();
    const std::size_t prev_level = level;
    if (peak < threshold_c) {
      const std::size_t up = ladder.StepUp(level);
      if (up != level) {
        // Respect the electrical power constraint at the higher level.
        std::vector<double> temps = sim.DieTemps();
        const std::vector<double> p_up = CorePowers(up, temps);
        double total_up = 0.0;
        for (const double p : p_up) total_up += p;
        if (total_up <= power_cap_w) level = up;
      }
    } else {
      level = ladder.StepDown(level);
    }
    if (level != prev_level) {
      DS_TELEM_COUNT("boost.level_changes", 1);
      ds::telemetry::EmitInstant(
          "controller", level > prev_level ? "boost_up" : "boost_down",
          ds::telemetry::TraceLevel::kDecision, "freq_ghz",
          ladder[level].freq, "sim_time_s", sim.time());
    }

    std::vector<double> temps = sim.DieTemps();
    const std::vector<double> powers = CorePowers(level, temps);
    double total_power = 0.0;
    for (const double p : powers) total_power += p;
    sim.Step(powers);

    const double gips = GipsAtLevel(level);
    gips_acc += gips;
    energy_acc += total_power * control_period_s;
    trace.max_power_w = std::max(trace.max_power_w, total_power);
    trace.max_temp_c = std::max(trace.max_temp_c, sim.PeakDieTemp());
    if (s % stride == 0) {
      trace.time_s.push_back(sim.time());
      trace.gips.push_back(gips);
      trace.peak_temp_c.push_back(sim.PeakDieTemp());
      trace.power_w.push_back(total_power);
    }
  }
  trace.avg_gips = gips_acc / static_cast<double>(steps);
  trace.energy_j = energy_acc;
  trace.avg_power_w = energy_acc / duration_s;
  return trace;
}

}  // namespace ds::core
