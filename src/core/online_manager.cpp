#include "core/online_manager.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <random>
#include <stdexcept>

#include "telemetry/scoped.hpp"
#include "util/contracts.hpp"

namespace ds::core {
namespace {

struct Job {
  const apps::AppProfile* app;
  std::size_t remaining;       // epochs left
  std::size_t arrival_epoch;
  std::size_t admit_epoch = 0;
  std::vector<std::size_t> cores;
};

/// Incremental dispersion: picks `count` cores from the free set,
/// greedily minimizing the predicted peak rise given the budget powers
/// already placed on the chip. `rise` is the current per-core rise
/// estimate (A * p) and is updated in place.
std::vector<std::size_t> PlaceIncremental(const util::Matrix& influence,
                                          std::vector<bool>& used,
                                          std::vector<double>& rise,
                                          double new_core_power,
                                          std::size_t count) {
  const std::size_t n = influence.rows();
  std::vector<std::size_t> placed;
  placed.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    std::size_t best = n;
    double best_peak = std::numeric_limits<double>::infinity();
    for (std::size_t cand = 0; cand < n; ++cand) {
      if (used[cand]) continue;
      // Peak after adding cand: existing hotspots plus cand itself.
      double peak = rise[cand] + influence(cand, cand) * new_core_power;
      for (std::size_t i = 0; i < n; ++i) {
        if (!used[i] && i != cand) continue;
        peak = std::max(peak, rise[i] + influence(i, cand) * new_core_power);
      }
      if (peak < best_peak) {
        best_peak = peak;
        best = cand;
      }
    }
    DS_INVARIANT(best < n, "PlaceIncremental: greedy step " << k
                               << " found no free core");
    used[best] = true;
    placed.push_back(best);
    for (std::size_t i = 0; i < n; ++i)
      rise[i] += influence(i, best) * new_core_power;
  }
  return placed;
}

}  // namespace

const char* AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kTdpBudget:
      return "tdp-budget";
    case AdmissionPolicy::kThermalSafe:
      return "thermal-safe";
  }
  return "?";
}

void OnlineConfig::Validate() const {
  DS_REQUIRE(std::isfinite(arrival_rate) && arrival_rate >= 0.0,
             "OnlineConfig: arrival_rate " << arrival_rate
                 << " must be finite and >= 0");
  DS_REQUIRE(min_duration >= 1 && max_duration >= min_duration,
             "OnlineConfig: duration band [" << min_duration << ", "
                 << max_duration << "] must satisfy 1 <= min <= max");
  DS_REQUIRE(threads >= 1, "OnlineConfig: threads must be >= 1");
  DS_REQUIRE(std::isfinite(tdp_w) && tdp_w > 0.0,
             "OnlineConfig: tdp_w " << tdp_w << " must be positive");
  faults.Validate();
}

OnlineManager::OnlineManager(const arch::Platform& platform,
                             AdmissionPolicy policy, OnlineConfig config)
    : platform_(&platform), policy_(policy), config_(config) {
  config_.Validate();
}

OnlineResult OnlineManager::Run(std::size_t epochs) const {
  DS_TELEM_SPAN_ARG("sim", "online_run", ds::telemetry::TraceLevel::kSpan,
                    "epochs", static_cast<double>(epochs));
  const std::size_t n = platform_->num_cores();
  const DarkSiliconEstimator estimator(*platform_);
  const std::size_t level = platform_->ladder().NominalLevel();
  const power::VfLevel& vf = platform_->ladder()[level];
  const util::Matrix& influence = platform_->solver().InfluenceMatrix();
  const double headroom =
      platform_->tdtm_c() - platform_->thermal_model().ambient_c();
  const auto& suite = apps::ParsecSuite();

  util::Rng rng(config_.seed);
  std::poisson_distribution<int> arrivals(config_.arrival_rate);

  std::vector<Job> running;
  std::deque<Job> queue;
  std::vector<bool> used(n, false);
  std::vector<bool> down(n, false);  // fault outages (degraded core set)
  std::vector<double> rise(n, 0.0);  // predicted rise from budget powers
  double budget_used = 0.0;

  // One epoch is one fault control step; null when disabled.
  std::unique_ptr<faults::FaultInjector> injector;
  if (config_.faults.enabled)
    injector = std::make_unique<faults::FaultInjector>(config_.faults, n);

  OnlineResult result;
  double wait_acc = 0.0;
  std::size_t admitted = 0;
  double gips_acc = 0.0;
  double active_acc = 0.0;

  auto budget_core_power = [&](const apps::AppProfile& app) {
    return estimator.BudgetCorePower(app, config_.threads, level);
  };

  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    DS_TELEM_COUNT("online.epochs", 1);
    // 0. Fault schedule: migrate jobs off cores that went down.
    if (injector) {
      const double now_s = static_cast<double>(epoch);
      injector->BeginStep(now_s, 1.0);
      for (const std::size_t c : injector->TakeNewlyRecoveredCores())
        down[c] = false;
      const std::vector<std::size_t> failed = injector->TakeNewlyDownCores();
      for (const std::size_t c : failed) down[c] = true;
      if (!failed.empty()) {
        for (auto it = running.begin(); it != running.end();) {
          const bool hit = std::any_of(
              it->cores.begin(), it->cores.end(),
              [&](std::size_t c) { return down[c]; });
          if (!hit) {
            ++it;
            continue;
          }
          const double p_core = budget_core_power(*it->app);
          for (const std::size_t c : it->cores) {
            used[c] = false;
            for (std::size_t i = 0; i < n; ++i)
              rise[i] -= influence(i, c) * p_core;
          }
          budget_used -= p_core * static_cast<double>(config_.threads);
          it->cores.clear();
          ++result.jobs_requeued;
          DS_TELEM_COUNT("online.jobs_requeued", 1);
          ds::telemetry::EmitInstant("controller", "job_requeued",
                                     ds::telemetry::TraceLevel::kDecision,
                                     "epoch", static_cast<double>(epoch));
          queue.push_front(std::move(*it));
          it = running.erase(it);
        }
        for (const std::size_t c : failed) {
          injector->log().Record(
              now_s, faults::FaultEventKind::kMitigated,
              injector->CoreDownPermanent(c)
                  ? faults::FaultKind::kCoreFailStop
                  : faults::FaultKind::kCoreTransient,
              c, 0.0,
              "jobs requeued; admission re-runs on the degraded core set");
        }
      }
    }

    // 1. Arrivals.
    const int k = arrivals(rng.engine());
    for (int i = 0; i < k; ++i) {
      Job job;
      job.app = &suite[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int>(suite.size()) - 1))];
      job.remaining = static_cast<std::size_t>(
          rng.UniformInt(static_cast<int>(config_.min_duration),
                         static_cast<int>(config_.max_duration)));
      job.arrival_epoch = epoch;
      queue.push_back(job);
      ++result.jobs_arrived;
    }

    // 2. Admission (FIFO; head-of-line blocking keeps it fair).
    while (!queue.empty()) {
      Job& job = queue.front();
      std::size_t free_cores = 0;
      for (std::size_t c = 0; c < n; ++c)
        if (!used[c] && !down[c]) ++free_cores;
      if (free_cores < config_.threads) break;

      const double p_core = budget_core_power(*job.app);
      if (policy_ == AdmissionPolicy::kTdpBudget) {
        if (budget_used + p_core * static_cast<double>(config_.threads) >
            config_.tdp_w)
          break;
        // Contiguous placement: lowest-index free (and alive) cores.
        for (std::size_t c = 0; c < n && job.cores.size() < config_.threads;
             ++c) {
          if (!used[c] && !down[c]) {
            used[c] = true;
            job.cores.push_back(c);
          }
        }
        for (const std::size_t c : job.cores)
          for (std::size_t i = 0; i < n; ++i)
            rise[i] += influence(i, c) * p_core;
      } else {
        // Thermal-safe: tentatively place dispersed on the alive free
        // cores, admit only if the predicted steady peak stays below
        // T_DTM.
        std::vector<bool> used_try = used;
        for (std::size_t c = 0; c < n; ++c)
          if (down[c]) used_try[c] = true;  // exclude from placement
        std::vector<double> rise_try = rise;
        const std::vector<std::size_t> placed = PlaceIncremental(
            influence, used_try, rise_try, p_core, config_.threads);
        const double peak =
            *std::max_element(rise_try.begin(), rise_try.end());
        if (peak > headroom) break;
        for (const std::size_t c : placed) used[c] = true;
        rise = std::move(rise_try);
        job.cores = placed;
      }
      budget_used += p_core * static_cast<double>(config_.threads);
      DS_TELEM_COUNT("online.jobs_admitted", 1);
      job.admit_epoch = epoch;
      wait_acc += static_cast<double>(epoch - job.arrival_epoch);
      ++admitted;
      running.push_back(std::move(job));
      queue.pop_front();
    }

    // 3. Evaluate the epoch's true thermal steady state.
    apps::Workload w;
    std::vector<std::size_t> active;
    for (const Job& job : running) {
      w.Add({job.app, config_.threads, vf.freq, vf.vdd});
      active.insert(active.end(), job.cores.begin(), job.cores.end());
    }
    double epoch_gips = 0.0;
    double epoch_peak = platform_->thermal_model().ambient_c();
    if (!running.empty()) {
      const Estimate e = estimator.EvaluateWorkload(w, active);
      epoch_gips = e.total_gips;
      epoch_peak = e.peak_temp_c;
      if (e.thermal_violation) ++result.violation_epochs;
    }
    gips_acc += epoch_gips;
    active_acc += static_cast<double>(active.size());
    result.max_peak_temp_c = std::max(result.max_peak_temp_c, epoch_peak);
    result.epoch_gips.push_back(epoch_gips);
    result.epoch_peak_temp.push_back(epoch_peak);

    // 4. Departures.
    for (auto it = running.begin(); it != running.end();) {
      if (--it->remaining == 0) {
        const double p_core = budget_core_power(*it->app);
        for (const std::size_t c : it->cores) {
          used[c] = false;
          for (std::size_t i = 0; i < n; ++i)
            rise[i] -= influence(i, c) * p_core;
        }
        budget_used -= p_core * static_cast<double>(config_.threads);
        ++result.jobs_completed;
        it = running.erase(it);
      } else {
        ++it;
      }
    }
  }

  result.jobs_rejected = queue.size();
  result.avg_wait_epochs =
      admitted > 0 ? wait_acc / static_cast<double>(admitted) : 0.0;
  result.avg_gips = gips_acc / static_cast<double>(epochs);
  result.avg_active_cores = active_acc / static_cast<double>(epochs);
  if (injector) {
    result.cores_failed = injector->num_down_cores();
    result.fault_log = std::move(injector->log());
  }
  return result;
}

}  // namespace ds::core
