#include "core/tsp.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "telemetry/scoped.hpp"
#include "util/contracts.hpp"

namespace ds::core {

Tsp::Tsp(const arch::Platform& platform) : platform_(&platform) {}

double Tsp::ForMapping(std::span<const std::size_t> active) const {
  DS_REQUIRE(!active.empty(), "Tsp::ForMapping: empty active set");
  DS_TELEM_COUNT("tsp.evaluations", 1);
  DS_TELEM_TIMER("tsp.compute_us");
  const util::Matrix& a = platform_->solver().InfluenceMatrix();
  const std::size_t n = platform_->num_cores();
  for (const std::size_t j : active)
    DS_REQUIRE(j < n, "Tsp::ForMapping: core index " << j
                          << " out of range for " << n << " cores");
  const double t_amb = platform_->thermal_model().ambient_c();
  const double headroom_total = platform_->tdtm_c() - t_amb;
  const double p_dark =
      platform_->power_model().DarkCorePower(platform_->tdtm_c());

  std::vector<bool> is_active(n, false);
  for (const std::size_t j : active) is_active[j] = true;

  double budget = std::numeric_limits<double>::infinity();
  // The peak is attained on an active core; evaluating every row keeps
  // the bound safe regardless.
  for (std::size_t i = 0; i < n; ++i) {
    double active_sum = 0.0;
    double dark_rise = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (is_active[j])
        active_sum += a(i, j);
      else
        dark_rise += a(i, j) * p_dark;
    }
    if (active_sum <= 0.0) continue;
    budget = std::min(budget, (headroom_total - dark_rise) / active_sum);
  }
  return budget;
}

double Tsp::WorstCase(std::size_t m) const {
  const auto mapping = SelectCores(*platform_, m, MappingPolicy::kDensest);
  return ForMapping(mapping);
}

double Tsp::BestCase(std::size_t m) const {
  const auto mapping = SelectCores(*platform_, m, MappingPolicy::kSpread);
  return ForMapping(mapping);
}

std::size_t Tsp::MaxActiveCores(double per_core_power_w,
                                MappingPolicy policy) const {
  const std::size_t n = platform_->num_cores();
  // TSP(m) is non-increasing in m, so binary search the largest m with
  // TSP(m) >= per_core_power_w.
  auto fits = [&](std::size_t m) {
    const auto mapping = SelectCores(*platform_, m, policy);
    return ForMapping(mapping) >= per_core_power_w;
  };
  if (!fits(1)) return 0;
  std::size_t lo = 1, hi = n + 1;
  if (fits(n)) return n;
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (fits(mid))
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

double Tsp::CorePowerAtLevel(const apps::AppProfile& app, std::size_t threads,
                             std::size_t level) const {
  const power::VfLevel& vf = platform_->ladder()[level];
  return platform_->power_model().TotalPower(
      app.Activity(threads), app.ceff22_nf, app.pind22, vf.vdd, vf.freq,
      platform_->tdtm_c());
}

bool Tsp::MaxLevelWithinBudget(const apps::AppProfile& app,
                               std::size_t threads, double budget_w,
                               std::size_t* level_out) const {
  DS_REQUIRE(level_out != nullptr,
             "Tsp::MaxLevelWithinBudget: level_out must not be null");
  const std::size_t n_levels = platform_->ladder().size();
  bool found = false;
  for (std::size_t level = 0; level < n_levels; ++level) {
    if (CorePowerAtLevel(app, threads, level) <= budget_w) {
      *level_out = level;
      found = true;
    }
  }
  return found;
}

}  // namespace ds::core
