#include "core/ntc.hpp"

#include <algorithm>
#include <stdexcept>

namespace ds::core {

NtcAnalysis::NtcAnalysis(const arch::Platform& platform)
    : platform_(&platform), estimator_(platform) {}

RegionResult NtcAnalysis::Evaluate(const apps::AppProfile& app,
                                   std::size_t instances,
                                   std::size_t threads, double freq,
                                   double work_ginstr) const {
  RegionResult r;
  const power::VfCurve& curve = platform_->vf_curve();
  const double f_cap = platform_->tech().boost_max_freq;
  r.freq_capped = freq > f_cap;
  r.freq = std::min(freq, f_cap);
  r.vdd = curve.VoltageFor(r.freq);
  r.region = curve.RegionOf(r.vdd);

  if (instances * threads > platform_->num_cores())
    throw std::invalid_argument("NtcAnalysis: workload does not fit");

  apps::Workload w;
  w.AddN({&app, threads, r.freq, r.vdd}, instances);
  // Spread placement: both regions benefit equally, keeping the energy
  // comparison about the operating point rather than the mapping.
  const Estimate e =
      estimator_.EvaluateWorkload(w, MappingPolicy::kSpread);
  r.gips = e.total_gips;
  r.power_w = e.total_power_w;
  r.time_s = work_ginstr / r.gips;
  r.energy_kj = r.power_w * r.time_s / 1e3;
  return r;
}

NtcComparison NtcAnalysis::Compare(const apps::AppProfile& app,
                                   std::size_t instances,
                                   const NtcOperatingPoint& ntc,
                                   double ref_duration_s) const {
  NtcComparison out;
  out.app = app.name;

  // Reference work: what the NTC configuration completes in
  // ref_duration_s [giga-instructions].
  const double ntc_gips =
      static_cast<double>(instances) *
      app.InstanceGips(ntc.threads, ntc.freq);
  const double work = ntc_gips * ref_duration_s;

  out.ntc = Evaluate(app, instances, ntc.threads, ntc.freq, work);

  // STC frequencies that match the NTC throughput per instance.
  const double s_ntc = app.Speedup(ntc.threads);
  const double f1 = ntc.freq * s_ntc / app.Speedup(1);
  const double f2 = ntc.freq * s_ntc / app.Speedup(2);
  out.stc1 = Evaluate(app, instances, 1, f1, work);
  out.stc2 = Evaluate(app, instances, 2, f2, work);
  return out;
}

}  // namespace ds::core
