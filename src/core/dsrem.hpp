// Resource-management policies of Sec. 4:
//
// Both policies operate on a *job list*: a fixed queue of application
// instances to run (DsRem's original formulation in [19] manages a
// given set of applications, not an unbounded stream). Each job is
// placed at most once.
//
//  * TdpMap -- the TDP-based baseline: jobs are mapped in order, each
//    with 8 threads at the maximum nominal v/f level; once the next job
//    would exceed the TDP, no more applications are mapped (Sec. 4).
//
//  * DsRem (Khdr et al., DAC'15) -- jointly determines each job's
//    thread count and v/f level to maximize overall GIPS: stage 1
//    packs jobs under the TDP using a bottleneck-normalized greedy
//    (GIPS per unit of the scarcer resource, power or cores); stage 2
//    re-evaluates thermally and either throttles levels to remove
//    violations or exploits the remaining thermal headroom by raising
//    levels (the temperature, not the TDP, is the true constraint).
#pragma once

#include <vector>

#include "apps/app_profile.hpp"
#include "core/estimator.hpp"

namespace ds::core {

/// A job list: one entry per application instance to run.
using JobList = std::vector<const apps::AppProfile*>;

/// Builds a job list of `count` jobs cycling through `apps`.
JobList MakeJobList(const std::vector<const apps::AppProfile*>& apps,
                    std::size_t count);

class TdpMap {
 public:
  explicit TdpMap(const arch::Platform& platform) : estimator_(platform) {}

  /// Maps `jobs` under `tdp_w`; returns the thermal/performance estimate
  /// (contiguous placement, the policy is thermally oblivious).
  Estimate Run(const JobList& jobs, double tdp_w) const;

 private:
  DarkSiliconEstimator estimator_;
};

class DsRem {
 public:
  explicit DsRem(const arch::Platform& platform) : estimator_(platform) {}

  /// Stage 1 (TDP-optimal settings) + stage 2 (thermal adjustment).
  Estimate Run(const JobList& jobs, double tdp_w) const;

  /// Stage 1 only -- exposed for tests and the ablation bench.
  apps::Workload PackUnderTdp(const JobList& jobs, double tdp_w) const;

 private:
  DarkSiliconEstimator estimator_;
};

}  // namespace ds::core
