// Periodic progress reporting for long-running sweeps: one sampler
// thread that, every period, pulls a snapshot from the run (a callback
// supplied by the engine -- this layer knows nothing about sweeps),
// publishes it as a "heartbeat" event on the ambient EventBus, and
// optionally renders a single carriage-return status line
//
//   [sweep] 42/70 done (3 in flight, 1 quarantined) | 618.2 rows/s | ETA 0.05 s
//
// to a caller-provided stream (--progress hands it stderr; the library
// itself never touches a process stream -- see the ds_lint raw-stderr
// rule).
//
// Like every telemetry component, the reporter observes and never
// steers: snapshots read atomics published by the workers, so results
// stay byte-identical with the heartbeat on or off, and a slow or
// blocked output stream delays only the reporter thread, never a
// worker.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <thread>

#include "util/lock_levels.hpp"
#include "util/thread_annotations.hpp"

namespace ds::telemetry {

/// One progress observation. The sampler fills what it knows; rate and
/// ETA are derived by the reporter from successive snapshots.
struct HeartbeatSnapshot {
  std::size_t jobs_total = 0;
  std::size_t jobs_done = 0;        // completed in this run + resumed
  std::size_t jobs_in_flight = 0;   // attempts currently executing
  std::size_t jobs_quarantined = 0;
  std::uint64_t retries = 0;        // attempts beyond first, so far
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_bytes = 0;
  double elapsed_s = 0.0;           // wall time since run start
};

class HeartbeatReporter {
 public:
  struct Options {
    /// Sampling period. 500 ms keeps a human-readable cadence while
    /// adding two snapshots per second of pure atomic loads.
    double period_ms = 500.0;
    /// Status-line sink; nullptr disables rendering (events only).
    std::ostream* progress = nullptr;
    /// Label prefixed to the status line (the sweep name).
    std::string label = "sweep";
    /// Publish heartbeat events on the ambient EventBus.
    bool emit_events = true;
  };

  /// Starts the reporter thread; `sampler` is called from that thread
  /// only. Stop() (or destruction) emits one final snapshot so short
  /// runs still record at least one heartbeat.
  HeartbeatReporter(std::function<HeartbeatSnapshot()> sampler,
                    Options options);
  ~HeartbeatReporter();

  HeartbeatReporter(const HeartbeatReporter&) = delete;
  HeartbeatReporter& operator=(const HeartbeatReporter&) = delete;

  /// Final sample + status line (newline-terminated), then joins the
  /// thread. Idempotent.
  void Stop();

  /// Snapshots taken so far (monotonic; tests).
  std::size_t beats() const;

  /// Renders the status line for `snap` (exposed for tests).
  static std::string StatusLine(const std::string& label,
                                const HeartbeatSnapshot& snap,
                                double rows_per_s, double eta_s);

 private:
  void Loop();
  void ReportOnce(bool final_line);

  std::function<HeartbeatSnapshot()> sampler_;
  Options options_;

  mutable Mutex mu_{locks::kHeartbeat};
  CondVar cv_;
  bool stop_ DS_GUARDED_BY(mu_) = false;
  std::size_t beats_ DS_GUARDED_BY(mu_) = 0;

  /// Serializes Stop() end-to-end; always acquired before mu_.
  Mutex stop_mu_{locks::kShutdown};
  bool stopped_ DS_GUARDED_BY(stop_mu_) = false;

  std::thread thread_;
};

}  // namespace ds::telemetry
