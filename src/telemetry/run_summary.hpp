// End-of-run summary for the closed-loop simulations: what happened,
// in one screen, instead of silence on success. Populated by the CLI
// from the simulation result plus (when telemetry is enabled) the
// metrics registry, so it works -- with fewer lines -- even when
// telemetry is off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace ds::telemetry {

struct RunSummary {
  std::string title = "run summary";

  double sim_time_s = 0.0;
  double wall_time_s = 0.0;
  std::size_t epochs = 0;
  std::size_t control_steps = 0;

  std::size_t jobs_arrived = 0;
  std::size_t jobs_completed = 0;
  std::size_t jobs_requeued = 0;

  double peak_temp_c = 0.0;
  double time_above_tdtm_s = 0.0;
  double avg_gips = 0.0;
  double avg_power_w = 0.0;

  std::size_t sensor_fallbacks = 0;
  std::size_t solver_retries = 0;
  std::size_t cores_failed = 0;
  double safe_state_s = 0.0;

  // Registry-derived extras; zero when telemetry is disabled.
  std::uint64_t lu_solves = 0;
  std::uint64_t trace_events = 0;
  std::uint64_t trace_events_dropped = 0;

  // Thermal step-kernel path selection (thermal.kernel.* counters):
  // how many transient steps ran on the folded dense propagator, how
  // many on the legacy LU triangular solve, how many were covered by
  // k-step power-hold applications, and how many simulators fell back
  // from propagator to LU on a degraded model.
  std::uint64_t propagator_steps = 0;
  std::uint64_t lu_kernel_steps = 0;
  std::uint64_t hold_steps = 0;
  std::uint64_t lu_fallbacks = 0;

  // Sweep resilience (sweep.* counters / filled by the sweep CLI from
  // SweepStats): retried attempts, watchdog timeouts, jobs retired to
  // quarantine after exhausting their retry budget.
  std::uint64_t sweep_retries = 0;
  std::uint64_t sweep_timeouts = 0;
  std::uint64_t sweep_quarantined = 0;

  // Lockstep batching (thermal.batch.* counters): cohorts formed and
  // the jobs they carried, panel passes split by width (GEMM-shaped
  // k >= 2 vs the k = 1 GEMV-shaped scalar lane, in member-steps),
  // batched power-hold member-steps, and members detached from a
  // cohort back to the scalar retry ladder.
  std::uint64_t batch_cohorts = 0;
  std::uint64_t batch_cohort_members = 0;
  std::uint64_t batch_gemm_steps = 0;
  std::uint64_t batch_gemv_steps = 0;
  std::uint64_t batch_hold_steps = 0;
  std::uint64_t batch_detached = 0;

  // ModelCache budget accounting (modelcache.* counter/gauge): entries
  // evicted to fit the byte budget and the approximate resident bytes
  // after the last request.
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_bytes = 0;

  // Sweep job accounting (filled by the sweep CLI from SweepStats;
  // independent of the telemetry gate).
  std::size_t sweep_jobs_total = 0;
  std::size_t sweep_jobs_executed = 0;
  std::size_t sweep_jobs_resumed = 0;
  std::size_t sweep_jobs_failed = 0;

  // Journal recovery accounting (filled from SweepStats): CRC-failed
  // records skipped, torn-tail bytes truncated, duplicate job records
  // dropped last-record-wins on resume. Previously these surfaced only
  // as stderr notes; the summary (and its JSON form) is the durable
  // record.
  std::uint64_t journal_corrupt_records = 0;
  std::uint64_t journal_truncated_bytes = 0;
  std::uint64_t journal_dedup_drops = 0;

  /// Fills lu_solves/trace_events*/kernel-path counts from the live
  /// registry and trace collector (no-op values when telemetry is
  /// disabled).
  void CollectTelemetry();

  void Print(std::ostream& os) const;

  /// Machine-readable form (--summary-json): one flat JSON object with
  /// every field, including zeros, so downstream join tools (ds_report)
  /// never have to guess whether a counter was absent or zero.
  void WriteJson(std::ostream& os) const;
};

}  // namespace ds::telemetry
