// Minimal JSON parser, just enough to validate what this repository
// emits (Chrome traces, metric dumps) -- used by tests/test_telemetry
// and the tools/trace_check CLI so a malformed export fails loudly in
// CI instead of silently confusing Perfetto.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ds::telemetry {

/// Parsed JSON value (small recursive DOM; objects keep key order).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
};

/// Parses `text` as one JSON document (trailing whitespace allowed).
/// Throws std::runtime_error with a position-annotated message on any
/// syntax error.
JsonValue ParseJson(std::string_view text);

/// Validates a Chrome trace_event export: top-level object with a
/// "traceEvents" array whose entries each carry a string "name", a
/// string "ph" and a numeric "ts" (plus numeric "dur" for 'X' spans).
/// Returns true and sets `*num_events`; on failure returns false and
/// describes the problem in `*error`.
bool ValidateChromeTrace(std::string_view text, std::size_t* num_events,
                         std::string* error);

}  // namespace ds::telemetry
