#include "telemetry/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/lock_levels.hpp"
#include "util/thread_annotations.hpp"

namespace ds::telemetry {
namespace {

std::atomic<std::size_t> g_buffer_capacity{65536};

// Registry of every thread's buffer. Buffers are never destroyed
// (threads may outlive the collector's view of them); the mutex guards
// registration and export only, never emission.
struct BufferRegistry {
  ds::Mutex mu{ds::locks::kTraceRegistry};
  std::vector<TraceBuffer*> buffers DS_GUARDED_BY(mu);
};

BufferRegistry& Buffers() {
  // Intentional leak: see Registry() in metrics.cpp. Mutation goes
  // through the embedded mutex.
  // ds_lint: allow(static-mutable)
  static BufferRegistry* registry =
      new BufferRegistry();  // ds_lint: allow(naked-new)
  return *registry;
}

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

void AppendJsonString(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          os << ' ';  // control chars cannot appear in our literals
        else
          os << c;
    }
  }
  os << '"';
}

void AppendEventJson(std::ostream& os, const TraceEvent& e, int tid) {
  os << "{\"name\":";
  AppendJsonString(os, e.name != nullptr ? e.name : "?");
  os << ",\"cat\":";
  AppendJsonString(os, e.cat != nullptr ? e.cat : "ds");
  os << ",\"ph\":\"" << e.phase << "\",\"ts\":" << e.ts_us
     << ",\"pid\":1,\"tid\":" << tid;
  if (e.phase == 'X') os << ",\"dur\":" << e.dur_us;
  if (e.phase == 'i') os << ",\"s\":\"t\"";  // thread-scoped instant
  if (e.arg0_name != nullptr || e.arg1_name != nullptr) {
    os << ",\"args\":{";
    bool first = true;
    if (e.arg0_name != nullptr) {
      AppendJsonString(os, e.arg0_name);
      os << ":" << e.arg0;
      first = false;
    }
    if (e.arg1_name != nullptr) {
      if (!first) os << ",";
      AppendJsonString(os, e.arg1_name);
      os << ":" << e.arg1;
    }
    os << "}";
  }
  os << "}";
}

}  // namespace

void SetTraceLevel(TraceLevel level) {
  internal::TraceLevelFlag().store(static_cast<int>(level),
                                   std::memory_order_relaxed);
}

TraceLevel GetTraceLevel() {
  return static_cast<TraceLevel>(
      internal::TraceLevelFlag().load(std::memory_order_relaxed));
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void TraceBuffer::Emit(const TraceEvent& event) {
  const std::uint64_t w = written_.load(std::memory_order_relaxed);
  ring_[static_cast<std::size_t>(w % ring_.size())] = event;
  written_.store(w + 1, std::memory_order_release);
}

std::size_t TraceBuffer::size() const {
  const std::uint64_t w = written_.load(std::memory_order_acquire);
  return static_cast<std::size_t>(std::min<std::uint64_t>(w, ring_.size()));
}

std::uint64_t TraceBuffer::dropped() const {
  const std::uint64_t w = written_.load(std::memory_order_acquire);
  return w > ring_.size() ? w - ring_.size() : 0;
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  const std::uint64_t w = written_.load(std::memory_order_acquire);
  const std::size_t n =
      static_cast<std::size_t>(std::min<std::uint64_t>(w, ring_.size()));
  std::vector<TraceEvent> out;
  out.reserve(n);
  // Oldest retained event first: when wrapped, that is slot w % cap.
  const std::uint64_t start = w > ring_.size() ? w - ring_.size() : 0;
  for (std::uint64_t i = start; i < w; ++i)
    out.push_back(ring_[static_cast<std::size_t>(i % ring_.size())]);
  return out;
}

void TraceBuffer::Clear() { written_.store(0, std::memory_order_release); }

void SetTraceBufferCapacity(std::size_t capacity) {
  g_buffer_capacity.store(capacity == 0 ? 1 : capacity,
                          std::memory_order_relaxed);
}

TraceBuffer& ThreadTraceBuffer() {
  thread_local TraceBuffer* buffer = [] {
    // Intentional leak: per-thread ring must survive thread exit so a
    // late Snapshot() can still drain it.
    auto* b = new TraceBuffer(  // ds_lint: allow(naked-new)
        g_buffer_capacity.load(std::memory_order_relaxed));
    BufferRegistry& reg = Buffers();
    const ds::MutexLock lock(reg.mu);
    reg.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

std::int64_t TraceNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

void EmitInstant(const char* cat, const char* name, TraceLevel level,
                 const char* arg0_name, double arg0, const char* arg1_name,
                 double arg1) {
  if (!TraceOn(level)) return;
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.phase = 'i';
  e.ts_us = TraceNowUs();
  e.arg0_name = arg0_name;
  e.arg0 = arg0;
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  ThreadTraceBuffer().Emit(e);
}

// arg0 is an opaque trace payload, not a physical quantity: any finite
// or non-finite value is legal to record.
// ds_lint: allow(missing-contract)
ScopedSpan::ScopedSpan(const char* cat, const char* name, TraceLevel level,
                       const char* arg0_name, double arg0,
                       const char* arg1_name, double arg1)
    : cat_(cat),
      name_(name),
      arg0_name_(arg0_name),
      arg0_(arg0),
      arg1_name_(arg1_name),
      arg1_(arg1),
      start_us_(0),
      active_(TraceOn(level)) {
  if (active_) start_us_ = TraceNowUs();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  TraceEvent e;
  e.name = name_;
  e.cat = cat_;
  e.phase = 'X';
  e.ts_us = start_us_;
  e.dur_us = TraceNowUs() - start_us_;
  e.arg0_name = arg0_name_;
  e.arg0 = arg0_;
  e.arg1_name = arg1_name_;
  e.arg1 = arg1_;
  ThreadTraceBuffer().Emit(e);
}

std::uint64_t TotalDroppedEvents() {
  BufferRegistry& reg = Buffers();
  const ds::MutexLock lock(reg.mu);
  std::uint64_t total = 0;
  for (const TraceBuffer* b : reg.buffers) total += b->dropped();
  return total;
}

std::size_t TotalTraceEvents() {
  BufferRegistry& reg = Buffers();
  const ds::MutexLock lock(reg.mu);
  std::size_t total = 0;
  for (const TraceBuffer* b : reg.buffers) total += b->size();
  return total;
}

void WriteChromeTrace(std::ostream& os) {
  struct Tagged {
    TraceEvent event;
    int tid;
  };
  std::vector<Tagged> all;
  {
    BufferRegistry& reg = Buffers();
    const ds::MutexLock lock(reg.mu);
    int tid = 1;
    for (const TraceBuffer* b : reg.buffers) {
      for (const TraceEvent& e : b->Snapshot()) all.push_back({e, tid});
      ++tid;
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Tagged& a, const Tagged& b) {
                     return a.event.ts_us < b.event.ts_us;
                   });

  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
     << TotalDroppedEvents() << "},\"traceEvents\":[";
  bool first = true;
  os.precision(17);
  for (const Tagged& t : all) {
    if (!first) os << ",";
    first = false;
    os << "\n";
    AppendEventJson(os, t.event, t.tid);
  }
  os << "\n]}\n";
}

void WriteChromeTrace(const std::string& path) {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("WriteChromeTrace: cannot open " + path);
  WriteChromeTrace(out);
  out.flush();
  if (!out)
    throw std::runtime_error("WriteChromeTrace: write failed for " + path);
}

void ClearTrace() {
  BufferRegistry& reg = Buffers();
  const ds::MutexLock lock(reg.mu);
  for (TraceBuffer* b : reg.buffers) b->Clear();
}

}  // namespace ds::telemetry
