#include "telemetry/run_summary.hpp"

#include <iomanip>
#include <ostream>

#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace ds::telemetry {

void RunSummary::CollectTelemetry() {
  if (!Enabled()) return;
  lu_solves = Registry().GetCounter("lu.solves").value();
  trace_events = TotalTraceEvents();
  trace_events_dropped = TotalDroppedEvents();
  propagator_steps =
      Registry().GetCounter("thermal.kernel.propagator_steps").value();
  lu_kernel_steps = Registry().GetCounter("thermal.kernel.lu_steps").value();
  hold_steps = Registry().GetCounter("thermal.kernel.hold_steps").value();
  lu_fallbacks = Registry().GetCounter("thermal.kernel.lu_fallbacks").value();
  sweep_retries = Registry().GetCounter("sweep.retries").value();
  sweep_timeouts = Registry().GetCounter("sweep.job_timeouts").value();
  sweep_quarantined = Registry().GetCounter("sweep.quarantined").value();
  batch_cohorts = Registry().GetCounter("thermal.batch.cohorts").value();
  batch_cohort_members =
      Registry().GetCounter("thermal.batch.cohort_members").value();
  batch_gemm_steps = Registry().GetCounter("thermal.batch.gemm_steps").value();
  batch_gemv_steps = Registry().GetCounter("thermal.batch.gemv_steps").value();
  batch_hold_steps = Registry().GetCounter("thermal.batch.hold_steps").value();
  batch_detached = Registry().GetCounter("thermal.batch.detached").value();
  cache_evictions = Registry().GetCounter("modelcache.evictions").value();
  cache_bytes =
      static_cast<std::uint64_t>(Registry().GetGauge("modelcache.bytes").value());
}

void RunSummary::Print(std::ostream& os) const {
  const auto line = [&](const char* label, const auto& value,
                        const char* unit = "") {
    os << "  " << std::left << std::setw(22) << label << std::right
       << value << unit << "\n";
  };
  os << "-- " << title << " --\n";
  os << std::fixed << std::setprecision(2);
  line("simulated time", sim_time_s, " s");
  // Wall time is the one nondeterministic number; callers leave it at
  // zero (and we omit the line) when run-to-run diffable output
  // matters more than the measurement.
  if (wall_time_s > 0.0) line("wall time", wall_time_s, " s");
  if (epochs > 0) line("scheduler epochs", epochs);
  if (control_steps > 0) line("control steps", control_steps);
  line("jobs arrived", jobs_arrived);
  line("jobs completed", jobs_completed);
  if (jobs_requeued > 0) line("jobs requeued", jobs_requeued);
  line("avg GIPS", avg_gips);
  line("avg power", avg_power_w, " W");
  line("peak temperature", peak_temp_c, " C");
  line("time above T_DTM", 1e3 * time_above_tdtm_s, " ms");
  if (safe_state_s > 0.0) line("safe-state time", 1e3 * safe_state_s, " ms");
  if (sensor_fallbacks > 0) line("sensor fallbacks", sensor_fallbacks);
  if (solver_retries > 0) line("solver retries", solver_retries);
  if (cores_failed > 0) line("cores failed", cores_failed);
  if (lu_solves > 0) line("LU solves", lu_solves);
  if (propagator_steps > 0) line("propagator steps", propagator_steps);
  if (lu_kernel_steps > 0) line("LU-kernel steps", lu_kernel_steps);
  if (hold_steps > 0) line("power-hold steps", hold_steps);
  if (lu_fallbacks > 0) line("LU fallbacks", lu_fallbacks);
  if (sweep_retries > 0) line("sweep retries", sweep_retries);
  if (sweep_timeouts > 0) line("sweep timeouts", sweep_timeouts);
  if (sweep_quarantined > 0) line("jobs quarantined", sweep_quarantined);
  if (batch_cohorts > 0) {
    line("batch cohorts", batch_cohorts);
    line("batch cohort jobs", batch_cohort_members);
    line("batch mean k", static_cast<double>(batch_cohort_members) /
                             static_cast<double>(batch_cohorts));
  }
  if (batch_gemm_steps > 0) line("batch GEMM steps", batch_gemm_steps);
  if (batch_gemv_steps > 0) line("batch GEMV steps", batch_gemv_steps);
  if (batch_hold_steps > 0) line("batch hold steps", batch_hold_steps);
  if (batch_detached > 0) line("batch detached", batch_detached);
  if (journal_corrupt_records > 0)
    line("journal corrupt recs", journal_corrupt_records);
  if (journal_truncated_bytes > 0)
    line("journal torn bytes", journal_truncated_bytes);
  if (journal_dedup_drops > 0)
    line("journal dedup drops", journal_dedup_drops);
  if (cache_evictions > 0) line("cache evictions", cache_evictions);
  if (cache_bytes > 0)
    line("cache bytes", cache_bytes / (1024.0 * 1024.0), " MiB");
  if (trace_events > 0) line("trace events", trace_events);
  if (trace_events_dropped > 0)
    line("trace events dropped", trace_events_dropped);
  os.unsetf(std::ios::fixed);
}

void RunSummary::WriteJson(std::ostream& os) const {
  os.precision(17);
  bool first = true;
  const auto field = [&](const char* name, double value) {
    os << (first ? "\n  " : ",\n  ") << "\"" << name << "\": " << value;
    first = false;
  };
  os << "{";
  field("sim_time_s", sim_time_s);
  field("wall_time_s", wall_time_s);
  field("epochs", static_cast<double>(epochs));
  field("control_steps", static_cast<double>(control_steps));
  field("jobs_arrived", static_cast<double>(jobs_arrived));
  field("jobs_completed", static_cast<double>(jobs_completed));
  field("jobs_requeued", static_cast<double>(jobs_requeued));
  field("peak_temp_c", peak_temp_c);
  field("time_above_tdtm_s", time_above_tdtm_s);
  field("avg_gips", avg_gips);
  field("avg_power_w", avg_power_w);
  field("sensor_fallbacks", static_cast<double>(sensor_fallbacks));
  field("solver_retries", static_cast<double>(solver_retries));
  field("cores_failed", static_cast<double>(cores_failed));
  field("safe_state_s", safe_state_s);
  field("lu_solves", static_cast<double>(lu_solves));
  field("trace_events", static_cast<double>(trace_events));
  field("trace_events_dropped",
        static_cast<double>(trace_events_dropped));
  field("propagator_steps", static_cast<double>(propagator_steps));
  field("lu_kernel_steps", static_cast<double>(lu_kernel_steps));
  field("hold_steps", static_cast<double>(hold_steps));
  field("lu_fallbacks", static_cast<double>(lu_fallbacks));
  field("sweep_retries", static_cast<double>(sweep_retries));
  field("sweep_timeouts", static_cast<double>(sweep_timeouts));
  field("sweep_quarantined", static_cast<double>(sweep_quarantined));
  field("batch_cohorts", static_cast<double>(batch_cohorts));
  field("batch_cohort_members", static_cast<double>(batch_cohort_members));
  field("batch_gemm_steps", static_cast<double>(batch_gemm_steps));
  field("batch_gemv_steps", static_cast<double>(batch_gemv_steps));
  field("batch_hold_steps", static_cast<double>(batch_hold_steps));
  field("batch_detached", static_cast<double>(batch_detached));
  field("cache_evictions", static_cast<double>(cache_evictions));
  field("cache_bytes", static_cast<double>(cache_bytes));
  field("sweep_jobs_total", static_cast<double>(sweep_jobs_total));
  field("sweep_jobs_executed", static_cast<double>(sweep_jobs_executed));
  field("sweep_jobs_resumed", static_cast<double>(sweep_jobs_resumed));
  field("sweep_jobs_failed", static_cast<double>(sweep_jobs_failed));
  field("journal_corrupt_records",
        static_cast<double>(journal_corrupt_records));
  field("journal_truncated_bytes",
        static_cast<double>(journal_truncated_bytes));
  field("journal_dedup_drops",
        static_cast<double>(journal_dedup_drops));
  os << "\n}\n";
}

}  // namespace ds::telemetry
