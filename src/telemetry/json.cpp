#include "telemetry/json.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace ds::telemetry {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue v = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c)
      Fail(std::string("expected '") + c + "', got '" + Peek() + "'");
    ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue ParseValue() {
    SkipWhitespace();
    const char c = Peek();
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.str = ParseString();
        return v;
      }
      case 't':
      case 'f':
        return ParseKeyword();
      case 'n':
        return ParseKeyword();
      default:
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)) != 0)
          return ParseNumber();
        Fail(std::string("unexpected character '") + c + "'");
    }
  }

  JsonValue ParseObject() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    Expect('{');
    SkipWhitespace();
    if (Consume('}')) return v;
    while (true) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      v.object.emplace_back(std::move(key), ParseValue());
      SkipWhitespace();
      if (Consume(',')) continue;
      Expect('}');
      return v;
    }
  }

  JsonValue ParseArray() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    Expect('[');
    SkipWhitespace();
    if (Consume(']')) return v;
    while (true) {
      v.array.push_back(ParseValue());
      SkipWhitespace();
      if (Consume(',')) continue;
      Expect(']');
      return v;
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) Fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
            for (int i = 0; i < 4; ++i)
              if (std::isxdigit(static_cast<unsigned char>(
                      text_[pos_ + static_cast<std::size_t>(i)])) == 0)
                Fail("bad \\u escape");
            // Validation-only parser: keep escapes verbatim.
            out.append("\\u");
            out.append(text_.substr(pos_, 4));
            pos_ += 4;
            break;
          }
          default:
            Fail(std::string("bad escape '\\") + esc + "'");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') Fail("bad number " + token);
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = value;
    return v;
  }

  JsonValue ParseKeyword() {
    JsonValue v;
    auto match = [&](std::string_view kw) {
      if (text_.substr(pos_, kw.size()) != kw) return false;
      pos_ += kw.size();
      return true;
    };
    if (match("true")) {
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
    } else if (match("false")) {
      v.type = JsonValue::Type::kBool;
      v.boolean = false;
    } else if (match("null")) {
      v.type = JsonValue::Type::kNull;
    } else {
      Fail("unknown keyword");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

JsonValue ParseJson(std::string_view text) {
  return Parser(text).ParseDocument();
}

bool ValidateChromeTrace(std::string_view text, std::size_t* num_events,
                         std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  JsonValue doc;
  try {
    doc = ParseJson(text);
  } catch (const std::runtime_error& e) {
    return fail(e.what());
  }
  if (!doc.is_object()) return fail("top level is not an object");
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr) return fail("missing traceEvents");
  if (!events->is_array()) return fail("traceEvents is not an array");
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    const std::string at = "event " + std::to_string(i) + ": ";
    if (!e.is_object()) return fail(at + "not an object");
    const JsonValue* name = e.Find("name");
    if (name == nullptr || !name->is_string())
      return fail(at + "missing string name");
    const JsonValue* ph = e.Find("ph");
    if (ph == nullptr || !ph->is_string() || ph->str.size() != 1)
      return fail(at + "missing one-character ph");
    const JsonValue* ts = e.Find("ts");
    if (ts == nullptr || !ts->is_number())
      return fail(at + "missing numeric ts");
    if (ph->str == "X") {
      const JsonValue* dur = e.Find("dur");
      if (dur == nullptr || !dur->is_number() || dur->number < 0.0)
        return fail(at + "complete event without non-negative dur");
    }
  }
  if (num_events != nullptr) *num_events = events->array.size();
  return true;
}

}  // namespace ds::telemetry
