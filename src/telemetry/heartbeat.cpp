#include "telemetry/heartbeat.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "telemetry/event_bus.hpp"

namespace ds::telemetry {

HeartbeatReporter::HeartbeatReporter(
    std::function<HeartbeatSnapshot()> sampler, Options options)
    : sampler_(std::move(sampler)), options_(std::move(options)) {
  // Plain throws, not DS_REQUIRE: telemetry sits below ds_util and must
  // not call back into the contracts machinery.
  if (sampler_ == nullptr)
    throw std::invalid_argument("HeartbeatReporter: null sampler");
  if (!(options_.period_ms > 0.0 && options_.period_ms <= 60000.0))
    throw std::invalid_argument("HeartbeatReporter: period " +
                                std::to_string(options_.period_ms) +
                                " ms out of (0, 60000]");
  thread_ = std::thread([this] { Loop(); });
}

HeartbeatReporter::~HeartbeatReporter() { Stop(); }

void HeartbeatReporter::Stop() {
  // Serialized end-to-end: a concurrent second caller waits until the
  // first has joined the thread and written the final line.
  const ds::MutexLock stop_lock(stop_mu_);
  if (stopped_) return;
  {
    const ds::MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  thread_.join();
  // Final snapshot from the caller's thread, after the loop is done:
  // short runs always record at least one heartbeat, and the status
  // line ends in a newline instead of a dangling \r.
  ReportOnce(/*final_line=*/true);
  stopped_ = true;
}

std::size_t HeartbeatReporter::beats() const {
  const ds::MutexLock lock(mu_);
  return beats_;
}

std::string HeartbeatReporter::StatusLine(const std::string& label,
                                          const HeartbeatSnapshot& snap,
                                          double rows_per_s, double eta_s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "[%s] %zu/%zu done (%zu in flight, %zu quarantined) | "
                "%.1f rows/s | ETA %.2f s",
                label.c_str(), snap.jobs_done, snap.jobs_total,
                snap.jobs_in_flight, snap.jobs_quarantined, rows_per_s,
                eta_s);
  return buf;
}

void HeartbeatReporter::Loop() {
  const auto period =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(options_.period_ms));
  for (;;) {
    {
      ds::MutexLock lock(mu_);
      const auto deadline = std::chrono::steady_clock::now() + period;
      while (!stop_) {
        if (cv_.WaitUntil(lock, deadline)) break;  // period elapsed
      }
      if (stop_) return;
    }
    // Sampling and rendering happen outside mu_ -- a blocked progress
    // stream must never make Stop() wait on anything but the period.
    ReportOnce(/*final_line=*/false);
  }
}

void HeartbeatReporter::ReportOnce(bool final_line) {
  const HeartbeatSnapshot snap = sampler_();
  const double rows_per_s =
      snap.elapsed_s > 0.0
          ? static_cast<double>(snap.jobs_done) / snap.elapsed_s
          : 0.0;
  const std::size_t remaining =
      snap.jobs_total > snap.jobs_done ? snap.jobs_total - snap.jobs_done
                                       : 0;
  const double eta_s =
      rows_per_s > 0.0 ? static_cast<double>(remaining) / rows_per_s : 0.0;

  if (options_.emit_events && EventsOn()) {
    Event e = MakeEvent(EventKind::kHeartbeat);
    e.AddField("done", static_cast<double>(snap.jobs_done));
    e.AddField("total", static_cast<double>(snap.jobs_total));
    e.AddField("in_flight", static_cast<double>(snap.jobs_in_flight));
    e.AddField("quarantined", static_cast<double>(snap.jobs_quarantined));
    e.AddField("retries", static_cast<double>(snap.retries));
    e.AddField("rows_per_s", rows_per_s);
    e.AddField("eta_s", eta_s);
    e.AddField("cache_hits", static_cast<double>(snap.cache_hits));
    e.AddField("cache_misses", static_cast<double>(snap.cache_misses));
    e.AddField("cache_bytes", static_cast<double>(snap.cache_bytes));
    Emit(e);
  }

  if (options_.progress != nullptr) {
    // One overwritten line while running; sealed with \n at the end.
    *options_.progress << '\r'
                       << StatusLine(options_.label, snap, rows_per_s,
                                     eta_s);
    if (final_line) *options_.progress << '\n';
    options_.progress->flush();
  }

  const ds::MutexLock lock(mu_);
  ++beats_;
}

}  // namespace ds::telemetry
