#include "telemetry/metrics_http.hpp"

#include <sstream>
#include <stdexcept>
#include <string>

#include "telemetry/telemetry.hpp"

namespace ds::telemetry {

namespace {

void Route(const net::HttpRequest& request,
           net::HttpServer::ResponseWriter& writer) {
  if (request.method == "GET" && request.target == "/metrics") {
    std::ostringstream body;
    Registry().DumpOpenMetrics(body);
    writer.Send("200 OK",
                "application/openmetrics-text; version=1.0.0; charset=utf-8",
                body.str());
  } else if (request.method == "GET" && request.target == "/healthz") {
    writer.Send("200 OK", "text/plain; charset=utf-8", "ok\n");
  } else {
    writer.Send("404 Not Found", "text/plain; charset=utf-8", "not found\n");
  }
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(Options options) {
  net::HttpServer::Options server_options;
  server_options.port = options.port;
  server_options.max_body_kb = 4;  // scrape requests carry no body
  try {
    server_ = std::make_unique<net::HttpServer>(Route, server_options);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("MetricsHttpServer: ") + e.what());
  }
}

MetricsHttpServer::~MetricsHttpServer() = default;

void MetricsHttpServer::Stop() { server_->Stop(); }

}  // namespace ds::telemetry
