#include "telemetry/metrics_http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <sstream>
#include <stdexcept>
#include <string>
#include <system_error>

#include "telemetry/telemetry.hpp"

namespace ds::telemetry {

namespace {

/// Thread-safe strerror: std::strerror writes into shared static
/// storage (clang-tidy concurrency-mt-unsafe); the error_code route
/// formats without it.
std::string ErrnoText(int err) {
  return std::error_code(err, std::generic_category()).message();
}

/// Sends the whole buffer, tolerating short writes; MSG_NOSIGNAL so a
/// client hangup surfaces as EPIPE instead of killing the process.
void SendAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // client went away; nothing to salvage
    off += static_cast<std::size_t>(n);
  }
}

std::string HttpResponse(const char* status, const char* content_type,
                         const std::string& body) {
  std::ostringstream out;
  out << "HTTP/1.1 " << status << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(Options options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("MetricsHttpServer: socket() failed: " +
                             ErrnoText(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string why = ErrnoText(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(
        "MetricsHttpServer: cannot bind 127.0.0.1:" +
        std::to_string(options.port) + ": " + why);
  }
  if (::listen(listen_fd_, 16) != 0) {
    const std::string why = ErrnoText(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("MetricsHttpServer: listen() failed: " + why);
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                &bound_len);
  port_ = ntohs(bound.sin_port);

  if (::pipe(wake_pipe_) != 0) {
    const std::string why = ErrnoText(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("MetricsHttpServer: pipe() failed: " + why);
  }

  thread_ = std::thread([this] { ServeLoop(); });
}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

void MetricsHttpServer::Stop() {
  const ds::MutexLock stop_lock(stop_mu_);
  if (stopped_) return;
  const char wake = 'x';
  // Best-effort: the pipe is empty so one byte always fits.
  (void)!::write(wake_pipe_[1], &wake, 1);
  thread_.join();
  ::close(listen_fd_);
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  listen_fd_ = -1;
  stopped_ = true;
}

void MetricsHttpServer::ServeLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;  // Stop() signalled
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    HandleClient(client);
    ::close(client);
  }
}

void MetricsHttpServer::HandleClient(int client_fd) {
  // One bounded read is enough: we only route on the request line and
  // never read a body. A silent client is dropped after 2 s so it can
  // delay other scrapes only briefly.
  pollfd pf{client_fd, POLLIN, 0};
  if (::poll(&pf, 1, 2000) <= 0) return;
  char buf[2048];
  const ssize_t n = ::recv(client_fd, buf, sizeof(buf) - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';
  const std::string request(buf);
  const std::size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);

  auto is_get = [&](const char* path) {
    return line.rfind(std::string("GET ") + path + " ", 0) == 0;
  };

  if (is_get("/metrics")) {
    std::ostringstream body;
    Registry().DumpOpenMetrics(body);
    SendAll(client_fd,
            HttpResponse(
                "200 OK",
                "application/openmetrics-text; version=1.0.0; "
                "charset=utf-8",
                body.str()));
  } else if (is_get("/healthz")) {
    SendAll(client_fd,
            HttpResponse("200 OK", "text/plain; charset=utf-8", "ok\n"));
  } else {
    SendAll(client_fd, HttpResponse("404 Not Found",
                                    "text/plain; charset=utf-8",
                                    "not found\n"));
  }
}

}  // namespace ds::telemetry
