// Minimal embedded HTTP listener exposing the metrics registry in
// OpenMetrics text format, the scrape plane behind `darksilicon sweep
// --metrics-port N`:
//
//   GET /metrics  -> 200, DumpOpenMetrics() exposition
//   GET /healthz  -> 200, "ok\n" (liveness: the serve thread is up)
//   anything else -> 404
//
// Scope is deliberately tiny: one accept thread, one request per
// connection, loopback only (binds 127.0.0.1 -- this is a local
// observability tap, not a service). Serving reads the same atomics
// the workers bump, so a scrape never perturbs the sweep; a slow or
// stalled client can delay at most other *scrapes*, never a worker.
#pragma once

#include <cstdint>
#include <thread>

#include "util/lock_levels.hpp"
#include "util/thread_annotations.hpp"

namespace ds::telemetry {

class MetricsHttpServer {
 public:
  struct Options {
    /// TCP port on 127.0.0.1; 0 picks an ephemeral port (tests) --
    /// read the bound port back with port().
    std::uint16_t port = 0;
  };

  /// Binds and starts the serve thread. Throws std::runtime_error when
  /// the socket cannot be created or bound (e.g. port in use).
  MetricsHttpServer() : MetricsHttpServer(Options()) {}
  explicit MetricsHttpServer(Options options);

  /// Stop()s if the caller did not.
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Shuts the listener down and joins the serve thread. Idempotent.
  void Stop();

  /// The bound port (resolves ephemeral requests).
  std::uint16_t port() const { return port_; }

 private:
  void ServeLoop();
  void HandleClient(int client_fd);

  // Shutdown audit (the poll+self-pipe handoff): listen_fd_ and
  // wake_pipe_ are written by the constructor before the serve thread
  // exists and not touched again until Stop() has joined it, so every
  // cross-thread access is ordered by thread creation or join -- no
  // capability needed. Stop() itself writes them under stop_mu_.
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: Stop() unblocks poll()
  std::uint16_t port_ = 0;       // written once in the constructor

  /// Serializes Stop() end-to-end.
  Mutex stop_mu_{locks::kShutdown};
  bool stopped_ DS_GUARDED_BY(stop_mu_) = false;

  std::thread thread_;
};

}  // namespace ds::telemetry
