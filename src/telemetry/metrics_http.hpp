// Embedded HTTP listener exposing the metrics registry in OpenMetrics
// text format, the scrape plane behind `darksilicon sweep
// --metrics-port N`:
//
//   GET /metrics  -> 200, DumpOpenMetrics() exposition
//   GET /healthz  -> 200, "ok\n" (liveness: the serve thread is up)
//   anything else -> 404
//
// Since PR 9 this is a thin route table over the shared net::HttpServer
// core (one acceptor, loopback only, SO_REUSEADDR so a stop/rebind
// cycle on a fixed port never trips over TIME_WAIT). Serving reads the
// same atomics the workers bump, so a scrape never perturbs the sweep;
// a slow or stalled client can delay at most other *scrapes*, never a
// worker.
#pragma once

#include <cstdint>
#include <memory>

#include "net/http_server.hpp"

namespace ds::telemetry {

class MetricsHttpServer {
 public:
  struct Options {
    /// TCP port on 127.0.0.1; 0 picks an ephemeral port (tests) --
    /// read the bound port back with port().
    std::uint16_t port = 0;
  };

  /// Binds and starts the serve thread. Throws std::runtime_error when
  /// the socket cannot be created or bound (e.g. port in use).
  MetricsHttpServer() : MetricsHttpServer(Options()) {}
  explicit MetricsHttpServer(Options options);

  /// Stop()s if the caller did not.
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Shuts the listener down and joins the serve thread. Idempotent.
  void Stop();

  /// The bound port (resolves ephemeral requests).
  std::uint16_t port() const { return server_->port(); }

 private:
  std::unique_ptr<net::HttpServer> server_;
};

}  // namespace ds::telemetry
