#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace ds::telemetry {
namespace {

// Lock-free running min/max on an atomic<double> via CAS.
void AtomicMin(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicAdd(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void SetEnabled(bool on) {
  internal::EnabledFlag().store(on, std::memory_order_relaxed);
}

void Gauge::UpdateMax(double v) { AtomicMax(value_, v); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: need at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i] > bounds_[i - 1]))
      throw std::invalid_argument(
          "Histogram: bounds must be strictly increasing");
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void Histogram::Record(double v) {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx =
      static_cast<std::size_t>(it - bounds_.begin());  // overflow = size()
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, v);
  AtomicMin(min_, v);
  AtomicMax(max_, v);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::Quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative +=
        static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
    if (cumulative >= target)
      return i < bounds_.size() ? bounds_[i] : max();
  }
  return max();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> TimeBucketBoundsUs() {
  // 1-2-5 series from 1 us to 10 s.
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e6; decade *= 10.0)
    for (const double m : {1.0, 2.0, 5.0}) bounds.push_back(m * decade);
  bounds.push_back(1e7);
  return bounds;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::vector<MetricRow> MetricsRegistry::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricRow> rows;
  for (const auto& [name, c] : counters_)
    rows.push_back({name, "counter", "value",
                    static_cast<double>(c->value())});
  for (const auto& [name, g] : gauges_)
    rows.push_back({name, "gauge", "value", g->value()});
  for (const auto& [name, h] : histograms_) {
    rows.push_back({name, "histogram", "count",
                    static_cast<double>(h->count())});
    rows.push_back({name, "histogram", "sum", h->sum()});
    rows.push_back({name, "histogram", "mean", h->mean()});
    rows.push_back({name, "histogram", "min", h->min()});
    rows.push_back({name, "histogram", "max", h->max()});
    rows.push_back({name, "histogram", "p50", h->Quantile(0.50)});
    rows.push_back({name, "histogram", "p95", h->Quantile(0.95)});
    rows.push_back({name, "histogram", "p99", h->Quantile(0.99)});
  }
  return rows;
}

void MetricsRegistry::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("MetricsRegistry::WriteCsv: cannot open " +
                             path);
  out << "name,kind,field,value\n";
  out.precision(17);
  for (const MetricRow& row : Snapshot())
    out << row.name << ',' << row.kind << ',' << row.field << ','
        << row.value << '\n';
  out.flush();
  if (!out)
    throw std::runtime_error("MetricsRegistry::WriteCsv: write failed for " +
                             path);
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  os << "[";
  bool first = true;
  os.precision(17);
  for (const MetricRow& row : Snapshot()) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\":\"" << row.name << "\",\"kind\":\"" << row.kind
       << "\",\"field\":\"" << row.field << "\",\"value\":" << row.value
       << "}";
  }
  os << "\n]\n";
}

void MetricsRegistry::PrintNonZero(std::ostream& os) const {
  for (const MetricRow& row : Snapshot()) {
    // Exact zero means "never touched": the filter is intentional.
    if (row.value == 0.0) continue;  // ds_lint: allow(float-equals)
    os << "  " << row.name << "." << row.field << " = " << row.value
       << "\n";
  }
}

void MetricsRegistry::ResetValues() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricsRegistry& Registry() {
  // Intentional leak: function-local singleton must outlive all static
  // destructors that may still record metrics during shutdown. The
  // registry synchronizes internally (counters are atomics).
  // ds_lint: allow(static-mutable)
  static MetricsRegistry* registry =
      new MetricsRegistry();  // ds_lint: allow(naked-new)
  return *registry;
}

}  // namespace ds::telemetry
