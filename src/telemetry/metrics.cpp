#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ds::telemetry {
namespace {

// Lock-free running min/max on an atomic<double> via CAS.
void AtomicMin(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicAdd(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

// Maps a dotted registry name ("sweep.jobs.completed") onto the
// OpenMetrics charset and namespaces it under ds_.
std::string OpenMetricsName(const std::string& name) {
  std::string out = "ds_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

// HELP text escaping per the OpenMetrics ABNF: backslash and newline.
std::string OpenMetricsHelp(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out.push_back(c);
  }
  return out;
}

void AppendSampleValue(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

void SetEnabled(bool on) {
  internal::EnabledFlag().store(on, std::memory_order_relaxed);
}

void Gauge::UpdateMax(double v) { AtomicMax(value_, v); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: need at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i] > bounds_[i - 1]))
      throw std::invalid_argument(
          "Histogram: bounds must be strictly increasing");
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void Histogram::Record(double v) {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx =
      static_cast<std::size_t>(it - bounds_.begin());  // overflow = size()
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, v);
  AtomicMin(min_, v);
  AtomicMax(max_, v);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::Quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative +=
        static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
    if (cumulative >= target)
      return i < bounds_.size() ? bounds_[i] : max();
  }
  return max();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> TimeBucketBoundsUs() {
  // 1-2-5 series from 1 us to 10 s.
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e6; decade *= 10.0)
    for (const double m : {1.0, 2.0, 5.0}) bounds.push_back(m * decade);
  bounds.push_back(1e7);
  return bounds;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  const ds::MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  const ds::MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  const ds::MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::vector<MetricRow> MetricsRegistry::Snapshot() const {
  const ds::MutexLock lock(mu_);
  std::vector<MetricRow> rows;
  for (const auto& [name, c] : counters_)
    rows.push_back({name, "counter", "value",
                    static_cast<double>(c->value())});
  for (const auto& [name, g] : gauges_)
    rows.push_back({name, "gauge", "value", g->value()});
  for (const auto& [name, h] : histograms_) {
    rows.push_back({name, "histogram", "count",
                    static_cast<double>(h->count())});
    rows.push_back({name, "histogram", "sum", h->sum()});
    rows.push_back({name, "histogram", "mean", h->mean()});
    rows.push_back({name, "histogram", "min", h->min()});
    rows.push_back({name, "histogram", "max", h->max()});
    rows.push_back({name, "histogram", "p50", h->Quantile(0.50)});
    rows.push_back({name, "histogram", "p95", h->Quantile(0.95)});
    rows.push_back({name, "histogram", "p99", h->Quantile(0.99)});
  }
  return rows;
}

void MetricsRegistry::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("MetricsRegistry::WriteCsv: cannot open " +
                             path);
  out << "name,kind,field,value\n";
  out.precision(17);
  for (const MetricRow& row : Snapshot())
    out << row.name << ',' << row.kind << ',' << row.field << ','
        << row.value << '\n';
  out.flush();
  if (!out)
    throw std::runtime_error("MetricsRegistry::WriteCsv: write failed for " +
                             path);
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  os << "[";
  bool first = true;
  os.precision(17);
  for (const MetricRow& row : Snapshot()) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\":\"" << row.name << "\",\"kind\":\"" << row.kind
       << "\",\"field\":\"" << row.field << "\",\"value\":" << row.value
       << "}";
  }
  os << "\n]\n";
}

void MetricsRegistry::PrintNonZero(std::ostream& os) const {
  for (const MetricRow& row : Snapshot()) {
    // Exact zero means "never touched": the filter is intentional.
    if (row.value == 0.0) continue;  // ds_lint: allow(float-equals)
    os << "  " << row.name << "." << row.field << " = " << row.value
       << "\n";
  }
}

void MetricsRegistry::DumpOpenMetrics(std::ostream& os) const {
  const ds::MutexLock lock(mu_);
  for (const auto& [name, c] : counters_) {
    const std::string om = OpenMetricsName(name);
    os << "# TYPE " << om << " counter\n";
    os << "# HELP " << om << " source metric '" << OpenMetricsHelp(name)
       << "'\n";
    os << om << "_total ";
    AppendSampleValue(os, static_cast<double>(c->value()));
    os << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string om = OpenMetricsName(name);
    os << "# TYPE " << om << " gauge\n";
    os << "# HELP " << om << " source metric '" << OpenMetricsHelp(name)
       << "'\n";
    os << om << " ";
    AppendSampleValue(os, g->value());
    os << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string om = OpenMetricsName(name);
    os << "# TYPE " << om << " histogram\n";
    os << "# HELP " << om << " source metric '" << OpenMetricsHelp(name)
       << "'\n";
    const std::vector<double>& bounds = h->bounds();
    const std::vector<std::uint64_t> buckets = h->bucket_counts();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += buckets[i];
      os << om << "_bucket{le=\"";
      AppendSampleValue(os, bounds[i]);
      os << "\"} " << cumulative << "\n";
    }
    cumulative += buckets[bounds.size()];  // overflow bucket
    os << om << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    os << om << "_sum ";
    AppendSampleValue(os, h->sum());
    os << "\n";
    // Derived from the same bucket read as +Inf so a concurrent
    // Record() can never make the exposition internally inconsistent.
    os << om << "_count " << cumulative << "\n";
  }
  os << "# EOF\n";
}

void MetricsRegistry::ResetValues() {
  const ds::MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

bool ValidateOpenMetrics(const std::string& text, std::string* error) {
  auto fail = [&](std::size_t line_no, const std::string& why) {
    if (error != nullptr)
      *error = "line " + std::to_string(line_no) + ": " + why;
    return false;
  };
  auto valid_name = [](const std::string& s) {
    if (s.empty()) return false;
    for (const char c : s) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      if (!ok) return false;
    }
    return !(s[0] >= '0' && s[0] <= '9');
  };

  std::string family;       // current # TYPE family name
  std::string family_type;  // "counter" | "gauge" | "histogram"
  bool saw_eof = false;
  bool family_sampled = false;
  std::uint64_t prev_bucket = 0;
  bool have_inf_bucket = false;
  double inf_bucket = 0.0;
  bool have_count = false;
  double count_value = 0.0;

  auto close_family = [&](std::size_t line_no) {
    if (!family.empty() && !family_sampled)
      return fail(line_no, "family '" + family + "' declared but has no samples");
    if (family_type == "histogram") {
      if (!have_inf_bucket)
        return fail(line_no, "histogram '" + family + "' missing +Inf bucket");
      if (!have_count)
        return fail(line_no, "histogram '" + family + "' missing _count");
      if (inf_bucket != count_value)
        return fail(line_no, "histogram '" + family +
                                 "' +Inf bucket != _count");
    }
    return true;
  };

  std::size_t line_no = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    if (saw_eof) return fail(line_no, "content after # EOF");
    if (line.empty()) return fail(line_no, "empty line");
    if (line == "# EOF") {
      if (!close_family(line_no)) return false;
      saw_eof = true;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t sp = rest.find(' ');
      if (sp == std::string::npos)
        return fail(line_no, "malformed # TYPE line");
      const std::string name = rest.substr(0, sp);
      const std::string type = rest.substr(sp + 1);
      if (!valid_name(name))
        return fail(line_no, "invalid metric name '" + name + "'");
      if (type != "counter" && type != "gauge" && type != "histogram")
        return fail(line_no, "unsupported metric type '" + type + "'");
      if (!close_family(line_no)) return false;
      family = name;
      family_type = type;
      family_sampled = false;
      prev_bucket = 0;
      have_inf_bucket = false;
      have_count = false;
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0) continue;
    if (line[0] == '#') return fail(line_no, "unknown comment directive");

    // Sample line: name[{labels}] value
    std::size_t name_end = line.find_first_of(" {");
    if (name_end == std::string::npos)
      return fail(line_no, "malformed sample line");
    const std::string name = line.substr(0, name_end);
    if (!valid_name(name))
      return fail(line_no, "invalid sample name '" + name + "'");
    std::string labels;
    std::size_t value_begin = name_end;
    if (line[name_end] == '{') {
      const std::size_t close = line.find('}', name_end);
      if (close == std::string::npos)
        return fail(line_no, "unterminated label set");
      labels = line.substr(name_end + 1, close - name_end - 1);
      value_begin = close + 1;
    }
    if (value_begin >= line.size() || line[value_begin] != ' ')
      return fail(line_no, "missing sample value");
    const std::string value_text = line.substr(value_begin + 1);
    double value = 0.0;
    try {
      std::size_t used = 0;
      value = std::stod(value_text, &used);
      if (used != value_text.size()) throw std::invalid_argument("trail");
    } catch (const std::exception&) {
      return fail(line_no, "non-numeric sample value '" + value_text + "'");
    }
    if (family.empty())
      return fail(line_no, "sample before any # TYPE declaration");
    if (name.rfind(family, 0) != 0)
      return fail(line_no, "sample '" + name + "' outside family '" +
                               family + "'");
    const std::string suffix = name.substr(family.size());
    if (family_type == "counter") {
      if (suffix != "_total")
        return fail(line_no, "counter sample must be '" + family +
                                 "_total', got '" + name + "'");
      if (value < 0.0) return fail(line_no, "negative counter value");
    } else if (family_type == "gauge") {
      if (!suffix.empty())
        return fail(line_no, "gauge sample must be exactly '" + family +
                                 "', got '" + name + "'");
    } else {  // histogram
      if (suffix == "_bucket") {
        if (labels.rfind("le=\"", 0) != 0 || labels.back() != '"')
          return fail(line_no, "histogram bucket without le label");
        const auto bucket = static_cast<std::uint64_t>(value);
        if (family_sampled && bucket < prev_bucket)
          return fail(line_no, "histogram buckets not cumulative");
        prev_bucket = bucket;
        if (labels == "le=\"+Inf\"") {
          have_inf_bucket = true;
          inf_bucket = value;
        }
      } else if (suffix == "_sum") {
        // any finite value
      } else if (suffix == "_count") {
        have_count = true;
        count_value = value;
      } else {
        return fail(line_no, "unknown histogram sample '" + name + "'");
      }
    }
    family_sampled = true;
  }
  if (!saw_eof) return fail(line_no, "missing terminal # EOF line");
  return true;
}

MetricsRegistry& Registry() {
  // Intentional leak: function-local singleton must outlive all static
  // destructors that may still record metrics during shutdown. The
  // registry synchronizes internally (counters are atomics).
  // ds_lint: allow(static-mutable)
  static MetricsRegistry* registry =
      new MetricsRegistry();  // ds_lint: allow(naked-new)
  return *registry;
}

}  // namespace ds::telemetry
