#include "telemetry/event_bus.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "telemetry/json.hpp"
#include "telemetry/trace.hpp"

namespace ds::telemetry {

namespace {

/// %.17g, matching the result sink / journal exact-number convention.
void AppendNumber(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void AppendEscaped(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

std::atomic<EventBus*>& ProcessBusSlot() {
  static std::atomic<EventBus*> bus{nullptr};
  return bus;
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kRunStart: return "run_start";
    case EventKind::kScheduled: return "scheduled";
    case EventKind::kStarted: return "started";
    case EventKind::kRetry: return "retry";
    case EventKind::kBackoff: return "backoff";
    case EventKind::kQuarantined: return "quarantined";
    case EventKind::kCacheEvict: return "cache_evict";
    case EventKind::kJournalSkip: return "journal_skip";
    case EventKind::kChaosInject: return "chaos_inject";
    case EventKind::kCompleted: return "completed";
    case EventKind::kHeartbeat: return "heartbeat";
    case EventKind::kRunEnd: return "run_end";
    case EventKind::kSubmit: return "submit";
    case EventKind::kReject: return "reject";
    case EventKind::kSweepStart: return "sweep_start";
    case EventKind::kSweepEnd: return "sweep_end";
    case EventKind::kCancel: return "cancel";
    case EventKind::kBusClose: return "bus_close";
  }
  return "?";
}

void Event::AddField(const char* name, double value) {
  for (Field& f : fields) {
    if (f.name == nullptr) {
      f.name = name;
      f.value = value;
      return;
    }
  }
}

void Event::SetDetail(const std::string& text) {
  const std::size_t n = std::min(text.size(), kDetailBytes - 1);
  std::memcpy(detail, text.data(), n);
  detail[n] = '\0';
}

Event MakeEvent(EventKind kind, std::int64_t job, std::int32_t attempt) {
  Event e;
  e.kind = kind;
  e.ts_us = TraceNowUs();
  e.job = job;
  e.attempt = attempt;
  return e;
}

EventBus::EventBus(const std::string& path, Options options)
    : options_(options) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::binary |
                                                        std::ios::trunc);
  if (!file->good())
    throw std::runtime_error("EventBus: cannot open events file '" + path +
                             "'");
  owned_os_ = std::move(file);
  os_ = owned_os_.get();
  {
    // No concurrency yet (the writer starts below); locking keeps the
    // guarded-field write visible to the thread-safety analysis.
    const ds::MutexLock lock(mu_);
    ring_.resize(options_.capacity == 0 ? 1 : options_.capacity);
  }
  writer_ = std::thread([this] { WriterLoop(); });
}

EventBus::EventBus(std::ostream& os, Options options) : options_(options) {
  os_ = &os;
  {
    const ds::MutexLock lock(mu_);
    ring_.resize(options_.capacity == 0 ? 1 : options_.capacity);
  }
  writer_ = std::thread([this] { WriterLoop(); });
}

EventBus::~EventBus() { Close(); }

bool EventBus::Publish(const Event& event) {
  {
    const ds::MutexLock lock(mu_);
    if (closing_ || size_ == ring_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    ring_[(head_ + size_) % ring_.size()] = event;
    ++size_;
    // Counted under mu_ so published == written + dropped holds at
    // every instant, not just at quiescence: bumping it after the
    // unlock left a window where the writer could drain (and count)
    // the event before the publisher recorded it.
    published_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.NotifyOne();
  return true;
}

void EventBus::Close() {
  // Serialized end-to-end: a second closer waits here until the first
  // has joined the writer and sealed the file, then returns.
  const ds::MutexLock close_lock(close_mu_);
  if (closed_) return;
  {
    const ds::MutexLock lock(mu_);
    closing_ = true;
  }
  cv_.NotifyAll();
  writer_.join();
  closed_ = true;
  // The writer drained everything before exiting; append the final
  // accounting record so readers can audit completeness.
  Event close_event = MakeEvent(EventKind::kBusClose);
  close_event.AddField("written",
                       static_cast<double>(written_.load()));
  close_event.AddField("dropped",
                       static_cast<double>(dropped_.load()));
  WriteEvent(*os_, close_event);
  os_->flush();
}

EventBusStats EventBus::stats() const {
  EventBusStats s;
  s.published = published_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.written = written_.load(std::memory_order_relaxed);
  return s;
}

void EventBus::WriterLoop() {
  std::vector<Event> batch;
  batch.reserve(256);
  for (;;) {
    batch.clear();
    {
      ds::MutexLock lock(mu_);
      while (size_ == 0 && !closing_) cv_.Wait(lock);
      while (size_ > 0 && batch.size() < batch.capacity()) {
        batch.push_back(ring_[head_]);
        head_ = (head_ + 1) % ring_.size();
        --size_;
      }
      if (batch.empty() && closing_) return;  // fully drained
    }
    for (const Event& e : batch) WriteEvent(*os_, e);
    written_.fetch_add(batch.size(), std::memory_order_relaxed);
    os_->flush();  // lines land promptly for live tail -f consumers
  }
}

void EventBus::WriteEvent(std::ostream& os, const Event& event) {
  os << "{\"ev\":\"" << EventKindName(event.kind)
     << "\",\"ts_us\":" << event.ts_us;
  if (event.job >= 0) os << ",\"job\":" << event.job;
  if (event.attempt > 0) os << ",\"attempt\":" << event.attempt;
  if (event.model_hash != 0) {
    char hex[20];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(event.model_hash));
    os << ",\"model_hash\":\"" << hex << "\"";
  }
  for (const Event::Field& f : event.fields) {
    if (f.name == nullptr) break;
    os << ",";
    AppendEscaped(os, f.name);
    os << ":";
    AppendNumber(os, f.value);
  }
  if (event.detail[0] != '\0') {
    os << ",\"detail\":";
    AppendEscaped(os, event.detail);
  }
  os << "}\n";
}

EventBus* ProcessEventBus() {
  return ProcessBusSlot().load(std::memory_order_acquire);
}

void SetProcessEventBus(EventBus* bus) {
  ProcessBusSlot().store(bus, std::memory_order_release);
}

void Emit(const Event& event) {
  EventBus* bus = ProcessEventBus();
  if (bus != nullptr) bus->Publish(event);
}

bool ValidateEventFile(const std::string& text, std::size_t* num_events,
                       std::uint64_t* num_dropped, std::string* error) {
  static const std::set<std::string> kKnown = {
      "run_start",   "scheduled",    "started",   "retry",
      "backoff",     "quarantined",  "cache_evict", "journal_skip",
      "chaos_inject", "completed",   "heartbeat", "run_end",
      "submit",      "reject",       "sweep_start", "sweep_end",
      "cancel",      "bus_close"};
  static const std::set<std::string> kJobScoped = {
      "scheduled", "started", "retry", "backoff", "quarantined",
      "chaos_inject", "completed"};

  auto fail = [&](std::size_t line_no, const std::string& why) {
    if (error != nullptr)
      *error = "line " + std::to_string(line_no) + ": " + why;
    return false;
  };

  std::size_t events = 0;
  std::uint64_t dropped = 0;
  bool saw_close = false;
  double close_written = -1.0;
  std::size_t line_no = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (saw_close) return fail(line_no, "record after bus_close");
    JsonValue doc;
    try {
      doc = ParseJson(line);
    } catch (const std::exception& e) {
      return fail(line_no, e.what());
    }
    if (!doc.is_object()) return fail(line_no, "not a JSON object");
    const JsonValue* ev = doc.Find("ev");
    if (ev == nullptr || !ev->is_string())
      return fail(line_no, "missing string \"ev\"");
    if (kKnown.count(ev->str) == 0)
      return fail(line_no, "unknown event kind '" + ev->str + "'");
    const JsonValue* ts = doc.Find("ts_us");
    if (ts == nullptr || !ts->is_number())
      return fail(line_no, "missing numeric \"ts_us\"");
    if (kJobScoped.count(ev->str) != 0) {
      const JsonValue* job = doc.Find("job");
      if (job == nullptr || !job->is_number())
        return fail(line_no,
                    "job-scoped event '" + ev->str + "' without \"job\"");
    }
    if (ev->str == "bus_close") {
      const JsonValue* written = doc.Find("written");
      const JsonValue* drops = doc.Find("dropped");
      if (written == nullptr || !written->is_number() || drops == nullptr ||
          !drops->is_number())
        return fail(line_no, "bus_close without written/dropped counts");
      saw_close = true;
      close_written = written->number;
      dropped = static_cast<std::uint64_t>(drops->number);
      continue;
    }
    ++events;
  }
  if (!saw_close) return fail(line_no, "missing final bus_close record");
  if (close_written != static_cast<double>(events))
    return fail(line_no, "bus_close written=" +
                             std::to_string(static_cast<std::size_t>(
                                 close_written)) +
                             " but file holds " + std::to_string(events) +
                             " events");
  if (num_events != nullptr) *num_events = events;
  if (num_dropped != nullptr) *num_dropped = dropped;
  return true;
}

}  // namespace ds::telemetry
