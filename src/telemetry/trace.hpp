// Low-overhead event tracing with Chrome trace_event JSON export.
//
// Architecture: one bounded ring buffer per writing thread, registered
// once in a global collector. Each buffer has exactly one writer (the
// owning thread), so emission is lock-free by construction -- a slot
// write plus one release store of the write index; no CAS, no mutex on
// the hot path. When a buffer wraps, the oldest events are overwritten
// and counted as dropped (observability must never stall the
// simulation).
//
// Export produces Chrome trace_event JSON ("X" complete spans, "i"
// instants) that loads directly in Perfetto / chrome://tracing.
// Timestamps are microseconds on a steady clock relative to process
// trace start; simulation time rides along as an event argument.
//
// Event name/category/argument-name pointers MUST be string literals
// (or otherwise outlive the export) -- events store the pointer only.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace ds::telemetry {

/// Verbosity gate: events carry the level they were emitted at; the
/// collector records an event only when its level is at or below the
/// current level. kDecision covers controller decisions (ladder moves,
/// boost start/stop, safe-state transitions, faults); kSpan adds
/// scoped spans of the major phases; kVerbose adds per-step/per-call
/// sites in the hot loops.
enum class TraceLevel : int {
  kOff = 0,
  kDecision = 1,
  kSpan = 2,
  kVerbose = 3,
};

void SetTraceLevel(TraceLevel level);
TraceLevel GetTraceLevel();

namespace internal {
inline std::atomic<int>& TraceLevelFlag() {
  static std::atomic<int> level{static_cast<int>(TraceLevel::kSpan)};
  return level;
}
}  // namespace internal

/// True when an event at `level` should be recorded now.
inline bool TraceOn(TraceLevel level) {
  return Enabled() &&
         static_cast<int>(level) <=
             internal::TraceLevelFlag().load(std::memory_order_relaxed);
}

/// POD trace event. Phases: 'X' = complete span, 'i' = instant.
struct TraceEvent {
  const char* name = nullptr;  // string literal
  const char* cat = nullptr;   // string literal
  char phase = 'i';
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  const char* arg0_name = nullptr;  // optional numeric args
  double arg0 = 0.0;
  const char* arg1_name = nullptr;
  double arg1 = 0.0;
};

/// Bounded single-writer ring buffer. Emission never allocates and
/// never blocks; overflow overwrites the oldest events and counts them
/// in dropped(). Snapshot() is safe from other threads (it may observe
/// a slightly stale tail, never a torn index).
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity);

  void Emit(const TraceEvent& event);

  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const;
  std::uint64_t dropped() const;

  /// Retained events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// Drops all retained events and zeroes the drop counter. Only safe
  /// when the owning thread is not emitting (tests, between runs).
  void Clear();

 private:
  std::vector<TraceEvent> ring_;
  std::atomic<std::uint64_t> written_{0};
};

/// Ring capacity for buffers created after this call (default 65536
/// events, ~4.5 MiB per writing thread).
void SetTraceBufferCapacity(std::size_t capacity);

/// The calling thread's buffer (created and registered on first use).
TraceBuffer& ThreadTraceBuffer();

/// Microseconds since trace start on the steady clock.
std::int64_t TraceNowUs();

/// Records an instant event if TraceOn(level).
void EmitInstant(const char* cat, const char* name, TraceLevel level,
                 const char* arg0_name = nullptr, double arg0 = 0.0,
                 const char* arg1_name = nullptr, double arg1 = 0.0);

/// RAII span: emits one 'X' complete event covering its lifetime.
/// Costs two clock reads when active, one branch when not. The second
/// argument pair exists for correlation fields (job index + attempt),
/// so Perfetto can line a retry chain up against its chaos injections.
class ScopedSpan {
 public:
  ScopedSpan(const char* cat, const char* name, TraceLevel level,
             const char* arg0_name = nullptr, double arg0 = 0.0,
             const char* arg1_name = nullptr, double arg1 = 0.0);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* cat_;
  const char* name_;
  const char* arg0_name_;
  double arg0_;
  const char* arg1_name_;
  double arg1_;
  std::int64_t start_us_;
  bool active_;
};

/// Sum of dropped events across all registered buffers.
std::uint64_t TotalDroppedEvents();

/// Total retained events across all registered buffers.
std::size_t TotalTraceEvents();

/// Writes all retained events (merged across threads, sorted by
/// timestamp) as Chrome trace_event JSON.
void WriteChromeTrace(std::ostream& os);

/// File variant; throws std::runtime_error on I/O failure.
void WriteChromeTrace(const std::string& path);

/// Clears every registered buffer. Only safe when no thread is
/// emitting (tests, between CLI runs).
void ClearTrace();

}  // namespace ds::telemetry
