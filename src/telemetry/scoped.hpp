// Timing helpers and the instrumentation macros used at call sites.
//
// Every macro is gated twice: at compile time by
// DS_TELEMETRY_COMPILED_IN (expands to nothing when 0) and at run time
// by telemetry::Enabled() (one relaxed atomic load + branch). The
// disabled cost at a call site is therefore a single predictable
// branch, which keeps the <2% overhead budget of the closed-loop
// benches with room to spare.
#pragma once

#include <chrono>

#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace ds::telemetry {

/// Plain stopwatch, always on (no telemetry gate). Used by the bench
/// harness for per-figure wall time and by RunSummary.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double Millis() const { return 1e3 * Seconds(); }
  void Restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// RAII timer recording its lifetime (in microseconds) into a
/// registry histogram. Pass nullptr to disarm (the macro below does
/// this when telemetry is off, so the clock is never read).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_us_(0) {
    if (histogram_ != nullptr) start_us_ = TraceNowUs();
  }
  ~ScopedTimer() {
    if (histogram_ != nullptr)
      histogram_->Record(static_cast<double>(TraceNowUs() - start_us_));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::int64_t start_us_;
};

}  // namespace ds::telemetry

#if DS_TELEMETRY_COMPILED_IN

#define DS_TELEM_CAT_(a, b) a##b
#define DS_TELEM_CAT(a, b) DS_TELEM_CAT_(a, b)

/// Bumps counter `name` by `n`. `name` must be a string literal.
#define DS_TELEM_COUNT(name, n)                                            \
  do {                                                                     \
    if (ds::telemetry::Enabled()) {                                        \
      static ds::telemetry::Counter& DS_TELEM_CAT(ds_telem_c_, __LINE__) = \
          ds::telemetry::Registry().GetCounter(name);                      \
      DS_TELEM_CAT(ds_telem_c_, __LINE__).Add(n);                          \
    }                                                                      \
  } while (0)

/// Sets gauge `name` to `v`.
#define DS_TELEM_GAUGE_SET(name, v)                                        \
  do {                                                                     \
    if (ds::telemetry::Enabled()) {                                        \
      static ds::telemetry::Gauge& DS_TELEM_CAT(ds_telem_g_, __LINE__) =   \
          ds::telemetry::Registry().GetGauge(name);                        \
      DS_TELEM_CAT(ds_telem_g_, __LINE__).Set(v);                          \
    }                                                                      \
  } while (0)

/// Raises gauge `name` to `v` if larger (running max).
#define DS_TELEM_GAUGE_MAX(name, v)                                        \
  do {                                                                     \
    if (ds::telemetry::Enabled()) {                                        \
      static ds::telemetry::Gauge& DS_TELEM_CAT(ds_telem_g_, __LINE__) =   \
          ds::telemetry::Registry().GetGauge(name);                        \
      DS_TELEM_CAT(ds_telem_g_, __LINE__).UpdateMax(v);                    \
    }                                                                      \
  } while (0)

/// Times the rest of the enclosing scope into histogram `name`
/// (microseconds, default time buckets).
#define DS_TELEM_TIMER(name)                                              \
  ds::telemetry::Histogram* DS_TELEM_CAT(ds_telem_h_, __LINE__) =         \
      ds::telemetry::Enabled()                                            \
          ? &ds::telemetry::Registry().GetHistogram(name)                 \
          : nullptr;                                                      \
  ds::telemetry::ScopedTimer DS_TELEM_CAT(ds_telem_t_, __LINE__)(         \
      DS_TELEM_CAT(ds_telem_h_, __LINE__))

/// Traces the rest of the enclosing scope as a complete span.
#define DS_TELEM_SPAN(cat, name, level)                                   \
  ds::telemetry::ScopedSpan DS_TELEM_CAT(ds_telem_s_, __LINE__)(          \
      cat, name, level)

/// Span with one numeric argument.
#define DS_TELEM_SPAN_ARG(cat, name, level, arg_name, arg_value)          \
  ds::telemetry::ScopedSpan DS_TELEM_CAT(ds_telem_s_, __LINE__)(          \
      cat, name, level, arg_name, arg_value)

/// Span with two numeric arguments (correlation fields: job + attempt).
#define DS_TELEM_SPAN_ARG2(cat, name, level, arg0_name, arg0_value,       \
                           arg1_name, arg1_value)                         \
  ds::telemetry::ScopedSpan DS_TELEM_CAT(ds_telem_s_, __LINE__)(          \
      cat, name, level, arg0_name, arg0_value, arg1_name, arg1_value)

#else  // !DS_TELEMETRY_COMPILED_IN

#define DS_TELEM_COUNT(name, n) \
  do {                          \
  } while (0)
#define DS_TELEM_GAUGE_SET(name, v) \
  do {                              \
  } while (0)
#define DS_TELEM_GAUGE_MAX(name, v) \
  do {                              \
  } while (0)
#define DS_TELEM_TIMER(name) static_cast<void>(0)
#define DS_TELEM_SPAN(cat, name, level) static_cast<void>(0)
#define DS_TELEM_SPAN_ARG(cat, name, level, arg_name, arg_value) \
  static_cast<void>(0)
#define DS_TELEM_SPAN_ARG2(cat, name, level, arg0_name, arg0_value, \
                           arg1_name, arg1_value)                   \
  static_cast<void>(0)

#endif  // DS_TELEMETRY_COMPILED_IN
