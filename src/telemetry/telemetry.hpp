// Process-wide telemetry: metrics registry and the global enable gate.
//
// Design goals, in order:
//   1. Zero-cost when off. Every instrumentation site is guarded by
//      Enabled(), a single relaxed atomic load; with the compile-time
//      gate DS_TELEMETRY_COMPILED_IN=0 the macros in scoped.hpp expand
//      to nothing at all.
//   2. Never perturb the simulation. Telemetry reads clocks and bumps
//      atomics; it never touches an RNG, a solver input or any control
//      decision, so enabling it leaves results bit-identical.
//   3. Dependency-free. This library sits below ds_util so that even
//      the LU kernel can be instrumented without a link cycle.
//
// The registry hands out stable references: GetCounter/GetGauge/
// GetHistogram never invalidate previously returned metrics, so call
// sites may cache `static Counter& c = Registry().GetCounter("...")`.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/lock_levels.hpp"
#include "util/thread_annotations.hpp"

// Compile-time gate: build with -DDS_TELEMETRY_COMPILED_IN=0 to strip
// every instrumentation macro from the binary.
#ifndef DS_TELEMETRY_COMPILED_IN
#define DS_TELEMETRY_COMPILED_IN 1
#endif

namespace ds::telemetry {

namespace internal {
inline std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{false};
  return enabled;
}
}  // namespace internal

/// Master runtime switch; off by default so untouched consumers pay
/// one predictable branch per instrumentation site.
inline bool Enabled() {
#if DS_TELEMETRY_COMPILED_IN
  return internal::EnabledFlag().load(std::memory_order_relaxed);
#else
  return false;
#endif
}

void SetEnabled(bool on);

/// Monotonic event counter (single writer or many; relaxed atomics).
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value / running-max gauge.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Monotonic max update (CAS loop; contention-free in practice).
  void UpdateMax(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `bounds` are strictly increasing upper
/// bounds; one implicit overflow bucket catches everything above the
/// last bound. Also tracks count/sum/min/max for exact means.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Record(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  double mean() const;
  /// Upper bound of the first bucket holding quantile `q` in [0, 1]
  /// (max() for the overflow bucket) -- a standard fixed-bucket
  /// estimate, exact to bucket resolution.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<std::uint64_t> bucket_counts() const;

  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Exponential 1 us .. 10 s bucket bounds, the default for the
/// *_us latency histograms used by ScopedTimer.
std::vector<double> TimeBucketBoundsUs();

/// One flattened snapshot row: histograms expand into several rows
/// (count/sum/mean/min/max/p50/p95/p99).
struct MetricRow {
  std::string name;
  std::string kind;   // "counter" | "gauge" | "histogram"
  std::string field;  // "value" for scalars, statistic name otherwise
  double value = 0.0;
};

class MetricsRegistry {
 public:
  /// All getters create on first use and return stable references.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = TimeBucketBoundsUs());

  std::vector<MetricRow> Snapshot() const;

  /// Dumps the snapshot as CSV (name,kind,field,value). Throws
  /// std::runtime_error if the file cannot be written.
  void WriteCsv(const std::string& path) const;

  /// Dumps the snapshot as a JSON array of row objects.
  void WriteJson(std::ostream& os) const;

  /// Human-readable dump of every metric with a non-zero value (bench
  /// harness snapshot reporting).
  void PrintNonZero(std::ostream& os) const;

  /// Dumps every metric in OpenMetrics text format (what the
  /// --metrics-port HTTP endpoint serves at /metrics). Dotted names
  /// are sanitized to [a-zA-Z0-9_:] and prefixed `ds_`; the original
  /// name is preserved in the HELP line. Counters emit `<name>_total`,
  /// histograms emit cumulative `_bucket{le="..."}` series plus
  /// `_sum`/`_count`, and the exposition ends with `# EOF`.
  void DumpOpenMetrics(std::ostream& os) const;

  /// Zeroes every metric value. References stay valid (call sites
  /// cache them in function-local statics); intended for tests and the
  /// bench harness between figures.
  void ResetValues();

 private:
  // The metric objects themselves are atomic-only; mu_ guards the maps
  // (creation on first use). Returned references outlive the lock by
  // design -- unique_ptr keeps them stable across rehashing.
  mutable Mutex mu_{locks::kMetrics};
  std::map<std::string, std::unique_ptr<Counter>> counters_ DS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ DS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      DS_GUARDED_BY(mu_);
};

/// The process-wide registry every instrumentation macro records into.
MetricsRegistry& Registry();

/// Validates an OpenMetrics text exposition (trace_check --openmetrics,
/// CI /metrics smoke): every sample belongs to a declared # TYPE
/// family with the right suffix for its type, histogram buckets are
/// cumulative with a +Inf bucket equal to _count, and the last line is
/// `# EOF`. Returns true on success; on failure returns false with a
/// line-annotated message in `*error`.
bool ValidateOpenMetrics(const std::string& text, std::string* error);

}  // namespace ds::telemetry
