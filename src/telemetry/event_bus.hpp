// Structured job-lifecycle event bus: bounded MPSC queue + one writer
// thread emitting JSON-lines, the live observability plane over the
// sweep runtime (--events-out).
//
// Design goals, in the telemetry tradition (telemetry.hpp):
//   1. Zero-cost when off. Every emission site goes through Emit(),
//      which starts with one relaxed atomic pointer load; with no bus
//      installed that load-and-branch is the entire cost.
//   2. Never perturb or stall the run. Publish() copies one fixed-size
//      POD into a bounded ring under a short mutex hold -- no
//      allocation, no I/O, and *no waiting*: when the consumer falls
//      behind and the ring is full, the event is counted as dropped
//      and the producer returns immediately (backpressure sheds load,
//      it never blocks a worker).
//   3. Deterministic results. Events carry observations only; nothing
//      reads them back into control decisions, so result rows are
//      byte-identical with the bus on or off.
//
// Output format: one JSON object per line,
//
//   {"ev":"retry","ts_us":1234,"job":5,"attempt":2,"error":"..."}
//
// with correlation fields `job` (index into the sweep's job order),
// `attempt` (1-based execution attempt) and `model_hash` (hex content
// hash of the thermal-model cache key) present whenever the emitting
// site knows them. The final line is always
//
//   {"ev":"bus_close","ts_us":...,"written":N,"dropped":M}
//
// so a reader can audit completeness: published == written + dropped.
// Close() drains every queued event before writing it (shutdown flush
// ordering is part of the contract and tested under TSan).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/lock_levels.hpp"
#include "util/thread_annotations.hpp"

namespace ds::telemetry {

/// Job-lifecycle event kinds (DESIGN.md §12 documents the schema).
enum class EventKind : std::uint8_t {
  kRunStart,     // sweep accepted: jobs_total, threads
  kScheduled,    // job queued for execution
  kStarted,      // attempt began
  kRetry,        // transient failure classified; another attempt follows
  kBackoff,      // retry backoff sleep (wait_ms)
  kQuarantined,  // job retired after exhausting its retry budget
  kCacheEvict,   // ModelCache dropped an entry to fit the byte budget
  kJournalSkip,  // journal recovery skipped/repaired a record
  kChaosInject,  // chaos layer sabotaged this attempt
  kCompleted,    // job reached its final outcome
  kHeartbeat,    // periodic progress snapshot (HeartbeatReporter)
  kRunEnd,       // sweep finished: stats summary
  // Service plane (darksilicon serve). `job` carries the sweep's
  // admission sequence number; detail carries the client id.
  kSubmit,       // sweep admitted: jobs_total, queued
  kReject,       // admission refused: queue_full/client_cap, retry_after_s
  kSweepStart,   // sweep left the queue: queue_wait_ms
  kSweepEnd,     // sweep reached a terminal state: run_ms, rows, ...
  kCancel,       // DELETE cancelled a queued or running sweep
  kBusClose,     // writer shutdown record (emitted by the bus itself)
};

const char* EventKindName(EventKind kind);

/// One event: fixed-size POD so Publish() never allocates. Numeric
/// payload fields are (name, value) pairs with *string-literal* names
/// (the bus stores the pointer only, exactly like TraceEvent); `detail`
/// holds a short kind-specific string (status, error text, reason) and
/// is truncated to fit.
struct Event {
  static constexpr std::size_t kMaxFields = 10;
  static constexpr std::size_t kDetailBytes = 48;

  EventKind kind = EventKind::kRunStart;
  std::int64_t ts_us = 0;       // TraceNowUs() timebase, shared with spans
  std::int64_t job = -1;        // job index; -1 = not job-scoped
  std::int32_t attempt = 0;     // 1-based; 0 = not attempt-scoped
  std::uint64_t model_hash = 0; // ModelCache content-key hash; 0 = none

  struct Field {
    const char* name = nullptr;  // string literal; nullptr = end of list
    double value = 0.0;
  };
  Field fields[kMaxFields];
  char detail[kDetailBytes] = {};  // NUL-terminated, possibly truncated

  /// Appends a numeric field (silently ignored once full -- the schema
  /// is fixed per kind, so overflow is a programming error caught by
  /// the event-file validator, not a runtime hazard).
  void AddField(const char* name, double value);

  /// Copies `text` into `detail`, truncating to kDetailBytes - 1.
  void SetDetail(const std::string& text);
};

/// Builds an event stamped with the current trace clock.
Event MakeEvent(EventKind kind, std::int64_t job = -1,
                std::int32_t attempt = 0);

struct EventBusStats {
  std::uint64_t published = 0;  // accepted into the queue
  std::uint64_t dropped = 0;    // rejected: queue full
  std::uint64_t written = 0;    // serialized by the writer thread
};

/// The bus. One writer thread owns the output stream; any number of
/// producers Publish(). Lifecycle: construct (spawns the writer),
/// Publish() from anywhere, Close() (drain + final bus_close record +
/// join). The destructor Close()s if the caller did not.
class EventBus {
 public:
  struct Options {
    /// Ring capacity in events. 16384 events * ~200 B/event keeps the
    /// bus under ~3.5 MiB while absorbing multi-second writer stalls.
    std::size_t capacity = 16384;
  };

  /// Opens `path` (truncating) and starts the writer thread. Throws
  /// std::runtime_error if the file cannot be created.
  explicit EventBus(const std::string& path) : EventBus(path, Options()) {}
  EventBus(const std::string& path, Options options);

  /// Stream variant for tests: the caller keeps `os` alive until
  /// Close() returns.
  explicit EventBus(std::ostream& os) : EventBus(os, Options()) {}
  EventBus(std::ostream& os, Options options);

  ~EventBus();
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  /// Enqueues one event. Never blocks on a full queue: the event is
  /// dropped and counted instead. Returns false iff dropped.
  bool Publish(const Event& event);

  /// Drains the queue, writes the final bus_close accounting record,
  /// flushes, and joins the writer. Idempotent. After Close() further
  /// Publish() calls are counted as dropped.
  void Close();

  EventBusStats stats() const;

 private:
  void WriterLoop();
  void WriteEvent(std::ostream& os, const Event& event);

  Options options_;
  std::unique_ptr<std::ostream> owned_os_;  // file mode
  std::ostream* os_ = nullptr;              // either owned_os_ or caller's

  mutable Mutex mu_{locks::kEventBus};
  CondVar cv_;
  std::vector<Event> ring_ DS_GUARDED_BY(mu_);
  std::size_t head_ DS_GUARDED_BY(mu_) = 0;  // next slot to consume
  std::size_t size_ DS_GUARDED_BY(mu_) = 0;  // queued events
  bool closing_ DS_GUARDED_BY(mu_) = false;

  /// Serializes Close() end-to-end; always acquired before mu_.
  Mutex close_mu_{locks::kShutdown};
  bool closed_ DS_GUARDED_BY(close_mu_) = false;

  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> written_{0};

  std::thread writer_;
};

/// Process-wide bus used by ambient emission sites (the sweep engine,
/// ModelCache, journal recovery). Null when no --events-out is active;
/// emission sites must treat null as "off". The installer owns the bus
/// and must Uninstall (or install nullptr) before destroying it.
EventBus* ProcessEventBus();
void SetProcessEventBus(EventBus* bus);

/// True when an ambient bus is installed -- the one-load fast gate.
inline bool EventsOn() { return ProcessEventBus() != nullptr; }

/// Publishes to the ambient bus when installed; no-op otherwise.
void Emit(const Event& event);

/// Validates a JSON-lines event file: every line one JSON object with
/// a known string "ev" and numeric "ts_us"; job-scoped kinds carry a
/// numeric "job"; the last line is a bus_close record whose `written`
/// equals the number of preceding lines. Returns true and fills
/// `*num_events` (excluding bus_close) and `*num_dropped`; on failure
/// returns false with a line-annotated message in `*error`.
bool ValidateEventFile(const std::string& text, std::size_t* num_events,
                       std::uint64_t* num_dropped, std::string* error);

}  // namespace ds::telemetry
