#include "service/sweep_service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "faults/chaos.hpp"
#include "runtime/result_sink.hpp"
#include "runtime/sweep_engine.hpp"
#include "runtime/sweep_spec.hpp"
#include "telemetry/event_bus.hpp"
#include "telemetry/json.hpp"
#include "telemetry/scoped.hpp"
#include "telemetry/telemetry.hpp"

namespace ds::service {

namespace fs = std::filesystem;
using SteadyClock = std::chrono::steady_clock;

namespace {

double MsSince(SteadyClock::time_point since) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() -
                                                   since)
      .count();
}

std::int64_t NowUnixUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

bool IsTerminal(SweepState state) {
  return state == SweepState::kDone || state == SweepState::kFailed ||
         state == SweepState::kCancelled;
}

std::string MakeSweepId(std::uint64_t seq, const std::string& fingerprint) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "s%03llu-%.8s",
                static_cast<unsigned long long>(seq), fingerprint.c_str());
  return buf;
}

/// Parses the numeric sequence out of "s<seq>-<fp8>"; 0 when malformed.
std::uint64_t SeqOfId(const std::string& id) {
  if (id.size() < 2 || id[0] != 's') return 0;
  std::uint64_t seq = 0;
  for (std::size_t i = 1; i < id.size() && id[i] != '-'; ++i) {
    if (id[i] < '0' || id[i] > '9') return 0;
    seq = seq * 10 + static_cast<std::uint64_t>(id[i] - '0');
  }
  return seq;
}

/// Publishes a service-plane event on the ambient process bus; no-op
/// without one. `job` carries the sweep's admission sequence number,
/// detail the client id (truncated to the POD field's capacity).
void PublishService(
    telemetry::EventKind kind, std::uint64_t seq, const std::string& client,
    std::initializer_list<std::pair<const char*, double>> fields) {
  telemetry::EventBus* bus = telemetry::ProcessEventBus();
  if (bus == nullptr) return;
  telemetry::Event e =
      telemetry::MakeEvent(kind, static_cast<std::int64_t>(seq));
  e.SetDetail(client);
  for (const auto& [name, value] : fields) e.AddField(name, value);
  bus->Publish(e);
}

void WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  out.flush();
  if (!out.good())
    throw std::runtime_error("SweepService: cannot write '" + path + "'");
}

bool ReadTextFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

const char* SweepStateName(SweepState state) {
  switch (state) {
    case SweepState::kQueued: return "queued";
    case SweepState::kRunning: return "running";
    case SweepState::kDone: return "done";
    case SweepState::kFailed: return "failed";
    case SweepState::kCancelled: return "cancelled";
  }
  return "unknown";
}

// ----------------------------------------------------------- Sweep

struct SweepService::Sweep {
  Sweep(std::string id_in, std::string client_in, std::uint64_t seq_in,
        std::string spec_text_in, runtime::SweepSpec spec_in)
      : id(std::move(id_in)),
        client(std::move(client_in)),
        seq(seq_in),
        spec_text(std::move(spec_text_in)),
        spec(std::move(spec_in)),
        jobs(spec.Jobs()),
        sink(spec, jobs),
        cancel(std::make_shared<faults::CancelToken>()) {
    slots.resize(jobs.size());
  }

  const std::string id;
  const std::string client;
  const std::uint64_t seq;
  const std::string spec_text;
  const runtime::SweepSpec spec;
  const std::vector<runtime::SweepJob> jobs;
  const runtime::ResultSink sink;
  const std::shared_ptr<faults::CancelToken> cancel;

  /// Written before the sweep is visible to the runner.
  bool resume = false;
  SteadyClock::time_point submitted = SteadyClock::now();

  mutable ds::Mutex mu{locks::kServiceSweep};
  mutable ds::CondVar cv;
  SweepState state DS_GUARDED_BY(mu) = SweepState::kQueued;
  std::string error DS_GUARDED_BY(mu);
  bool rows_retained DS_GUARDED_BY(mu) = true;
  bool stream_closed DS_GUARDED_BY(mu) = false;  // Stop() aborts readers
  std::size_t jobs_done DS_GUARDED_BY(mu) = 0;
  double queue_wait_ms DS_GUARDED_BY(mu) = 0.0;
  double run_ms DS_GUARDED_BY(mu) = 0.0;
  std::string rows DS_GUARDED_BY(mu);    // CSV byte stream
  std::string events DS_GUARDED_BY(mu);  // JSON-lines service log

  // Row reordering: completion-order results -> index-order stream.
  std::vector<std::unique_ptr<runtime::JobResult>> slots DS_GUARDED_BY(mu);
  std::size_t prefix DS_GUARDED_BY(mu) = 0;   // contiguous final results
  std::size_t emitted DS_GUARDED_BY(mu) = 0;  // rows written to `rows`
  bool header_written DS_GUARDED_BY(mu) = false;
  std::size_t metric_cols DS_GUARDED_BY(mu) = 0;

  void AppendEventLocked(const std::string& json_line) DS_REQUIRES(mu) {
    events += json_line;
    events += "\n";
  }

  /// Emits every row that has become emittable. The header needs the
  /// first `ok && !skipped` result *in index order* (the batch
  /// ResultSink contract), which is only known once the contiguous
  /// prefix reaches an ok row -- or the very end for all-failed
  /// sweeps -- so rows ahead of that point are held back.
  void AdvanceRowsLocked() DS_REQUIRES(mu) {
    while (prefix < slots.size() && slots[prefix] != nullptr) ++prefix;
    if (!header_written) {
      const runtime::JobResult* first_ok = nullptr;
      for (std::size_t i = 0; i < prefix; ++i) {
        if (slots[i]->ok && !slots[i]->skipped) {
          first_ok = slots[i].get();
          break;
        }
      }
      if (first_ok == nullptr && prefix < slots.size()) return;
      rows += sink.CsvHeaderLine(first_ok);
      metric_cols = runtime::ResultSink::MetricColumns(first_ok);
      header_written = true;
    }
    while (emitted < prefix) {
      rows += sink.CsvRowLine(*slots[emitted], metric_cols);
      ++emitted;
    }
  }
};

// ---------------------------------------------------- construction

SweepService::SweepService(Options options) : options_(std::move(options)) {
  if (!options_.journal_dir.empty()) {
    std::error_code ec;
    fs::create_directories(options_.journal_dir, ec);
    if (ec)
      throw std::runtime_error("SweepService: cannot create journal dir '" +
                               options_.journal_dir + "': " + ec.message());
  }
  if (options_.cache_budget_mb > 0.0) {
    runtime::ModelCache& cache = options_.cache != nullptr
                                     ? *options_.cache
                                     : runtime::ModelCache::Process();
    cache.set_budget_bytes(static_cast<std::size_t>(
        options_.cache_budget_mb * 1024.0 * 1024.0));
  }
  if (!options_.journal_dir.empty()) RecoverFromDir();
  runner_ = std::thread([this] { RunnerLoop(); });
}

SweepService::~SweepService() { Stop(); }

std::string SweepService::JournalPathFor(const std::string& id) const {
  return options_.journal_dir + "/" + id + ".journal";
}

void SweepService::RecoverFromDir() {
  std::vector<std::shared_ptr<Sweep>> recovered_queue;
  std::vector<std::shared_ptr<Sweep>> all;
  std::uint64_t max_seq = 0;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(options_.journal_dir)) {
    const std::string name = entry.path().filename().string();
    const std::string suffix = ".spec.json";
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0)
      continue;
    const std::string id = name.substr(0, name.size() - suffix.size());
    std::string spec_text;
    if (!ReadTextFile(entry.path().string(), &spec_text)) continue;

    std::string client = "anon";
    std::string meta_text;
    if (ReadTextFile(options_.journal_dir + "/" + id + ".meta.json",
                     &meta_text)) {
      try {
        const telemetry::JsonValue meta = telemetry::ParseJson(meta_text);
        if (const telemetry::JsonValue* c = meta.Find("client");
            c != nullptr && c->is_string())
          client = c->str;
        // A torn meta file only loses the client attribution; the
        // sweep itself still resumes.
        // ds_lint: allow(swallowed-catch)
      } catch (const std::exception&) {
      }
    }

    runtime::SweepSpec spec;
    try {
      spec = runtime::SweepSpec::FromJsonText(spec_text);
      // A corrupt spec file cannot be re-run; skip it rather than
      // refusing to start the daemon.
      // ds_lint: allow(swallowed-catch)
    } catch (const std::exception&) {
      continue;
    }

    const std::uint64_t seq = SeqOfId(id);
    max_seq = std::max(max_seq, seq);
    auto sweep = std::make_shared<Sweep>(id, client, seq,
                                         std::move(spec_text),
                                         std::move(spec));

    std::string done_text;
    if (ReadTextFile(options_.journal_dir + "/" + id + ".done",
                     &done_text)) {
      // Terminal in a previous life: listed for /status, but the row
      // stream died with the process.
      const ds::MutexLock lock(sweep->mu);
      sweep->rows_retained = false;
      sweep->stream_closed = true;
      sweep->state = SweepState::kDone;
      const std::size_t eol = done_text.find('\n');
      const std::string head = done_text.substr(0, eol);
      if (head == "failed") sweep->state = SweepState::kFailed;
      if (head == "cancelled") sweep->state = SweepState::kCancelled;
      if (eol != std::string::npos && eol + 1 < done_text.size())
        sweep->error = done_text.substr(eol + 1);
      sweep->jobs_done = sweep->jobs.size();
    } else {
      sweep->resume = true;
      recovered_queue.push_back(sweep);
    }
    all.push_back(sweep);
  }

  const auto by_seq = [](const std::shared_ptr<Sweep>& a,
                         const std::shared_ptr<Sweep>& b) {
    return a->seq < b->seq;
  };
  std::sort(recovered_queue.begin(), recovered_queue.end(), by_seq);
  std::sort(all.begin(), all.end(), by_seq);

  const ds::MutexLock lock(registry_mu_);
  next_seq_ = max_seq + 1;
  sweeps_ = std::move(all);
  queue_ = std::move(recovered_queue);
  recovered_ = queue_.size();
}

// ------------------------------------------------------- admission

SweepService::Admission SweepService::Submit(const std::string& spec_text,
                                             const std::string& client_in) {
  const std::string client = client_in.empty() ? "anon" : client_in;
  Admission verdict;

  runtime::SweepSpec spec;
  try {
    spec = runtime::SweepSpec::FromJsonText(spec_text);
  } catch (const std::exception& e) {
    verdict.http_status = 400;
    verdict.error = e.what();
    DS_TELEM_COUNT("serve.rejects.bad_spec", 1);
    PublishService(telemetry::EventKind::kReject, 0, client,
                   {{"bad_spec", 1.0}});
    return verdict;
  }

  std::shared_ptr<Sweep> sweep;
  {
    const ds::MutexLock lock(registry_mu_);
    if (stopping_) {
      verdict.http_status = 503;
      verdict.error = "service is shutting down";
      return verdict;
    }
    if (queue_.size() >= options_.queue_depth) {
      verdict.http_status = 429;
      verdict.error = "admission queue is full";
      verdict.retry_after_s =
          std::min(30.0, 1.0 + static_cast<double>(queue_.size()));
      DS_TELEM_COUNT("serve.rejects.queue_full", 1);
      PublishService(telemetry::EventKind::kReject, 0, client,
                     {{"queue_full", 1.0},
                      {"retry_after_s", verdict.retry_after_s}});
      return verdict;
    }
    std::size_t mine = running_ != nullptr && running_->client == client;
    std::set<std::string> clients;
    if (running_ != nullptr) clients.insert(running_->client);
    for (const std::shared_ptr<Sweep>& queued : queue_) {
      clients.insert(queued->client);
      if (queued->client == client) ++mine;
    }
    if (mine >= options_.per_client) {
      verdict.http_status = 429;
      verdict.error = "per-client in-flight cap reached";
      verdict.retry_after_s = std::min(30.0, 1.0 + static_cast<double>(mine));
      DS_TELEM_COUNT("serve.rejects.client_cap", 1);
      PublishService(telemetry::EventKind::kReject, 0, client,
                     {{"client_cap", 1.0},
                      {"retry_after_s", verdict.retry_after_s}});
      return verdict;
    }
    if (clients.count(client) == 0 &&
        clients.size() >= options_.max_clients) {
      verdict.http_status = 429;
      verdict.error = "client slots exhausted";
      verdict.retry_after_s = 2.0;
      DS_TELEM_COUNT("serve.rejects.client_slots", 1);
      PublishService(telemetry::EventKind::kReject, 0, client,
                     {{"client_slots", 1.0},
                      {"retry_after_s", verdict.retry_after_s}});
      return verdict;
    }

    const std::uint64_t seq = next_seq_++;
    const std::string id = MakeSweepId(seq, spec.Fingerprint());
    sweep = std::make_shared<Sweep>(id, client, seq, spec_text,
                                    std::move(spec));
    if (!options_.journal_dir.empty()) {
      WriteTextFile(options_.journal_dir + "/" + id + ".spec.json",
                    sweep->spec_text);
      WriteTextFile(options_.journal_dir + "/" + id + ".meta.json",
                    "{\"id\": \"" + JsonEscape(id) + "\", \"client\": \"" +
                        JsonEscape(client) + "\", \"seq\": " +
                        std::to_string(seq) + "}\n");
    }
    queue_.push_back(sweep);
    sweeps_.push_back(sweep);
    verdict.queue_position = queue_.size();
    runner_cv_.NotifyOne();
  }

  {
    const ds::MutexLock lock(sweep->mu);
    sweep->AppendEventLocked(
        "{\"ev\": \"queued\", \"ts_us\": " + std::to_string(NowUnixUs()) +
        ", \"sweep\": \"" + JsonEscape(sweep->id) + "\", \"client\": \"" +
        JsonEscape(client) + "\", \"jobs\": " +
        std::to_string(sweep->jobs.size()) + "}");
  }

  verdict.accepted = true;
  verdict.http_status = 202;
  verdict.id = sweep->id;
  DS_TELEM_COUNT("serve.submits", 1);
  PublishService(
      telemetry::EventKind::kSubmit, sweep->seq, client,
      {{"jobs_total", static_cast<double>(sweep->jobs.size())},
       {"queued", static_cast<double>(verdict.queue_position)}});
  return verdict;
}

// ------------------------------------------------------- scheduler

void SweepService::RunnerLoop() {
  for (;;) {
    std::shared_ptr<Sweep> next;
    {
      ds::MutexLock lock(registry_mu_);
      while (queue_.empty() && !stopping_) runner_cv_.Wait(lock);
      if (stopping_) return;
      // FIFO with aging: the oldest sweep of a client other than the
      // one just served wins (round-robin across tenants); a
      // same-client sweep only wins once it is aging_ms older than
      // every other candidate.
      const SteadyClock::time_point now = SteadyClock::now();
      std::size_t best = 0;
      double best_score = -1.0;
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        const double age_ms =
            std::chrono::duration<double, std::milli>(now -
                                                      queue_[i]->submitted)
                .count();
        const double bonus =
            queue_[i]->client != last_client_ ? options_.aging_ms : 0.0;
        if (age_ms + bonus > best_score) {
          best_score = age_ms + bonus;
          best = i;
        }
      }
      next = queue_[best];
      queue_.erase(queue_.begin() +
                   static_cast<std::ptrdiff_t>(best));
      running_ = next;
      last_client_ = next->client;
    }
    RunSweep(next);
    {
      const ds::MutexLock lock(registry_mu_);
      running_.reset();
    }
  }
}

void SweepService::RunSweep(const std::shared_ptr<Sweep>& sweep) {
  const SteadyClock::time_point run_start = SteadyClock::now();
  const double queue_wait_ms =
      std::chrono::duration<double, std::milli>(run_start -
                                                sweep->submitted)
      .count();
  {
    const ds::MutexLock lock(sweep->mu);
    if (IsTerminal(sweep->state)) return;  // cancelled while queued
    sweep->state = SweepState::kRunning;
    sweep->queue_wait_ms = queue_wait_ms;
    sweep->AppendEventLocked(
        "{\"ev\": \"started\", \"ts_us\": " + std::to_string(NowUnixUs()) +
        ", \"sweep\": \"" + JsonEscape(sweep->id) +
        "\", \"queue_wait_ms\": " + Num(queue_wait_ms) + "}");
    sweep->cv.NotifyAll();
  }
  DS_TELEM_COUNT("serve.sweeps_started", 1);
  PublishService(telemetry::EventKind::kSweepStart, sweep->seq,
                 sweep->client, {{"queue_wait_ms", queue_wait_ms}});

  runtime::SweepOptions eo;
  eo.threads = options_.engine_threads;
  eo.cache = options_.cache;
  eo.job_retries = options_.job_retries;
  eo.job_deadline_ms = options_.job_deadline_ms;
  eo.journal_sync = options_.journal_sync;
  eo.cancel = sweep->cancel;
  if (!options_.journal_dir.empty()) {
    eo.checkpoint_path = JournalPathFor(sweep->id);
    eo.resume = sweep->resume && fs::exists(eo.checkpoint_path);
  }
  // The service owns the shared weak spot of multi-tenant streaming:
  // workers finish jobs in any order, this callback re-serializes them
  // into the byte-exact CSV stream under the sweep's own lock.
  eo.on_result = [sweep](const runtime::JobResult& result) {
    const ds::MutexLock lock(sweep->mu);
    if (result.index >= sweep->slots.size()) return;
    if (sweep->slots[result.index] != nullptr) return;  // last wins upstream
    sweep->slots[result.index] =
        std::make_unique<runtime::JobResult>(result);
    ++sweep->jobs_done;
    sweep->AppendEventLocked(
        "{\"ev\": \"job\", \"ts_us\": " + std::to_string(NowUnixUs()) +
        ", \"sweep\": \"" + JsonEscape(sweep->id) +
        "\", \"job\": " + std::to_string(result.index) +
        ", \"status\": \"" +
        (result.quarantined ? "quarantined"
         : !result.ok       ? "failed"
         : result.skipped   ? "skipped"
                            : "ok") +
        "\", \"attempts\": " + std::to_string(result.attempts) + "}");
    sweep->AdvanceRowsLocked();
    sweep->cv.NotifyAll();
  };

  SweepState final_state = SweepState::kDone;
  std::string error;
  try {
    runtime::SweepEngine engine(sweep->spec, std::move(eo));
    const runtime::SweepOutcome outcome = engine.Run();
    if (sweep->cancel->cancelled())
      final_state = SweepState::kCancelled;
    else if (outcome.stats.jobs_pending > 0)
      final_state = SweepState::kFailed;  // engine stopped short
  } catch (const std::exception& e) {
    final_state = SweepState::kFailed;
    error = e.what();
  }
  const double run_ms = MsSince(run_start);

  std::size_t jobs_done = 0;
  {
    const ds::MutexLock lock(sweep->mu);
    sweep->run_ms = run_ms;
    sweep->error = error;
    if (final_state == SweepState::kDone)
      sweep->AdvanceRowsLocked();  // all-failed sweeps flush here
    sweep->state = final_state;
    jobs_done = sweep->jobs_done;
    sweep->AppendEventLocked(
        "{\"ev\": \"" +
        std::string(final_state == SweepState::kCancelled ? "cancelled"
                                                          : "done") +
        "\", \"ts_us\": " + std::to_string(NowUnixUs()) +
        ", \"sweep\": \"" + JsonEscape(sweep->id) + "\", \"status\": \"" +
        SweepStateName(final_state) + "\", \"run_ms\": " + Num(run_ms) +
        ", \"jobs_done\": " + std::to_string(jobs_done) +
        (error.empty() ? ""
                       : ", \"error\": \"" + JsonEscape(error) + "\"") +
        "}");
    sweep->cv.NotifyAll();
  }

  if (!options_.journal_dir.empty()) {
    try {
      WriteTextFile(options_.journal_dir + "/" + sweep->id + ".done",
                    std::string(SweepStateName(final_state)) + "\n" + error);
    } catch (const std::exception& e) {
      // The daemon outlives a full disk; the cost is one resumed-as-
      // finished sweep on the next restart.
      DS_TELEM_COUNT("serve.done_marker_errors", 1);
      PublishService(telemetry::EventKind::kSweepEnd, sweep->seq,
                     std::string("done-marker: ") + e.what(), {});
    }
  }

  DS_TELEM_COUNT("serve.sweeps_finished", 1);
  if (final_state == SweepState::kCancelled)
    DS_TELEM_COUNT("serve.sweeps_cancelled", 1);
  if (final_state == SweepState::kFailed)
    DS_TELEM_COUNT("serve.sweeps_failed", 1);
  PublishService(
      telemetry::EventKind::kSweepEnd, sweep->seq, sweep->client,
      {{"run_ms", run_ms},
       {"rows", static_cast<double>(jobs_done)},
       {"cancelled", final_state == SweepState::kCancelled ? 1.0 : 0.0},
       {"failed", final_state == SweepState::kFailed ? 1.0 : 0.0}});
}

// --------------------------------------------------------- queries

std::shared_ptr<SweepService::Sweep> SweepService::Find(
    const std::string& id) {
  const ds::MutexLock lock(registry_mu_);
  for (const std::shared_ptr<Sweep>& sweep : sweeps_)
    if (sweep->id == id) return sweep;
  return nullptr;
}

bool SweepService::Cancel(const std::string& id) {
  const std::shared_ptr<Sweep> sweep = Find(id);
  if (sweep == nullptr) return false;
  bool was_queued = false;
  {
    const ds::MutexLock lock(registry_mu_);
    const auto it = std::find(queue_.begin(), queue_.end(), sweep);
    if (it != queue_.end()) {
      queue_.erase(it);
      was_queued = true;
    }
  }
  sweep->cancel->Cancel();  // running workers stop claiming jobs
  if (was_queued) {
    const ds::MutexLock lock(sweep->mu);
    sweep->state = SweepState::kCancelled;
    sweep->AppendEventLocked(
        "{\"ev\": \"cancelled\", \"ts_us\": " +
        std::to_string(NowUnixUs()) + ", \"sweep\": \"" +
        JsonEscape(sweep->id) + "\", \"status\": \"cancelled\"" +
        ", \"run_ms\": 0.000, \"jobs_done\": 0}");
    sweep->cv.NotifyAll();
    if (!options_.journal_dir.empty()) {
      try {
        WriteTextFile(options_.journal_dir + "/" + sweep->id + ".done",
                      "cancelled\n");
        // Best-effort marker; the sweep would merely re-queue (and be
        // re-cancellable) after a restart.
        // ds_lint: allow(swallowed-catch)
      } catch (const std::exception&) {
      }
    }
  }
  DS_TELEM_COUNT("serve.cancels", 1);
  PublishService(telemetry::EventKind::kCancel, sweep->seq, sweep->client,
                 {{"was_queued", was_queued ? 1.0 : 0.0}});
  return true;
}

SweepStatusSnapshot SweepService::Snapshot(const std::shared_ptr<Sweep>& s,
                                           std::size_t queue_position) {
  SweepStatusSnapshot out;
  out.id = s->id;
  out.client = s->client;
  out.name = s->spec.name();
  out.jobs_total = s->jobs.size();
  out.queue_position = queue_position;
  const ds::MutexLock lock(s->mu);
  out.state = s->state;
  out.error = s->error;
  out.rows_retained = s->rows_retained;
  out.jobs_done = s->jobs_done;
  out.row_bytes = s->rows.size();
  out.queue_wait_ms = s->state == SweepState::kQueued
                          ? MsSince(s->submitted)
                          : s->queue_wait_ms;
  out.run_ms = s->run_ms;
  return out;
}

bool SweepService::GetStatus(const std::string& id,
                             SweepStatusSnapshot* out) {
  std::shared_ptr<Sweep> sweep;
  std::size_t position = 0;
  {
    const ds::MutexLock lock(registry_mu_);
    for (const std::shared_ptr<Sweep>& s : sweeps_)
      if (s->id == id) {
        sweep = s;
        break;
      }
    if (sweep == nullptr) return false;
    for (std::size_t i = 0; i < queue_.size(); ++i)
      if (queue_[i] == sweep) position = i + 1;
  }
  *out = Snapshot(sweep, position);
  return true;
}

std::vector<SweepStatusSnapshot> SweepService::List() {
  std::vector<std::shared_ptr<Sweep>> sweeps;
  std::vector<std::size_t> positions;
  {
    const ds::MutexLock lock(registry_mu_);
    sweeps = sweeps_;
    positions.resize(sweeps.size(), 0);
    for (std::size_t q = 0; q < queue_.size(); ++q)
      for (std::size_t i = 0; i < sweeps.size(); ++i)
        if (sweeps[i] == queue_[q]) positions[i] = q + 1;
  }
  std::vector<SweepStatusSnapshot> out;
  out.reserve(sweeps.size());
  for (std::size_t i = 0; i < sweeps.size(); ++i)
    out.push_back(Snapshot(sweeps[i], positions[i]));
  return out;
}

// ------------------------------------------------------- streaming

bool SweepService::ReadStream(const std::string& id, StreamKind kind,
                              std::size_t offset, std::string* out,
                              bool* found) {
  const std::shared_ptr<Sweep> sweep = Find(id);
  if (sweep == nullptr) {
    *found = false;
    return false;
  }
  ds::MutexLock lock(sweep->mu);
  if (!sweep->rows_retained) {
    *found = false;
    return false;
  }
  *found = true;
  const std::string& stream =
      kind == StreamKind::kRows ? sweep->rows : sweep->events;
  while (stream.size() <= offset && !IsTerminal(sweep->state) &&
         !sweep->stream_closed)
    sweep->cv.Wait(lock);
  if (stream.size() > offset)
    out->append(stream, offset, std::string::npos);
  return !IsTerminal(sweep->state) && !sweep->stream_closed;
}

bool SweepService::ReadRows(const std::string& id, std::size_t offset,
                            std::string* out, bool* found) {
  return ReadStream(id, StreamKind::kRows, offset, out, found);
}

bool SweepService::ReadEvents(const std::string& id, std::size_t offset,
                              std::string* out, bool* found) {
  return ReadStream(id, StreamKind::kEvents, offset, out, found);
}

// -------------------------------------------------------- shutdown

void SweepService::Stop() {
  const ds::MutexLock stop_lock(stop_mu_);
  if (stopped_) return;
  std::shared_ptr<Sweep> running;
  {
    const ds::MutexLock lock(registry_mu_);
    stopping_ = true;
    running = running_;
    runner_cv_.NotifyAll();
  }
  if (running != nullptr) running->cancel->Cancel();
  runner_.join();
  std::vector<std::shared_ptr<Sweep>> all;
  {
    const ds::MutexLock lock(registry_mu_);
    all = sweeps_;
  }
  for (const std::shared_ptr<Sweep>& sweep : all) {
    const ds::MutexLock lock(sweep->mu);
    sweep->stream_closed = true;
    sweep->cv.NotifyAll();
  }
  stopped_ = true;
}

// ------------------------------------------------------------ HTTP

net::HttpServer::Handler SweepService::HttpHandler() {
  return [this](const net::HttpRequest& request,
                net::HttpServer::ResponseWriter& writer) {
    HandleRequest(request, writer);
  };
}

void SweepService::HandleRequest(const net::HttpRequest& request,
                                 net::HttpServer::ResponseWriter& writer) {
  static constexpr std::string_view kJson = "application/json";
  const std::string& target = request.target;

  if (request.method == "GET" && target == "/metrics") {
    std::ostringstream body;
    telemetry::Registry().DumpOpenMetrics(body);
    writer.Send("200 OK",
                "application/openmetrics-text; version=1.0.0; charset=utf-8",
                body.str());
    return;
  }
  if (request.method == "GET" && target == "/healthz") {
    writer.Send("200 OK", "text/plain; charset=utf-8", "ok\n");
    return;
  }

  if (target == "/v1/sweeps" && request.method == "POST") {
    const Admission verdict =
        Submit(request.body, std::string(request.Header("x-client")));
    if (verdict.accepted) {
      writer.Send("202 Accepted", kJson,
                  "{\"id\": \"" + JsonEscape(verdict.id) +
                      "\", \"status\": \"queued\", \"position\": " +
                      std::to_string(verdict.queue_position) + "}\n");
    } else if (verdict.http_status == 429) {
      const long long retry_s = std::llround(verdict.retry_after_s);
      writer.Send("429 Too Many Requests", kJson,
                  "{\"error\": \"" + JsonEscape(verdict.error) + "\"}\n",
                  "Retry-After: " + std::to_string(retry_s) + "\r\n");
    } else if (verdict.http_status == 503) {
      writer.Send("503 Service Unavailable", kJson,
                  "{\"error\": \"" + JsonEscape(verdict.error) + "\"}\n");
    } else {
      writer.Send("400 Bad Request", kJson,
                  "{\"error\": \"" + JsonEscape(verdict.error) + "\"}\n");
    }
    return;
  }

  if (target == "/v1/sweeps" && request.method == "GET") {
    std::string body = "{\"sweeps\": [";
    const std::vector<SweepStatusSnapshot> sweeps = List();
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
      if (i > 0) body += ", ";
      body += StatusJson(sweeps[i]);
    }
    body += "]}\n";
    writer.Send("200 OK", kJson, body);
    return;
  }

  const std::string_view prefix = "/v1/sweeps/";
  if (target.rfind(prefix, 0) == 0) {
    const std::string rest = target.substr(prefix.size());
    const std::size_t slash = rest.find('/');
    const std::string id = rest.substr(0, slash);
    const std::string tail =
        slash == std::string::npos ? "" : rest.substr(slash + 1);

    if (request.method == "DELETE" && tail.empty()) {
      if (Cancel(id))
        writer.Send("200 OK", kJson,
                    "{\"id\": \"" + JsonEscape(id) +
                        "\", \"cancelled\": true}\n");
      else
        writer.Send("404 Not Found", kJson,
                    "{\"error\": \"unknown sweep id\"}\n");
      return;
    }

    if (request.method == "GET" && (tail.empty() || tail == "status")) {
      SweepStatusSnapshot snapshot;
      if (GetStatus(id, &snapshot))
        writer.Send("200 OK", kJson, StatusJson(snapshot) + "\n");
      else
        writer.Send("404 Not Found", kJson,
                    "{\"error\": \"unknown sweep id\"}\n");
      return;
    }

    if (request.method == "GET" && (tail == "rows" || tail == "events")) {
      SweepStatusSnapshot snapshot;
      if (!GetStatus(id, &snapshot)) {
        writer.Send("404 Not Found", kJson,
                    "{\"error\": \"unknown sweep id\"}\n");
        return;
      }
      if (!snapshot.rows_retained) {
        writer.Send("410 Gone", kJson,
                    "{\"error\": \"stream not retained across restart\"}\n");
        return;
      }
      const StreamKind kind =
          tail == "rows" ? StreamKind::kRows : StreamKind::kEvents;
      if (!writer.BeginChunked("200 OK", kind == StreamKind::kRows
                                             ? "text/csv; charset=utf-8"
                                             : "application/x-ndjson"))
        return;
      std::size_t offset = 0;
      for (;;) {
        std::string data;
        bool found = false;
        const bool more = ReadStream(id, kind, offset, &data, &found);
        offset += data.size();
        if (!data.empty() && !writer.WriteChunk(data)) return;
        if (!more) break;
      }
      writer.EndChunked();
      return;
    }
  }

  writer.Send("404 Not Found", kJson, "{\"error\": \"not found\"}\n");
}

std::string SweepService::StatusJson(const SweepStatusSnapshot& s) {
  std::string out = "{\"id\": \"" + JsonEscape(s.id) + "\"";
  out += ", \"client\": \"" + JsonEscape(s.client) + "\"";
  out += ", \"name\": \"" + JsonEscape(s.name) + "\"";
  out += ", \"state\": \"" + std::string(SweepStateName(s.state)) + "\"";
  out += ", \"jobs_total\": " + std::to_string(s.jobs_total);
  out += ", \"jobs_done\": " + std::to_string(s.jobs_done);
  out += ", \"row_bytes\": " + std::to_string(s.row_bytes);
  out += ", \"queue_position\": " + std::to_string(s.queue_position);
  out += ", \"queue_wait_ms\": " + Num(s.queue_wait_ms);
  out += ", \"run_ms\": " + Num(s.run_ms);
  out += ", \"rows_retained\": ";
  out += s.rows_retained ? "true" : "false";
  if (!s.error.empty()) out += ", \"error\": \"" + JsonEscape(s.error) + "\"";
  out += "}";
  return out;
}

}  // namespace ds::service
