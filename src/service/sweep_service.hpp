// The persistent multi-tenant sweep service behind `darksilicon
// serve`: accepts sweep specs over HTTP, admission-controls them
// across concurrent clients, runs them one at a time on one shared
// SweepEngine pool (the engine parallelizes *within* a sweep; serial
// sweeps keep the byte-identity and cache-locality guarantees), and
// streams result rows and job-lifecycle events back incrementally.
//
// Admission policy (all checks under one registry lock, so concurrent
// submits serialize):
//   - spec must parse and validate        -> else 400 (JSON error body)
//   - bounded queue: `queue_depth` sweeps waiting -> 429 + Retry-After
//   - per-client cap: `per_client` sweeps queued+running -> 429
//   - distinct-client cap: `max_clients` clients in flight -> 429
// Scheduling is FIFO with aging: the runner picks the oldest sweep of
// a client other than the one it just served (round-robin across
// tenants); a same-client sweep wins only once it is `aging_ms` older
// than every other candidate, so no tenant can starve another.
//
// Durability: with a journal dir, every sweep persists its spec, a
// meta record, and a per-sweep engine journal. A killed daemon
// restarted on the same dir re-queues every sweep without a terminal
// marker and resumes it from its journal (completed jobs replay from
// disk, the rest execute); terminal sweeps are listed but their row
// streams are gone (410).
//
// Streaming: rows are emitted in job-index order as jobs complete,
// formatted by the same ResultSink code path as `darksilicon sweep`,
// so the streamed CSV is byte-identical to the batch file. Readers
// block on a per-sweep condvar; Stop() terminalizes every stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/http_server.hpp"
#include "runtime/journal.hpp"
#include "runtime/model_cache.hpp"
#include "util/lock_levels.hpp"
#include "util/thread_annotations.hpp"

namespace ds::service {

enum class SweepState : std::uint8_t {
  kQueued,
  kRunning,
  kDone,       // terminal; individual job failures are rows, not errors
  kFailed,     // terminal; the run itself threw (boundary error)
  kCancelled,  // terminal; DELETE or daemon shutdown
};

const char* SweepStateName(SweepState state);

/// Point-in-time public view of one sweep.
struct SweepStatusSnapshot {
  std::string id;
  std::string client;
  std::string name;   // spec name
  std::string error;  // kFailed only
  SweepState state = SweepState::kQueued;
  bool rows_retained = true;  // false for terminal sweeps of a prior life
  std::size_t jobs_total = 0;
  std::size_t jobs_done = 0;
  std::size_t row_bytes = 0;       // CSV bytes emitted so far
  std::size_t queue_position = 0;  // 1-based while queued, else 0
  double queue_wait_ms = 0.0;      // kQueued: so far; later: final
  double run_ms = 0.0;             // terminal states: final
};

class SweepService {
 public:
  struct Options {
    /// Worker threads of the shared engine pool; 0 = hardware
    /// concurrency.
    std::size_t engine_threads = 0;

    /// Sweeps allowed to wait in the admission queue (all clients).
    std::size_t queue_depth = 16;

    /// Sweeps one client may have queued + running.
    std::size_t per_client = 4;

    /// Distinct clients allowed in flight at once (the --max-clients
    /// flag); a new client beyond this is turned away 429.
    std::size_t max_clients = 16;

    /// A same-client sweep must be this much older before it beats
    /// another tenant's sweep in the scheduler.
    double aging_ms = 2000.0;

    /// Durability root; empty disables persistence (and resume).
    std::string journal_dir;

    /// Shared ModelCache byte budget; 0 leaves it untouched.
    double cache_budget_mb = 0.0;

    /// Cache shared by every sweep; nullptr = the process cache.
    runtime::ModelCache* cache = nullptr;

    /// Engine resilience passthrough (see SweepOptions).
    std::size_t job_retries = 2;
    double job_deadline_ms = 0.0;
    runtime::JournalSync journal_sync = runtime::JournalSync::kBatch;
  };

  /// Outcome of one POST /v1/sweeps.
  struct Admission {
    bool accepted = false;
    std::string id;            // accepted only
    int http_status = 0;       // 202 / 400 / 429
    std::string error;         // rejection reason
    double retry_after_s = 0.0;      // 429 only
    std::size_t queue_position = 0;  // accepted: 1-based
  };

  /// Recovers unfinished sweeps from `journal_dir` (if set) and starts
  /// the scheduler thread. Throws std::runtime_error when the journal
  /// dir cannot be created.
  explicit SweepService(Options options);

  /// Stop()s if the caller did not.
  ~SweepService();

  SweepService(const SweepService&) = delete;
  SweepService& operator=(const SweepService&) = delete;

  /// Admission control + enqueue. Never throws on bad input -- the
  /// verdict (including 400s for unparsable specs) is the return value.
  Admission Submit(const std::string& spec_text, const std::string& client);

  /// Cancels a queued or running sweep via its CancelToken. Returns
  /// false for unknown ids; cancelling a terminal sweep is a no-op
  /// that returns true.
  bool Cancel(const std::string& id);

  /// Snapshot of one sweep (false: unknown id) / all sweeps.
  bool GetStatus(const std::string& id, SweepStatusSnapshot* out);
  std::vector<SweepStatusSnapshot> List();

  /// Blocking incremental read of the CSV row stream: appends bytes
  /// past `offset` to `out` (blocking until some exist), returns true
  /// while the stream may still grow. `*found` is false for unknown
  /// ids and for sweeps whose rows did not survive a restart.
  bool ReadRows(const std::string& id, std::size_t offset, std::string* out,
                bool* found);

  /// Same contract over the sweep's JSON-lines service event log.
  bool ReadEvents(const std::string& id, std::size_t offset,
                  std::string* out, bool* found);

  /// Cancels the running sweep, unblocks every stream reader, joins
  /// the scheduler. Queued sweeps stay journaled for the next life.
  /// Idempotent. Call *before* stopping the HttpServer wired to
  /// HttpHandler() -- streaming handlers block on streams this opens.
  void Stop();

  /// Unfinished sweeps re-queued from the journal dir at startup.
  std::size_t recovered() const { return recovered_; }

  /// Routes the full service API (plus /metrics and /healthz) onto
  /// this instance. The returned handler is valid until Stop().
  net::HttpServer::Handler HttpHandler();

 private:
  struct Sweep;
  enum class StreamKind : std::uint8_t { kRows, kEvents };

  void RunnerLoop();
  void RunSweep(const std::shared_ptr<Sweep>& sweep);
  void RecoverFromDir();
  std::shared_ptr<Sweep> Find(const std::string& id)
      DS_EXCLUDES(registry_mu_);
  bool ReadStream(const std::string& id, StreamKind kind, std::size_t offset,
                  std::string* out, bool* found);
  static SweepStatusSnapshot Snapshot(const std::shared_ptr<Sweep>& sweep,
                                      std::size_t queue_position);
  static std::string StatusJson(const SweepStatusSnapshot& snapshot);
  std::string JournalPathFor(const std::string& id) const;
  void HandleRequest(const net::HttpRequest& request,
                     net::HttpServer::ResponseWriter& writer);

  Options options_;
  std::size_t recovered_ = 0;  // written before the runner starts

  /// Admission queue + registry of every sweep this life has seen.
  Mutex registry_mu_{locks::kServiceRegistry};
  ds::CondVar runner_cv_;
  std::vector<std::shared_ptr<Sweep>> queue_ DS_GUARDED_BY(registry_mu_);
  std::vector<std::shared_ptr<Sweep>> sweeps_ DS_GUARDED_BY(registry_mu_);
  std::shared_ptr<Sweep> running_ DS_GUARDED_BY(registry_mu_);
  std::string last_client_ DS_GUARDED_BY(registry_mu_);
  std::uint64_t next_seq_ DS_GUARDED_BY(registry_mu_) = 1;
  bool stopping_ DS_GUARDED_BY(registry_mu_) = false;

  /// Serializes Stop() end-to-end.
  Mutex stop_mu_{locks::kShutdown};
  bool stopped_ DS_GUARDED_BY(stop_mu_) = false;

  std::thread runner_;
};

}  // namespace ds::service
