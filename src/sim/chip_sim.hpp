// Full-system chip co-simulation.
//
// Integrates every subsystem of this repository in one time-stepped
// loop, the way a runtime on a real dark-silicon chip would experience
// them (the paper's "efficient design and management of manycore
// systems in the dark silicon era" in executable form):
//
//   scheduler epoch (100 ms): job arrivals (Poisson), thermal-safe
//     admission on the influence matrix, dispersed placement,
//     departures; NoC power re-evaluated for the new traffic;
//   control period (1 ms): one implicit-Euler thermal step; the
//     chip-wide DVFS governor boosts one ladder step when there is
//     thermal headroom (Turbo-Boost style) and throttles below nominal
//     when T_DTM is violated (DTM);
//   continuously: per-core Arrhenius wear accrual.
//
// The loop reads temperatures through a faults::SensorBus and survives
// injected faults (SimConfig::faults): implausible or stale readings
// are replaced by the bus's EWMA estimate, a watchdog safe-state pins
// the ladder at its lowest level after repeated bad readings, jobs are
// migrated (requeued + re-admitted on the degraded core set) off
// fail-stopped cores, DVFS commands go through the possibly-stuck
// actuator, and warm-start solver failures retry with perturbed
// pivoting. With faults disabled the loop is bit-identical to the
// fault-free implementation.
//
// The result is a trace of performance, power and temperature plus
// end-of-run job statistics, aging balance and the structured FaultLog.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/platform.hpp"
#include "faults/fault_injector.hpp"
#include "noc/mesh.hpp"
#include "reliability/aging.hpp"

namespace ds::sim {

struct SimConfig {
  double duration_s = 5.0;
  double control_period_s = 1e-3;
  double scheduler_period_s = 0.1;
  double arrival_rate = 0.6;      // expected jobs per scheduler epoch
  std::size_t initial_jobs = 6;   // queued at t = 0 (warm-start load)
  double min_job_s = 0.5;
  double max_job_s = 3.0;
  std::size_t threads_per_job = 8;
  bool enable_boost = true;       // governor may exceed nominal
  bool enable_noc = true;         // account uncore power
  double power_cap_w = 500.0;     // electrical constraint (Sec. 6)
  double thermal_margin_c = 0.0;  // governor headroom below T_DTM
  std::uint64_t seed = 1;
  faults::FaultConfig faults;     // disabled by default (zero-cost off)

  /// Rejects non-positive durations/periods, inverted job-length
  /// bounds, zero threads and non-finite rates with
  /// std::invalid_argument. Called by the ChipSimulator constructor.
  void Validate() const;
};

struct SimSnapshot {
  double time_s = 0.0;
  double gips = 0.0;
  double power_w = 0.0;
  double peak_temp_c = 0.0;
  double freq_ghz = 0.0;
  std::size_t active_cores = 0;
  std::size_t running_jobs = 0;
};

struct FullSimResult {
  std::vector<SimSnapshot> trace;   // one per scheduler epoch
  double avg_gips = 0.0;
  double avg_power_w = 0.0;
  double energy_j = 0.0;
  double max_temp_c = 0.0;
  double time_above_tdtm_s = 0.0;
  std::size_t jobs_arrived = 0;
  std::size_t jobs_completed = 0;
  double avg_active_cores = 0.0;
  double aging_imbalance = 1.0;     // max/mean wear
  double avg_noc_power_w = 0.0;
  // Robustness accounting (all zero when fault injection is off).
  faults::FaultLog fault_log;
  double safe_state_s = 0.0;        // time spent in the watchdog state
  std::size_t jobs_requeued = 0;    // migrations off failed cores
  std::size_t cores_failed = 0;     // cores down at the end of the run
  std::size_t sensor_substitutions = 0;
  std::size_t solver_retries = 0;
};

class ChipSimulator {
 public:
  /// Throws std::invalid_argument when `config` fails Validate().
  ChipSimulator(const arch::Platform& platform, const SimConfig& config);

  /// Runs the configured duration. Deterministic in config.seed.
  FullSimResult Run() const;

 private:
  const arch::Platform* platform_;
  SimConfig config_;
};

}  // namespace ds::sim
