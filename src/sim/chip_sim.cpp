#include "sim/chip_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <random>
#include <stdexcept>

#include "apps/app_profile.hpp"
#include "apps/workload.hpp"
#include "faults/sensor_bus.hpp"
#include "telemetry/scoped.hpp"
#include "thermal/transient.hpp"
#include "util/rng.hpp"
#include "util/contracts.hpp"

namespace ds::sim {
namespace {

struct Job {
  const apps::AppProfile* app;
  double remaining_s;
  std::vector<std::size_t> cores;
};

}  // namespace

void SimConfig::Validate() const {
  DS_REQUIRE(duration_s > 0.0 && std::isfinite(duration_s),
             "SimConfig: duration_s " << duration_s << " must be positive");
  DS_REQUIRE(control_period_s > 0.0 && std::isfinite(control_period_s),
             "SimConfig: control_period_s " << control_period_s
                 << " must be positive");
  DS_REQUIRE(scheduler_period_s > 0.0 && std::isfinite(scheduler_period_s),
             "SimConfig: scheduler_period_s " << scheduler_period_s
                 << " must be positive");
  DS_REQUIRE(std::isfinite(arrival_rate) && arrival_rate >= 0.0,
             "SimConfig: arrival_rate " << arrival_rate
                 << " must be finite and >= 0");
  DS_REQUIRE(min_job_s > 0.0 && max_job_s >= min_job_s,
             "SimConfig: job duration band [" << min_job_s << ", "
                 << max_job_s << "] must satisfy 0 < min <= max");
  DS_REQUIRE(threads_per_job >= 1, "SimConfig: threads_per_job must be >= 1");
  DS_REQUIRE(std::isfinite(power_cap_w) && power_cap_w > 0.0,
             "SimConfig: power_cap_w " << power_cap_w << " must be positive");
  DS_REQUIRE(std::isfinite(thermal_margin_c) && thermal_margin_c >= 0.0,
             "SimConfig: thermal_margin_c " << thermal_margin_c
                 << " must be finite and >= 0");
  faults.Validate();
}

ChipSimulator::ChipSimulator(const arch::Platform& platform,
                             const SimConfig& config)
    : platform_(&platform), config_(config) {
  config_.Validate();
}

FullSimResult ChipSimulator::Run() const {
  DS_TELEM_SPAN_ARG("sim", "chip_sim_run", ds::telemetry::TraceLevel::kSpan,
                    "duration_s", config_.duration_s);
  const std::size_t n = platform_->num_cores();
  const power::DvfsLadder& ladder = platform_->ladder();
  const power::PowerModel& pm = platform_->power_model();
  const util::Matrix& influence = platform_->solver().InfluenceMatrix();
  const double t_dtm = platform_->tdtm_c();
  const double headroom =
      t_dtm - platform_->thermal_model().ambient_c();
  const auto& suite = apps::ParsecSuite();
  const std::size_t threads = config_.threads_per_job;
  const std::size_t nominal = ladder.NominalLevel();
  const std::size_t max_level =
      config_.enable_boost ? ladder.size() - 1 : nominal;

  util::Rng rng(config_.seed);
  std::poisson_distribution<int> arrivals(config_.arrival_rate);
  thermal::TransientSimulator thermal =
      platform_->MakeTransient(config_.control_period_s);
  const noc::MeshNoc mesh(platform_->floorplan());
  reliability::AgingState aging(n);

  // Fault machinery; null when disabled so the fault-free path stays
  // bit-identical (the bus then passes true temperatures through).
  std::unique_ptr<faults::FaultInjector> injector;
  if (config_.faults.enabled)
    injector = std::make_unique<faults::FaultInjector>(config_.faults, n);
  faults::SensorBus bus(n, platform_->thermal_model().ambient_c());
  bus.AttachInjector(injector.get());

  std::vector<Job> running;
  std::deque<Job> queue;
  std::vector<bool> used(n, false);
  std::vector<bool> down(n, false);  // fail-stopped / transiently-out cores
  // Predicted steady rise per core from budget powers (admission).
  std::vector<double> rise(n, 0.0);

  std::size_t level = nominal;
  std::vector<double> noc_power(n, 0.0);

  FullSimResult result;
  double gips_acc = 0.0;
  double active_acc = 0.0;
  double noc_acc = 0.0;
  std::size_t control_steps = 0;

  auto budget_core_power = [&](const apps::AppProfile& app) {
    const power::VfLevel& vf = ladder[nominal];
    return pm.TotalPower(app.Activity(threads), app.ceff22_nf, app.pind22,
                         vf.vdd, vf.freq, t_dtm);
  };

  auto rebuild_noc = [&]() {
    if (!config_.enable_noc) return;
    apps::Workload w;
    std::vector<std::size_t> active;
    const power::VfLevel& vf = ladder[level];
    for (const Job& job : running) {
      w.Add({job.app, threads, vf.freq, vf.vdd});
      active.insert(active.end(), job.cores.begin(), job.cores.end());
    }
    noc_power = w.empty() ? std::vector<double>(n, 0.0)
                          : mesh.Evaluate(w, active).per_core_power_w;
  };

  const std::size_t steps_per_epoch = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(config_.scheduler_period_s /
                                              config_.control_period_s)));
  const std::size_t total_steps = static_cast<std::size_t>(
      std::lround(config_.duration_s / config_.control_period_s));

  for (std::size_t step = 0; step < total_steps; ++step) {
    const double now_s =
        static_cast<double>(step) * config_.control_period_s;

    // ---- Fault schedule and migration off failed cores.
    if (injector) {
      injector->BeginStep(now_s, config_.control_period_s);
      for (const std::size_t c : injector->TakeNewlyRecoveredCores())
        down[c] = false;
      const std::vector<std::size_t> failed = injector->TakeNewlyDownCores();
      if (!failed.empty()) {
        for (const std::size_t c : failed) down[c] = true;
        // Requeue (migrate) every running job that touches a failed
        // core; thermal-safe admission re-places it on the degraded
        // core set at the next epoch boundary.
        for (auto it = running.begin(); it != running.end();) {
          const bool hit = std::any_of(
              it->cores.begin(), it->cores.end(),
              [&](std::size_t c) { return down[c]; });
          if (!hit) {
            ++it;
            continue;
          }
          const double p = budget_core_power(*it->app);
          for (const std::size_t c : it->cores) {
            used[c] = false;
            for (std::size_t i = 0; i < n; ++i)
              rise[i] -= influence(i, c) * p;
          }
          it->cores.clear();
          if (it->remaining_s <= 0.0) {
            ++result.jobs_completed;  // finished before the core died
          } else {
            ++result.jobs_requeued;
            DS_TELEM_COUNT("sim.jobs_requeued", 1);
            ds::telemetry::EmitInstant("controller", "job_requeued",
                                       ds::telemetry::TraceLevel::kDecision,
                                       "sim_time_s", now_s);
            queue.push_front(std::move(*it));
          }
          it = running.erase(it);
        }
        for (const std::size_t c : failed) {
          injector->log().Record(
              now_s, faults::FaultEventKind::kMitigated,
              injector->CoreDownPermanent(c)
                  ? faults::FaultKind::kCoreFailStop
                  : faults::FaultKind::kCoreTransient,
              c, 0.0,
              "jobs migrated off core; admission re-runs on the "
              "degraded core set");
        }
        rebuild_noc();
      }
    }

    // ---- Scheduler epoch boundary.
    if (step % steps_per_epoch == 0) {
      DS_TELEM_SPAN_ARG("sim", "scheduler_epoch",
                        ds::telemetry::TraceLevel::kVerbose, "time_s", now_s);
      DS_TELEM_COUNT("sim.epochs", 1);
      // Departures first (jobs that finished during the last epoch).
      for (auto it = running.begin(); it != running.end();) {
        if (it->remaining_s <= 0.0) {
          const double p = budget_core_power(*it->app);
          for (const std::size_t c : it->cores) {
            used[c] = false;
            for (std::size_t i = 0; i < n; ++i)
              rise[i] -= influence(i, c) * p;
          }
          ++result.jobs_completed;
          it = running.erase(it);
        } else {
          ++it;
        }
      }
      // Arrivals (plus the initial burst at t = 0).
      int k = arrivals(rng.engine());
      if (step == 0) k += static_cast<int>(config_.initial_jobs);
      for (int i = 0; i < k; ++i) {
        Job job;
        job.app = &suite[static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<int>(suite.size()) - 1))];
        job.remaining_s = rng.Uniform(config_.min_job_s, config_.max_job_s);
        queue.push_back(std::move(job));
        ++result.jobs_arrived;
      }
      // Thermal-safe admission with incremental dispersed placement
      // (down cores are excluded: the degraded core set).
      while (!queue.empty()) {
        Job& job = queue.front();
        std::size_t free_count = 0;
        for (std::size_t c = 0; c < n; ++c)
          if (!used[c] && !down[c]) ++free_count;
        if (free_count < threads) break;
        const double p = budget_core_power(*job.app);
        std::vector<bool> used_try = used;
        std::vector<double> rise_try = rise;
        std::vector<std::size_t> placed;
        for (std::size_t t = 0; t < threads; ++t) {
          std::size_t best = n;
          double best_peak = std::numeric_limits<double>::infinity();
          for (std::size_t cand = 0; cand < n; ++cand) {
            if (used_try[cand] || down[cand]) continue;
            double peak = rise_try[cand] + influence(cand, cand) * p;
            for (std::size_t i = 0; i < n; ++i) {
              if (!used_try[i]) continue;
              peak = std::max(peak, rise_try[i] + influence(i, cand) * p);
            }
            if (peak < best_peak) {
              best_peak = peak;
              best = cand;
            }
          }
          used_try[best] = true;
          placed.push_back(best);
          for (std::size_t i = 0; i < n; ++i)
            rise_try[i] += influence(i, best) * p;
        }
        const double predicted =
            *std::max_element(rise_try.begin(), rise_try.end());
        if (predicted > headroom) break;
        used = std::move(used_try);
        rise = std::move(rise_try);
        job.cores = std::move(placed);
        running.push_back(std::move(job));
        queue.pop_front();
      }
      rebuild_noc();

      // Warm start: jump the package to the steady state of the first
      // epoch's placement (a cold sink would otherwise mask every
      // thermal effect for the first ~30 s of simulated time).
      if (step == 0 && !running.empty()) {
        const power::VfLevel& vf0 = ladder[level];
        std::vector<double> p0(n);
        const std::vector<double> t0 = thermal.DieTemps();
        for (std::size_t c = 0; c < n; ++c)
          p0[c] = noc_power[c] + pm.DarkCorePower(t0[c]);
        for (const Job& job : running) {
          for (const std::size_t c : job.cores) {
            p0[c] = noc_power[c] +
                    pm.TotalPower(job.app->Activity(threads),
                                  job.app->ceff22_nf, job.app->pind22,
                                  vf0.vdd, vf0.freq, t_dtm);
          }
        }
        const bool inject_solver_fault =
            injector != nullptr && injector->ConsumeSolverFault();
        if (thermal.InitializeSteadyStateRobust(p0, inject_solver_fault)) {
          ++result.solver_retries;
          if (injector)
            injector->log().Record(
                now_s, faults::FaultEventKind::kMitigated,
                faults::FaultKind::kSolverNonConvergence, faults::kNoCore,
                0.0, "warm start retried with perturbed pivoting");
        }
      }
    }

    // ---- Per-core power at the current level and temperatures.
    // Physics (leakage) always follows the true die temperatures; only
    // control decisions below read the sensed values.
    const std::vector<double> temps = thermal.DieTemps();
    const power::VfLevel& vf = ladder[level];
    std::vector<double> powers(n);
    for (std::size_t c = 0; c < n; ++c)
      powers[c] = down[c] ? 0.0 : noc_power[c] + pm.DarkCorePower(temps[c]);
    double gips_now = 0.0;
    for (const Job& job : running) {
      for (const std::size_t c : job.cores) {
        powers[c] = noc_power[c] +
                    pm.TotalPower(job.app->Activity(threads),
                                  job.app->ceff22_nf, job.app->pind22,
                                  vf.vdd, vf.freq, temps[c]);
      }
      gips_now += job.app->InstanceGips(threads, vf.freq);
    }
    double total_power = 0.0;
    for (const double p : powers) total_power += p;

    // ---- Governor: DTM throttle / Turbo boost, on sensed readings.
    const std::vector<double>& sensed = bus.Sample(now_s, temps);
    const double peak =
        *std::max_element(sensed.begin(), sensed.end());
    const double true_peak = thermal.PeakDieTemp();
    std::size_t requested = level;
    if (bus.InSafeState()) {
      requested = 0;  // watchdog: pin the ladder at its lowest level
    } else if (peak > t_dtm) {
      requested = ladder.StepDown(level);
    } else if (peak < t_dtm - config_.thermal_margin_c &&
               level < max_level && total_power <= config_.power_cap_w) {
      requested = ladder.StepUp(level);
    } else if (level > nominal && total_power > config_.power_cap_w) {
      requested = ladder.StepDown(level);
    }
    const std::size_t prev_level = level;
    level = injector ? injector->ApplyDvfs(requested, level) : requested;
    if (level != prev_level) {
      const bool up = level > prev_level;
      DS_TELEM_COUNT("sim.governor_changes", 1);
      ds::telemetry::EmitInstant(
          "controller",
          bus.InSafeState() ? "governor_safe"
          : up              ? "governor_up"
                            : "governor_down",
          ds::telemetry::TraceLevel::kDecision, "freq_ghz",
          ladder[level].freq, "sim_time_s", now_s);
    }
    if (level > nominal) DS_TELEM_COUNT("sim.boost_steps", 1);
    if (true_peak > t_dtm)
      result.time_above_tdtm_s += config_.control_period_s;
    if (bus.InSafeState()) result.safe_state_s += config_.control_period_s;

    // ---- Advance physics.
    thermal.Step(powers);
    aging.Advance(temps, config_.control_period_s / 3600.0);
    for (Job& job : running) job.remaining_s -= config_.control_period_s;

    gips_acc += gips_now;
    result.energy_j += total_power * config_.control_period_s;
    result.max_temp_c = std::max(result.max_temp_c, thermal.PeakDieTemp());
    std::size_t active = 0;
    for (const Job& job : running) active += job.cores.size();
    active_acc += static_cast<double>(active);
    double noc_total = 0.0;
    for (const double p : noc_power) noc_total += p;
    noc_acc += noc_total;
    ++control_steps;
    DS_TELEM_COUNT("sim.control_steps", 1);
    DS_TELEM_GAUGE_MAX("sim.peak_temp_c", thermal.PeakDieTemp());

    if (step % steps_per_epoch == 0) {
      SimSnapshot snap;
      snap.time_s = thermal.time();
      snap.gips = gips_now;
      snap.power_w = total_power;
      snap.peak_temp_c = peak;
      snap.freq_ghz = ladder[level].freq;
      snap.active_cores = active;
      snap.running_jobs = running.size();
      result.trace.push_back(snap);
    }
  }

  const double steps_d = static_cast<double>(control_steps);
  result.avg_gips = gips_acc / steps_d;
  result.avg_power_w = result.energy_j / config_.duration_s;
  result.avg_active_cores = active_acc / steps_d;
  result.aging_imbalance = aging.Imbalance();
  result.avg_noc_power_w = noc_acc / steps_d;
  result.sensor_substitutions = bus.substitutions();
  if (injector) {
    result.cores_failed = injector->num_down_cores();
    result.fault_log = std::move(injector->log());
  }
  DS_TELEM_GAUGE_SET("sim.sensor_substitutions",
                     static_cast<double>(result.sensor_substitutions));
  DS_TELEM_GAUGE_SET("sim.jobs_completed",
                     static_cast<double>(result.jobs_completed));
  return result;
}

}  // namespace ds::sim
