#include "apps/workload.hpp"

#include <stdexcept>

#include "util/contracts.hpp"

namespace ds::apps {

double Instance::CorePower(const power::PowerModel& pm, double temp_c) const {
  return pm.TotalPower(app->Activity(threads), app->ceff22_nf, app->pind22,
                       vdd, freq, temp_c);
}

void Workload::Add(Instance instance) {
  DS_REQUIRE(instance.app != nullptr, "Workload::Add: null application");
  DS_REQUIRE(instance.threads >= 1 &&
                 instance.threads <= kMaxThreadsPerInstance,
             "Workload::Add: " << instance.threads
                 << " threads not in [1, " << kMaxThreadsPerInstance << "]");
  instances_.push_back(instance);
}

void Workload::AddN(const Instance& instance, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) Add(instance);
}

std::size_t Workload::TotalCores() const {
  std::size_t n = 0;
  for (const Instance& inst : instances_) n += inst.threads;
  return n;
}

double Workload::TotalGips() const {
  double g = 0.0;
  for (const Instance& inst : instances_) g += inst.Gips();
  return g;
}

double Workload::TotalPower(const power::PowerModel& pm, double temp_c) const {
  double p = 0.0;
  for (const Instance& inst : instances_)
    p += static_cast<double>(inst.threads) * inst.CorePower(pm, temp_c);
  return p;
}

std::vector<double> Workload::PerCorePowers(const power::PowerModel& pm,
                                            double temp_c) const {
  std::vector<double> powers;
  powers.reserve(TotalCores());
  for (const Instance& inst : instances_) {
    const double p = inst.CorePower(pm, temp_c);
    for (std::size_t t = 0; t < inst.threads; ++t) powers.push_back(p);
  }
  return powers;
}

}  // namespace ds::apps
