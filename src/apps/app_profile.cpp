#include "apps/app_profile.hpp"

#include <stdexcept>

#include "util/contracts.hpp"

namespace ds::apps {

double AppProfile::Speedup(std::size_t threads) const {
  DS_REQUIRE(threads >= 1, "AppProfile::Speedup: thread count must be >= 1");
  const double n = static_cast<double>(threads);
  return 1.0 / (serial_fraction + (1.0 - serial_fraction) / n);
}

double AppProfile::Activity(std::size_t threads) const {
  return Speedup(threads) / static_cast<double>(threads);
}

double AppProfile::InstanceGips(std::size_t threads, double freq_ghz) const {
  return ipc * freq_ghz * Speedup(threads);
}

const std::vector<AppProfile>& ParsecSuite() {
  // Calibration notes (see DESIGN.md "Substitutions"):
  //  * serial fractions reproduce the Fig. 4 speed-up band (x264 ~3x,
  //    bodytrack ~2.4x, canneal ~1.7x at 64 threads) and the canneal
  //    "does not scale" behaviour of Fig. 14;
  //  * C_eff/P_ind make swaptions the most power-hungry app (Fig. 5:
  //    ~37% dark silicon at TDP 220 W, ~46% at 185 W, 16 nm, 3.6 GHz)
  //    and canneal the least;
  //  * IPCs sit in the Alpha 21264 4-wide out-of-order range and scale
  //    total system performance into the GIPS bands of Figs. 7 and 10-13.
  // The two rightmost columns drive the NoC substrate (src/noc):
  // inter-thread and memory traffic in bytes per instruction, from the
  // Parsec communication characterization (canneal and the pipeline
  // programs dedup/ferret communicate heavily; the data-parallel
  // kernels barely at all).
  static const std::vector<AppProfile> suite = {
      //  name           Ceff22  Pind22  serial  IPC   comm  mem
      {"x264",           1.40,   0.90,   0.300,  2.20, 0.30, 0.15},
      {"blackscholes",   0.85,   0.75,   0.050,  1.60, 0.05, 0.02},
      {"bodytrack",      1.30,   0.85,   0.390,  1.70, 0.40, 0.35},
      {"ferret",         1.55,   0.90,   0.200,  1.90, 0.60, 0.35},
      {"canneal",        0.95,   0.75,   0.580,  0.90, 0.90, 1.60},
      {"dedup",          1.25,   0.80,   0.250,  1.40, 0.70, 0.60},
      {"swaptions",      1.20,   1.00,   0.080,  1.80, 0.10, 0.05},
  };
  return suite;
}

const AppProfile& AppByName(const std::string& name) {
  for (const AppProfile& app : ParsecSuite())
    if (app.name == name) return app;
  throw std::invalid_argument("AppByName: unknown application " + name);
}

}  // namespace ds::apps
