// Application model.
//
// The paper characterizes each Parsec application by four quantities
// that fully determine its behaviour in every experiment:
//   * effective switching capacitance C_eff (Eq. (1)), at 22 nm,
//   * independent power P_ind (Eq. (1)), at 22 nm,
//   * Thread-Level Parallelism, expressed as the Amdahl serial fraction
//     behind the speed-up curves of Fig. 4,
//   * Instruction-Level Parallelism, expressed as sustained IPC on the
//     4-wide out-of-order Alpha 21264 core (performance is reported in
//     GIPS = IPC * f(GHz) summed over instances, as in Figs. 7-14).
//
// An application instance runs 1..8 dependent parallel threads
// (Sec. 2.3); with n threads on n cores, each core's activity factor is
// speedup(n)/n (threads stall on synchronization, so utilization decays
// exactly as the parallel efficiency).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ds::apps {

struct AppProfile {
  std::string name;
  double ceff22_nf;        // [nF] effective capacitance at 22 nm, alpha = 1
  double pind22;           // [W] execution-mode power at 22 nm
  double serial_fraction;  // Amdahl serial fraction (TLP: lower = better)
  double ipc;              // sustained instructions per cycle (ILP)
  // On-chip communication intensity, used by the NoC substrate:
  double comm_bytes_per_instr = 0.0;  // inter-thread traffic
  double mem_bytes_per_instr = 0.0;   // traffic to the memory controllers

  /// Amdahl speed-up with n parallel threads: 1 / (s + (1-s)/n).
  double Speedup(std::size_t threads) const;

  /// Per-core activity factor when running n dependent threads on n
  /// cores: parallel efficiency speedup(n)/n.
  double Activity(std::size_t threads) const;

  /// Performance of one instance [GIPS]: IPC * f * speedup(n).
  double InstanceGips(std::size_t threads, double freq_ghz) const;
};

/// Maximum threads per application instance (Sec. 2.3).
inline constexpr std::size_t kMaxThreadsPerInstance = 8;

/// The seven Parsec applications used by the paper, in its figure order:
/// (a) x264, (b) blackscholes, (c) bodytrack, (d) ferret, (e) canneal,
/// (f) dedup, (g) swaptions.
const std::vector<AppProfile>& ParsecSuite();

/// Lookup by name; throws std::invalid_argument for unknown names.
const AppProfile& AppByName(const std::string& name);

}  // namespace ds::apps
