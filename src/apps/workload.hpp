// Workloads: collections of application instances with operating points.
//
// A workload is what gets mapped onto a chip: each instance runs one
// application with 1..8 dependent threads at one voltage/frequency
// level (per-instance DVFS, as in the paper's Sec. 3.3).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "apps/app_profile.hpp"
#include "power/power_model.hpp"

namespace ds::apps {

struct Instance {
  const AppProfile* app;
  std::size_t threads;  // 1..kMaxThreadsPerInstance
  double freq;          // [GHz]
  double vdd;           // [V], on the node's Eq. (2) curve

  /// Performance of this instance [GIPS].
  double Gips() const { return app->InstanceGips(threads, freq); }

  /// Power of one of this instance's cores [W] at temperature `temp_c`.
  double CorePower(const power::PowerModel& pm, double temp_c) const;
};

class Workload {
 public:
  Workload() = default;

  void Add(Instance instance);
  void AddN(const Instance& instance, std::size_t count);
  void Clear() { instances_.clear(); }

  const std::vector<Instance>& instances() const { return instances_; }
  std::size_t size() const { return instances_.size(); }
  bool empty() const { return instances_.empty(); }

  /// Number of cores the workload occupies (one core per thread).
  std::size_t TotalCores() const;

  /// Aggregate performance [GIPS].
  double TotalGips() const;

  /// Aggregate power [W] with every core at temperature `temp_c`.
  double TotalPower(const power::PowerModel& pm, double temp_c) const;

  /// Per-core power vector in instance order (instance 0's threads
  /// first, then instance 1's, ...), all cores at `temp_c`.
  std::vector<double> PerCorePowers(const power::PowerModel& pm,
                                    double temp_c) const;

 private:
  std::vector<Instance> instances_;
};

}  // namespace ds::apps
