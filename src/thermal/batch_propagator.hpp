// Batched lockstep stepping: k scenarios sharing one (model, dt)
// propagator advance together with a single pass over M_state / M_in.
//
// The per-job propagator path (thermal/propagator.hpp) is memory-bound:
// every Step streams the ~n^2 M_state operator from cache/memory to
// produce one n-vector. A sweep runs hundreds of jobs over the SAME
// operator (BENCH_sweep.json shows 86-99% ModelCache hit rates), so a
// worker holding k ready jobs can pack their state vectors into a
// column-major n x k panel (util/panel.hpp) and advance all of them
// with one operator pass -- the interval-batched stepping idiom CoMeT
// uses to keep full-system thermal simulation tractable. Each operator
// row is then reused k times while L1-hot, turning the hot loop from
// memory-bound into compute-bound.
//
// Determinism: the panel kernels compute every output element with a
// fixed, k-independent summation order in an IEEE (no fast-math) TU,
// so a member's trajectory is bitwise identical at any cohort size --
// including k = 1, which is exactly the scalar lane. Batched hold
// operators are the propagator's own memoized Hold(k) matrices, shared
// with the per-job path.
//
// Membership is dynamic: a job that hits its deadline, gets cancelled,
// or throws detaches mid-flight (swap-last column compaction, safe
// because column bits never depend on column position) and the rest of
// the cohort keeps stepping.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "thermal/propagator.hpp"
#include "util/panel.hpp"

namespace ds::thermal {

/// Advances up to k_max state columns in lockstep over one shared
/// StepPropagator. Not thread-safe: one instance per worker/cohort.
/// Allocation-free after construction (panels are pre-sized to k_max;
/// Hold(n) may allocate once per distinct n inside the shared
/// propagator's memoized cache, same as the per-job path).
class BatchStepPropagator {
 public:
  /// An invalid member handle (returned by none; useful as a sentinel).
  static constexpr std::size_t kNoMember = static_cast<std::size_t>(-1);

  BatchStepPropagator(std::shared_ptr<const StepPropagator> prop,
                      std::size_t k_max);

  std::size_t k() const { return k_; }
  std::size_t k_max() const { return state_.k_max(); }
  std::size_t num_nodes() const { return prop_->num_nodes(); }
  std::size_t num_cores() const { return prop_->num_cores(); }
  double dt() const { return prop_->dt(); }
  const StepPropagator& propagator() const { return *prop_; }

  /// Adds a member with the given initial node-temperature state
  /// (size num_nodes()). Returns a stable member handle. Requires
  /// k() < k_max(). The member's powers start at zero.
  std::size_t AddMember(std::span<const double> initial_state);

  /// Detaches a member mid-cohort (swap-last compaction). The handle
  /// becomes inactive; remaining members are unaffected bitwise.
  void RemoveMember(std::size_t member);

  bool IsActive(std::size_t member) const;

  /// Sets the member's per-core powers for subsequent steps. Throws
  /// std::invalid_argument on non-finite input, matching
  /// TransientSimulator::Step.
  void SetPowers(std::size_t member, std::span<const double> core_powers);

  /// Copies the member's current node state into `out` (num_nodes()).
  void CopyState(std::size_t member, std::span<double> out) const;

  /// Contiguous view of the member's current state column.
  std::span<const double> MemberState(std::size_t member) const;

  double PeakDieTemp(std::size_t member) const;

  /// One lockstep step for every active member: one panel pass over
  /// M_state and M_in plus the ambient broadcast. No-op at k() == 0.
  void Step();

  /// n lockstep steps under each member's current (constant) powers.
  /// n > 1 routes through the propagator's memoized Hold(n) operator:
  /// one batched application instead of n.
  void StepN(std::size_t n);

  /// Steps advanced so far (per member; members step in lockstep).
  std::size_t steps() const { return steps_; }

 private:
  std::size_t ColumnOf(std::size_t member) const;

  std::shared_ptr<const StepPropagator> prop_;
  // Transposed step operators, cached inside the shared propagator
  // (built lazily once per (model, dt)); valid as long as prop_ lives.
  const util::Matrix* state_t_ = nullptr;
  const util::Matrix* in_t_ = nullptr;
  std::size_t k_ = 0;
  std::size_t steps_ = 0;
  util::ColPanel state_;    // n x k_max, column j = member state
  util::ColPanel scratch_;  // step output, swapped in
  util::ColPanel powers_;   // num_cores x k_max
  std::vector<std::size_t> col_of_member_;  // handle -> column or kNoMember
  std::vector<std::size_t> member_of_col_;  // column -> handle
};

/// TransientSimulator-compatible facade over a single-member batch
/// (the scalar lane, k = 1). Offers the same stepping surface --
/// Step / StepN / StepHold / DieTemps / PeakDieTemp / state -- backed
/// by the panel kernels, so per-job code and tests can drive the
/// batched path without knowing about cohorts. A member stepped
/// through this facade produces bitwise the same trajectory as the
/// same job inside a k > 1 cohort.
class BatchTransientFacade {
 public:
  BatchTransientFacade(std::shared_ptr<const StepPropagator> prop,
                       std::span<const double> initial_state);

  void Step(std::span<const double> core_powers);
  void StepN(std::span<const double> core_powers, std::size_t n);
  void StepHold(std::span<const double> core_powers, std::size_t k);

  std::vector<double> DieTemps() const;
  double PeakDieTemp() const;
  std::span<const double> state() const { return batch_.MemberState(0); }
  double dt() const { return batch_.dt(); }
  double time() const {
    return static_cast<double>(batch_.steps()) * batch_.dt();
  }

 private:
  BatchStepPropagator batch_;
};

}  // namespace ds::thermal
