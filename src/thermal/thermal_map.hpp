// ASCII rendering of die thermal maps (used by the Fig. 8 bench and the
// examples to show mapping-dependent thermal profiles).
#pragma once

#include <span>
#include <vector>
#include <string>

#include "thermal/floorplan.hpp"

namespace ds::thermal {

/// Renders per-core temperatures as a rows x cols character map.
/// Temperatures map linearly onto the ramp " .:-=+*#%@" between t_min
/// and t_max; cores above `t_crit` are marked '!'.
std::string RenderAsciiMap(const Floorplan& fp,
                           std::span<const double> core_temps, double t_min,
                           double t_max, double t_crit);

/// Renders a numeric map (one row per floorplan row, temperatures with
/// one decimal, dark cores marked with '.') given an active mask.
std::string RenderNumericMap(const Floorplan& fp,
                             std::span<const double> core_temps,
                             const std::vector<bool>& active);

}  // namespace ds::thermal
