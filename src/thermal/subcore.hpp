// Sub-core thermal granularity.
//
// The per-core RC model averages each core's power over its whole tile;
// real cores concentrate power in a few functional blocks (ALUs,
// register files), which raises the true hotspot above the tile
// average. This refinement subdivides every core tile into k x k
// blocks, distributes the core's power over them with a weight mask,
// and solves the finer RC network -- quantifying how much the per-core
// granularity underestimates peak temperature (an accuracy ablation
// for every temperature-constrained result in the repository).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "thermal/floorplan.hpp"
#include "thermal/rc_model.hpp"
#include "thermal/steady_state.hpp"

namespace ds::thermal {

class SubCoreModel {
 public:
  /// Subdivides each tile of `core_fp` into `k x k` blocks.
  /// `block_weights` (size k*k, row-major inside the tile) is the
  /// fraction of a core's power assigned to each block; it must sum to
  /// 1. Throws std::invalid_argument otherwise.
  SubCoreModel(const Floorplan& core_fp, std::size_t k,
               std::vector<double> block_weights,
               const PackageParams& pkg = {});

  /// Uniform-weight convenience (every block gets 1/k^2): this must
  /// reproduce the coarse model's temperatures up to discretization.
  static SubCoreModel Uniform(const Floorplan& core_fp, std::size_t k,
                              const PackageParams& pkg = {});

  /// HotSpot-style default for k = 2: the execution-unit block burns
  /// ~45% of the core's power, register files/scheduler 25%, L1 20%,
  /// the rest 10%.
  static SubCoreModel Default2x2(const Floorplan& core_fp,
                                 const PackageParams& pkg = {});

  /// Steady-state block temperatures for per-core powers; returns the
  /// per-core *peak* (max over the core's blocks).
  std::vector<double> CorePeakTemps(
      std::span<const double> core_powers) const;

  /// Chip peak temperature for per-core powers.
  double PeakTemp(std::span<const double> core_powers) const;

  std::size_t k() const { return k_; }
  const Floorplan& fine_floorplan() const { return fine_fp_; }
  const Floorplan& core_floorplan() const { return core_fp_; }

 private:
  std::vector<double> ExpandToBlocks(
      std::span<const double> core_powers) const;

  Floorplan core_fp_;
  std::size_t k_;
  std::vector<double> weights_;
  Floorplan fine_fp_;
  RcModel rc_;
  SteadyStateSolver solver_;
};

}  // namespace ds::thermal
