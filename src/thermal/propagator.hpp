// Dense step-propagator kernels for the implicit-Euler transient solve.
//
// The backward-Euler update  (G + C/dt) T' = (C/dt) T + P_full + g_amb T_amb
// is linear in (T, P), so the whole step can be folded, once per
// (model, dt), into a dense affine operator
//
//     T' = M_state T + M_in P + c_amb
//
// with M_state = (G + C/dt)^-1 (C/dt)   [n x n]
//      M_in    = (G + C/dt)^-1 E_die    [n x num_cores]
//      c_amb   = (G + C/dt)^-1 (g_amb T_amb)
//
// where E_die holds the unit power-injection columns of the die nodes.
// All three come out of ONE blocked multi-RHS solve on the identity
// (util::LuFactorization::SolveMany): A^-1 e_i is column i, so M_state
// is A^-1 with column i scaled by cap_i/dt and M_in is the die-node
// column subset. After that, stepping is a pair of allocation-free
// GEMVs -- no permutation gather, no triangular dependency chain, pure
// row-major multiply-add streams (util/kernels.hpp).
//
// Power-hold fast path: k identical steps compose into one affine
// operator. Composition of two holds (A2,B2,c2) o (A1,B1,c1) is
// (A2 A1, A2 B1 + B2, A2 c1 + c2), so Hold(k) is built by binary
// powering in O(log k) GEMMs and memoized; advancing a constant-power
// segment then costs ONE application regardless of k. Used by
// TransientSimulator::StepHold / StepN for warm-up and constant-power
// segments where intermediate samples are not needed.
//
// Sharing: a propagator is immutable after construction except for the
// mutex-protected hold-operator cache, so one instance can serve every
// simulator (and every sweep thread) that uses the same (model, dt) --
// see PropagatorSet, which runtime::ModelCache and arch::Platform hand
// out so a 70-job sweep folds the step operator exactly once.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "thermal/rc_model.hpp"
#include "util/lock_levels.hpp"
#include "util/matrix.hpp"
#include "util/thread_annotations.hpp"

namespace ds::thermal {

class StepPropagator {
 public:
  /// One k-step affine operator: T_{+k} = t_op T + in_op P + amb_op.
  /// The *_t members are transposed copies for the outer-product panel
  /// kernels (util/panel.hpp); they are filled only when the operator
  /// was requested via Hold(k, /*for_batch=*/true), so holds that only
  /// ever serve the per-job GEMV path stay half the size.
  struct HoldOperator {
    std::size_t k = 0;
    util::Matrix t_op;             // n x n
    util::Matrix in_op;            // n x num_cores
    std::vector<double> amb_op;    // n
    util::Matrix t_op_t;           // n x n, t_op transposed (batch only)
    util::Matrix in_op_t;          // num_cores x n (batch only)
  };

  /// Folds the implicit-Euler step of `model` at step `dt_s` into the
  /// dense operator triple. O(n^3) build (factor + multi-RHS solve on
  /// the identity), done once per (model, dt). Throws
  /// std::invalid_argument for non-positive dt and util::SolverError
  /// if the system matrix is singular or the fold is non-finite.
  StepPropagator(const RcModel& model, double dt_s);

  /// One step: out = M_state state + M_in core_powers + c_amb.
  /// Allocation-free; `out` must not alias `state`.
  void Apply(std::span<const double> state,
             std::span<const double> core_powers,
             std::span<double> out) const;

  /// k steps under constant power in one application of Hold(k).
  /// Allocation-free after the memoized hold operator exists.
  void ApplyHold(const HoldOperator& hold, std::span<const double> state,
                 std::span<const double> core_powers,
                 std::span<double> out) const;

  /// Memoized k-step hold operator (k >= 1), built by binary powering
  /// over a cached chain of power-of-two holds. Thread-safe. Pass
  /// for_batch = true to also populate (once) the transposed copies the
  /// batched panel path applies; a hold already memoized without them
  /// gains them in place under the cache lock.
  std::shared_ptr<const HoldOperator> Hold(std::size_t k,
                                           bool for_batch = false) const;

  /// Approximate resident bytes: the operator triple plus the memoized
  /// hold operators (deduplicated -- holds_ aliases pow2_ entries).
  /// Thread-safe; used by ModelCache budget accounting.
  std::size_t ApproxBytes() const;

  double dt() const { return dt_; }
  std::size_t num_nodes() const { return m_state_.rows(); }
  std::size_t num_cores() const { return m_in_.cols(); }
  const RcModel& model() const { return *model_; }
  const util::Matrix& state_operator() const { return m_state_; }
  const util::Matrix& input_operator() const { return m_in_; }
  std::span<const double> ambient_operator() const { return c_amb_; }

  /// Transposed copies of M_state / M_in for the outer-product panel
  /// kernels: state_operator_t()(c, i) == state_operator()(i, c). Built
  /// lazily on first use (both at once, under the hold-cache lock),
  /// immutable afterwards; the returned references stay valid for the
  /// propagator's lifetime. Thread-safe.
  const util::Matrix& state_operator_t() const;
  const util::Matrix& input_operator_t() const;

 private:
  /// hold_out = b o a (apply `a` first, then `b`).
  HoldOperator Compose(const HoldOperator& b, const HoldOperator& a) const;

  const RcModel* model_;
  double dt_;
  util::Matrix m_state_;
  util::Matrix m_in_;
  std::vector<double> c_amb_;

  // Lazily-built transposes of m_state_ / m_in_. Written exactly once
  // under hold_mu_; every reader obtains its reference from an accessor
  // that takes the lock first, so post-publication reads are safe
  // without annotation (annotating would flag the returned references).
  mutable util::Matrix m_state_t_;
  mutable util::Matrix m_in_t_;

  mutable Mutex hold_mu_{locks::kPropagator};
  // Non-const entries so Hold(k, for_batch=true) can fill transposes
  // into an already-memoized operator in place (under hold_mu_); the
  // public surface still hands out shared_ptr<const HoldOperator>.
  mutable std::vector<std::shared_ptr<HoldOperator>> pow2_
      DS_GUARDED_BY(hold_mu_);
  mutable std::map<std::size_t, std::shared_ptr<HoldOperator>> holds_
      DS_GUARDED_BY(hold_mu_);
};

/// Thread-safe dt -> StepPropagator cache for one RcModel. Platforms
/// own one (lazily) and runtime::ModelCache shares one per cached
/// thermal entry, so every simulator and sweep job over the same model
/// reuses the same folded operators. Counts builds and hits into the
/// "thermal.propagator_*" telemetry counters.
class PropagatorSet {
 public:
  /// Returns the propagator for (model, dt), building it on first use.
  /// All calls must pass the same model (contract-checked): a set is
  /// tied to the model whose assets it caches.
  std::shared_ptr<const StepPropagator> For(const RcModel& model,
                                            double dt_s) const;

  /// Number of distinct (dt) entries built so far (tests/telemetry).
  std::size_t size() const;

  /// Sum of ApproxBytes over every propagator in the set.
  std::size_t ApproxBytes() const;

 private:
  mutable Mutex mu_{locks::kPropagator};
  mutable const RcModel* model_ DS_GUARDED_BY(mu_) = nullptr;
  mutable std::map<double, std::shared_ptr<const StepPropagator>> by_dt_
      DS_GUARDED_BY(mu_);
};

}  // namespace ds::thermal
