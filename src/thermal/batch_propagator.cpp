#include "thermal/batch_propagator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/scoped.hpp"
#include "util/contracts.hpp"

namespace ds::thermal {

namespace {
bool AllFinite(std::span<const double> v) {
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

// Validated before the member-init list touches the propagator.
std::shared_ptr<const StepPropagator> CheckedProp(
    std::shared_ptr<const StepPropagator> prop) {
  DS_REQUIRE(prop != nullptr, "BatchStepPropagator: null propagator");
  return prop;
}
}  // namespace

BatchStepPropagator::BatchStepPropagator(
    std::shared_ptr<const StepPropagator> prop, std::size_t k_max)
    : prop_(CheckedProp(std::move(prop))),
      state_(prop_->num_nodes(), k_max),
      scratch_(prop_->num_nodes(), k_max),
      powers_(prop_->num_cores(), k_max) {
  DS_REQUIRE(k_max >= 1, "BatchStepPropagator: k_max must be >= 1");
  // Resolve (and lazily build, first cohort only) the shared transposed
  // operators outside the stepping hot path.
  state_t_ = &prop_->state_operator_t();
  in_t_ = &prop_->input_operator_t();
  col_of_member_.reserve(k_max);
  member_of_col_.reserve(k_max);
}

std::size_t BatchStepPropagator::ColumnOf(std::size_t member) const {
  DS_REQUIRE(member < col_of_member_.size() &&
                 col_of_member_[member] != kNoMember,
             "BatchStepPropagator: inactive member " << member);
  return col_of_member_[member];
}

std::size_t BatchStepPropagator::AddMember(
    std::span<const double> initial_state) {
  DS_REQUIRE(k_ < k_max(),
             "BatchStepPropagator: cohort full (k_max " << k_max() << ")");
  const std::size_t member = col_of_member_.size();
  const std::size_t col = k_;
  state_.Gather(col, initial_state);
  // Fresh members start with zero powers (matches a zero-filled power
  // vector on the per-job path until SetPowers is called).
  auto p = powers_.col(col);
  std::fill(p.begin(), p.end(), 0.0);
  col_of_member_.push_back(col);
  member_of_col_.resize(std::max(member_of_col_.size(), col + 1));
  member_of_col_[col] = member;
  ++k_;
  return member;
}

void BatchStepPropagator::RemoveMember(std::size_t member) {
  const std::size_t col = ColumnOf(member);
  const std::size_t last = k_ - 1;
  if (col != last) {
    // Swap-last compaction: panel column bits never depend on column
    // position, so moving the last member into the vacated slot leaves
    // its trajectory unchanged.
    state_.CopyColumn(last, col);
    powers_.CopyColumn(last, col);
    const std::size_t moved = member_of_col_[last];
    member_of_col_[col] = moved;
    col_of_member_[moved] = col;
  }
  col_of_member_[member] = kNoMember;
  --k_;
  DS_TELEM_COUNT("thermal.batch.detached", 1);
}

bool BatchStepPropagator::IsActive(std::size_t member) const {
  return member < col_of_member_.size() &&
         col_of_member_[member] != kNoMember;
}

void BatchStepPropagator::SetPowers(std::size_t member,
                                    std::span<const double> core_powers) {
  DS_REQUIRE(core_powers.size() == prop_->num_cores(),
             "BatchStepPropagator::SetPowers: " << core_powers.size()
                 << " powers for " << prop_->num_cores() << " cores");
  if (!AllFinite(core_powers))
    throw std::invalid_argument(
        "BatchStepPropagator::SetPowers: non-finite power input");
  powers_.Gather(ColumnOf(member), core_powers);
}

void BatchStepPropagator::CopyState(std::size_t member,
                                    std::span<double> out) const {
  state_.Scatter(ColumnOf(member), out);
}

std::span<const double> BatchStepPropagator::MemberState(
    std::size_t member) const {
  return state_.col(ColumnOf(member));
}

double BatchStepPropagator::PeakDieTemp(std::size_t member) const {
  auto s = state_.col(ColumnOf(member));
  double peak = s[0];
  for (std::size_t i = 1; i < prop_->num_cores(); ++i)
    peak = std::max(peak, s[i]);
  return peak;
}

void BatchStepPropagator::Step() {
  if (k_ == 0) return;
  DS_TELEM_COUNT("thermal.batch.panel_steps", 1);
  // GEMM vs GEMV accounting: a panel pass over one state column is the
  // scalar lane, wider panels are the amortized GEMM-shaped work.
  if (k_ >= 2)
    DS_TELEM_COUNT("thermal.batch.gemm_steps", k_);
  else
    DS_TELEM_COUNT("thermal.batch.gemv_steps", 1);
  util::PanelApplyT(*state_t_, state_, k_, &scratch_);
  util::PanelApplyAddT(*in_t_, powers_, k_, &scratch_);
  util::PanelAddBroadcast(prop_->ambient_operator(), k_, &scratch_);
  state_.swap(scratch_);
  ++steps_;
}

void BatchStepPropagator::StepN(std::size_t n) {
  if (n == 0 || k_ == 0) {
    steps_ += n;
    return;
  }
  if (n == 1) {
    Step();
    return;
  }
  // Same memoized Hold(n) matrices the per-job StepHold path uses --
  // one batched affine application advances every member n steps.
  const std::shared_ptr<const StepPropagator::HoldOperator> hold =
      prop_->Hold(n, /*for_batch=*/true);
  DS_TELEM_COUNT("thermal.batch.panel_steps", 1);
  DS_TELEM_COUNT("thermal.batch.hold_steps", k_ * n);
  util::PanelApplyT(hold->t_op_t, state_, k_, &scratch_);
  util::PanelApplyAddT(hold->in_op_t, powers_, k_, &scratch_);
  util::PanelAddBroadcast(hold->amb_op, k_, &scratch_);
  state_.swap(scratch_);
  steps_ += n;
}

BatchTransientFacade::BatchTransientFacade(
    std::shared_ptr<const StepPropagator> prop,
    std::span<const double> initial_state)
    : batch_(std::move(prop), /*k_max=*/1) {
  DS_REQUIRE(initial_state.size() == batch_.num_nodes(),
             "BatchTransientFacade: " << initial_state.size()
                 << " state entries for " << batch_.num_nodes()
                 << " nodes");
  batch_.AddMember(initial_state);
}

void BatchTransientFacade::Step(std::span<const double> core_powers) {
  batch_.SetPowers(0, core_powers);
  batch_.Step();
}

void BatchTransientFacade::StepN(std::span<const double> core_powers,
                                 std::size_t n) {
  batch_.SetPowers(0, core_powers);
  batch_.StepN(n);
}

void BatchTransientFacade::StepHold(std::span<const double> core_powers,
                                    std::size_t k) {
  DS_REQUIRE(k >= 1, "BatchTransientFacade::StepHold: k must be >= 1");
  batch_.SetPowers(0, core_powers);
  batch_.StepN(k);
}

std::vector<double> BatchTransientFacade::DieTemps() const {
  auto s = batch_.MemberState(0);
  return {s.begin(),
          s.begin() + static_cast<std::ptrdiff_t>(batch_.num_cores())};
}

double BatchTransientFacade::PeakDieTemp() const {
  return batch_.PeakDieTemp(0);
}

}  // namespace ds::thermal
