#include "thermal/floorplan.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace ds::thermal {

Floorplan::Floorplan(std::size_t rows, std::size_t cols, double core_w_mm,
                     double core_h_mm)
    : rows_(rows), cols_(cols), core_w_(core_w_mm), core_h_(core_h_mm) {
  if (rows == 0 || cols == 0 || !(core_w_mm > 0.0) || !(core_h_mm > 0.0) ||
      !std::isfinite(core_w_mm) || !std::isfinite(core_h_mm))
    throw std::invalid_argument(
        "Floorplan: dimensions must be positive and finite");
}

Floorplan Floorplan::MakeGrid(std::size_t num_cores, double core_area_mm2) {
  if (num_cores == 0)
    throw std::invalid_argument("Floorplan: need at least one core");
  // Most-square factorization: largest divisor <= sqrt(n).
  std::size_t best_r = 1;
  for (std::size_t r = 1;
       r * r <= num_cores; ++r) {
    if (num_cores % r == 0) best_r = r;
  }
  const std::size_t best_c = num_cores / best_r;
  if (best_c > 4 * best_r)
    throw std::invalid_argument(
        "Floorplan: no factorization with aspect ratio <= 4");
  const double side = std::sqrt(core_area_mm2);
  return Floorplan(best_r, best_c, side, side);
}

double Floorplan::CenterX(std::size_t core) const {
  const TilePos p = PosOf(core);
  return (static_cast<double>(p.col) + 0.5) * core_w_;
}

double Floorplan::CenterY(std::size_t core) const {
  const TilePos p = PosOf(core);
  return (static_cast<double>(p.row) + 0.5) * core_h_;
}

std::vector<std::size_t> Floorplan::Neighbors(std::size_t core) const {
  const TilePos p = PosOf(core);
  std::vector<std::size_t> out;
  out.reserve(4);
  if (p.row > 0) out.push_back(IndexOf(p.row - 1, p.col));
  if (p.row + 1 < rows_) out.push_back(IndexOf(p.row + 1, p.col));
  if (p.col > 0) out.push_back(IndexOf(p.row, p.col - 1));
  if (p.col + 1 < cols_) out.push_back(IndexOf(p.row, p.col + 1));
  return out;
}

double Floorplan::Distance(std::size_t a, std::size_t b) const {
  const double dx = CenterX(a) - CenterX(b);
  const double dy = CenterY(a) - CenterY(b);
  return std::sqrt(dx * dx + dy * dy);
}

std::size_t Floorplan::TileDistance(std::size_t a, std::size_t b) const {
  const TilePos pa = PosOf(a);
  const TilePos pb = PosOf(b);
  const std::size_t dr =
      pa.row > pb.row ? pa.row - pb.row : pb.row - pa.row;
  const std::size_t dc =
      pa.col > pb.col ? pa.col - pb.col : pb.col - pa.col;
  return dr + dc;
}

}  // namespace ds::thermal
