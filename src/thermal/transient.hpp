// Transient thermal simulation via implicit (backward) Euler.
//
//   C dT/dt = -G T + P + g_amb T_amb
//   (C/dt + G) T_{k+1} = (C/dt) T_k + P_{k+1} + g_amb T_amb
//
// Backward Euler is unconditionally stable, which matters here: the sink
// time constant (R_conv * C_conv ~ 14 s) and the die time constant
// (~ms) differ by four orders of magnitude. The system matrix is
// factored once for a fixed step; each step is a back-substitution. The
// 1 ms default step aligns with the paper's Turbo-Boost control period.
#pragma once

#include <span>
#include <vector>

#include "thermal/rc_model.hpp"
#include "util/lu.hpp"

namespace ds::thermal {

class TransientSimulator {
 public:
  /// Factors (C/dt + G). `dt_s` is the fixed step in seconds.
  /// Throws std::invalid_argument for non-positive dt.
  TransientSimulator(const RcModel& model, double dt_s = 1e-3);

  /// Resets all node temperatures to the ambient.
  void Reset();

  /// Sets the state to the steady-state solution of `core_powers`
  /// (useful to skip the multi-second package warm-up).
  void InitializeSteadyState(std::span<const double> core_powers);

  /// Hardened warm start: like InitializeSteadyState, but validates
  /// that the solution is finite and, when the direct solve fails (or
  /// `inject_failure` forces the failure path), retries once with a
  /// perturbed-pivot factorization before throwing util::SolverError.
  /// Returns true when the retry path produced the state -- callers log
  /// that as a mitigation. The fault-free path is numerically identical
  /// to InitializeSteadyState.
  bool InitializeSteadyStateRobust(std::span<const double> core_powers,
                                   bool inject_failure = false);

  /// Advances one step under the given per-core powers.
  /// Throws std::invalid_argument if any power is NaN/non-finite (a
  /// NaN would otherwise propagate silently through the implicit-Euler
  /// solve and poison the whole state vector).
  void Step(std::span<const double> core_powers);

  /// Advances `n` steps with constant powers.
  void StepN(std::span<const double> core_powers, std::size_t n);

  /// Current die temperatures [C].
  std::vector<double> DieTemps() const;

  /// Current peak die temperature [C].
  double PeakDieTemp() const;

  double dt() const { return dt_; }
  double time() const { return time_; }
  const RcModel& model() const { return *model_; }
  const std::vector<double>& state() const { return state_; }

 private:
  const RcModel* model_;
  double dt_;
  double time_ = 0.0;
  util::Matrix system_;               // C/dt + G
  util::LuFactorization system_lu_;
  std::vector<double> state_;         // all node temperatures
  std::vector<double> amb_rhs_;       // g_amb * T_amb, precomputed
};

}  // namespace ds::thermal
