// Transient thermal simulation via implicit (backward) Euler.
//
//   C dT/dt = -G T + P + g_amb T_amb
//   (C/dt + G) T_{k+1} = (C/dt) T_k + P_{k+1} + g_amb T_amb
//
// Backward Euler is unconditionally stable, which matters here: the sink
// time constant (R_conv * C_conv ~ 14 s) and the die time constant
// (~ms) differ by four orders of magnitude. The 1 ms default step
// aligns with the paper's Turbo-Boost control period.
//
// Step kernels (selectable, see StepKernel):
//  - kPropagator: the step is folded once per (model, dt) into dense
//    operators T' = M_state T + M_in P + c_amb
//    (thermal/propagator.hpp) and each step is an allocation-free
//    GEMV pair -- no permutation gather, no triangular dependency
//    chain. Constant-power segments can advance k steps in one
//    application via StepHold. Propagators are shared across
//    simulators (and sweep threads) through PropagatorSet.
//  - kLu (legacy / A/B baseline): the system matrix is factored once
//    and each step is a permuted triangular solve, now into a reused
//    member scratch buffer so even this path is allocation-free. The
//    construction also falls back to this path if the propagator fold
//    fails (singular or non-finite), so a degraded model still steps.
//  - kAuto (default): starts on the LU path (factor only -- roughly a
//    third of the propagator's fold cost) and upgrades to the
//    propagator once the *requested* step count reaches
//    kAutoUpgradeSteps, so short-lived simulators never pay a fold
//    they cannot amortize. The upgrade decision depends only on the
//    sequence of Step/StepN/StepHold calls on THIS simulator -- never
//    on shared-cache warmth or scheduling -- so results stay
//    byte-identical across sweep thread counts. Both kernels step the
//    same implicit-Euler update; the trajectory is identical to
//    rounding error either way.
// DS_THERMAL_KERNEL=lu|propagator overrides kAuto for A/B runs.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "thermal/propagator.hpp"
#include "thermal/rc_model.hpp"
#include "util/lu.hpp"

namespace ds::thermal {

/// Which stepping kernel a TransientSimulator uses. kAuto starts on
/// the cheap-to-build LU path and upgrades to the propagator at
/// kAutoUpgradeSteps requested steps; the DS_THERMAL_KERNEL
/// environment variable ("lu" | "propagator") pins the kernel for A/B
/// comparisons.
enum class StepKernel { kAuto, kPropagator, kLu };

class TransientSimulator {
 public:
  /// Requested steps after which a kAuto simulator folds the
  /// propagator. 64 steps ~ the fold's cost expressed in LU steps, so
  /// the upgrade pays for itself within the next ~64 steps.
  static constexpr std::size_t kAutoUpgradeSteps = 64;

  /// Prepares stepping at fixed step `dt_s` (seconds): folds the dense
  /// step propagator, or factors (C/dt + G) on the legacy path (kAuto
  /// defers the fold; see kAutoUpgradeSteps).
  /// `shared` (optional) memoizes propagators across simulators of the
  /// same model -- pass arch::Platform::propagators() or the set from
  /// runtime::ModelCache so sweeps fold each (model, dt) exactly once.
  /// Throws std::invalid_argument for non-positive dt.
  explicit TransientSimulator(
      const RcModel& model, double dt_s = 1e-3,
      StepKernel kernel = StepKernel::kAuto,
      std::shared_ptr<const PropagatorSet> shared = nullptr);

  /// Resets all node temperatures to the ambient.
  void Reset();

  /// Sets the state to the steady-state solution of `core_powers`
  /// (useful to skip the multi-second package warm-up).
  void InitializeSteadyState(std::span<const double> core_powers);

  /// Hardened warm start: like InitializeSteadyState, but validates
  /// that the solution is finite and, when the direct solve fails (or
  /// `inject_failure` forces the failure path), retries once with a
  /// perturbed-pivot factorization before throwing util::SolverError.
  /// Returns true when the retry path produced the state -- callers log
  /// that as a mitigation. The fault-free path is numerically identical
  /// to InitializeSteadyState.
  bool InitializeSteadyStateRobust(std::span<const double> core_powers,
                                   bool inject_failure = false);

  /// Advances one step under the given per-core powers.
  /// Throws std::invalid_argument if any power is NaN/non-finite (a
  /// NaN would otherwise propagate silently through the implicit-Euler
  /// solve and poison the whole state vector).
  void Step(std::span<const double> core_powers);

  /// Advances `n` steps with constant powers. On the propagator path
  /// this routes through StepHold (one operator application instead of
  /// n); the trajectory between the endpoints is not materialized.
  void StepN(std::span<const double> core_powers, std::size_t n);

  /// Power-hold fast path: advances `k` steps under constant powers in
  /// one application of the memoized k-step hold operator. Matches k
  /// explicit Step() calls to rounding error (tested at 1e-9 C). On
  /// the legacy LU path this degrades to k explicit steps.
  void StepHold(std::span<const double> core_powers, std::size_t k);

  /// Current die temperatures [C].
  std::vector<double> DieTemps() const;

  /// Current peak die temperature [C].
  double PeakDieTemp() const;

  double dt() const { return dt_; }
  double time() const { return time_; }
  const RcModel& model() const { return *model_; }
  const std::vector<double>& state() const { return state_; }

  /// The kernel currently in use: kLu while a kAuto simulator has not
  /// yet upgraded (and after a fold-failure fallback), kPropagator
  /// after the upgrade / for an eager propagator build.
  StepKernel kernel() const { return kernel_; }

 private:
  void BuildLegacyLu();
  void FillLegacyRhs(std::span<const double> core_powers);

  /// kAuto bookkeeping: adds `n` requested steps and folds the
  /// propagator once the total reaches kAutoUpgradeSteps.
  void NoteAutoSteps(std::size_t n);

  /// Step/StepHold bodies without kAuto counting (public entry points
  /// count exactly the steps they were asked for, then dispatch here).
  void StepImpl(std::span<const double> core_powers);
  void StepHoldImpl(std::span<const double> core_powers, std::size_t k);

  const RcModel* model_;
  double dt_;
  double time_ = 0.0;
  StepKernel kernel_;
  std::shared_ptr<const StepPropagator> prop_;  // propagator path
  util::Matrix system_;                         // C/dt + G (legacy path)
  std::unique_ptr<util::LuFactorization> system_lu_;  // legacy path
  std::vector<double> state_;         // all node temperatures
  std::vector<double> scratch_;       // step output / RHS, reused
  std::vector<double> amb_rhs_;       // g_amb * T_amb, precomputed
  bool auto_pending_ = false;         // kAuto: propagator not folded yet
  std::size_t auto_steps_ = 0;        // kAuto: requested steps so far
  std::shared_ptr<const PropagatorSet> shared_;  // kept for lazy upgrade
};

}  // namespace ds::thermal
