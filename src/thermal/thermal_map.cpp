#include "thermal/thermal_map.hpp"

#include <algorithm>
#include <sstream>

#include "util/contracts.hpp"
#include "util/table.hpp"

namespace ds::thermal {

std::string RenderAsciiMap(const Floorplan& fp,
                           std::span<const double> core_temps, double t_min,
                           double t_max, double t_crit) {
  DS_REQUIRE(core_temps.size() == fp.num_cores(),
             "RenderAsciiMap: " << core_temps.size() << " temps for "
                                << fp.num_cores() << " cores");
  static const std::string ramp = " .:-=+*#%@";
  std::ostringstream out;
  for (std::size_t r = 0; r < fp.rows(); ++r) {
    for (std::size_t c = 0; c < fp.cols(); ++c) {
      const double t = core_temps[fp.IndexOf(r, c)];
      if (t > t_crit) {
        out << '!';
        continue;
      }
      const double norm =
          std::clamp((t - t_min) / std::max(1e-9, t_max - t_min), 0.0, 1.0);
      const std::size_t idx = std::min(
          ramp.size() - 1, static_cast<std::size_t>(norm * ramp.size()));
      out << ramp[idx];
    }
    out << '\n';
  }
  return out.str();
}

std::string RenderNumericMap(const Floorplan& fp,
                             std::span<const double> core_temps,
                             const std::vector<bool>& active) {
  DS_REQUIRE(core_temps.size() == fp.num_cores(),
             "RenderNumericMap: " << core_temps.size() << " temps for "
                                  << fp.num_cores() << " cores");
  DS_REQUIRE(active.size() == fp.num_cores(),
             "RenderNumericMap: " << active.size() << " active flags for "
                                  << fp.num_cores() << " cores");
  std::ostringstream out;
  for (std::size_t r = 0; r < fp.rows(); ++r) {
    for (std::size_t c = 0; c < fp.cols(); ++c) {
      const std::size_t i = fp.IndexOf(r, c);
      if (active[i])
        out << util::FormatFixed(core_temps[i], 1) << ' ';
      else
        out << "  .  ";
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace ds::thermal
