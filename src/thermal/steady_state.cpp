#include "thermal/steady_state.hpp"

#include <cmath>
#include <stdexcept>

#include "telemetry/scoped.hpp"
#include "util/contracts.hpp"

namespace ds::thermal {

SteadyStateSolver::SteadyStateSolver(const RcModel& model)
    : model_(&model), lu_(model.conductance()) {}

std::vector<double> SteadyStateSolver::SolveFull(
    std::span<const double> core_powers) const {
  for (std::size_t i = 0; i < core_powers.size(); ++i)
    DS_REQUIRE(std::isfinite(core_powers[i]) && core_powers[i] >= 0.0,
               "SteadyStateSolver: power " << core_powers[i] << " W at core "
                                           << i
                                           << " (heat sources are >= 0)");
  DS_TELEM_COUNT("thermal.steady_solves", 1);
  DS_TELEM_TIMER("thermal.steady_solve_us");
  std::vector<double> rhs = model_->ExpandPower(core_powers);
  const auto& amb_g = model_->ambient_conductance();
  const double t_amb = model_->ambient_c();
  for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] += amb_g[i] * t_amb;
  std::vector<double> temps = lu_.Solve(rhs);
  // Physical sanity of the solution: with non-negative sources, an
  // M-matrix network can only sit at or above the ambient.
  for (std::size_t i = 0; i < temps.size(); ++i)
    DS_ENSURE(std::isfinite(temps[i]) && temps[i] >= t_amb - 1e-6,
              "SteadyStateSolver: node " << i << " solved to " << temps[i]
                                         << " C below ambient " << t_amb);
  return temps;
}

std::vector<double> SteadyStateSolver::Solve(
    std::span<const double> core_powers) const {
  std::vector<double> full = SolveFull(core_powers);
  full.resize(model_->num_cores());  // die nodes are the first N
  return full;
}

std::vector<double> SteadyStateSolver::SolveWithFeedback(
    const std::function<double(std::size_t, double)>& power_at_temp,
    std::vector<double>* out_powers, int max_iters, double tol_c) const {
  const std::size_t n = model_->num_cores();
  std::vector<double> temps(n, model_->ambient_c());
  std::vector<double> powers(n, 0.0);
  for (int iter = 0; iter < max_iters; ++iter) {
    for (std::size_t i = 0; i < n; ++i) powers[i] = power_at_temp(i, temps[i]);
    // Cold fixed-point iteration (a handful of rounds at setup, not the
    // per-millisecond stepping path); Solve returns by value anyway.
    // ds_lint: allow(alloc-in-loop)
    std::vector<double> next = Solve(powers);
    const double delta = util::MaxAbsDiffVec(next, temps);
    temps = std::move(next);
    if (delta < tol_c) {
      if (out_powers) *out_powers = std::move(powers);
      return temps;
    }
  }
  throw util::SolverError(
      "SteadyStateSolver::SolveWithFeedback: no convergence "
      "(thermal runaway?)");
}

const util::Matrix& SteadyStateSolver::InfluenceMatrix() const {
  std::call_once(influence_once_, [this] {
    DS_TELEM_SPAN("thermal", "influence_matrix_build",
                  ds::telemetry::TraceLevel::kSpan);
    DS_TELEM_TIMER("thermal.influence_build_us");
    const std::size_t n = model_->num_cores();
    auto a = std::make_unique<util::Matrix>(n, n);
    // One blocked multi-RHS solve over all unit-injection columns at
    // once, instead of num_cores permuted one-column solves each
    // re-allocating a full-node RHS.
    util::Matrix rhs(model_->num_nodes(), n);
    for (std::size_t j = 0; j < n; ++j) rhs(model_->DieNode(j), j) = 1.0;
    lu_.SolveMany(&rhs);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t node = model_->DieNode(i);
      for (std::size_t j = 0; j < n; ++j) (*a)(i, j) = rhs(node, j);
    }
    influence_ = std::move(a);
  });
  return *influence_;
}

double SteadyStateSolver::PeakTempUniform(
    std::span<const std::size_t> active, double p_each) const {
  DS_REQUIRE(p_each >= 0.0 && std::isfinite(p_each),
             "SteadyStateSolver::PeakTempUniform: power " << p_each);
  for (const std::size_t j : active)
    DS_REQUIRE(j < model_->num_cores(),
               "SteadyStateSolver::PeakTempUniform: core " << j << " of "
                   << model_->num_cores());
  const util::Matrix& a = InfluenceMatrix();
  double worst = 0.0;
  // Peak is attained on an active core (A is diagonally dominant in the
  // die block), but scan all rows for robustness.
  for (std::size_t i = 0; i < model_->num_cores(); ++i) {
    double row_sum = 0.0;
    for (const std::size_t j : active) row_sum += a(i, j);
    worst = std::max(worst, row_sum);
  }
  return model_->ambient_c() + p_each * worst;
}

}  // namespace ds::thermal
