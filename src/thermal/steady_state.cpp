#include "thermal/steady_state.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "telemetry/scoped.hpp"

namespace ds::thermal {

SteadyStateSolver::SteadyStateSolver(const RcModel& model)
    : model_(&model), lu_(model.conductance()) {}

std::vector<double> SteadyStateSolver::SolveFull(
    std::span<const double> core_powers) const {
  for (const double p : core_powers)
    if (!std::isfinite(p))
      throw std::invalid_argument(
          "SteadyStateSolver: non-finite power input");
  DS_TELEM_COUNT("thermal.steady_solves", 1);
  DS_TELEM_TIMER("thermal.steady_solve_us");
  std::vector<double> rhs = model_->ExpandPower(core_powers);
  const auto& amb_g = model_->ambient_conductance();
  const double t_amb = model_->ambient_c();
  for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] += amb_g[i] * t_amb;
  return lu_.Solve(rhs);
}

std::vector<double> SteadyStateSolver::Solve(
    std::span<const double> core_powers) const {
  std::vector<double> full = SolveFull(core_powers);
  full.resize(model_->num_cores());  // die nodes are the first N
  return full;
}

std::vector<double> SteadyStateSolver::SolveWithFeedback(
    const std::function<double(std::size_t, double)>& power_at_temp,
    std::vector<double>* out_powers, int max_iters, double tol_c) const {
  const std::size_t n = model_->num_cores();
  std::vector<double> temps(n, model_->ambient_c());
  std::vector<double> powers(n, 0.0);
  for (int iter = 0; iter < max_iters; ++iter) {
    for (std::size_t i = 0; i < n; ++i) powers[i] = power_at_temp(i, temps[i]);
    std::vector<double> next = Solve(powers);
    const double delta = util::MaxAbsDiffVec(next, temps);
    temps = std::move(next);
    if (delta < tol_c) {
      if (out_powers) *out_powers = std::move(powers);
      return temps;
    }
  }
  throw util::SolverError(
      "SteadyStateSolver::SolveWithFeedback: no convergence "
      "(thermal runaway?)");
}

const util::Matrix& SteadyStateSolver::InfluenceMatrix() const {
  if (!influence_) {
    DS_TELEM_SPAN("thermal", "influence_matrix_build",
                  ds::telemetry::TraceLevel::kSpan);
    DS_TELEM_TIMER("thermal.influence_build_us");
    const std::size_t n = model_->num_cores();
    auto a = std::make_unique<util::Matrix>(n, n);
    std::vector<double> rhs(model_->num_nodes(), 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      rhs.assign(model_->num_nodes(), 0.0);
      rhs[model_->DieNode(j)] = 1.0;
      const std::vector<double> t = lu_.Solve(rhs);
      for (std::size_t i = 0; i < n; ++i) (*a)(i, j) = t[model_->DieNode(i)];
    }
    influence_ = std::move(a);
  }
  return *influence_;
}

double SteadyStateSolver::PeakTempUniform(
    std::span<const std::size_t> active, double p_each) const {
  const util::Matrix& a = InfluenceMatrix();
  double worst = 0.0;
  // Peak is attained on an active core (A is diagonally dominant in the
  // die block), but scan all rows for robustness.
  for (std::size_t i = 0; i < model_->num_cores(); ++i) {
    double row_sum = 0.0;
    for (const std::size_t j : active) row_sum += a(i, j);
    worst = std::max(worst, row_sum);
  }
  return model_->ambient_c() + p_each * worst;
}

}  // namespace ds::thermal
