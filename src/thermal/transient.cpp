#include "thermal/transient.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "telemetry/scoped.hpp"
#include "thermal/steady_state.hpp"
#include "util/contracts.hpp"

namespace ds::thermal {
namespace {

bool AllFinite(std::span<const double> v) {
  for (const double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

/// kAuto resolution: DS_THERMAL_KERNEL=lu|propagator pins the kernel
/// for A/B runs; otherwise kAuto stays kAuto (lazy upgrade). The two
/// batch-ladder values are also understood here so one env var drives
/// the whole kernel ladder (lu -> propagator -> batch): "batch" means
/// the sweep engine forms lockstep cohorts eagerly, and for a lone
/// TransientSimulator it implies the eager propagator (the batch path's
/// underlying operator); "auto" keeps the lazy default at both levels.
StepKernel ResolveKernel(StepKernel requested) {
  if (requested != StepKernel::kAuto) return requested;
  // Read-only env lookup; nothing in this process calls setenv, so the
  // getenv data race concurrency-mt-unsafe guards against cannot occur.
  const char* env = std::getenv("DS_THERMAL_KERNEL");  // NOLINT(concurrency-mt-unsafe)
  if (env != nullptr) {
    const std::string_view name(env);
    if (name == "lu") return StepKernel::kLu;
    if (name == "propagator" || name == "batch")
      return StepKernel::kPropagator;
    if (name == "auto") return StepKernel::kAuto;
  }
  return StepKernel::kAuto;
}

}  // namespace

// dt_s is validated by the propagator / legacy system build below.
TransientSimulator::TransientSimulator(
    const RcModel& model, double dt_s, StepKernel kernel,
    std::shared_ptr<const PropagatorSet> shared)
    : model_(&model),
      dt_(dt_s),
      kernel_(ResolveKernel(kernel)),
      state_(model.num_nodes(), model.ambient_c()),
      scratch_(model.num_nodes(), 0.0),
      amb_rhs_(model.num_nodes(), 0.0) {
  DS_REQUIRE(dt_s > 0.0 && std::isfinite(dt_s),
             "TransientSimulator: step dt " << dt_s << " s must be positive");
  const auto& amb_g = model.ambient_conductance();
  for (std::size_t i = 0; i < amb_rhs_.size(); ++i)
    amb_rhs_[i] = amb_g[i] * model.ambient_c();

  if (kernel_ == StepKernel::kPropagator) {
    try {
      prop_ = shared != nullptr ? shared->For(model, dt_s)
                                : std::make_shared<const StepPropagator>(
                                      model, dt_s);
    } catch (const util::SolverError&) {
      // Degraded model (singular / non-finite fold): keep stepping on
      // the legacy factorization, which tolerates more and is the
      // baseline the fault-retry machinery reasons about.
      DS_TELEM_COUNT("thermal.kernel.lu_fallbacks", 1);
      ds::telemetry::EmitInstant("thermal", "propagator_fallback_lu",
                                 ds::telemetry::TraceLevel::kDecision);
      kernel_ = StepKernel::kLu;
    }
  } else if (kernel_ == StepKernel::kAuto) {
    // Lazy kAuto: pay only the cheap factorization now; fold the
    // propagator once this simulator has asked for enough steps to
    // amortize it (NoteAutoSteps).
    auto_pending_ = true;
    shared_ = std::move(shared);
    kernel_ = StepKernel::kLu;
  }
  if (kernel_ == StepKernel::kLu) BuildLegacyLu();
}

void TransientSimulator::NoteAutoSteps(std::size_t n) {
  if (!auto_pending_) return;
  auto_steps_ += n;
  if (auto_steps_ < kAutoUpgradeSteps) return;
  auto_pending_ = false;
  try {
    prop_ = shared_ != nullptr
                ? shared_->For(*model_, dt_)
                : std::make_shared<const StepPropagator>(*model_, dt_);
    kernel_ = StepKernel::kPropagator;
    DS_TELEM_COUNT("thermal.kernel.auto_upgrades", 1);
  } catch (const util::SolverError&) {
    // Fold failed on a degraded model: stay on the LU path for good.
    DS_TELEM_COUNT("thermal.kernel.lu_fallbacks", 1);
    ds::telemetry::EmitInstant("thermal", "propagator_fallback_lu",
                               ds::telemetry::TraceLevel::kDecision);
  }
  shared_.reset();
}

void TransientSimulator::BuildLegacyLu() {
  system_ = model_->conductance();
  for (std::size_t i = 0; i < model_->num_nodes(); ++i)
    system_(i, i) += model_->capacitance()[i] / dt_;
  system_lu_ = std::make_unique<util::LuFactorization>(system_);
}

void TransientSimulator::Reset() {
  state_.assign(model_->num_nodes(), model_->ambient_c());
  time_ = 0.0;
}

void TransientSimulator::InitializeSteadyState(
    std::span<const double> core_powers) {
  const SteadyStateSolver solver(*model_);
  state_ = solver.SolveFull(core_powers);
  time_ = 0.0;
}

bool TransientSimulator::InitializeSteadyStateRobust(
    std::span<const double> core_powers, bool inject_failure) {
  DS_TELEM_SPAN("thermal", "warm_start", ds::telemetry::TraceLevel::kSpan);
  try {
    if (inject_failure)
      throw util::SolverError(
          "InitializeSteadyStateRobust: injected non-convergence");
    const SteadyStateSolver solver(*model_);
    std::vector<double> solution = solver.SolveFull(core_powers);
    if (!AllFinite(solution))
      throw util::SolverError(
          "InitializeSteadyStateRobust: non-finite steady state");
    state_ = std::move(solution);
    time_ = 0.0;
    return false;
  } catch (const util::SolverError&) {
    // Retry with perturbed pivoting: regularizes a (near-)singular
    // conductance factorization at O(pivot_floor) accuracy cost.
    DS_TELEM_COUNT("thermal.solver_retries", 1);
    ds::telemetry::EmitInstant("thermal", "solver_retry",
                               ds::telemetry::TraceLevel::kDecision);
    const util::LuFactorization lu(model_->conductance(),
                                   /*pivot_floor=*/1e-10);
    std::vector<double> rhs = model_->ExpandPower(core_powers);
    const auto& amb_g = model_->ambient_conductance();
    const double t_amb = model_->ambient_c();
    for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] += amb_g[i] * t_amb;
    std::vector<double> solution = lu.Solve(rhs);
    if (!AllFinite(solution))
      throw util::SolverError(
          "InitializeSteadyStateRobust: steady-state solve failed even "
          "with perturbed pivoting");
    state_ = std::move(solution);
    time_ = 0.0;
    return true;
  }
}

void TransientSimulator::FillLegacyRhs(std::span<const double> core_powers) {
  const auto& cap = model_->capacitance();
  for (std::size_t i = 0; i < scratch_.size(); ++i)
    scratch_[i] = cap[i] / dt_ * state_[i] + amb_rhs_[i];
  for (std::size_t i = 0; i < model_->num_cores(); ++i)
    scratch_[model_->DieNode(i)] += core_powers[i];
}

void TransientSimulator::Step(std::span<const double> core_powers) {
  NoteAutoSteps(1);
  StepImpl(core_powers);
}

void TransientSimulator::StepImpl(std::span<const double> core_powers) {
  DS_REQUIRE(core_powers.size() == model_->num_cores(),
             "TransientSimulator::Step: " << core_powers.size()
                 << " powers for " << model_->num_cores() << " cores");
  DS_REQUIRE(AllFinite(core_powers),
             "TransientSimulator::Step: non-finite power input");
  DS_TELEM_COUNT("thermal.transient_steps", 1);
  DS_TELEM_TIMER("thermal.transient_step_us");
  if (prop_ != nullptr) {
    DS_TELEM_COUNT("thermal.kernel.propagator_steps", 1);
    prop_->Apply(state_, core_powers, scratch_);
  } else {
    DS_TELEM_COUNT("thermal.kernel.lu_steps", 1);
    FillLegacyRhs(core_powers);
    system_lu_->Solve(scratch_, state_);  // permute + triangular sweeps
  }
  // Both paths leave the new state in a member buffer; commit by
  // pointer swap so stepping never allocates.
  if (prop_ != nullptr) state_.swap(scratch_);
  time_ += dt_;
}

void TransientSimulator::StepN(std::span<const double> core_powers,
                               std::size_t n) {
  if (n == 0) return;
  NoteAutoSteps(n);
  if (prop_ != nullptr && n > 1) {
    StepHoldImpl(core_powers, n);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) StepImpl(core_powers);
}

void TransientSimulator::StepHold(std::span<const double> core_powers,
                                  std::size_t k) {
  NoteAutoSteps(k);
  StepHoldImpl(core_powers, k);
}

void TransientSimulator::StepHoldImpl(std::span<const double> core_powers,
                                      std::size_t k) {
  DS_REQUIRE(k >= 1, "TransientSimulator::StepHold: k must be >= 1");
  DS_REQUIRE(core_powers.size() == model_->num_cores(),
             "TransientSimulator::StepHold: " << core_powers.size()
                 << " powers for " << model_->num_cores() << " cores");
  DS_REQUIRE(AllFinite(core_powers),
             "TransientSimulator::StepHold: non-finite power input");
  if (prop_ == nullptr) {
    // Legacy path: the hold operators do not exist; degrade to the
    // step-by-step loop (identical semantics, no fast path).
    for (std::size_t i = 0; i < k; ++i) StepImpl(core_powers);
    return;
  }
  DS_TELEM_COUNT("thermal.kernel.hold_calls", 1);
  DS_TELEM_COUNT("thermal.kernel.hold_steps", k);
  DS_TELEM_TIMER("thermal.transient_hold_us");
  const std::shared_ptr<const StepPropagator::HoldOperator> hold =
      prop_->Hold(k);
  prop_->ApplyHold(*hold, state_, core_powers, scratch_);
  state_.swap(scratch_);
  time_ += static_cast<double>(k) * dt_;
}

std::vector<double> TransientSimulator::DieTemps() const {
  return {state_.begin(),
          state_.begin() + static_cast<std::ptrdiff_t>(model_->num_cores())};
}

double TransientSimulator::PeakDieTemp() const {
  double peak = state_[0];
  for (std::size_t i = 1; i < model_->num_cores(); ++i)
    peak = std::max(peak, state_[i]);
  return peak;
}

}  // namespace ds::thermal
