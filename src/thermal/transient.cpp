#include "thermal/transient.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/scoped.hpp"
#include "thermal/steady_state.hpp"
#include "util/contracts.hpp"

namespace ds::thermal {
namespace {

util::Matrix BuildSystem(const RcModel& model, double dt) {
  DS_REQUIRE(dt > 0.0 && std::isfinite(dt),
             "TransientSimulator: step dt " << dt << " s must be positive");
  util::Matrix m = model.conductance();
  for (std::size_t i = 0; i < model.num_nodes(); ++i)
    m(i, i) += model.capacitance()[i] / dt;
  return m;
}

bool AllFinite(std::span<const double> v) {
  for (const double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

}  // namespace

// dt_s is validated by BuildSystem() in the initializer list below.
// ds_lint: allow(missing-contract)
TransientSimulator::TransientSimulator(const RcModel& model, double dt_s)
    : model_(&model),
      dt_(dt_s),
      system_(BuildSystem(model, dt_s)),
      system_lu_(system_),
      state_(model.num_nodes(), model.ambient_c()),
      amb_rhs_(model.num_nodes(), 0.0) {
  const auto& amb_g = model.ambient_conductance();
  for (std::size_t i = 0; i < amb_rhs_.size(); ++i)
    amb_rhs_[i] = amb_g[i] * model.ambient_c();
}

void TransientSimulator::Reset() {
  state_.assign(model_->num_nodes(), model_->ambient_c());
  time_ = 0.0;
}

void TransientSimulator::InitializeSteadyState(
    std::span<const double> core_powers) {
  const SteadyStateSolver solver(*model_);
  state_ = solver.SolveFull(core_powers);
  time_ = 0.0;
}

bool TransientSimulator::InitializeSteadyStateRobust(
    std::span<const double> core_powers, bool inject_failure) {
  DS_TELEM_SPAN("thermal", "warm_start", ds::telemetry::TraceLevel::kSpan);
  try {
    if (inject_failure)
      throw util::SolverError(
          "InitializeSteadyStateRobust: injected non-convergence");
    const SteadyStateSolver solver(*model_);
    std::vector<double> solution = solver.SolveFull(core_powers);
    if (!AllFinite(solution))
      throw util::SolverError(
          "InitializeSteadyStateRobust: non-finite steady state");
    state_ = std::move(solution);
    time_ = 0.0;
    return false;
  } catch (const util::SolverError&) {
    // Retry with perturbed pivoting: regularizes a (near-)singular
    // conductance factorization at O(pivot_floor) accuracy cost.
    DS_TELEM_COUNT("thermal.solver_retries", 1);
    ds::telemetry::EmitInstant("thermal", "solver_retry",
                               ds::telemetry::TraceLevel::kDecision);
    const util::LuFactorization lu(model_->conductance(),
                                   /*pivot_floor=*/1e-10);
    std::vector<double> rhs = model_->ExpandPower(core_powers);
    const auto& amb_g = model_->ambient_conductance();
    const double t_amb = model_->ambient_c();
    for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] += amb_g[i] * t_amb;
    std::vector<double> solution = lu.Solve(rhs);
    if (!AllFinite(solution))
      throw util::SolverError(
          "InitializeSteadyStateRobust: steady-state solve failed even "
          "with perturbed pivoting");
    state_ = std::move(solution);
    time_ = 0.0;
    return true;
  }
}

void TransientSimulator::Step(std::span<const double> core_powers) {
  DS_REQUIRE(core_powers.size() == model_->num_cores(),
             "TransientSimulator::Step: " << core_powers.size()
                 << " powers for " << model_->num_cores() << " cores");
  DS_REQUIRE(AllFinite(core_powers),
             "TransientSimulator::Step: non-finite power input");
  DS_TELEM_COUNT("thermal.transient_steps", 1);
  DS_TELEM_TIMER("thermal.transient_step_us");
  std::vector<double> rhs(model_->num_nodes());
  const auto& cap = model_->capacitance();
  for (std::size_t i = 0; i < rhs.size(); ++i)
    rhs[i] = cap[i] / dt_ * state_[i] + amb_rhs_[i];
  for (std::size_t i = 0; i < model_->num_cores(); ++i)
    rhs[model_->DieNode(i)] += core_powers[i];
  system_lu_.SolveInPlace(rhs);
  state_ = std::move(rhs);
  time_ += dt_;
}

void TransientSimulator::StepN(std::span<const double> core_powers,
                               std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) Step(core_powers);
}

std::vector<double> TransientSimulator::DieTemps() const {
  return {state_.begin(),
          state_.begin() + static_cast<std::ptrdiff_t>(model_->num_cores())};
}

double TransientSimulator::PeakDieTemp() const {
  double peak = state_[0];
  for (std::size_t i = 1; i < model_->num_cores(); ++i)
    peak = std::max(peak, state_[i]);
  return peak;
}

}  // namespace ds::thermal
