#include "thermal/transient.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "thermal/steady_state.hpp"

namespace ds::thermal {
namespace {

util::Matrix BuildSystem(const RcModel& model, double dt) {
  if (dt <= 0.0)
    throw std::invalid_argument("TransientSimulator: dt must be positive");
  util::Matrix m = model.conductance();
  for (std::size_t i = 0; i < model.num_nodes(); ++i)
    m(i, i) += model.capacitance()[i] / dt;
  return m;
}

}  // namespace

TransientSimulator::TransientSimulator(const RcModel& model, double dt_s)
    : model_(&model),
      dt_(dt_s),
      system_(BuildSystem(model, dt_s)),
      system_lu_(system_),
      state_(model.num_nodes(), model.ambient_c()),
      amb_rhs_(model.num_nodes(), 0.0) {
  const auto& amb_g = model.ambient_conductance();
  for (std::size_t i = 0; i < amb_rhs_.size(); ++i)
    amb_rhs_[i] = amb_g[i] * model.ambient_c();
}

void TransientSimulator::Reset() {
  state_.assign(model_->num_nodes(), model_->ambient_c());
  time_ = 0.0;
}

void TransientSimulator::InitializeSteadyState(
    std::span<const double> core_powers) {
  const SteadyStateSolver solver(*model_);
  state_ = solver.SolveFull(core_powers);
  time_ = 0.0;
}

void TransientSimulator::Step(std::span<const double> core_powers) {
  assert(core_powers.size() == model_->num_cores());
  std::vector<double> rhs(model_->num_nodes());
  const auto& cap = model_->capacitance();
  for (std::size_t i = 0; i < rhs.size(); ++i)
    rhs[i] = cap[i] / dt_ * state_[i] + amb_rhs_[i];
  for (std::size_t i = 0; i < model_->num_cores(); ++i)
    rhs[model_->DieNode(i)] += core_powers[i];
  system_lu_.SolveInPlace(rhs);
  state_ = std::move(rhs);
  time_ += dt_;
}

void TransientSimulator::StepN(std::span<const double> core_powers,
                               std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) Step(core_powers);
}

std::vector<double> TransientSimulator::DieTemps() const {
  return {state_.begin(),
          state_.begin() + static_cast<std::ptrdiff_t>(model_->num_cores())};
}

double TransientSimulator::PeakDieTemp() const {
  double peak = state_[0];
  for (std::size_t i = 1; i < model_->num_cores(); ++i)
    peak = std::max(peak, state_[i]);
  return peak;
}

}  // namespace ds::thermal
