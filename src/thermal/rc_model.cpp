#include "thermal/rc_model.hpp"

#include <cmath>
#include <stdexcept>

#include "util/contracts.hpp"

namespace ds::thermal {
namespace {

constexpr double kMmToM = 1e-3;

/// Every layer parameter enters a conductance or capacitance as a
/// positive factor; zero or negative values build a singular (or
/// outright wrong) network that HotSpot-style solvers accept silently.
void ValidatePackage(const PackageParams& p) {
  const struct {
    const char* name;
    double value;
  } positives[] = {
      {"die_thickness", p.die_thickness},
      {"die_conductivity", p.die_conductivity},
      {"die_specific_heat", p.die_specific_heat},
      {"tim_thickness", p.tim_thickness},
      {"tim_conductivity", p.tim_conductivity},
      {"tim_specific_heat", p.tim_specific_heat},
      {"spreader_side", p.spreader_side},
      {"spreader_thickness", p.spreader_thickness},
      {"spreader_conductivity", p.spreader_conductivity},
      {"spreader_specific_heat", p.spreader_specific_heat},
      {"sink_side", p.sink_side},
      {"sink_thickness", p.sink_thickness},
      {"sink_conductivity", p.sink_conductivity},
      {"sink_specific_heat", p.sink_specific_heat},
      {"convection_resistance", p.convection_resistance},
      {"convection_capacitance", p.convection_capacitance},
  };
  for (const auto& field : positives) {
    DS_REQUIRE(field.value > 0.0 && std::isfinite(field.value),
               "PackageParams::" << field.name << " = " << field.value
                                 << " must be positive and finite");
  }
  DS_REQUIRE(std::isfinite(p.ambient_c),
             "PackageParams::ambient_c = " << p.ambient_c);
}

/// Conductance of two stacked half-slabs of area `a`.
double VerticalG(double a, double t1, double k1, double t2, double k2) {
  return a / (t1 / (2.0 * k1) + t2 / (2.0 * k2));
}

/// Lateral conductance through a slab of thickness `t`, conductivity `k`,
/// shared edge `edge` and centre distance `dist`.
double LateralG(double t, double k, double edge, double dist) {
  return k * t * edge / dist;
}

}  // namespace

RcModel::RcModel(const Floorplan& fp, const PackageParams& pkg)
    : fp_(fp),
      pkg_(pkg),
      num_cores_(fp.num_cores()),
      num_nodes_(4 * fp.num_cores() + 12),
      g_(num_nodes_, num_nodes_),
      cap_(num_nodes_, 0.0),
      amb_g_(num_nodes_, 0.0) {
  DS_REQUIRE(num_cores_ > 0, "RcModel: floorplan has no cores");
  ValidatePackage(pkg);
  Build();
  CheckInvariants();
}

void RcModel::AddConductance(std::size_t a, std::size_t b, double g) {
  DS_INVARIANT(a < num_nodes_ && b < num_nodes_ && a != b,
               "RcModel::AddConductance: nodes " << a << "," << b
                                                 << " of " << num_nodes_);
  DS_INVARIANT(g > 0.0 && std::isfinite(g),
               "RcModel::AddConductance: conductance " << g
                   << " W/K between nodes " << a << " and " << b);
  g_(a, a) += g;
  g_(b, b) += g;
  g_(a, b) -= g;
  g_(b, a) -= g;
}

void RcModel::AddAmbient(std::size_t a, double g) {
  DS_INVARIANT(a < num_nodes_,
               "RcModel::AddAmbient: node " << a << " of " << num_nodes_);
  DS_INVARIANT(g > 0.0 && std::isfinite(g),
               "RcModel::AddAmbient: conductance " << g << " W/K at node "
                                                   << a);
  g_(a, a) += g;
  amb_g_[a] += g;
}

void RcModel::CheckInvariants() const {
  // A well-formed conductance matrix is symmetric with positive
  // diagonal, non-positive off-diagonal, and each row's diagonal equals
  // the sum of its off-diagonal magnitudes plus the ambient conductance
  // (weak diagonal dominance, strict on rows touching the ambient) --
  // the structure the LU solver and the TSP influence-matrix bounds
  // rely on. One O(nodes^2) pass at construction.
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    const double diag = g_(i, i);
    DS_INVARIANT(diag > 0.0 && std::isfinite(diag),
                 "RcModel: diagonal " << diag << " at node " << i);
    double off_sum = 0.0;
    for (std::size_t j = 0; j < num_nodes_; ++j) {
      if (j == i) continue;
      DS_INVARIANT(g_(i, j) <= 0.0, "RcModel: positive off-diagonal "
                                        << g_(i, j) << " at (" << i << ","
                                        << j << ")");
      off_sum -= g_(i, j);
    }
    DS_INVARIANT(std::abs(diag - (off_sum + amb_g_[i])) <= 1e-9 * diag,
                 "RcModel: row " << i << " not diagonally dominant: diag "
                                 << diag << " vs off-diagonal " << off_sum
                                 << " + ambient " << amb_g_[i]);
    DS_INVARIANT(cap_[i] > 0.0 && std::isfinite(cap_[i]),
                 "RcModel: capacitance " << cap_[i] << " at node " << i);
  }
  DS_INVARIANT(g_.IsSymmetric(1e-9),
               "RcModel: conductance matrix is not symmetric");
}

void RcModel::Build() {
  const double w = fp_.core_width_mm() * kMmToM;   // tile width (x)
  const double h = fp_.core_height_mm() * kMmToM;  // tile height (y)
  const double die_w = fp_.die_width_mm() * kMmToM;
  const double die_h = fp_.die_height_mm() * kMmToM;
  const double spr = pkg_.spreader_side;
  const double snk = pkg_.sink_side;

  const double ox = (spr - die_w) / 2.0;  // spreader overhang, x (W/E)
  const double oy = (spr - die_h) / 2.0;  // spreader overhang, y (N/S)
  if (ox <= 0.0 || oy <= 0.0)
    throw std::invalid_argument("RcModel: die does not fit on the spreader");
  const double ox2 = (snk - spr) / 2.0;
  const double oy2 = (snk - spr) / 2.0;
  if (ox2 <= 0.0)
    throw std::invalid_argument("RcModel: spreader does not fit on the sink");

  const double tile_area = w * h;
  const std::size_t rows = fp_.rows();
  const std::size_t cols = fp_.cols();

  // --- Vertical stack per tile: die -> TIM -> spreader -> sink.
  for (std::size_t i = 0; i < num_cores_; ++i) {
    AddConductance(DieNode(i), TimNode(i),
                   VerticalG(tile_area, pkg_.die_thickness,
                             pkg_.die_conductivity, pkg_.tim_thickness,
                             pkg_.tim_conductivity));
    AddConductance(TimNode(i), SpreaderNode(i),
                   VerticalG(tile_area, pkg_.tim_thickness,
                             pkg_.tim_conductivity, pkg_.spreader_thickness,
                             pkg_.spreader_conductivity));
    AddConductance(SpreaderNode(i), SinkNode(i),
                   VerticalG(tile_area, pkg_.spreader_thickness,
                             pkg_.spreader_conductivity, pkg_.sink_thickness,
                             pkg_.sink_conductivity));
  }

  // --- Lateral conduction inside the gridded layers.
  struct LayerLateral {
    double thickness;
    double conductivity;
    std::size_t base;  // node index of core 0 in that layer
  };
  const LayerLateral laterals[] = {
      {pkg_.die_thickness, pkg_.die_conductivity, DieNode(0)},
      {pkg_.tim_thickness, pkg_.tim_conductivity, TimNode(0)},
      {pkg_.spreader_thickness, pkg_.spreader_conductivity, SpreaderNode(0)},
      {pkg_.sink_thickness, pkg_.sink_conductivity, SinkNode(0)},
  };
  for (const auto& layer : laterals) {
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        const std::size_t i = fp_.IndexOf(r, c);
        if (c + 1 < cols) {  // east neighbour
          AddConductance(layer.base + i, layer.base + fp_.IndexOf(r, c + 1),
                         LateralG(layer.thickness, layer.conductivity, h, w));
        }
        if (r + 1 < rows) {  // south neighbour
          AddConductance(layer.base + i, layer.base + fp_.IndexOf(r + 1, c),
                         LateralG(layer.thickness, layer.conductivity, w, h));
        }
      }
    }
  }

  // --- Border strips. Sides are 0=N (row 0), 1=S, 2=W (col 0), 3=E.
  // North/south strips span the parent's full width (absorbing corners);
  // west/east strips span only the die/spreader height, so the strip
  // areas exactly partition each overhang annulus.
  const double spr_strip_area[4] = {spr * oy, spr * oy, ox * die_h,
                                    ox * die_h};
  const double snk_outer_area[4] = {snk * oy2, snk * oy2, ox2 * spr,
                                    ox2 * spr};

  // Spreader grid edge cells <-> spreader border; sink grid edge cells
  // <-> sink inner border (same geometry, different layer constants).
  struct EdgeLayer {
    double thickness;
    double conductivity;
    std::size_t grid_base;
    std::size_t border_base;  // first of the 4 border nodes
  };
  const EdgeLayer edge_layers[] = {
      {pkg_.spreader_thickness, pkg_.spreader_conductivity, SpreaderNode(0),
       SpreaderBorderNode(0)},
      {pkg_.sink_thickness, pkg_.sink_conductivity, SinkNode(0),
       SinkInnerBorderNode(0)},
  };
  for (const auto& el : edge_layers) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double g_ns = LateralG(el.thickness, el.conductivity, w,
                                   h / 2.0 + oy / 2.0);
      AddConductance(el.grid_base + fp_.IndexOf(0, c), el.border_base + 0,
                     g_ns);  // north
      AddConductance(el.grid_base + fp_.IndexOf(rows - 1, c),
                     el.border_base + 1, g_ns);  // south
    }
    for (std::size_t r = 0; r < rows; ++r) {
      const double g_we = LateralG(el.thickness, el.conductivity, h,
                                   w / 2.0 + ox / 2.0);
      AddConductance(el.grid_base + fp_.IndexOf(r, 0), el.border_base + 2,
                     g_we);  // west
      AddConductance(el.grid_base + fp_.IndexOf(r, cols - 1),
                     el.border_base + 3, g_we);  // east
    }
  }

  // Spreader border -> sink inner border (vertical, strip area).
  for (std::size_t s = 0; s < 4; ++s) {
    AddConductance(SpreaderBorderNode(s), SinkInnerBorderNode(s),
                   VerticalG(spr_strip_area[s], pkg_.spreader_thickness,
                             pkg_.spreader_conductivity, pkg_.sink_thickness,
                             pkg_.sink_conductivity));
  }

  // Sink inner border -> sink outer border (lateral).
  const double inner_edge[4] = {spr, spr, die_h, die_h};
  const double inner_halfwidth[4] = {oy / 2.0, oy / 2.0, ox / 2.0, ox / 2.0};
  for (std::size_t s = 0; s < 4; ++s) {
    const double dist = inner_halfwidth[s] + (s < 2 ? oy2 : ox2) / 2.0;
    AddConductance(SinkInnerBorderNode(s), SinkOuterBorderNode(s),
                   LateralG(pkg_.sink_thickness, pkg_.sink_conductivity,
                            inner_edge[s], dist));
  }

  // --- Convection to the ambient, distributed over the sink by area.
  const double sink_area = snk * snk;
  const double g_conv_total = 1.0 / pkg_.convection_resistance;
  auto conv_share = [&](double area) { return area / sink_area; };
  for (std::size_t i = 0; i < num_cores_; ++i)
    AddAmbient(SinkNode(i), conv_share(tile_area) * g_conv_total);
  for (std::size_t s = 0; s < 4; ++s) {
    AddAmbient(SinkInnerBorderNode(s),
               conv_share(spr_strip_area[s]) * g_conv_total);
    AddAmbient(SinkOuterBorderNode(s),
               conv_share(snk_outer_area[s]) * g_conv_total);
  }

  // --- Thermal capacitances (volume * volumetric specific heat), plus
  // the convection capacitance distributed like the convection R.
  for (std::size_t i = 0; i < num_cores_; ++i) {
    cap_[DieNode(i)] =
        tile_area * pkg_.die_thickness * pkg_.die_specific_heat;
    cap_[TimNode(i)] =
        tile_area * pkg_.tim_thickness * pkg_.tim_specific_heat;
    cap_[SpreaderNode(i)] = tile_area * pkg_.spreader_thickness *
                            pkg_.spreader_specific_heat;
    cap_[SinkNode(i)] =
        tile_area * pkg_.sink_thickness * pkg_.sink_specific_heat +
        conv_share(tile_area) * pkg_.convection_capacitance;
  }
  for (std::size_t s = 0; s < 4; ++s) {
    cap_[SpreaderBorderNode(s)] = spr_strip_area[s] *
                                  pkg_.spreader_thickness *
                                  pkg_.spreader_specific_heat;
    cap_[SinkInnerBorderNode(s)] =
        spr_strip_area[s] * pkg_.sink_thickness * pkg_.sink_specific_heat +
        conv_share(spr_strip_area[s]) * pkg_.convection_capacitance;
    cap_[SinkOuterBorderNode(s)] =
        snk_outer_area[s] * pkg_.sink_thickness * pkg_.sink_specific_heat +
        conv_share(snk_outer_area[s]) * pkg_.convection_capacitance;
  }
}

std::vector<double> RcModel::ExpandPower(
    std::span<const double> core_powers) const {
  DS_REQUIRE(core_powers.size() == num_cores_,
             "RcModel::ExpandPower: " << core_powers.size() << " powers for "
                                      << num_cores_ << " cores");
  std::vector<double> p(num_nodes_, 0.0);
  for (std::size_t i = 0; i < num_cores_; ++i) p[DieNode(i)] = core_powers[i];
  return p;
}

}  // namespace ds::thermal
