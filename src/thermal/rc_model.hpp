// Compact layered thermal RC network (HotSpot methodology, Huang et al.
// TVLSI'06) with the package parameters of the paper's Sec. 2.1.
//
// Stack (top of the heat path is the ambient):
//
//        ambient (fixed temperature, eliminated from the system)
//           |  convection R/C, distributed over the sink bottom by area
//        heat sink         60 x 60 x 6.9 mm,  k = 400, c = 3.55e6
//        heat spreader     30 x 30 x 1 mm,    k = 400, c = 3.55e6
//        interface (TIM)   die-sized, 20 um,  k = 4,   c = 4e6
//        silicon die       die-sized, 0.15 mm, k = 100, c = 1.75e6
//           ^  per-core power injection
//
// Discretization: one node per core tile in the die, TIM, spreader and
// sink layers, plus 4 border nodes for the spreader overhang beyond the
// die, 4 for the sink region under that overhang, and 4 for the sink
// region beyond the spreader -- 4*N + 12 nodes for an N-core chip.
// North/south border strips span the full parent width (they absorb the
// corners); east/west strips span the die/spreader height, exactly
// partitioning each overhang area.
#pragma once

#include <cstddef>
#include <vector>

#include "thermal/floorplan.hpp"
#include "util/matrix.hpp"

namespace ds::thermal {

/// Package and material constants. Defaults are the paper's HotSpot
/// configuration, verbatim from Sec. 2.1 (SI units).
struct PackageParams {
  double die_thickness = 0.15e-3;        // [m]
  double die_conductivity = 100.0;       // [W/(m K)]
  double die_specific_heat = 1.75e6;     // [J/(m^3 K)]

  double tim_thickness = 20e-6;          // [m]
  double tim_conductivity = 4.0;         // [W/(m K)]
  double tim_specific_heat = 4e6;        // [J/(m^3 K)]

  double spreader_side = 0.03;           // [m] (3 x 3 cm)
  double spreader_thickness = 1e-3;      // [m]
  double spreader_conductivity = 400.0;  // [W/(m K)]
  double spreader_specific_heat = 3.55e6;

  double sink_side = 0.06;               // [m] (6 x 6 cm)
  double sink_thickness = 6.9e-3;        // [m]
  double sink_conductivity = 400.0;      // [W/(m K)]
  double sink_specific_heat = 3.55e6;

  double convection_resistance = 0.1;    // [K/W]
  double convection_capacitance = 140.4; // [J/K]

  double ambient_c = 38.0;               // [C] see power::kAmbientC
};

/// The assembled network: conductance matrix G [W/K], per-node thermal
/// capacitance [J/K], and per-node conductance to the ambient.
class RcModel {
 public:
  /// Builds the network for `fp`. Throws std::invalid_argument if the die
  /// does not fit on the spreader or the spreader on the sink.
  explicit RcModel(const Floorplan& fp, const PackageParams& pkg = {});

  std::size_t num_cores() const { return num_cores_; }
  std::size_t num_nodes() const { return num_nodes_; }
  const Floorplan& floorplan() const { return fp_; }
  const PackageParams& package() const { return pkg_; }

  /// Node indices per layer.
  std::size_t DieNode(std::size_t core) const { return core; }
  std::size_t TimNode(std::size_t core) const { return num_cores_ + core; }
  std::size_t SpreaderNode(std::size_t core) const {
    return 2 * num_cores_ + core;
  }
  std::size_t SpreaderBorderNode(std::size_t side) const {  // 0..3 = N,S,W,E
    return 3 * num_cores_ + side;
  }
  std::size_t SinkNode(std::size_t core) const {
    return 3 * num_cores_ + 4 + core;
  }
  std::size_t SinkInnerBorderNode(std::size_t side) const {
    return 4 * num_cores_ + 4 + side;
  }
  std::size_t SinkOuterBorderNode(std::size_t side) const {
    return 4 * num_cores_ + 8 + side;
  }

  const util::Matrix& conductance() const { return g_; }
  const std::vector<double>& capacitance() const { return cap_; }
  const std::vector<double>& ambient_conductance() const { return amb_g_; }
  double ambient_c() const { return pkg_.ambient_c; }

  /// Full-length power vector from per-core powers (injected at die
  /// nodes, zero elsewhere). Requires core_powers.size() == num_cores().
  std::vector<double> ExpandPower(std::span<const double> core_powers) const;

 private:
  void Build();
  void CheckInvariants() const;
  void AddConductance(std::size_t a, std::size_t b, double g);
  void AddAmbient(std::size_t a, double g);

  Floorplan fp_;
  PackageParams pkg_;
  std::size_t num_cores_;
  std::size_t num_nodes_;
  util::Matrix g_;
  std::vector<double> cap_;
  std::vector<double> amb_g_;
};

}  // namespace ds::thermal
