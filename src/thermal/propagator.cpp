#include "thermal/propagator.hpp"

#include <cmath>
#include <set>
#include <utility>

#include "telemetry/scoped.hpp"
#include "util/contracts.hpp"
#include "util/kernels.hpp"
#include "util/lu.hpp"

namespace ds::thermal {
namespace {

bool AllFinite(std::span<const double> v) {
  for (const double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

util::Matrix Transposed(const util::Matrix& a) {
  util::Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row(i).data();
    for (std::size_t c = 0; c < a.cols(); ++c) t(c, i) = row[c];
  }
  return t;
}

}  // namespace

StepPropagator::StepPropagator(const RcModel& model, double dt_s)
    : model_(&model), dt_(dt_s) {
  DS_REQUIRE(dt_s > 0.0 && std::isfinite(dt_s),
             "StepPropagator: step dt " << dt_s << " s must be positive");
  DS_TELEM_COUNT("thermal.propagator_builds", 1);
  DS_TELEM_TIMER("thermal.propagator_build_us");
  const std::size_t n = model.num_nodes();
  const std::size_t cores = model.num_cores();
  const std::vector<double>& cap = model.capacitance();

  // Factor A = G + C/dt and fold A^-1 out of one blocked multi-RHS
  // solve on the identity.
  util::Matrix system = model.conductance();
  for (std::size_t i = 0; i < n; ++i) system(i, i) += cap[i] / dt_s;
  const util::LuFactorization lu(system);
  util::Matrix inverse = util::Matrix::Identity(n);
  lu.SolveMany(&inverse);
  DS_ENSURE(AllFinite(inverse.data()),
            "StepPropagator: non-finite step operator (ill-conditioned "
            "system matrix)");

  // M_in: the die-node columns of A^-1, captured before the column
  // scaling below turns A^-1 into M_state.
  m_in_ = util::Matrix(n, cores);
  for (std::size_t j = 0; j < cores; ++j) {
    const std::size_t col = model.DieNode(j);
    for (std::size_t i = 0; i < n; ++i) m_in_(i, j) = inverse(i, col);
  }

  // c_amb = A^-1 (g_amb T_amb).
  const std::vector<double>& amb_g = model.ambient_conductance();
  const double t_amb = model.ambient_c();
  std::vector<double> amb_rhs(n);
  for (std::size_t i = 0; i < n; ++i) amb_rhs[i] = amb_g[i] * t_amb;
  c_amb_.assign(n, 0.0);
  util::Gemv(inverse, amb_rhs, c_amb_);

  // M_state = A^-1 diag(C/dt): scale column i by cap_i/dt in place.
  for (std::size_t i = 0; i < n; ++i) {
    double* row = inverse.row(i).data();
    for (std::size_t c = 0; c < n; ++c) row[c] *= cap[c] / dt_s;
  }
  m_state_ = std::move(inverse);
}

void StepPropagator::Apply(std::span<const double> state,
                           std::span<const double> core_powers,
                           std::span<double> out) const {
  DS_REQUIRE(out.data() != state.data(),
             "StepPropagator::Apply: out must not alias state");
  // out = M_state state; out += M_in P; out += c_amb. Shape checks
  // live in the kernels.
  util::Gemv(m_state_, state, out);
  util::GemvAdd(m_in_, core_powers, out);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += c_amb_[i];
}

void StepPropagator::ApplyHold(const HoldOperator& hold,
                               std::span<const double> state,
                               std::span<const double> core_powers,
                               std::span<double> out) const {
  DS_REQUIRE(out.data() != state.data(),
             "StepPropagator::ApplyHold: out must not alias state");
  util::Gemv(hold.t_op, state, out);
  util::GemvAdd(hold.in_op, core_powers, out);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += hold.amb_op[i];
}

const util::Matrix& StepPropagator::state_operator_t() const {
  const ds::MutexLock lock(hold_mu_);
  if (m_state_t_.rows() == 0) {
    DS_TELEM_TIMER("thermal.operator_transpose_us");
    m_state_t_ = Transposed(m_state_);
    m_in_t_ = Transposed(m_in_);
  }
  return m_state_t_;
}

const util::Matrix& StepPropagator::input_operator_t() const {
  const ds::MutexLock lock(hold_mu_);
  if (m_state_t_.rows() == 0) {
    DS_TELEM_TIMER("thermal.operator_transpose_us");
    m_state_t_ = Transposed(m_state_);
    m_in_t_ = Transposed(m_in_);
  }
  return m_in_t_;
}

StepPropagator::HoldOperator StepPropagator::Compose(
    const HoldOperator& b, const HoldOperator& a) const {
  HoldOperator out;
  out.k = a.k + b.k;
  out.t_op = util::Matrix(m_state_.rows(), m_state_.cols());
  util::Gemm(b.t_op, a.t_op, &out.t_op);
  out.in_op = b.in_op;  // start from B2, accumulate A2 B1
  util::GemmAdd(b.t_op, a.in_op, &out.in_op);
  out.amb_op = b.amb_op;
  util::GemvAdd(b.t_op, a.amb_op, out.amb_op);
  return out;
}

std::shared_ptr<const StepPropagator::HoldOperator> StepPropagator::Hold(
    std::size_t k, bool for_batch) const {
  DS_REQUIRE(k >= 1, "StepPropagator::Hold: k must be >= 1");
  // Fills the batch-path transposes exactly once, in place, under
  // hold_mu_. Safe even when the operator is already shared: GEMV-path
  // readers never touch the *_t members, and every batch reader gets
  // its pointer from a Hold(k, true) call that happens-after the fill.
  const auto ensure_transposes = [](HoldOperator* hold) {
    if (hold->t_op_t.rows() != 0) return;
    DS_TELEM_TIMER("thermal.operator_transpose_us");
    hold->t_op_t = Transposed(hold->t_op);
    hold->in_op_t = Transposed(hold->in_op);
  };
  const ds::MutexLock lock(hold_mu_);
  const auto it = holds_.find(k);
  if (it != holds_.end()) {
    DS_TELEM_COUNT("thermal.hold_op_hits", 1);
    if (for_batch) ensure_transposes(it->second.get());
    return it->second;
  }
  DS_TELEM_COUNT("thermal.hold_op_builds", 1);
  DS_TELEM_TIMER("thermal.hold_op_build_us");
  if (pow2_.empty()) {
    auto one = std::make_shared<HoldOperator>();
    one->k = 1;
    one->t_op = m_state_;
    one->in_op = m_in_;
    one->amb_op = c_amb_;
    pow2_.push_back(std::move(one));
  }
  // Binary powering over the memoized power-of-two chain. All factors
  // are powers of one affine map, so composition order is immaterial.
  std::shared_ptr<HoldOperator> acc;
  std::size_t bits = k;
  std::size_t level = 0;
  while (bits != 0) {
    while (level >= pow2_.size()) {
      const HoldOperator& prev = *pow2_.back();
      pow2_.push_back(std::make_shared<HoldOperator>(Compose(prev, prev)));
    }
    if ((bits & 1u) != 0) {
      const HoldOperator& factor = *pow2_[level];
      if (acc == nullptr) {
        acc = std::make_shared<HoldOperator>(factor);
      } else {
        *acc = Compose(factor, *acc);
      }
    }
    bits >>= 1u;
    ++level;
  }
  if (for_batch) ensure_transposes(acc.get());
  holds_.emplace(k, acc);
  return acc;
}

std::shared_ptr<const StepPropagator> PropagatorSet::For(const RcModel& model,
                                                         double dt_s) const {
  const ds::MutexLock lock(mu_);
  if (model_ == nullptr) {
    model_ = &model;
  } else {
    DS_REQUIRE(model_ == &model,
               "PropagatorSet::For: set is tied to a different RcModel");
  }
  const auto it = by_dt_.find(dt_s);
  if (it != by_dt_.end()) {
    DS_TELEM_COUNT("thermal.propagator_hits", 1);
    return it->second;
  }
  auto built = std::make_shared<const StepPropagator>(model, dt_s);
  by_dt_.emplace(dt_s, built);
  return built;
}

std::size_t PropagatorSet::size() const {
  const ds::MutexLock lock(mu_);
  return by_dt_.size();
}

std::size_t StepPropagator::ApproxBytes() const {
  const auto operator_bytes = [](const HoldOperator& h) {
    return sizeof(double) * (h.t_op.rows() * h.t_op.cols() +
                             h.in_op.rows() * h.in_op.cols() +
                             h.amb_op.size() +
                             h.t_op_t.rows() * h.t_op_t.cols() +
                             h.in_op_t.rows() * h.in_op_t.cols());
  };
  std::size_t bytes =
      sizeof(double) * (m_state_.rows() * m_state_.cols() +
                        m_in_.rows() * m_in_.cols() + c_amb_.size());
  const ds::MutexLock lock(hold_mu_);
  bytes += sizeof(double) * (m_state_t_.rows() * m_state_t_.cols() +
                             m_in_t_.rows() * m_in_t_.cols());
  std::set<const HoldOperator*> seen;
  for (const auto& hold : pow2_)
    if (hold != nullptr && seen.insert(hold.get()).second)
      bytes += operator_bytes(*hold);
  for (const auto& [k, hold] : holds_) {
    (void)k;
    if (hold != nullptr && seen.insert(hold.get()).second)
      bytes += operator_bytes(*hold);
  }
  return bytes;
}

std::size_t PropagatorSet::ApproxBytes() const {
  std::vector<std::shared_ptr<const StepPropagator>> props;
  {
    const ds::MutexLock lock(mu_);
    props.reserve(by_dt_.size());
    for (const auto& [dt, prop] : by_dt_) {
      (void)dt;
      props.push_back(prop);
    }
  }
  // Summed outside mu_: StepPropagator::ApproxBytes takes the
  // propagator's own hold mutex, and For() may build under mu_.
  std::size_t bytes = 0;
  for (const auto& prop : props) bytes += prop->ApproxBytes();
  return bytes;
}

}  // namespace ds::thermal
