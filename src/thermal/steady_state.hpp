// Steady-state thermal solver and the die-to-die influence matrix.
//
// G T = P + g_amb T_amb, with G factored once per platform. Since the
// network is linear, die temperatures decompose as
//
//     T_die = T_amb * 1 + A * P_core
//
// where A[i][j] = dT_i/dP_j is the (symmetric, positive) influence
// matrix. TSP and the mapping policies in src/core are built directly on
// A: the peak temperature of any uniform-power mapping is a row-sum over
// the active set, which turns thermal feasibility checks into O(N^2)
// arithmetic instead of repeated linear solves.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "thermal/rc_model.hpp"
#include "util/lu.hpp"

namespace ds::thermal {

class SteadyStateSolver {
 public:
  /// Factors the conductance matrix of `model` (O(n^3), done once).
  /// The model must outlive the solver.
  explicit SteadyStateSolver(const RcModel& model);

  /// Die temperatures [C] for the given per-core powers [W].
  std::vector<double> Solve(std::span<const double> core_powers) const;

  /// All node temperatures [C] (die, TIM, spreader, sink, borders).
  std::vector<double> SolveFull(std::span<const double> core_powers) const;

  /// Steady state with temperature-dependent core power. `power_at_temp`
  /// maps (core index, core temperature) to that core's total power; the
  /// solver iterates power -> temperature to a fixed point.
  /// Returns die temperatures; `out_powers` (optional) receives the
  /// converged per-core powers. Throws util::SolverError if the
  /// iteration fails to converge (thermal runaway).
  std::vector<double> SolveWithFeedback(
      const std::function<double(std::size_t, double)>& power_at_temp,
      std::vector<double>* out_powers = nullptr, int max_iters = 50,
      double tol_c = 1e-4) const;

  /// Lazily computed influence matrix A (num_cores x num_cores).
  /// Thread-safe: concurrent first calls build A exactly once (solvers
  /// are shared across sweep jobs by runtime::ModelCache).
  const util::Matrix& InfluenceMatrix() const;

  /// Peak die temperature for a uniform power `p_each` on `active` cores
  /// (all other cores fully dark, zero power): closed form from A.
  double PeakTempUniform(std::span<const std::size_t> active,
                         double p_each) const;

  const RcModel& model() const { return *model_; }

 private:
  const RcModel* model_;
  util::LuFactorization lu_;
  mutable std::once_flag influence_once_;
  mutable std::unique_ptr<util::Matrix> influence_;  // lazy cache
};

}  // namespace ds::thermal
