#include "thermal/subcore.hpp"

#include <cmath>
#include <stdexcept>

#include "util/contracts.hpp"

namespace ds::thermal {
namespace {

Floorplan Refine(const Floorplan& fp, std::size_t k) {
  if (k == 0) throw std::invalid_argument("SubCoreModel: k must be >= 1");
  return Floorplan(fp.rows() * k, fp.cols() * k,
                   fp.core_width_mm() / static_cast<double>(k),
                   fp.core_height_mm() / static_cast<double>(k));
}

}  // namespace

SubCoreModel::SubCoreModel(const Floorplan& core_fp, std::size_t k,
                           std::vector<double> block_weights,
                           const PackageParams& pkg)
    : core_fp_(core_fp),
      k_(k),
      weights_(std::move(block_weights)),
      fine_fp_(Refine(core_fp, k)),
      rc_(fine_fp_, pkg),
      solver_(rc_) {
  if (weights_.size() != k * k)
    throw std::invalid_argument("SubCoreModel: need k*k block weights");
  double sum = 0.0;
  for (const double w : weights_) {
    if (w < 0.0)
      throw std::invalid_argument("SubCoreModel: negative block weight");
    sum += w;
  }
  if (std::abs(sum - 1.0) > 1e-9)
    throw std::invalid_argument("SubCoreModel: weights must sum to 1");
}

SubCoreModel SubCoreModel::Uniform(const Floorplan& core_fp, std::size_t k,
                                   const PackageParams& pkg) {
  return SubCoreModel(
      core_fp, k,
      std::vector<double>(k * k, 1.0 / static_cast<double>(k * k)), pkg);
}

SubCoreModel SubCoreModel::Default2x2(const Floorplan& core_fp,
                                      const PackageParams& pkg) {
  return SubCoreModel(core_fp, 2, {0.45, 0.25, 0.20, 0.10}, pkg);
}

std::vector<double> SubCoreModel::ExpandToBlocks(
    std::span<const double> core_powers) const {
  DS_REQUIRE(core_powers.size() == core_fp_.num_cores(),
             "SubCoreModel::ExpandToBlocks: " << core_powers.size()
                 << " powers for " << core_fp_.num_cores() << " cores");
  std::vector<double> block_powers(fine_fp_.num_cores(), 0.0);
  for (std::size_t core = 0; core < core_fp_.num_cores(); ++core) {
    const TilePos pos = core_fp_.PosOf(core);
    for (std::size_t br = 0; br < k_; ++br) {
      for (std::size_t bc = 0; bc < k_; ++bc) {
        const std::size_t fine =
            fine_fp_.IndexOf(pos.row * k_ + br, pos.col * k_ + bc);
        block_powers[fine] = core_powers[core] * weights_[br * k_ + bc];
      }
    }
  }
  return block_powers;
}

std::vector<double> SubCoreModel::CorePeakTemps(
    std::span<const double> core_powers) const {
  const std::vector<double> block_temps =
      solver_.Solve(ExpandToBlocks(core_powers));
  std::vector<double> peaks(core_fp_.num_cores(), 0.0);
  for (std::size_t core = 0; core < core_fp_.num_cores(); ++core) {
    const TilePos pos = core_fp_.PosOf(core);
    double peak = -1e300;
    for (std::size_t br = 0; br < k_; ++br) {
      for (std::size_t bc = 0; bc < k_; ++bc) {
        peak = std::max(peak,
                        block_temps[fine_fp_.IndexOf(pos.row * k_ + br,
                                                     pos.col * k_ + bc)]);
      }
    }
    peaks[core] = peak;
  }
  return peaks;
}

double SubCoreModel::PeakTemp(std::span<const double> core_powers) const {
  const std::vector<double> peaks = CorePeakTemps(core_powers);
  double m = -1e300;
  for (const double t : peaks) m = std::max(m, t);
  return m;
}

}  // namespace ds::thermal
