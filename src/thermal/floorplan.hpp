// Grid floorplans for homogeneous manycore chips.
//
// The paper's platforms are 100-, 198- and 361-core chips of identical
// out-of-order Alpha 21264 cores, so the floorplan is a regular grid of
// rectangular core tiles; the generator picks the most square rows x cols
// factorization (100 = 10x10, 198 = 11x18, 361 = 19x19).
#pragma once

#include <cstddef>
#include <vector>

namespace ds::thermal {

/// Position of a core tile in the grid.
struct TilePos {
  std::size_t row;
  std::size_t col;
};

class Floorplan {
 public:
  /// rows x cols tiles, each core_w x core_h millimetres.
  /// Throws std::invalid_argument on zero dimensions.
  Floorplan(std::size_t rows, std::size_t cols, double core_w_mm,
            double core_h_mm);

  /// Builds a near-square grid for `num_cores` square tiles of
  /// `core_area_mm2` each. Throws if num_cores has no factorization
  /// with aspect ratio <= 4 (keeps dies physically plausible).
  static Floorplan MakeGrid(std::size_t num_cores, double core_area_mm2);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t num_cores() const { return rows_ * cols_; }

  double core_width_mm() const { return core_w_; }
  double core_height_mm() const { return core_h_; }
  double core_area_mm2() const { return core_w_ * core_h_; }

  double die_width_mm() const { return core_w_ * static_cast<double>(cols_); }
  double die_height_mm() const { return core_h_ * static_cast<double>(rows_); }
  double die_area_mm2() const { return die_width_mm() * die_height_mm(); }

  std::size_t IndexOf(std::size_t row, std::size_t col) const {
    return row * cols_ + col;
  }
  TilePos PosOf(std::size_t core) const {
    return {core / cols_, core % cols_};
  }

  /// Centre coordinates of a core tile [mm], origin at die corner.
  double CenterX(std::size_t core) const;
  double CenterY(std::size_t core) const;

  /// 4-neighbourhood (N/S/E/W) core indices.
  std::vector<std::size_t> Neighbors(std::size_t core) const;

  /// Euclidean centre-to-centre distance between two cores [mm].
  double Distance(std::size_t a, std::size_t b) const;

  /// Manhattan distance in tiles.
  std::size_t TileDistance(std::size_t a, std::size_t b) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  double core_w_;
  double core_h_;
};

}  // namespace ds::thermal
