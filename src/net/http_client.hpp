// Minimal blocking HTTP/1.1 client for loopback use: `darksilicon
// submit`, bench_serve's concurrent clients, and the tests. One
// request per connection (matching the server's Connection: close
// policy); response bodies are decoded from chunked or Content-Length
// framing and can be consumed incrementally via a sink callback --
// that is how a submit client renders rows as the daemon streams them.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ds::net {

struct ClientResponse {
  int status_code = 0;       // 0 only if the response line was unparsable
  std::string status_line;   // e.g. "HTTP/1.1 429 Too Many Requests"
  std::vector<std::pair<std::string, std::string>> headers;  // names lowered
  std::string body;          // decoded; empty when a sink consumed it

  /// Value of the first header with this (lower-case) name, or "".
  std::string_view Header(std::string_view name_lower) const;
};

struct FetchOptions {
  /// Extra request headers, spliced verbatim ("X-Client: bench-3").
  std::vector<std::pair<std::string, std::string>> headers;

  /// Decoded body bytes as they arrive; when set, ClientResponse.body
  /// stays empty. Called from the calling thread.
  std::function<void(std::string_view)> body_sink;

  /// Give up when the server sends nothing for this long. Streaming
  /// reads legitimately stall while a sweep waits in the admission
  /// queue, so the default is generous.
  int recv_timeout_ms = 120000;
};

/// Blocking request to 127.0.0.1:`port`. Transport failures (connect
/// refused, timeout, truncated response) throw std::runtime_error;
/// HTTP-level errors (4xx/5xx) are returned, not thrown.
ClientResponse Fetch(std::uint16_t port, std::string_view method,
                     std::string_view target, std::string_view body = {},
                     const FetchOptions& options = {});

}  // namespace ds::net
