#include "net/http.hpp"

#include <sys/socket.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <system_error>

namespace ds::net {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

/// Strict non-negative decimal parse for Content-Length; rejects
/// signs, whitespace and trailing junk (a sloppy length is a request
/// smuggling vector, not a formatting nit).
bool ParseDecimal(std::string_view s, std::size_t* out) {
  if (s.empty() || s.size() > 18) return false;
  std::size_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

std::string ErrnoText(int err) {
  return std::error_code(err, std::generic_category()).message();
}

bool SendAll(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // client went away; nothing to salvage
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string_view HttpRequest::Header(std::string_view name_lower) const {
  for (const auto& [name, value] : headers)
    if (name == name_lower) return value;
  return {};
}

HttpRequestParser::Status HttpRequestParser::Fail(std::string_view status,
                                                  std::string_view reason) {
  state_ = Status::kError;
  error_status_ = status;
  error_reason_ = reason;
  buffer_.clear();
  return state_;
}

HttpRequestParser::Status HttpRequestParser::ParseHeaders() {
  // buffer_ holds the full header block (terminated by CRLFCRLF).
  const std::size_t block_end = buffer_.find("\r\n\r\n");
  const std::string_view block =
      std::string_view(buffer_).substr(0, block_end + 2);

  const std::size_t line_end = block.find("\r\n");
  const std::string_view line = block.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1)
    return Fail("400 Bad Request", "malformed request line");
  const std::string_view version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0)
    return Fail("400 Bad Request", "unsupported protocol version");
  request_.method = std::string(line.substr(0, sp1));
  request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));

  std::size_t pos = line_end + 2;
  while (pos < block.size()) {
    const std::size_t eol = block.find("\r\n", pos);
    const std::string_view header = block.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = header.find(':');
    if (colon == std::string_view::npos || colon == 0)
      return Fail("400 Bad Request", "malformed header field");
    request_.headers.emplace_back(ToLower(header.substr(0, colon)),
                                  std::string(Trim(header.substr(colon + 1))));
  }

  const std::string_view te = request_.Header("transfer-encoding");
  if (!te.empty())
    return Fail("501 Not Implemented",
                "chunked request bodies are not supported");
  const std::string_view cl = request_.Header("content-length");
  if (!cl.empty() && !ParseDecimal(cl, &content_length_))
    return Fail("400 Bad Request", "unparseable content-length");
  if (content_length_ > limits_.max_body_bytes)
    return Fail("413 Content Too Large",
                "request body exceeds the configured limit");

  headers_done_ = true;
  buffer_.erase(0, block_end + 4);
  return Status::kNeedMore;
}

HttpRequestParser::Status HttpRequestParser::Feed(std::string_view data) {
  if (state_ == Status::kError) return state_;
  if (state_ == Status::kComplete) {
    excess_bytes_ += data.size();
    return state_;
  }

  buffer_.append(data);

  if (!headers_done_) {
    const std::size_t block_end = buffer_.find("\r\n\r\n");
    if (block_end == std::string::npos) {
      if (buffer_.size() > limits_.max_header_bytes)
        return Fail("431 Request Header Fields Too Large",
                    "header block exceeds the configured limit");
      return Status::kNeedMore;
    }
    // The limit also applies to a block that arrived complete in one
    // read -- otherwise a single large recv() bypasses it.
    if (block_end + 4 > limits_.max_header_bytes)
      return Fail("431 Request Header Fields Too Large",
                  "header block exceeds the configured limit");
    if (ParseHeaders() == Status::kError) return state_;
  }

  if (buffer_.size() < content_length_) return Status::kNeedMore;

  request_.body = buffer_.substr(0, content_length_);
  excess_bytes_ += buffer_.size() - content_length_;
  buffer_.clear();
  state_ = Status::kComplete;
  return state_;
}

std::string HttpResponse(std::string_view status,
                         std::string_view content_type,
                         std::string_view body,
                         std::string_view extra_headers) {
  std::string out;
  out.reserve(body.size() + 160);
  out += "HTTP/1.1 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\n";
  out += extra_headers;
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

std::string ChunkedResponseHead(std::string_view status,
                                std::string_view content_type,
                                std::string_view extra_headers) {
  std::string out;
  out += "HTTP/1.1 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nTransfer-Encoding: chunked\r\n";
  out += extra_headers;
  out += "Connection: close\r\n\r\n";
  return out;
}

std::string Chunk(std::string_view data) {
  char head[24];
  std::snprintf(head, sizeof(head), "%zx\r\n", data.size());
  std::string out(head);
  out += data;
  out += "\r\n";
  return out;
}

ChunkedDecoder::Status ChunkedDecoder::Feed(std::string_view data,
                                            std::string* out) {
  if (done_) return Status::kComplete;
  buffer_.append(data);
  for (;;) {
    if (in_payload_) {
      // Payload plus its trailing CRLF.
      const std::size_t want = chunk_remaining_ + 2;
      if (buffer_.size() < want) return Status::kNeedMore;
      out->append(buffer_, 0, chunk_remaining_);
      if (buffer_[chunk_remaining_] != '\r' ||
          buffer_[chunk_remaining_ + 1] != '\n')
        return Status::kError;
      buffer_.erase(0, want);
      in_payload_ = false;
      continue;
    }
    const std::size_t eol = buffer_.find("\r\n");
    if (eol == std::string::npos) return Status::kNeedMore;
    // Chunk-size line (chunk extensions after ';' are ignored).
    std::size_t size = 0;
    std::size_t i = 0;
    for (; i < eol && buffer_[i] != ';'; ++i) {
      const char c = buffer_[i];
      int digit = -1;
      if (c >= '0' && c <= '9') digit = c - '0';
      if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
      if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
      if (digit < 0) return Status::kError;
      size = size * 16 + static_cast<std::size_t>(digit);
    }
    if (i == 0) return Status::kError;
    buffer_.erase(0, eol + 2);
    if (size == 0) {
      // Terminal chunk; any trailer section is ignored.
      done_ = true;
      return Status::kComplete;
    }
    chunk_remaining_ = size;
    in_payload_ = true;
  }
}

}  // namespace ds::net
