// Threaded loopback HTTP/1.1 server: one acceptor thread (poll +
// self-pipe shutdown, the pattern proven in telemetry/metrics_http),
// one short-lived thread per connection, one request per connection,
// `Connection: close` always. Handlers either send a single response
// or stream a chunked one (live row/event streaming for the sweep
// service).
//
// Binds 127.0.0.1 only -- this serves a local daemon and its loopback
// clients, not the open network.
//
// Shutdown contract: Stop() joins the acceptor first (no new
// connections), then every connection thread. A handler that blocks on
// an external condition (e.g. a result stream) must be unblocked
// *before* Stop() is called -- SweepService::Stop() terminalizes all
// streams for exactly this reason.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "net/http.hpp"
#include "util/lock_levels.hpp"
#include "util/thread_annotations.hpp"

namespace ds::net {

class HttpServer {
 public:
  struct Options {
    /// TCP port on 127.0.0.1; 0 picks an ephemeral port (tests) --
    /// read the bound port back with port().
    std::uint16_t port = 0;

    /// Request body cap; a larger Content-Length is answered 413
    /// before any body byte is buffered.
    std::size_t max_body_kb = 1024;

    /// Concurrent connection threads; excess connections are answered
    /// 503 from the acceptor without spawning a thread.
    std::size_t max_connections = 64;

    /// A connection with an incomplete request and no new bytes for
    /// this long is dropped.
    int idle_timeout_ms = 5000;
  };

  /// Streams one response on one connection. Use Send() for a complete
  /// message, or BeginChunked()/WriteChunk()/EndChunked() to stream.
  /// Write methods return false once the client hung up (stop
  /// producing); exactly one response may be started.
  class ResponseWriter {
   public:
    bool Send(std::string_view status, std::string_view content_type,
              std::string_view body, std::string_view extra_headers = {});
    bool BeginChunked(std::string_view status, std::string_view content_type,
                      std::string_view extra_headers = {});
    bool WriteChunk(std::string_view data);
    bool EndChunked();

    /// A response has been started (the handler is done routing).
    bool sent() const { return sent_; }

   private:
    friend class HttpServer;
    explicit ResponseWriter(int fd) : fd_(fd) {}

    int fd_;
    bool sent_ = false;
    bool chunked_ = false;
    bool alive_ = true;
  };

  using Handler = std::function<void(const HttpRequest&, ResponseWriter&)>;

  /// Binds (SO_REUSEADDR, checked, so an immediate rebind of a
  /// just-stopped port does not trip over TIME_WAIT) and starts the
  /// acceptor. Throws std::runtime_error when the socket cannot be
  /// created or bound.
  HttpServer(Handler handler, Options options);

  /// Stop()s if the caller did not.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Shuts the listener down, joins the acceptor and every connection
  /// thread. Idempotent.
  void Stop();

  /// The bound port (resolves ephemeral requests).
  std::uint16_t port() const { return port_; }

 private:
  /// One connection thread's handle; `done` flips when the thread is
  /// about to exit so the acceptor can reap (join) it.
  struct Conn {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void HandleConnection(int client_fd);
  std::size_t ReapFinished() DS_EXCLUDES(conns_mu_);

  Handler handler_;
  Options options_;

  // listen_fd_ and wake_pipe_ are written by the constructor before
  // the acceptor thread exists and not touched again until Stop() has
  // joined it, so every cross-thread access is ordered by thread
  // creation or join -- no capability needed.
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: Stop() unblocks poll()
  std::uint16_t port_ = 0;       // written once in the constructor

  /// Serializes Stop() end-to-end.
  Mutex stop_mu_{locks::kShutdown};
  bool stopped_ DS_GUARDED_BY(stop_mu_) = false;

  /// Live connection threads; reaped by the acceptor between accepts,
  /// drained by Stop() after the acceptor has joined.
  Mutex conns_mu_{locks::kNetConnections};
  std::vector<std::unique_ptr<Conn>> conns_ DS_GUARDED_BY(conns_mu_);

  std::thread accept_thread_;
};

}  // namespace ds::net
