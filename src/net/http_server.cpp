#include "net/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <string>
#include <utility>

namespace ds::net {

bool HttpServer::ResponseWriter::Send(std::string_view status,
                                      std::string_view content_type,
                                      std::string_view body,
                                      std::string_view extra_headers) {
  if (sent_) return alive_;
  sent_ = true;
  alive_ = SendAll(fd_, HttpResponse(status, content_type, body,
                                     extra_headers));
  return alive_;
}

bool HttpServer::ResponseWriter::BeginChunked(std::string_view status,
                                              std::string_view content_type,
                                              std::string_view extra_headers) {
  if (sent_) return alive_;
  sent_ = true;
  chunked_ = true;
  alive_ = SendAll(fd_, ChunkedResponseHead(status, content_type,
                                            extra_headers));
  return alive_;
}

bool HttpServer::ResponseWriter::WriteChunk(std::string_view data) {
  if (!chunked_ || !alive_ || data.empty()) return alive_;
  alive_ = SendAll(fd_, Chunk(data));
  return alive_;
}

bool HttpServer::ResponseWriter::EndChunked() {
  if (!chunked_ || !alive_) return alive_;
  chunked_ = false;
  alive_ = SendAll(fd_, kLastChunk);
  return alive_;
}

HttpServer::HttpServer(Handler handler, Options options)
    : handler_(std::move(handler)), options_(options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("HttpServer: socket() failed: " +
                             ErrnoText(errno));
  // SO_REUSEADDR before bind: a restart on a fixed port must not fail
  // with EADDRINUSE while the previous instance's sockets sit in
  // TIME_WAIT (CI restarts daemons on fixed ports back to back).
  const int one = 1;
  if (::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                   sizeof(one)) != 0) {
    const std::string why = ErrnoText(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: setsockopt(SO_REUSEADDR): " + why);
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string why = ErrnoText(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: cannot bind 127.0.0.1:" +
                             std::to_string(options_.port) + ": " + why);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string why = ErrnoText(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: listen() failed: " + why);
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  if (::pipe(wake_pipe_) != 0) {
    const std::string why = ErrnoText(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: pipe() failed: " + why);
  }

  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Stop() {
  const ds::MutexLock stop_lock(stop_mu_);
  if (stopped_) return;
  const char wake = 'x';
  // Best-effort: the pipe is empty so one byte always fits.
  (void)!::write(wake_pipe_[1], &wake, 1);
  accept_thread_.join();
  // The acceptor is gone, so conns_ can only shrink; move the
  // remaining handles out and join them without holding the lock.
  std::vector<std::unique_ptr<Conn>> remaining;
  {
    const ds::MutexLock conns_lock(conns_mu_);
    remaining.swap(conns_);
  }
  for (const auto& conn : remaining) conn->thread.join();
  ::close(listen_fd_);
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  listen_fd_ = -1;
  stopped_ = true;
}

std::size_t HttpServer::ReapFinished() {
  std::vector<std::unique_ptr<Conn>> finished;
  std::size_t live = 0;
  {
    const ds::MutexLock conns_lock(conns_mu_);
    for (auto& conn : conns_) {
      if (conn->done.load(std::memory_order_acquire))
        finished.push_back(std::move(conn));
      else
        ++live;
    }
    std::erase_if(conns_, [](const std::unique_ptr<Conn>& c) { return !c; });
  }
  for (const auto& conn : finished) conn->thread.join();
  return live;
}

void HttpServer::AcceptLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;  // Stop() signalled
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;

    const std::size_t live = ReapFinished();
    if (live >= options_.max_connections) {
      SendAll(client, HttpResponse("503 Service Unavailable",
                                   "text/plain; charset=utf-8",
                                   "connection limit reached\n",
                                   "Retry-After: 1\r\n"));
      ::close(client);
      continue;
    }

    auto conn = std::make_unique<Conn>();
    Conn* raw = conn.get();
    {
      const ds::MutexLock conns_lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, client, raw] {
      HandleConnection(client);
      ::close(client);
      raw->done.store(true, std::memory_order_release);
    });
  }
}

void HttpServer::HandleConnection(int client_fd) {
  HttpRequestParser parser(HttpRequestParser::Limits{
      .max_header_bytes = 16 * 1024,
      .max_body_bytes = options_.max_body_kb * 1024});
  char buf[4096];
  for (;;) {
    pollfd pf{client_fd, POLLIN, 0};
    if (::poll(&pf, 1, options_.idle_timeout_ms) <= 0) return;
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) return;  // client closed before completing a request
    const HttpRequestParser::Status status =
        parser.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
    if (status == HttpRequestParser::Status::kError) {
      SendAll(client_fd,
              HttpResponse(parser.error_status(), "text/plain; charset=utf-8",
                           parser.error_reason() + "\n"));
      return;
    }
    if (status == HttpRequestParser::Status::kComplete) break;
  }

  ResponseWriter writer(client_fd);
  try {
    handler_(parser.request(), writer);
    // The 500 below carries e.what() to the client -- the failure is
    // surfaced, just over the wire instead of a telemetry sink.
    // ds_lint: allow(swallowed-catch)
  } catch (const std::exception& e) {
    if (!writer.sent())
      writer.Send("500 Internal Server Error", "text/plain; charset=utf-8",
                  std::string("internal error: ") + e.what() + "\n");
    return;
  }
  if (!writer.sent())
    writer.Send("500 Internal Server Error", "text/plain; charset=utf-8",
                "handler produced no response\n");
}

}  // namespace ds::net
