// Minimal HTTP/1.1 building blocks shared by the loopback servers and
// the `darksilicon submit` client: an *incremental* request parser
// (bytes arrive in arbitrary splits -- torn request lines, torn
// headers, bodies trickling in), response/chunk builders, and a
// chunked-transfer decoder for the client side.
//
// Scope is deliberately small -- exactly what the sweep service and
// the metrics endpoint need:
//   - requests: one method + target + headers + optional
//     Content-Length body per connection; a pipelined second request
//     is *ignored* (we answer the first and close);
//   - responses: either a single Content-Length message or a chunked
//     stream (for live row/event streaming); always
//     `Connection: close`.
// No TLS, no keep-alive, no Transfer-Encoding on requests, no
// multipart. Loopback only by policy of the callers.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ds::net {

/// Thread-safe strerror: std::strerror writes into shared static
/// storage (clang-tidy concurrency-mt-unsafe); the error_code route
/// formats without it.
std::string ErrnoText(int err);

/// Sends the whole buffer, tolerating short writes; MSG_NOSIGNAL so a
/// client hangup surfaces as EPIPE instead of killing the process.
/// Returns false once the peer is gone (callers stop streaming).
bool SendAll(int fd, std::string_view data);

/// A parsed request. Header names are lower-cased at parse time so
/// lookups are case-insensitive per RFC 9110.
struct HttpRequest {
  std::string method;  // e.g. "GET", "POST", "DELETE"
  std::string target;  // raw request-target, e.g. "/v1/sweeps/abc/rows"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Value of the first header with this (lower-case) name, or "".
  std::string_view Header(std::string_view name_lower) const;
};

/// Incremental HTTP/1.1 request parser. Feed() it whatever the socket
/// produced; it answers "need more", "complete", or "error" with the
/// HTTP status line to send back. Limits are enforced as data arrives,
/// so an oversized body is rejected from its Content-Length header
/// before a single body byte is buffered.
class HttpRequestParser {
 public:
  struct Limits {
    std::size_t max_header_bytes = 16 * 1024;
    std::size_t max_body_bytes = 1024 * 1024;
  };

  enum class Status { kNeedMore, kComplete, kError };

  HttpRequestParser() : HttpRequestParser(Limits{}) {}
  explicit HttpRequestParser(Limits limits) : limits_(limits) {}

  /// Consumes the next slice of bytes off the wire. Once kComplete or
  /// kError has been returned, further Feed() calls return the same
  /// status without consuming anything (a pipelined second request is
  /// counted in excess_bytes() and otherwise ignored).
  Status Feed(std::string_view data);

  /// Valid after Feed() returned kComplete.
  const HttpRequest& request() const { return request_; }

  /// Valid after kError: the status line to answer with (e.g.
  /// "400 Bad Request", "413 Content Too Large") and a one-line reason
  /// for the response body.
  const std::string& error_status() const { return error_status_; }
  const std::string& error_reason() const { return error_reason_; }

  /// Bytes received beyond the first complete request (pipelining);
  /// always ignored, surfaced for tests.
  std::size_t excess_bytes() const { return excess_bytes_; }

 private:
  Status Fail(std::string_view status, std::string_view reason);
  Status ParseHeaders();

  Limits limits_;
  std::string buffer_;
  bool headers_done_ = false;
  std::size_t content_length_ = 0;
  std::size_t excess_bytes_ = 0;
  Status state_ = Status::kNeedMore;
  HttpRequest request_;
  std::string error_status_;
  std::string error_reason_;
};

/// A complete single-shot response (status line, Content-Type,
/// Content-Length, Connection: close). `extra_headers` is spliced in
/// verbatim and must be ""- or CRLF-terminated lines
/// ("Retry-After: 2\r\n").
std::string HttpResponse(std::string_view status,
                         std::string_view content_type,
                         std::string_view body,
                         std::string_view extra_headers = {});

/// Head of a chunked streaming response; follow with Chunk() payloads
/// and finish with kLastChunk.
std::string ChunkedResponseHead(std::string_view status,
                                std::string_view content_type,
                                std::string_view extra_headers = {});

/// One chunk frame (hex length, CRLF, payload, CRLF). Never call with
/// empty data -- a zero-length chunk terminates the stream.
std::string Chunk(std::string_view data);

/// The terminal chunk closing a chunked response.
inline constexpr std::string_view kLastChunk = "0\r\n\r\n";

/// Client-side decoder for chunked transfer coding: Feed() raw body
/// bytes, decoded payload is appended to `out`. Returns kComplete once
/// the terminal chunk was consumed.
class ChunkedDecoder {
 public:
  enum class Status { kNeedMore, kComplete, kError };

  Status Feed(std::string_view data, std::string* out);

 private:
  std::string buffer_;
  std::size_t chunk_remaining_ = 0;  // payload bytes still owed
  bool in_payload_ = false;
  bool done_ = false;
};

}  // namespace ds::net
