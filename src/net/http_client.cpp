#include "net/http_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <stdexcept>

#include "net/http.hpp"

namespace ds::net {

namespace {

/// Closes the fd on every exit path (the parse code below throws).
struct FdCloser {
  int fd;
  ~FdCloser() { ::close(fd); }
};

int Connect(std::uint16_t port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error("http client: socket() failed: " +
                             ErrnoText(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = ErrnoText(errno);
    ::close(fd);
    throw std::runtime_error("http client: cannot connect 127.0.0.1:" +
                             std::to_string(port) + ": " + why);
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

/// Reads more bytes into `buf`; returns false on orderly EOF, throws
/// on timeout/reset.
bool ReadMore(int fd, std::string* buf) {
  char chunk[4096];
  const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
  if (n == 0) return false;
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      throw std::runtime_error("http client: receive timed out");
    throw std::runtime_error("http client: recv() failed: " +
                             ErrnoText(errno));
  }
  buf->append(chunk, static_cast<std::size_t>(n));
  return true;
}

}  // namespace

std::string_view ClientResponse::Header(std::string_view name_lower) const {
  for (const auto& [name, value] : headers)
    if (name == name_lower) return value;
  return {};
}

ClientResponse Fetch(std::uint16_t port, std::string_view method,
                     std::string_view target, std::string_view body,
                     const FetchOptions& options) {
  const int fd = Connect(port, options.recv_timeout_ms);
  const FdCloser closer{fd};

  std::string request;
  request += method;
  request += " ";
  request += target;
  request += " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  for (const auto& [name, value] : options.headers)
    request += std::string(name) + ": " + value + "\r\n";
  if (!body.empty() || method == "POST" || method == "PUT")
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "Connection: close\r\n\r\n";
  request += body;
  if (!SendAll(fd, request))
    throw std::runtime_error("http client: send failed (peer closed)");

  // Head: status line + headers, terminated by CRLFCRLF.
  std::string buf;
  std::size_t head_end;
  while ((head_end = buf.find("\r\n\r\n")) == std::string::npos) {
    if (!ReadMore(fd, &buf))
      throw std::runtime_error("http client: connection closed mid-header");
    if (buf.size() > 64 * 1024)
      throw std::runtime_error("http client: oversized response header");
  }

  ClientResponse response;
  const std::string_view head = std::string_view(buf).substr(0, head_end);
  std::size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) line_end = head.size();
  response.status_line = std::string(head.substr(0, line_end));
  const std::size_t sp = response.status_line.find(' ');
  if (sp != std::string::npos)
    response.status_code = std::atoi(response.status_line.c_str() + sp + 1);

  std::size_t pos = line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    response.headers.emplace_back(ToLower(line.substr(0, colon)),
                                  std::string(Trim(line.substr(colon + 1))));
  }
  buf.erase(0, head_end + 4);

  auto deliver = [&](std::string_view data) {
    if (data.empty()) return;
    if (options.body_sink)
      options.body_sink(data);
    else
      response.body.append(data);
  };

  if (response.Header("transfer-encoding") == "chunked") {
    ChunkedDecoder decoder;
    std::string decoded;
    ChunkedDecoder::Status status = decoder.Feed(buf, &decoded);
    deliver(decoded);
    while (status == ChunkedDecoder::Status::kNeedMore) {
      buf.clear();
      if (!ReadMore(fd, &buf))
        throw std::runtime_error("http client: connection closed mid-chunk");
      decoded.clear();
      status = decoder.Feed(buf, &decoded);
      deliver(decoded);
    }
    if (status == ChunkedDecoder::Status::kError)
      throw std::runtime_error("http client: malformed chunked body");
    return response;
  }

  const std::string_view content_length = response.Header("content-length");
  if (!content_length.empty()) {
    const std::size_t want =
        static_cast<std::size_t>(std::atoll(std::string(content_length).c_str()));
    while (buf.size() < want) {
      if (!ReadMore(fd, &buf))
        throw std::runtime_error("http client: connection closed mid-body");
    }
    deliver(std::string_view(buf).substr(0, want));
    return response;
  }

  // No framing: the body runs to EOF (Connection: close semantics).
  deliver(buf);
  buf.clear();
  while (ReadMore(fd, &buf)) {
    deliver(buf);
    buf.clear();
  }
  return response;
}

}  // namespace ds::net
