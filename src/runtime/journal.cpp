#include "runtime/journal.hpp"

#include <unistd.h>

#include <array>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "telemetry/event_bus.hpp"
#include "telemetry/json.hpp"
#include "util/contracts.hpp"

namespace ds::runtime {

namespace {

/// Exact round-trip float formatting, matching the result sink.
std::string ExactNumber(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Byte-at-a-time CRC32 table (IEEE polynomial, reflected), built once.
const std::array<std::uint32_t, 256>& CrcTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

bool IsHex(char c) {
  return std::isxdigit(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::uint32_t Crc32(const std::string& data) {
  const auto& table = CrcTable();
  std::uint32_t crc = 0xffffffffu;
  for (const char ch : data)
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

std::string FrameJournalRecord(const std::string& payload) {
  char head[24];
  std::snprintf(head, sizeof(head), "%zu %08x ", payload.size(),
                Crc32(payload));
  return head + payload;
}

std::string JournalHeaderLine(const SweepSpec& spec) {
  std::ostringstream os;
  os << "{\"sweep\": \"" << JsonEscape(spec.name()) << "\", \"version\": 2, "
     << "\"fingerprint\": \"" << spec.Fingerprint() << "\"}";
  return os.str();
}

std::string JournalLine(const JobResult& result) {
  std::ostringstream os;
  os << "{\"job\": " << result.index << ", \"ok\": "
     << (result.ok ? "true" : "false")
     << ", \"skipped\": " << (result.skipped ? "true" : "false")
     << ", \"attempts\": " << result.attempts;
  if (result.timed_out) os << ", \"timed_out\": true";
  if (result.quarantined) os << ", \"quarantined\": true";
  if (!result.ok) os << ", \"error\": \"" << JsonEscape(result.error) << "\"";
  os << ", \"metrics\": {";
  bool first = true;
  for (const auto& [key, value] : result.metrics) {
    os << (first ? "" : ", ") << "\"" << JsonEscape(key)
       << "\": " << ExactNumber(value);
    first = false;
  }
  os << "}}";
  return os.str();
}

JournalSync JournalSyncByName(const std::string& name) {
  if (name == "none") return JournalSync::kNone;
  if (name == "batch") return JournalSync::kBatch;
  if (name == "always") return JournalSync::kAlways;
  throw std::invalid_argument("unknown journal sync policy '" + name +
                              "' (none | batch | always)");
}

const char* JournalSyncName(JournalSync sync) {
  switch (sync) {
    case JournalSync::kNone: return "none";
    case JournalSync::kBatch: return "batch";
    case JournalSync::kAlways: return "always";
  }
  return "?";
}

JournalWriter::~JournalWriter() { Close(); }

void JournalWriter::Open(const std::string& path, bool fresh,
                         JournalSync sync) {
  DS_REQUIRE(file_ == nullptr, "JournalWriter: already open");
  file_ = std::fopen(path.c_str(), fresh ? "wb" : "ab");
  DS_REQUIRE(file_ != nullptr,
             "JournalWriter: cannot open checkpoint '" << path << "'");
  path_ = path;
  sync_ = sync;
  unsynced_records_ = 0;
}

void JournalWriter::Append(const std::string& payload) {
  DS_REQUIRE(file_ != nullptr, "JournalWriter: append on closed journal");
  const std::string framed = FrameJournalRecord(payload) + "\n";
  const std::size_t wrote =
      std::fwrite(framed.data(), 1, framed.size(), file_);
  DS_REQUIRE(wrote == framed.size(),
             "JournalWriter: short write to '" << path_ << "'");
  ++unsynced_records_;
  switch (sync_) {
    case JournalSync::kAlways:
      Flush(/*force_sync=*/true);
      break;
    case JournalSync::kBatch:
      if (unsynced_records_ >= kSyncBatchRecords)
        Flush(/*force_sync=*/true);
      else
        Flush(/*force_sync=*/false);  // visible to same-process readers
      break;
    case JournalSync::kNone:
      Flush(/*force_sync=*/false);
      break;
  }
}

void JournalWriter::Flush(bool force_sync) {
  DS_REQUIRE(std::fflush(file_) == 0,
             "JournalWriter: flush to '" << path_ << "' failed");
  if (force_sync) {
    ::fsync(::fileno(file_));
    unsynced_records_ = 0;
  }
}

void JournalWriter::Close() {
  if (file_ == nullptr) return;
  std::fflush(file_);
  if (sync_ != JournalSync::kNone && unsynced_records_ > 0)
    ::fsync(::fileno(file_));
  std::fclose(file_);
  file_ = nullptr;
}

bool LoadJournal(const std::string& path,
                 const std::string& expect_fingerprint,
                 std::vector<JobResult>* completed,
                 JournalLoadStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  if (text.empty()) return false;

  JournalLoadStats local;
  JournalLoadStats& st = stats != nullptr ? *stats : local;

  bool saw_header = false;
  bool torn = false;
  std::size_t pos = 0;
  std::size_t keep = 0;  // end offset of the last structurally sound record
  std::set<std::size_t> seen_jobs;

  const auto note_corrupt = [&] {
    ++st.corrupt_records;
    if (telemetry::EventsOn()) {
      telemetry::Event e =
          telemetry::MakeEvent(telemetry::EventKind::kJournalSkip);
      e.SetDetail("corrupt_record");
      telemetry::Emit(e);
    }
  };

  // A framing problem before the header is validated means the file is
  // not a v2 journal at all (or its header is damaged): refuse to
  // resume rather than silently re-run everything against it.
  const auto bad_preheader = [&](const char* why) {
    DS_REQUIRE(false, "sweep journal '" << path << "': " << why
                                        << "; delete it or pass a fresh "
                                           "checkpoint path");
  };

  while (pos < text.size()) {
    const std::size_t start = pos;
    // --- length prefix ---
    std::size_t p = pos;
    while (p < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[p])) != 0)
      ++p;
    const bool frame_ok =
        p > pos && p < text.size() && text[p] == ' ' && p - pos <= 10 &&
        p + 10 <= text.size() && IsHex(text[p + 1]) && IsHex(text[p + 2]) &&
        IsHex(text[p + 3]) && IsHex(text[p + 4]) && IsHex(text[p + 5]) &&
        IsHex(text[p + 6]) && IsHex(text[p + 7]) && IsHex(text[p + 8]) &&
        text[p + 9] == ' ';
    if (!frame_ok) {
      const std::size_t nl = text.find('\n', start);
      if (nl == std::string::npos) {
        torn = true;  // bare prefix at EOF: crash mid-append
        break;
      }
      if (!saw_header) bad_preheader("unsupported or corrupt journal header");
      note_corrupt();
      pos = nl + 1;
      keep = pos;
      continue;
    }
    const std::size_t len = std::stoul(text.substr(pos, p - pos));
    const std::uint32_t expect_crc =
        static_cast<std::uint32_t>(std::stoul(text.substr(p + 1, 8), nullptr,
                                              16));
    const std::size_t payload_at = p + 10;
    if (payload_at + len >= text.size() + 1 ||
        payload_at + len > text.size()) {
      torn = true;  // declared more bytes than the file holds
      break;
    }
    if (payload_at + len == text.size()) {
      torn = true;  // payload complete but the trailing \n never landed
      break;
    }
    if (text[payload_at + len] != '\n') {
      // Length field lies about a line that keeps going: corrupt frame.
      const std::size_t nl = text.find('\n', payload_at);
      if (nl == std::string::npos) {
        torn = true;
        break;
      }
      if (!saw_header) bad_preheader("corrupt journal header frame");
      note_corrupt();
      pos = nl + 1;
      keep = pos;
      continue;
    }
    const std::string payload = text.substr(payload_at, len);
    pos = payload_at + len + 1;
    if (Crc32(payload) != expect_crc) {
      if (!saw_header) bad_preheader("journal header checksum mismatch");
      note_corrupt();
      keep = pos;
      continue;
    }
    const telemetry::JsonValue doc = telemetry::ParseJson(payload);
    DS_REQUIRE(doc.is_object(),
               "sweep journal '" << path << "': checksummed record is not "
                                    "a JSON object");
    if (!saw_header) {
      const telemetry::JsonValue* version = doc.Find("version");
      const telemetry::JsonValue* fingerprint = doc.Find("fingerprint");
      DS_REQUIRE(version != nullptr && version->is_number() &&
                     version->number == 2.0,  // ds_lint: allow(float-equals)
                 "sweep journal '" << path << "': unsupported version");
      DS_REQUIRE(fingerprint != nullptr && fingerprint->is_string() &&
                     fingerprint->str == expect_fingerprint,
                 "sweep journal '"
                     << path
                     << "' belongs to a different sweep spec; delete it or "
                        "pass a fresh checkpoint path");
      saw_header = true;
      keep = pos;
      continue;
    }
    const telemetry::JsonValue* job = doc.Find("job");
    const telemetry::JsonValue* ok = doc.Find("ok");
    const telemetry::JsonValue* metrics = doc.Find("metrics");
    DS_REQUIRE(job != nullptr && job->is_number() && ok != nullptr &&
                   metrics != nullptr && metrics->is_object(),
               "sweep journal '" << path << "': malformed job record");
    JobResult r;
    r.index = static_cast<std::size_t>(job->number);
    r.ok = ok->boolean;
    if (const telemetry::JsonValue* skipped = doc.Find("skipped"))
      r.skipped = skipped->boolean;
    if (const telemetry::JsonValue* attempts = doc.Find("attempts"))
      r.attempts = static_cast<std::size_t>(attempts->number);
    if (const telemetry::JsonValue* timed_out = doc.Find("timed_out"))
      r.timed_out = timed_out->boolean;
    if (const telemetry::JsonValue* quarantined = doc.Find("quarantined"))
      r.quarantined = quarantined->boolean;
    if (const telemetry::JsonValue* error = doc.Find("error"))
      r.error = error->str;
    r.metrics.reserve(metrics->object.size());
    for (const auto& [key, value] : metrics->object) {
      DS_REQUIRE(value.is_number(), "sweep journal '"
                                        << path << "': metric '" << key
                                        << "' is not a number");
      r.metrics.emplace_back(key, value.number);
    }
    if (!seen_jobs.insert(r.index).second) {
      // A duplicate means a crash landed between execution and journal
      // sync on a prior run; the engine keeps the last record. Count
      // the superseded one so the recovery is visible downstream.
      ++st.dedup_drops;
      if (telemetry::EventsOn()) {
        telemetry::Event e = telemetry::MakeEvent(
            telemetry::EventKind::kJournalSkip,
            static_cast<std::int64_t>(r.index));
        e.SetDetail("dedup_drop");
        telemetry::Emit(e);
      }
    }
    completed->push_back(std::move(r));
    ++st.records;
    keep = pos;
  }

  if (torn) {
    st.truncated_bytes = text.size() - keep;
    std::error_code ec;
    std::filesystem::resize_file(path, keep, ec);
    DS_REQUIRE(!ec, "sweep journal '" << path
                                      << "': cannot truncate torn tail");
    if (telemetry::EventsOn()) {
      telemetry::Event e =
          telemetry::MakeEvent(telemetry::EventKind::kJournalSkip);
      e.AddField("bytes", static_cast<double>(st.truncated_bytes));
      e.SetDetail("torn_tail");
      telemetry::Emit(e);
    }
  }
  if (!saw_header) return false;  // torn before the header completed
  return true;
}

}  // namespace ds::runtime
