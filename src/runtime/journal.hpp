// Crash-safe checkpoint journal for the sweep engine.
//
// Format (version 2): one framed record per line,
//
//     <len> <crc32-hex8> <json-payload>\n
//
// where `len` is the decimal byte length of the payload and the CRC32
// (IEEE, reflected) covers exactly the payload bytes. The first record
// is a header binding the spec content fingerprint; every following
// record is one completed job.
//
// The framing buys two recovery properties a plain JSON-lines file
// cannot offer:
//   - torn-write recovery: a crash mid-append leaves a record whose
//     payload is shorter than its declared length (or a bare length
//     prefix). The loader detects this at EOF, truncates the file back
//     to the last complete record, and resumes -- the interrupted job
//     simply runs again.
//   - corruption containment: a record whose CRC does not match (bit
//     rot, concurrent writer, chaos tests flipping bytes) is skipped
//     and counted; every other record still resumes. Only a corrupt
//     *header* is fatal, because then nothing proves the journal
//     belongs to this spec.
//
// Durability is a policy knob (JournalSync): kNone leaves flushing to
// the OS, kBatch fsyncs every kSyncBatchRecords appends, kAlways
// fsyncs each append -- the usual throughput/durability trade, chosen
// per sweep via --journal-sync.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "runtime/result_sink.hpp"
#include "runtime/sweep_spec.hpp"

namespace ds::runtime {

/// CRC32 (IEEE 802.3, reflected) over `data`. Exposed for tests.
std::uint32_t Crc32(const std::string& data);

/// Wraps a payload line in the length + CRC frame (no trailing \n).
std::string FrameJournalRecord(const std::string& payload);

/// Journal header payload for a fresh checkpoint file.
std::string JournalHeaderLine(const SweepSpec& spec);

/// Serializes one completed job as a journal payload (no framing).
std::string JournalLine(const JobResult& result);

/// fsync policy for journal appends.
enum class JournalSync { kNone, kBatch, kAlways };

/// Parses "none" | "batch" | "always"; throws std::invalid_argument
/// otherwise.
JournalSync JournalSyncByName(const std::string& name);
const char* JournalSyncName(JournalSync sync);

/// Append-side of the journal: framed records with the configured
/// durability. Not internally synchronized -- the engine serializes
/// appends under its journal mutex (SweepEngine's journal_mu at
/// locks::kJournal; the writer pointer is DS_PT_GUARDED_BY it, so the
/// thread-safety analysis rejects an unserialized Append).
class JournalWriter {
 public:
  static constexpr std::size_t kSyncBatchRecords = 16;

  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Opens `path` (truncating when `fresh`); contract-checks failure so
  /// an unwritable checkpoint fails the run up front.
  void Open(const std::string& path, bool fresh, JournalSync sync);

  /// Appends one framed record and applies the sync policy.
  void Append(const std::string& payload);

  /// Flushes and (for kBatch/kAlways) fsyncs any tail, then closes.
  void Close();

  bool is_open() const { return file_ != nullptr; }

 private:
  void Flush(bool force_sync);

  std::FILE* file_ = nullptr;
  std::string path_;
  JournalSync sync_ = JournalSync::kBatch;
  std::size_t unsynced_records_ = 0;
};

/// What LoadJournal saw besides the completed jobs.
struct JournalLoadStats {
  std::size_t records = 0;          // valid job records parsed
  std::size_t corrupt_records = 0;  // CRC/framing failures skipped
  std::size_t truncated_bytes = 0;  // torn tail removed from the file
  std::size_t dedup_drops = 0;      // duplicate job records superseded
                                    // (last record wins on resume)
};

/// Parses (and, on a torn tail, repairs) a journal file. Returns false
/// with untouched outputs when the file is missing or empty.
/// Contract-checks the header: version 2, framed, fingerprint equal to
/// `expect_fingerprint`. Job records with bad CRC or mangled framing
/// are skipped and counted in `stats` (which may be nullptr).
bool LoadJournal(const std::string& path,
                 const std::string& expect_fingerprint,
                 std::vector<JobResult>* completed,
                 JournalLoadStats* stats = nullptr);

}  // namespace ds::runtime
