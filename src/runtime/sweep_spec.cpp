#include "runtime/sweep_spec.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <span>
#include <sstream>

#include "telemetry/json.hpp"
#include "util/contracts.hpp"

namespace ds::runtime {

namespace {

constexpr std::string_view kStringFields[] = {"node", "app", "constraint",
                                              "mapping"};
constexpr std::string_view kCountFields[] = {"cores", "threads", "instances",
                                             "count"};
constexpr std::string_view kDoubleFields[] = {
    "freq_ghz", "tdp_w",  "power_cap_w", "dark_pct",
    "tdtm_c",   "duration_s", "control_ms"};

bool Contains(std::span<const std::string_view> set, std::string_view v) {
  for (const std::string_view s : set)
    if (s == v) return true;
  return false;
}

double ParseNumber(const std::string& field, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  DS_REQUIRE(end != value.c_str() && *end == '\0' && std::isfinite(v),
             "SweepSpec: field '" << field << "' value '" << value
                                  << "' is not a finite number");
  return v;
}

std::size_t ParseCount(const std::string& field, const std::string& value) {
  const double v = ParseNumber(field, value);
  DS_REQUIRE(v >= 0.0 && v == std::floor(v) && v <= 1e9,
             "SweepSpec: field '" << field << "' value '" << value
                                  << "' is not a small non-negative integer");
  return static_cast<std::size_t>(v);
}

void ApplyField(SweepPoint* point, const std::string& field,
                const std::string& value) {
  if (field == "node") {
    point->node = value;
  } else if (field == "app") {
    point->app = value;
  } else if (field == "constraint") {
    DS_REQUIRE(value == "tdp" || value == "thermal",
               "SweepSpec: constraint '" << value << "' (tdp|thermal)");
    point->constraint = value;
  } else if (field == "mapping") {
    DS_REQUIRE(value == "contiguous" || value == "spread" ||
                   value == "checkerboard" || value == "densest" ||
                   value == "worst",
               "SweepSpec: mapping '" << value << "'");
    point->mapping = value;
  } else if (field == "cores") {
    point->cores = ParseCount(field, value);
  } else if (field == "threads") {
    point->threads = ParseCount(field, value);
    DS_REQUIRE(point->threads >= 1, "SweepSpec: threads must be >= 1");
  } else if (field == "instances") {
    point->instances = ParseCount(field, value);
    DS_REQUIRE(point->instances >= 1, "SweepSpec: instances must be >= 1");
  } else if (field == "count") {
    point->count = ParseCount(field, value);
    DS_REQUIRE(point->count >= 1, "SweepSpec: count must be >= 1");
  } else if (field == "freq_ghz") {
    point->freq_ghz = ParseNumber(field, value);
    DS_REQUIRE(point->freq_ghz >= 0.0, "SweepSpec: freq_ghz must be >= 0");
  } else if (field == "tdp_w") {
    point->tdp_w = ParseNumber(field, value);
    DS_REQUIRE(point->tdp_w > 0.0, "SweepSpec: tdp_w must be positive");
  } else if (field == "power_cap_w") {
    point->power_cap_w = ParseNumber(field, value);
    DS_REQUIRE(point->power_cap_w > 0.0,
               "SweepSpec: power_cap_w must be positive");
  } else if (field == "dark_pct") {
    point->dark_pct = ParseNumber(field, value);
    DS_REQUIRE(point->dark_pct >= 0.0 && point->dark_pct < 100.0,
               "SweepSpec: dark_pct " << point->dark_pct
                                      << " out of [0, 100)");
  } else if (field == "tdtm_c") {
    point->tdtm_c = ParseNumber(field, value);
    DS_REQUIRE(point->tdtm_c >= 0.0, "SweepSpec: tdtm_c must be >= 0");
  } else if (field == "duration_s") {
    point->duration_s = ParseNumber(field, value);
    DS_REQUIRE(point->duration_s > 0.0,
               "SweepSpec: duration_s must be positive");
  } else if (field == "control_ms") {
    point->control_ms = ParseNumber(field, value);
    DS_REQUIRE(point->control_ms > 0.0,
               "SweepSpec: control_ms must be positive");
  } else {
    DS_REQUIRE(false, "SweepSpec: unknown field '" << field << "'");
  }
}

void CheckKnownField(const std::string& field) {
  DS_REQUIRE(Contains(kStringFields, field) || Contains(kCountFields, field) ||
                 Contains(kDoubleFields, field),
             "SweepSpec: unknown field '" << field << "'");
}

std::string JsonScalarToString(const telemetry::JsonValue& v,
                               const std::string& where) {
  if (v.is_string()) return v.str;
  DS_REQUIRE(v.is_number(),
             "SweepSpec: " << where << " must be a string or number");
  return CanonicalNumber(v.number);
}

std::uint64_t Fnv1a(std::uint64_t h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

const char* SweepKindName(SweepKind kind) {
  switch (kind) {
    case SweepKind::kEstimate: return "estimate";
    case SweepKind::kTspCurve: return "tsp_curve";
    case SweepKind::kTspPerf: return "tsp_perf";
    case SweepKind::kBoost: return "boost";
    case SweepKind::kCharacterize: return "characterize";
    case SweepKind::kSpeedup: return "speedup";
    case SweepKind::kBoostTransient: return "boost_transient";
  }
  DS_REQUIRE(false, "SweepKindName: invalid kind");
}

SweepKind SweepKindByName(std::string_view name) {
  if (name == "estimate") return SweepKind::kEstimate;
  if (name == "tsp_curve") return SweepKind::kTspCurve;
  if (name == "tsp_perf") return SweepKind::kTspPerf;
  if (name == "boost") return SweepKind::kBoost;
  if (name == "characterize") return SweepKind::kCharacterize;
  if (name == "speedup") return SweepKind::kSpeedup;
  if (name == "boost_transient") return SweepKind::kBoostTransient;
  DS_REQUIRE(false, "SweepSpec: unknown kind '" << name << "'");
}

std::string CanonicalNumber(double v) {
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

SweepSpec::SweepSpec(std::string name, SweepKind kind)
    : name_(std::move(name)), kind_(kind) {
  DS_REQUIRE(!name_.empty(), "SweepSpec: name must not be empty");
}

SweepSpec SweepSpec::FromJsonText(std::string_view text) {
  const telemetry::JsonValue doc = telemetry::ParseJson(text);
  DS_REQUIRE(doc.is_object(), "SweepSpec: top level must be an object");

  const telemetry::JsonValue* kind = doc.Find("kind");
  DS_REQUIRE(kind != nullptr && kind->is_string(),
             "SweepSpec: required string field 'kind' missing");
  const telemetry::JsonValue* name = doc.Find("name");
  SweepSpec spec(
      name != nullptr && name->is_string() ? name->str : "sweep",
      SweepKindByName(kind->str));

  if (const telemetry::JsonValue* seed = doc.Find("seed")) {
    DS_REQUIRE(seed->is_number() && seed->number >= 0.0,
               "SweepSpec: 'seed' must be a non-negative number");
    spec.seed_ = static_cast<std::uint64_t>(seed->number);
  }

  if (const telemetry::JsonValue* base = doc.Find("base")) {
    DS_REQUIRE(base->is_object(), "SweepSpec: 'base' must be an object");
    for (const auto& [field, value] : base->object)
      spec.Set(field, JsonScalarToString(value, "base." + field));
  }

  const telemetry::JsonValue* axes = doc.Find("axes");
  const telemetry::JsonValue* points = doc.Find("points");
  DS_REQUIRE((axes != nullptr) != (points != nullptr),
             "SweepSpec: exactly one of 'axes'/'points' is required");
  if (axes != nullptr) {
    DS_REQUIRE(axes->is_object(), "SweepSpec: 'axes' must be an object");
    for (const auto& [field, values] : axes->object) {
      DS_REQUIRE(values.is_array(),
                 "SweepSpec: axis '" << field << "' must be an array");
      // ds_lint: allow(alloc-in-loop) -- one-shot spec parse, not stepping
      std::vector<std::string> vals;
      vals.reserve(values.array.size());
      for (const telemetry::JsonValue& v : values.array)
        vals.push_back(JsonScalarToString(v, "axes." + field));
      spec.Axis(field, std::move(vals));
    }
  } else {
    DS_REQUIRE(points->is_array(), "SweepSpec: 'points' must be an array");
    for (const telemetry::JsonValue& p : points->array) {
      DS_REQUIRE(p.is_object(), "SweepSpec: each point must be an object");
      // ds_lint: allow(alloc-in-loop) -- one-shot spec parse, not stepping
      std::vector<std::pair<std::string, std::string>> fields;
      fields.reserve(p.object.size());
      for (const auto& [field, value] : p.object)
        fields.emplace_back(field,
                            JsonScalarToString(value, "points." + field));
      spec.Point(std::move(fields));
    }
  }

  for (const auto& [key, value] : doc.object) {
    (void)value;
    DS_REQUIRE(key == "kind" || key == "name" || key == "seed" ||
                   key == "base" || key == "axes" || key == "points",
               "SweepSpec: unknown top-level key '" << key << "'");
  }
  return spec;
}

SweepSpec SweepSpec::FromJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DS_REQUIRE(in.good(), "SweepSpec: cannot read spec file '" << path << "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return FromJsonText(buf.str());
}

SweepSpec& SweepSpec::Set(const std::string& field, const std::string& value) {
  CheckKnownField(field);
  SweepPoint probe;  // validate eagerly at the boundary
  ApplyField(&probe, field, value);
  base_.emplace_back(field, value);
  return *this;
}

SweepSpec& SweepSpec::Set(const std::string& field, double value) {
  return Set(field, CanonicalNumber(value));
}

SweepSpec& SweepSpec::Axis(const std::string& field,
                           std::vector<std::string> values) {
  CheckKnownField(field);
  DS_REQUIRE(!values.empty(),
             "SweepSpec: axis '" << field << "' must not be empty");
  for (const std::string& v : values) {
    SweepPoint probe;
    ApplyField(&probe, field, v);
  }
  for (const AxisDef& axis : axes_)
    DS_REQUIRE(axis.field != field,
               "SweepSpec: duplicate axis '" << field << "'");
  axes_.push_back(AxisDef{field, std::move(values)});
  return *this;
}

SweepSpec& SweepSpec::Axis(const std::string& field,
                           std::vector<double> values) {
  std::vector<std::string> vals;
  vals.reserve(values.size());
  for (const double v : values) vals.push_back(CanonicalNumber(v));
  return Axis(field, std::move(vals));
}

SweepSpec& SweepSpec::Point(
    std::vector<std::pair<std::string, std::string>> fields) {
  for (const auto& [field, value] : fields) {
    CheckKnownField(field);
    SweepPoint probe;
    ApplyField(&probe, field, value);
  }
  points_.push_back(std::move(fields));
  return *this;
}

std::vector<std::string> SweepSpec::ParamColumns() const {
  std::vector<std::string> cols;
  if (!axes_.empty()) {
    cols.reserve(axes_.size());
    for (const AxisDef& axis : axes_) cols.push_back(axis.field);
  } else if (!points_.empty()) {
    for (const auto& [field, value] : points_.front()) {
      (void)value;
      cols.push_back(field);
    }
  }
  return cols;
}

std::vector<SweepJob> SweepSpec::Jobs() const {
  DS_REQUIRE(axes_.empty() != points_.empty(),
             "SweepSpec '" << name_
                           << "': exactly one of axes/points is required");
  SweepPoint base;
  for (const auto& [field, value] : base_) ApplyField(&base, field, value);

  std::vector<SweepJob> jobs;
  if (!axes_.empty()) {
    std::size_t total = 1;
    for (const AxisDef& axis : axes_) {
      DS_REQUIRE(total <= 1000000 / axis.values.size() + 1,
                 "SweepSpec '" << name_ << "': grid larger than 1e6 jobs");
      total *= axis.values.size();
    }
    jobs.reserve(total);
    for (std::size_t index = 0; index < total; ++index) {
      SweepJob job;
      job.index = index;
      job.point = base;
      // First axis outermost: decompose the index right-to-left.
      std::size_t rest = index;
      // ds_lint: allow(alloc-in-loop) -- one-shot grid expansion
      std::vector<std::size_t> pick(axes_.size(), 0);
      for (std::size_t a = axes_.size(); a-- > 0;) {
        pick[a] = rest % axes_[a].values.size();
        rest /= axes_[a].values.size();
      }
      for (std::size_t a = 0; a < axes_.size(); ++a) {
        const std::string& value = axes_[a].values[pick[a]];
        ApplyField(&job.point, axes_[a].field, value);
        job.params.emplace_back(axes_[a].field, value);
      }
      job.rng_seed = MixSeed(seed_, index);
      jobs.push_back(std::move(job));
    }
  } else {
    jobs.reserve(points_.size());
    for (std::size_t index = 0; index < points_.size(); ++index) {
      SweepJob job;
      job.index = index;
      job.point = base;
      for (const auto& [field, value] : points_[index]) {
        ApplyField(&job.point, field, value);
        job.params.emplace_back(field, value);
      }
      job.rng_seed = MixSeed(seed_, index);
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

std::string SweepSpec::Fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = Fnv1a(h, SweepKindName(kind_));
  h = Fnv1a(h, name_);
  h = Fnv1a(h, CanonicalNumber(static_cast<double>(seed_)));
  for (const SweepJob& job : Jobs()) {
    h = Fnv1a(h, "|job");
    for (const auto& [field, value] : job.params) {
      h = Fnv1a(h, field);
      h = Fnv1a(h, "=");
      h = Fnv1a(h, value);
    }
  }
  for (const auto& [field, value] : base_) {
    h = Fnv1a(h, "|base");
    h = Fnv1a(h, field);
    h = Fnv1a(h, "=");
    h = Fnv1a(h, value);
  }
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace ds::runtime
