// Scenario runners: one pure function per SweepKind mapping a bound
// SweepPoint to its metric set. Runners are referentially transparent
// (explicit seeds, no shared mutable state beyond the ModelCache, whose
// cached artifacts are bitwise-identical to uncached computation), so
// job results do not depend on scheduling -- the engine's determinism
// guarantee rests on this file.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "runtime/model_cache.hpp"
#include "runtime/result_sink.hpp"
#include "runtime/sweep_spec.hpp"

namespace ds::runtime {

/// Executes one job. Fills `result->metrics` (and `skipped` for
/// infeasible scenarios); throws on invalid scenarios (unknown node or
/// app, inconsistent parameters), which the engine records as a failed
/// job. `cache` supplies the shared thermal artifacts.
void RunScenario(SweepKind kind, const SweepJob& job, ModelCache& cache,
                 JobResult* result);

/// The metric column names RunScenario emits for `kind`, in order.
std::vector<std::string> MetricColumns(SweepKind kind);

/// True when `kind` steps a thermal model per job and can join a
/// lockstep cohort (see RunBoostTransientCohort / DESIGN.md §15).
bool KindIsBatchable(SweepKind kind);

/// Conservative cohort key for a batchable job: equal keys guarantee
/// the jobs share one (model content hash, dt) pair and therefore one
/// folded propagator. Built from spec fields only (node, cores,
/// control period) so grouping never has to construct a platform.
/// Returns "" for non-batchable kinds.
std::string BatchCohortKey(SweepKind kind, const SweepPoint& point);

/// Runs a cohort of boost_transient jobs in lockstep over one shared
/// propagator: one panel pass over M_state/M_in advances every member
/// per control period. All jobs must share BatchCohortKey. Fills
/// results[i] for jobs[i] and sets ok on completion.
///
/// `should_detach` (nullable) is polled once per control period per
/// member; returning true detaches that member (its deadline passed or
/// its cancel token fired). A detached member -- and any member whose
/// setup or stepping throws, when `should_detach` is non-null -- is
/// reported via detached[i] with its result slot left untouched, so
/// the engine can re-run it through the scalar retry ladder. With
/// `should_detach == nullptr` (the scalar lane, k = 1), member
/// exceptions propagate to the caller exactly like every other runner.
///
/// Determinism: members step through the panel kernels whose per-
/// element summation order is independent of k, so a job's metrics are
/// bitwise identical at any cohort size, including the k = 1 scalar
/// lane -- this is what keeps sweep CSV output byte-identical at any
/// --batch-max-k.
void RunBoostTransientCohort(
    std::span<const SweepJob* const> jobs, ModelCache& cache,
    std::span<JobResult* const> results,
    const std::function<bool(std::size_t)>& should_detach,
    std::vector<bool>* detached);

}  // namespace ds::runtime
