// Scenario runners: one pure function per SweepKind mapping a bound
// SweepPoint to its metric set. Runners are referentially transparent
// (explicit seeds, no shared mutable state beyond the ModelCache, whose
// cached artifacts are bitwise-identical to uncached computation), so
// job results do not depend on scheduling -- the engine's determinism
// guarantee rests on this file.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "runtime/model_cache.hpp"
#include "runtime/result_sink.hpp"
#include "runtime/sweep_spec.hpp"

namespace ds::runtime {

/// Executes one job. Fills `result->metrics` (and `skipped` for
/// infeasible scenarios); throws on invalid scenarios (unknown node or
/// app, inconsistent parameters), which the engine records as a failed
/// job. `cache` supplies the shared thermal artifacts.
void RunScenario(SweepKind kind, const SweepJob& job, ModelCache& cache,
                 JobResult* result);

/// The metric column names RunScenario emits for `kind`, in order.
std::vector<std::string> MetricColumns(SweepKind kind);

}  // namespace ds::runtime
