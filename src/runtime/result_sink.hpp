// Structured results for sweep runs: ordered rows out of unordered
// parallel execution, CSV/JSON emission, and the checkpoint journal.
//
// Determinism contract: a row is a pure function of its job's spec
// parameters, so the emitted CSV/JSON is byte-identical for any thread
// count. Rows are keyed by job index and emitted in index order; wall
// times and cache statistics never enter the rows (they live in
// SweepStats / RunSummary, which are allowed to vary run-to-run).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "runtime/sweep_spec.hpp"

namespace ds::runtime {

/// Outcome of one job. `metrics` carries the kind's full metric set in
/// a fixed order; `skipped` marks an infeasible scenario (still a row);
/// `ok == false` records a failed job (exception text in `error`).
struct JobResult {
  std::size_t index = 0;
  bool ok = false;
  bool skipped = false;
  std::string error;
  std::vector<std::pair<std::string, double>> metrics;
  double wall_ms = 0.0;  // informational only; never emitted into rows
};

/// Looks up a metric by name; contract-checked (a missing metric is a
/// runner bug, not a data condition).
double Metric(const JobResult& result, std::string_view name);
bool HasMetric(const JobResult& result, std::string_view name);

class ResultSink {
 public:
  /// Captures the spec's parameter columns and, from `jobs`, the echo
  /// values for every row.
  ResultSink(const SweepSpec& spec, const std::vector<SweepJob>& jobs);

  /// Header: job, status, <param columns...>, <metric columns...>.
  /// Metric columns come from the first completed row (every runner
  /// emits the same set for one kind).
  std::vector<std::string> Header(
      const std::vector<JobResult>& results) const;

  /// One CSV line per job, index order, "%.17g"-exact numbers.
  void WriteCsv(std::ostream& os,
                const std::vector<JobResult>& results) const;
  void WriteCsv(const std::string& path,
                const std::vector<JobResult>& results) const;

  /// JSON array of row objects (same content as the CSV).
  void WriteJsonRows(std::ostream& os,
                     const std::vector<JobResult>& results) const;
  void WriteJsonRows(const std::string& path,
                     const std::vector<JobResult>& results) const;

  std::size_t num_jobs() const { return jobs_.size(); }

 private:
  std::vector<std::string> param_columns_;
  std::vector<std::vector<std::pair<std::string, std::string>>> jobs_;
};

/// Checkpoint journal: JSON-lines, one header line binding the spec
/// fingerprint, then one line per completed job. Appends are atomic
/// with respect to the engine's journal mutex; lines for the same job
/// are idempotent on load (last one wins).
struct JournalHeader {
  std::string sweep;
  std::string fingerprint;
};

/// Serializes one completed job as a journal line (no trailing \n).
std::string JournalLine(const JobResult& result);

/// Parses a journal file. Returns false (untouched outputs) if the
/// file does not exist; contract-checks the header against
/// `expect_fingerprint` and the format version.
bool LoadJournal(const std::string& path,
                 const std::string& expect_fingerprint,
                 std::vector<JobResult>* completed);

/// Writes the journal header line for a fresh checkpoint file.
std::string JournalHeaderLine(const SweepSpec& spec);

}  // namespace ds::runtime
