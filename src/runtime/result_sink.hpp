// Structured results for sweep runs: ordered rows out of unordered
// parallel execution with CSV/JSON emission. (The checkpoint journal
// lives in runtime/journal.hpp.)
//
// Concurrency: nothing here owns a lock. Each worker writes only its
// own index's JobResult slot (disjoint by construction), and emission
// happens after the pool joins -- the lock-free exception to the
// annotated-mutex regime of util/thread_annotations.hpp, safe because
// the engine's join provides the happens-before edge.
//
// Determinism contract: a row is a pure function of its job's spec
// parameters, so the emitted CSV/JSON is byte-identical for any thread
// count. Rows are keyed by job index and emitted in index order; wall
// times, attempt counts and cache statistics never enter the rows
// (they live in SweepStats / RunSummary, which are allowed to vary
// run-to-run). The row status is the one resilience fact that IS
// deterministic -- "quarantined" means the job exhausted its retry
// budget, which under deterministic chaos is a pure function of the
// job too.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "runtime/sweep_spec.hpp"

namespace ds::runtime {

/// Outcome of one job. `metrics` carries the kind's full metric set in
/// a fixed order; `skipped` marks an infeasible scenario (still a row);
/// `ok == false` records a failed job (exception text in `error`).
/// `quarantined` marks a job retired after exhausting its retry budget
/// on transient failures; `timed_out` marks that at least one attempt
/// hit the watchdog deadline.
struct JobResult {
  std::size_t index = 0;
  bool ok = false;
  bool skipped = false;
  std::string error;
  std::vector<std::pair<std::string, double>> metrics;
  double wall_ms = 0.0;      // informational only; never emitted into rows
  std::size_t attempts = 0;  // execution attempts (0 = resumed from journal)
  bool timed_out = false;
  bool quarantined = false;
};

/// A result file write failed mid-stream (disk full, pipe closed, ...).
/// `rows_written` says how many data rows made it out before the
/// failure, so callers can report partial output instead of a mystery
/// truncated file.
class SinkWriteError : public std::runtime_error {
 public:
  SinkWriteError(const std::string& what, std::size_t rows_written)
      : std::runtime_error(what), rows_written_(rows_written) {}

  std::size_t rows_written() const { return rows_written_; }

 private:
  std::size_t rows_written_;
};

/// Looks up a metric by name; contract-checked (a missing metric is a
/// runner bug, not a data condition).
double Metric(const JobResult& result, std::string_view name);
bool HasMetric(const JobResult& result, std::string_view name);

class ResultSink {
 public:
  /// Captures the spec's parameter columns and, from `jobs`, the echo
  /// values for every row.
  ResultSink(const SweepSpec& spec, const std::vector<SweepJob>& jobs);

  /// Header: job, status, <param columns...>, <metric columns...>.
  /// Metric columns come from the first completed row (every runner
  /// emits the same set for one kind).
  std::vector<std::string> Header(
      const std::vector<JobResult>& results) const;

  /// One CSV line per job, index order, "%.17g"-exact numbers. The
  /// stream is flushed and checked every batch of rows and at the end;
  /// a bad stream raises SinkWriteError with the row count that made
  /// it out (the path overloads prefix the file name).
  void WriteCsv(std::ostream& os,
                const std::vector<JobResult>& results) const;
  void WriteCsv(const std::string& path,
                const std::vector<JobResult>& results) const;

  /// JSON array of row objects (same content as the CSV); same
  /// flush-and-check / SinkWriteError behavior as WriteCsv.
  void WriteJsonRows(std::ostream& os,
                     const std::vector<JobResult>& results) const;
  void WriteJsonRows(const std::string& path,
                     const std::vector<JobResult>& results) const;

  // --- Incremental emission (the streaming sweep service) ---
  // WriteCsv is implemented on top of these two, so a stream assembled
  // row by row as jobs complete is byte-identical to the batch file by
  // construction.

  /// The CSV header line (with trailing newline). `first_ok` is the
  /// first `ok && !skipped` result in index order, or nullptr when the
  /// sweep produced none (header then carries no metric columns).
  std::string CsvHeaderLine(const JobResult* first_ok) const;

  /// One CSV data row (with trailing newline) for job `result.index`.
  std::string CsvRowLine(const JobResult& result,
                         std::size_t metric_cols) const;

  /// Metric-column count implied by `first_ok` (see CsvHeaderLine).
  static std::size_t MetricColumns(const JobResult* first_ok);

  std::size_t num_jobs() const { return jobs_.size(); }

  /// Rows between flush-and-check points in WriteCsv/WriteJsonRows.
  static constexpr std::size_t kFlushEveryRows = 64;

 private:
  std::vector<std::string> param_columns_;
  std::vector<std::vector<std::pair<std::string, std::string>>> jobs_;
};

}  // namespace ds::runtime
