// Declarative sweep specification: a scenario kind, a base point and
// either a cartesian axis grid or an explicit point list, expanded into
// an ordered job sequence with per-job deterministic RNG seeds.
//
// JSON schema (see DESIGN.md §9):
//
//   {
//     "name": "fig05a",
//     "kind": "estimate",          // estimate | tsp_curve | tsp_perf |
//                                  // boost | characterize | speedup |
//                                  // boost_transient
//     "seed": 1,                   // optional, default 1
//     "base": {"node": "16nm", "tdp_w": 220},   // optional overrides
//     "axes": {"app": ["x264", "ferret"], "freq_ghz": [2.8, 3.6]},
//     "points": [{"app": "x264"}, ...]          // alternative to axes
//   }
//
// Exactly one of "axes"/"points" must be present. Axis expansion is
// cartesian in declaration order with the first axis outermost, so the
// job order matches the nested for-loops of the pre-engine benches.
// Every job derives an rng seed by SplitMix64-mixing the spec seed with
// the job index: stable under resume and independent of thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ds::runtime {

enum class SweepKind {
  kEstimate,      // dark-silicon estimate under TDP or temperature
  kTspCurve,      // TSP(m) budget for one active count
  kTspPerf,       // Fig. 10-style TSP-budgeted performance
  kBoost,         // boosting vs constant-frequency comparison
  kCharacterize,  // uarch first-principles app characterization
  kSpeedup,       // lock/barrier speed-up curve + Amdahl fit
  kBoostTransient,  // closed-loop transient boosting (batchable stepping)
};

const char* SweepKindName(SweepKind kind);
SweepKind SweepKindByName(std::string_view name);

/// One fully bound scenario. Fields not consumed by a kind are ignored
/// by its runner; defaults mirror the CLI/bench defaults.
struct SweepPoint {
  std::string node = "16nm";
  std::size_t cores = 0;  // 0 = the node's paper platform core count
  std::string app = "x264";
  double freq_ghz = 0.0;  // 0 = the node's nominal frequency
  std::string constraint = "tdp";  // estimate: "tdp" | "thermal"
  double tdp_w = 185.0;
  std::string mapping = "contiguous";  // or "worst"/"spread" (tsp_curve)
  std::size_t threads = 8;             // threads per instance
  std::size_t instances = 1;           // boost
  double power_cap_w = 500.0;          // boost
  double dark_pct = 0.0;               // tsp_perf
  std::size_t count = 1;               // tsp_curve active cores
  double tdtm_c = 0.0;                 // 0 = platform default (80 C)
  double duration_s = 0.25;            // boost_transient simulated time
  double control_ms = 1.0;  // boost_transient control period = step dt
};

/// An expanded job: the bound point plus its stable identity. `params`
/// echoes the axis/point fields that vary in this sweep, in declaration
/// order, for result rows and checkpoint records.
struct SweepJob {
  std::size_t index = 0;
  std::uint64_t rng_seed = 0;
  SweepPoint point;
  std::vector<std::pair<std::string, std::string>> params;
};

class SweepSpec {
 public:
  SweepSpec() = default;
  SweepSpec(std::string name, SweepKind kind);

  /// Parses and validates a JSON spec; contract-checked at this
  /// boundary (unknown kind/field, empty axis, axes+points conflict
  /// all throw ds::ContractViolation).
  static SweepSpec FromJsonText(std::string_view text);
  static SweepSpec FromJsonFile(const std::string& path);

  /// Builder API for programmatic specs (the converted benches).
  /// `Set` binds a base-point field; `Axis` appends a swept axis.
  SweepSpec& Set(const std::string& field, const std::string& value);
  SweepSpec& Set(const std::string& field, double value);
  SweepSpec& Axis(const std::string& field,
                  std::vector<std::string> values);
  SweepSpec& Axis(const std::string& field, std::vector<double> values);
  SweepSpec& Point(
      std::vector<std::pair<std::string, std::string>> fields);

  const std::string& name() const { return name_; }
  SweepKind kind() const { return kind_; }
  std::uint64_t seed() const { return seed_; }
  void set_seed(std::uint64_t seed) { seed_ = seed; }

  /// Column names for the varying parameters, in declaration order.
  std::vector<std::string> ParamColumns() const;

  /// Expands the grid (or point list) into the ordered job sequence.
  std::vector<SweepJob> Jobs() const;

  /// Content hash over kind, seed, and the expanded job parameters;
  /// checkpoints bind to this so a journal can only resume its own
  /// sweep.
  std::string Fingerprint() const;

 private:
  struct AxisDef {
    std::string field;
    std::vector<std::string> values;  // canonical string form
  };

  std::string name_ = "sweep";
  SweepKind kind_ = SweepKind::kEstimate;
  std::uint64_t seed_ = 1;
  std::vector<std::pair<std::string, std::string>> base_;
  std::vector<AxisDef> axes_;
  std::vector<std::vector<std::pair<std::string, std::string>>> points_;
};

/// Canonical string form for numeric spec values: shortest round-trip
/// ("%.17g" trimmed), used for params echoed into rows/checkpoints.
std::string CanonicalNumber(double v);

/// SplitMix64 mix used for per-job seeds (exposed for tests).
std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t index);

}  // namespace ds::runtime
