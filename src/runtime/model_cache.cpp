#include "runtime/model_cache.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "core/tsp.hpp"
#include "telemetry/event_bus.hpp"
#include "telemetry/scoped.hpp"
#include "util/contracts.hpp"

namespace ds::runtime {

namespace {

/// Content key: every scalar that determines the RC network. Two
/// (floorplan, package) pairs with equal values share one entry.
std::vector<double> ContentKey(const thermal::Floorplan& fp,
                               const thermal::PackageParams& pkg) {
  return {
      static_cast<double>(fp.rows()),
      static_cast<double>(fp.cols()),
      fp.core_width_mm(),
      fp.core_height_mm(),
      pkg.die_thickness,
      pkg.die_conductivity,
      pkg.die_specific_heat,
      pkg.tim_thickness,
      pkg.tim_conductivity,
      pkg.tim_specific_heat,
      pkg.spreader_side,
      pkg.spreader_thickness,
      pkg.spreader_conductivity,
      pkg.spreader_specific_heat,
      pkg.sink_side,
      pkg.sink_thickness,
      pkg.sink_conductivity,
      pkg.sink_specific_heat,
      pkg.convection_resistance,
      pkg.convection_capacitance,
      pkg.ambient_c,
  };
}

/// SplitMix64 finalizer (same mixer the sweep engine uses for jitter).
std::uint64_t MixBits(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t KeyHash(const std::vector<double>& key) {
  std::uint64_t h = 0x8f3a9c1d2e5b7a40ull ^ key.size();
  for (const double v : key) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    h = MixBits(h ^ bits);
  }
  // Zero means "no hash" in the event schema; keep real hashes nonzero.
  return h == 0 ? 1 : h;
}

}  // namespace

std::uint64_t ModelContentHash(const thermal::Floorplan& fp,
                               const thermal::PackageParams& pkg) {
  return KeyHash(ContentKey(fp, pkg));
}

std::shared_ptr<ModelCache::Entry> ModelCache::GetEntry(
    const thermal::Floorplan& fp, const thermal::PackageParams& pkg,
    bool count_stats) {
  std::vector<double> key = ContentKey(fp, pkg);
  const std::uint64_t key_hash = KeyHash(key);
  std::shared_ptr<Entry> entry;
  bool created = false;
  {
    const ds::MutexLock lock(mu_);
    std::shared_ptr<Entry>& slot = entries_[std::move(key)];
    if (!slot) {
      slot = std::make_shared<Entry>();
      slot->key_hash = key_hash;
      created = true;
    }
    slot->last_use = ++use_counter_;
    entry = slot;
  }
  if (count_stats) {
    if (created) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      DS_TELEM_COUNT("modelcache.misses", 1);
    } else {
      hits_.fetch_add(1, std::memory_order_relaxed);
      DS_TELEM_COUNT("modelcache.hits", 1);
    }
  }
  // Exactly one caller builds; concurrent requesters block here until
  // the assets exist. The influence matrix is forced up front so the
  // shared solver is strictly read-only afterwards.
  std::call_once(entry->once, [&entry, &fp, &pkg] {
    DS_TELEM_SPAN("runtime", "modelcache_build",
                  ds::telemetry::TraceLevel::kSpan);
    DS_TELEM_TIMER("modelcache.build_us");
    auto model = std::make_shared<const thermal::RcModel>(fp, pkg);
    auto solver = std::make_shared<const thermal::SteadyStateSolver>(*model);
    solver->InfluenceMatrix();
    // The propagator set starts empty; each (model, dt) folds lazily on
    // the first transient simulator that needs it and is then shared by
    // every job in the sweep.
    auto propagators = std::make_shared<const thermal::PropagatorSet>();
    entry->assets = ThermalAssets{std::move(model), std::move(solver),
                                  std::move(propagators)};
    entry->built.store(true, std::memory_order_release);
  });
  EnforceBudget(entry.get());
  return entry;
}

std::size_t ModelCache::EntryBytes(const Entry& entry) {
  if (!entry.built.load(std::memory_order_acquire)) return 0;
  const ThermalAssets& a = entry.assets;
  const std::size_t n = a.model->num_nodes();
  const std::size_t cores = a.model->num_cores();
  // Dense G + C diagonal in the model, the solver's LU of the n x n
  // system plus its forced cores x cores influence matrix, and the
  // folded propagators. Element counts, not allocator overhead -- the
  // budget is a working-set cap, not an allocator audit.
  std::size_t doubles = n * n;           // conductance
  doubles += n;                          // capacitance diagonal
  doubles += n * n + n;                  // LU factors + pivots/scratch
  doubles += cores * cores;              // influence matrix
  return sizeof(double) * doubles + a.propagators->ApproxBytes();
}

void ModelCache::EnforceBudget(const Entry* pinned) {
  // Dropped entries are destroyed outside mu_: their destructors can
  // free O(n^2) matrices, and in-flight users may hold the last other
  // reference anyway.
  std::vector<std::shared_ptr<Entry>> dropped;
  std::vector<std::pair<std::uint64_t, std::size_t>> evicted;  // hash, bytes
  {
    const ds::MutexLock lock(mu_);
    struct Candidate {
      std::map<std::vector<double>, std::shared_ptr<Entry>>::iterator it;
      std::size_t size = 0;
      std::uint64_t last_use = 0;
    };
    std::uint64_t total = 0;
    std::vector<Candidate> victims;
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      const std::size_t size = EntryBytes(*it->second);
      total += size;
      if (it->second.get() != pinned)
        victims.push_back({it, size, it->second->last_use});
    }
    if (budget_bytes_ != 0 && total > budget_bytes_) {
      std::sort(victims.begin(), victims.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.last_use < b.last_use;
                });
      for (Candidate& v : victims) {
        if (total <= budget_bytes_) break;
        total -= v.size;
        evicted.emplace_back(v.it->second->key_hash, v.size);
        dropped.push_back(std::move(v.it->second));
        entries_.erase(v.it);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        DS_TELEM_COUNT("modelcache.evictions", 1);
      }
    }
    bytes_.store(total, std::memory_order_relaxed);
    DS_TELEM_GAUGE_SET("modelcache.bytes", static_cast<double>(total));
  }
  if (telemetry::EventsOn()) {
    for (const auto& [hash, bytes] : evicted) {
      telemetry::Event e =
          telemetry::MakeEvent(telemetry::EventKind::kCacheEvict);
      e.model_hash = hash;
      e.AddField("bytes", static_cast<double>(bytes));
      telemetry::Emit(e);
    }
  }
}

ThermalAssets ModelCache::Get(const thermal::Floorplan& fp,
                              const thermal::PackageParams& pkg) {
  return GetEntry(fp, pkg, /*count_stats=*/true)->assets;
}

void ModelCache::InstallThermal(arch::Platform& platform) {
  ThermalAssets assets = Get(platform.floorplan());
  platform.AdoptThermalAssets(std::move(assets.model),
                              std::move(assets.solver),
                              std::move(assets.propagators));
}

double ModelCache::TspForEntry(const arch::Platform& platform, std::size_t m,
                               char kind) {
  DS_REQUIRE(m >= 1 && m <= platform.num_cores(),
             "ModelCache: TSP active count " << m << " out of 1.."
                                             << platform.num_cores());
  const std::shared_ptr<Entry> entry =
      GetEntry(platform.floorplan(), thermal::PackageParams{},
               /*count_stats=*/false);
  const std::pair<char, std::size_t> key{kind, m};
  {
    const ds::MutexLock lock(entry->tsp_mu);
    const auto it = entry->tsp.find(key);
    if (it != entry->tsp.end()) {
      tsp_hits_.fetch_add(1, std::memory_order_relaxed);
      DS_TELEM_COUNT("modelcache.tsp_hits", 1);
      return it->second;
    }
  }
  tsp_misses_.fetch_add(1, std::memory_order_relaxed);
  DS_TELEM_COUNT("modelcache.tsp_misses", 1);
  const core::Tsp tsp(platform);
  const double budget = kind == 'w' ? tsp.WorstCase(m) : tsp.BestCase(m);
  const ds::MutexLock lock(entry->tsp_mu);
  entry->tsp.emplace(key, budget);
  return budget;
}

double ModelCache::TspWorstCase(const arch::Platform& platform,
                                std::size_t m) {
  return TspForEntry(platform, m, 'w');
}

double ModelCache::TspBestCase(const arch::Platform& platform,
                               std::size_t m) {
  return TspForEntry(platform, m, 'b');
}

void ModelCache::Clear() {
  const ds::MutexLock lock(mu_);
  entries_.clear();
  bytes_.store(0, std::memory_order_relaxed);
}

void ModelCache::set_budget_bytes(std::size_t bytes) {
  const ds::MutexLock lock(mu_);
  budget_bytes_ = bytes;
}

std::size_t ModelCache::budget_bytes() const {
  const ds::MutexLock lock(mu_);
  return budget_bytes_;
}

ModelCache::Stats ModelCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.tsp_hits = tsp_hits_.load(std::memory_order_relaxed);
  s.tsp_misses = tsp_misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  return s;
}

ModelCache& ModelCache::Process() {
  // Intentionally leaked process-wide singleton (same lifetime pattern
  // as telemetry::Registry): sweeps may run during static destruction
  // of other objects.
  // ds_lint: allow(static-mutable)
  static ModelCache* cache = new ModelCache();  // ds_lint: allow(naked-new)
  return *cache;
}

}  // namespace ds::runtime
