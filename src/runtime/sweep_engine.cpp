#include "runtime/sweep_engine.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <fstream>
#include <mutex>
#include <thread>

#include "runtime/scenarios.hpp"
#include "telemetry/scoped.hpp"
#include "util/contracts.hpp"

namespace ds::runtime {

namespace {

/// Per-worker job queue. Owner pops LIFO from the back; thieves take
/// FIFO from the front. Coarse-grained (one mutex per deque) is plenty:
/// jobs are milliseconds-to-seconds, so queue ops are noise.
struct WorkerQueue {
  std::mutex mu;
  std::deque<std::size_t> jobs;  // job indices

  bool PopBack(std::size_t* out) {
    const std::lock_guard<std::mutex> lock(mu);
    if (jobs.empty()) return false;
    *out = jobs.back();
    jobs.pop_back();
    return true;
  }

  bool StealFront(std::size_t* out) {
    const std::lock_guard<std::mutex> lock(mu);
    if (jobs.empty()) return false;
    *out = jobs.front();
    jobs.pop_front();
    return true;
  }
};

struct SharedState {
  const SweepSpec* spec = nullptr;
  const std::vector<SweepJob>* jobs = nullptr;
  ModelCache* cache = nullptr;
  std::vector<JobResult>* results = nullptr;
  std::vector<WorkerQueue>* queues = nullptr;

  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::size_t> completed{0};
  std::size_t stop_after = 0;  // 0 = unlimited

  std::mutex journal_mu;
  std::ofstream* journal = nullptr;
};

/// Runs one job: telemetry span, scenario dispatch, failure capture,
/// journal append. Never throws.
void ExecuteJob(SharedState& state, std::size_t index) {
  const SweepJob& job = (*state.jobs)[index];
  JobResult& result = (*state.results)[index];
  const auto start = std::chrono::steady_clock::now();
  {
    DS_TELEM_SPAN_ARG("runtime", "sweep_job",
                      ds::telemetry::TraceLevel::kSpan, "job",
                      static_cast<double>(index));
    try {
      RunScenario(state.spec->kind(), job, *state.cache, &result);
    } catch (const std::exception& e) {
      result = JobResult{};
      result.index = index;
      result.error = e.what();
    }
  }
  result.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  if (state.journal != nullptr) {
    const std::lock_guard<std::mutex> lock(state.journal_mu);
    *state.journal << JournalLine(result) << "\n";
    state.journal->flush();
  }
  state.completed.fetch_add(1, std::memory_order_relaxed);
}

void WorkerLoop(SharedState& state, std::size_t self) {
  std::vector<WorkerQueue>& queues = *state.queues;
  const std::size_t workers = queues.size();
  for (;;) {
    if (state.stop_after != 0 &&
        state.completed.load(std::memory_order_relaxed) >= state.stop_after)
      return;
    std::size_t index = 0;
    if (queues[self].PopBack(&index)) {
      ExecuteJob(state, index);
      continue;
    }
    bool stole = false;
    for (std::size_t k = 1; k < workers && !stole; ++k) {
      if (queues[(self + k) % workers].StealFront(&index)) {
        state.steals.fetch_add(1, std::memory_order_relaxed);
        stole = true;
      }
    }
    if (!stole) return;  // every queue empty: done
    ExecuteJob(state, index);
  }
}

}  // namespace

SweepEngine::SweepEngine(SweepSpec spec, SweepOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {}

SweepOutcome SweepEngine::Run() {
  DS_TELEM_SPAN("runtime", "sweep_run", ds::telemetry::TraceLevel::kSpan);
  const auto start = std::chrono::steady_clock::now();

  const std::vector<SweepJob> jobs = spec_.Jobs();
  DS_REQUIRE(!jobs.empty(), "SweepEngine: spec expands to zero jobs");

  ModelCache& cache =
      options_.cache != nullptr ? *options_.cache : ModelCache::Process();
  const ModelCache::Stats cache_before = cache.stats();

  SweepOutcome out;
  out.results.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out.results[i].index = i;
    out.results[i].error = "not executed";
  }
  out.stats.jobs_total = jobs.size();

  // Resume: mark journaled jobs done so the queues never see them.
  std::vector<bool> done(jobs.size(), false);
  if (options_.resume) {
    DS_REQUIRE(!options_.checkpoint_path.empty(),
               "SweepEngine: resume requires a checkpoint path");
    std::vector<JobResult> completed;
    if (LoadJournal(options_.checkpoint_path, spec_.Fingerprint(),
                    &completed)) {
      for (JobResult& r : completed) {
        DS_REQUIRE(r.index < jobs.size(),
                   "SweepEngine: journal job " << r.index << " out of range");
        if (!done[r.index]) ++out.stats.jobs_resumed;
        done[r.index] = true;  // last line wins
        out.results[r.index] = std::move(r);
      }
    }
  }

  // Open (or continue) the journal before spawning workers so an
  // unwritable path fails the run up front, not mid-sweep.
  std::ofstream journal;
  if (!options_.checkpoint_path.empty()) {
    const bool fresh = !options_.resume || out.stats.jobs_resumed == 0;
    journal.open(options_.checkpoint_path,
                 std::ios::binary |
                     (fresh ? std::ios::trunc : std::ios::app));
    DS_REQUIRE(journal.good(), "SweepEngine: cannot open checkpoint '"
                                   << options_.checkpoint_path << "'");
    if (fresh) {
      journal << JournalHeaderLine(spec_) << "\n";
      journal.flush();
    }
  }

  std::size_t threads = options_.threads;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;

  // Pending jobs, round-robin across worker deques in index order.
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < jobs.size(); ++i)
    if (!done[i]) pending.push_back(i);
  threads = std::min(threads, std::max<std::size_t>(pending.size(), 1));

  std::vector<WorkerQueue> queues(threads);
  for (std::size_t i = 0; i < pending.size(); ++i)
    queues[i % threads].jobs.push_front(pending[i]);
  // push_front + owner PopBack => each worker drains its slice in
  // ascending index order, matching the serial engine's traversal.

  SharedState state;
  state.spec = &spec_;
  state.jobs = &jobs;
  state.cache = &cache;
  state.results = &out.results;
  state.queues = &queues;
  state.stop_after = options_.stop_after_jobs;
  if (journal.is_open()) state.journal = &journal;

  if (threads == 1) {
    WorkerLoop(state, 0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w)
      pool.emplace_back([&state, w] { WorkerLoop(state, w); });
    for (std::thread& t : pool) t.join();
  }

  const ModelCache::Stats cache_after = cache.stats();
  out.stats.threads_used = threads;
  out.stats.steals = state.steals.load();
  out.stats.cache_hits = cache_after.hits - cache_before.hits;
  out.stats.cache_misses = cache_after.misses - cache_before.misses;
  for (const JobResult& r : out.results) {
    if (r.ok) {
      if (r.skipped) ++out.stats.jobs_skipped;
    } else if (r.error == "not executed") {
      ++out.stats.jobs_pending;
    } else {
      ++out.stats.jobs_failed;
    }
  }
  out.stats.jobs_executed = jobs.size() - out.stats.jobs_resumed -
                            out.stats.jobs_pending;
  out.stats.wall_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();

  DS_ENSURE(out.results.size() == jobs.size(),
            "SweepEngine: result/job count mismatch");
  return out;
}

}  // namespace ds::runtime
