#include "runtime/sweep_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <exception>
#include <memory>
#include <thread>

#include "runtime/scenarios.hpp"
#include "telemetry/event_bus.hpp"
#include "telemetry/heartbeat.hpp"
#include "telemetry/scoped.hpp"
#include "util/contracts.hpp"
#include "util/lock_levels.hpp"
#include "util/lu.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace ds::runtime {

namespace {

using Clock = std::chrono::steady_clock;

/// Internal signal: the watchdog cancelled this attempt (or a chaos
/// delay was cut short by cancellation). Not a std::exception on
/// purpose -- nothing but the attempt loop may catch it.
struct JobTimeout {};

/// SplitMix64 finalizer (same mixing as the sweep spec / chaos seeds)
/// for deterministic backoff jitter.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Per-worker job queue. Owner pops LIFO from the back; thieves take
/// FIFO from the front. Coarse-grained (one mutex per deque) is plenty:
/// jobs are milliseconds-to-seconds, so queue ops are noise.
struct WorkerQueue {
  ds::Mutex mu{ds::locks::kSweepQueue};
  std::deque<std::size_t> jobs DS_GUARDED_BY(mu);  // job indices

  void PushFront(std::size_t index) {
    const ds::MutexLock lock(mu);
    jobs.push_front(index);
  }

  bool PopBack(std::size_t* out) {
    const ds::MutexLock lock(mu);
    if (jobs.empty()) return false;
    *out = jobs.back();
    jobs.pop_back();
    return true;
  }

  bool StealFront(std::size_t* out) {
    const ds::MutexLock lock(mu);
    if (jobs.empty()) return false;
    *out = jobs.front();
    jobs.pop_front();
    return true;
  }
};

/// Deadline enforcement: one slot per worker holding the attempt's
/// cancel token and absolute deadline; one watchdog thread scanning
/// the slots. The watchdog only ever *cancels tokens* -- the worker
/// owns its result slot, so there is no data race on rows.
class Watchdog {
 public:
  Watchdog(std::size_t workers, double deadline_ms)
      : deadline_ms_(deadline_ms) {
    {
      // The scanner thread starts below; locking keeps the guarded
      // write visible to the thread-safety analysis.
      const ds::MutexLock lock(mu_);
      slots_.resize(workers);
    }
    thread_ = std::thread([this] { Loop(); });
  }

  ~Watchdog() {
    {
      const ds::MutexLock lock(mu_);
      shutdown_ = true;
    }
    cv_.NotifyAll();
    thread_.join();
  }

  void Begin(std::size_t worker,
             std::shared_ptr<faults::CancelToken> token) {
    const ds::MutexLock lock(mu_);
    slots_[worker].token = std::move(token);
    slots_[worker].deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               deadline_ms_));
  }

  void End(std::size_t worker) {
    const ds::MutexLock lock(mu_);
    slots_[worker].token.reset();
  }

 private:
  struct Slot {
    std::shared_ptr<faults::CancelToken> token;  // null = idle
    Clock::time_point deadline;
  };

  void Loop() {
    // Tick fast enough that a cancellation lands well inside the
    // deadline's own order of magnitude, but never busier than 1 kHz.
    const auto tick = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(
            std::clamp(deadline_ms_ / 4.0, 1.0, 50.0)));
    ds::MutexLock lock(mu_);
    while (!shutdown_) {
      const auto wake = Clock::now() + tick;
      while (!shutdown_) {
        if (cv_.WaitUntil(lock, wake)) break;  // tick elapsed
      }
      if (shutdown_) return;
      const auto now = Clock::now();
      for (Slot& slot : slots_) {
        if (slot.token != nullptr && now >= slot.deadline) {
          // Cancel() takes the token's own leaf-level mutex beneath
          // mu_ (kWatchdog -> kCancelToken, descending).
          slot.token->Cancel();
          slot.token.reset();  // cancel once; worker will End() anyway
        }
      }
    }
  }

  ds::Mutex mu_{ds::locks::kWatchdog};
  ds::CondVar cv_;
  std::vector<Slot> slots_ DS_GUARDED_BY(mu_);
  double deadline_ms_;
  bool shutdown_ DS_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

struct SharedState {
  const SweepSpec* spec = nullptr;
  const std::vector<SweepJob>* jobs = nullptr;
  ModelCache* cache = nullptr;
  std::vector<JobResult>* results = nullptr;
  std::vector<WorkerQueue>* queues = nullptr;

  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::size_t> completed{0};
  std::size_t stop_after = 0;  // 0 = unlimited

  // Resilience knobs + counters.
  std::size_t max_attempts = 1;
  double backoff_ms = 0.0;
  Watchdog* watchdog = nullptr;  // null when job_deadline_ms == 0
  const faults::ChaosInjector* chaos = nullptr;
  ds::Mutex chaos_log_mu{ds::locks::kChaosLog};
  faults::FaultLog* chaos_log DS_PT_GUARDED_BY(chaos_log_mu) = nullptr;
  std::atomic<std::size_t> jobs_retried{0};
  std::atomic<std::size_t> jobs_timed_out{0};
  std::atomic<std::size_t> jobs_quarantined{0};
  std::atomic<std::uint64_t> retries_total{0};

  ds::Mutex journal_mu{ds::locks::kJournal};
  JournalWriter* journal DS_PT_GUARDED_BY(journal_mu) = nullptr;

  // Observability: engine-emitted job-lifecycle events (resolved from
  // SweepOptions::events or the ambient bus) and the in-flight gauge
  // the heartbeat sampler reads.
  telemetry::EventBus* events = nullptr;
  std::atomic<std::size_t> in_flight{0};

  // Streaming hook + cooperative cancellation (see SweepOptions).
  const std::function<void(const JobResult&)>* on_result = nullptr;
  const faults::CancelToken* cancel = nullptr;
};

/// Publishes to the engine's resolved bus; no-op without one. Dropped
/// events are counted by the bus, never reported here -- observability
/// must not steer the run.
void PublishEvent(const SharedState& state, const telemetry::Event& event) {
  if (state.events != nullptr) state.events->Publish(event);
}

/// Exponential backoff with deterministic +/-25% jitter, capped at 1 s.
void BackoffBeforeRetry(const SharedState& state, std::size_t index,
                        std::size_t attempt) {
  if (state.backoff_ms <= 0.0) return;
  double wait_ms = state.backoff_ms *
                   std::pow(2.0, static_cast<double>(attempt - 1));
  util::Rng rng(Mix(Mix(static_cast<std::uint64_t>(index) ^
                        0x626b6f66ULL) ^  // distinct stream from chaos
                    static_cast<std::uint64_t>(attempt)));
  wait_ms *= rng.Uniform(0.75, 1.25);
  wait_ms = std::min(wait_ms, 1000.0);
  if (state.events != nullptr) {
    telemetry::Event e = telemetry::MakeEvent(
        telemetry::EventKind::kBackoff, static_cast<std::int64_t>(index),
        static_cast<std::int32_t>(attempt));
    e.AddField("wait_ms", wait_ms);
    PublishEvent(state, e);
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(wait_ms));
}

/// Runs one job to its final outcome: up to max_attempts attempts with
/// chaos injection, deadline enforcement, retry classification and
/// quarantine; then journal append. Never throws.
void ExecuteJob(SharedState& state, std::size_t worker, std::size_t index) {
  const SweepJob& job = (*state.jobs)[index];
  JobResult& result = (*state.results)[index];
  const auto start = Clock::now();
  bool ever_timed_out = false;
  state.in_flight.fetch_add(1, std::memory_order_relaxed);
  {
    DS_TELEM_SPAN_ARG("runtime", "sweep_job",
                      ds::telemetry::TraceLevel::kSpan, "job",
                      static_cast<double>(index));
    for (std::size_t attempt = 1;; ++attempt) {
      // Attempt-scoped span carrying the same correlation pair as the
      // events, so Perfetto can line a retry chain up against its
      // chaos injections and the events file.
      DS_TELEM_SPAN_ARG2("runtime", "sweep_attempt",
                         ds::telemetry::TraceLevel::kSpan, "job",
                         static_cast<double>(index), "attempt",
                         static_cast<double>(attempt));
      if (state.events != nullptr)
        PublishEvent(state, telemetry::MakeEvent(
                                telemetry::EventKind::kStarted,
                                static_cast<std::int64_t>(index),
                                static_cast<std::int32_t>(attempt)));
      result = JobResult{};  // each attempt starts from a clean row
      result.index = index;
      result.attempts = attempt;
      auto token = std::make_shared<faults::CancelToken>();
      if (state.watchdog != nullptr) state.watchdog->Begin(worker, token);
      bool transient = false;
      try {
        if (state.chaos != nullptr) {
          const faults::ChaosDecision decision =
              state.chaos->Decide(index, attempt - 1);
          if ((decision.fail || decision.delay) &&
              state.chaos_log != nullptr) {
            const ds::MutexLock lock(state.chaos_log_mu);
            faults::ChaosInjector::LogDecision(*state.chaos_log, decision,
                                               index, attempt - 1);
          }
          if ((decision.fail || decision.delay) && state.events != nullptr) {
            telemetry::Event e = telemetry::MakeEvent(
                telemetry::EventKind::kChaosInject,
                static_cast<std::int64_t>(index),
                static_cast<std::int32_t>(attempt));
            e.SetDetail(decision.fail ? "fail" : "delay");
            if (decision.delay) e.AddField("delay_ms", decision.delay_ms);
            PublishEvent(state, e);
          }
          if (decision.delay && !token->SleepFor(decision.delay_ms))
            throw JobTimeout{};
          if (decision.fail)
            throw util::SolverError("chaos: injected transient job failure");
        }
        RunScenario(state.spec->kind(), job, *state.cache, &result);
        // Scenario runners are pure compute and cannot observe the
        // token mid-run; an overrun is detected here and the (late)
        // result is discarded so rows never depend on host speed vs.
        // an enabled deadline.
        if (token->cancelled()) throw JobTimeout{};
      } catch (const JobTimeout&) {
        transient = true;
        ever_timed_out = true;
        result = JobResult{};
        result.index = index;
        result.attempts = attempt;
        result.error = "deadline exceeded";
        DS_TELEM_COUNT("sweep.job_timeouts", 1);
      } catch (const util::SolverError& e) {
        transient = true;
        result = JobResult{};
        result.index = index;
        result.attempts = attempt;
        result.error = e.what();
      } catch (const std::exception& e) {
        result = JobResult{};
        result.index = index;
        result.attempts = attempt;
        result.error = e.what();
      }
      if (state.watchdog != nullptr) state.watchdog->End(worker);
      result.timed_out = ever_timed_out;
      if (result.ok || !transient) break;  // success or permanent failure
      if (attempt >= state.max_attempts) {
        result.quarantined = true;
        if (state.events != nullptr) {
          telemetry::Event e = telemetry::MakeEvent(
              telemetry::EventKind::kQuarantined,
              static_cast<std::int64_t>(index),
              static_cast<std::int32_t>(attempt));
          e.SetDetail(result.error);
          PublishEvent(state, e);
        }
        break;
      }
      state.retries_total.fetch_add(1, std::memory_order_relaxed);
      DS_TELEM_COUNT("sweep.retries", 1);
      if (state.events != nullptr) {
        telemetry::Event e = telemetry::MakeEvent(
            telemetry::EventKind::kRetry,
            static_cast<std::int64_t>(index),
            static_cast<std::int32_t>(attempt));
        e.SetDetail(result.error);
        PublishEvent(state, e);
      }
      BackoffBeforeRetry(state, index, attempt);
    }
  }
  if (result.attempts > 1)
    state.jobs_retried.fetch_add(1, std::memory_order_relaxed);
  if (ever_timed_out)
    state.jobs_timed_out.fetch_add(1, std::memory_order_relaxed);
  if (result.quarantined) {
    state.jobs_quarantined.fetch_add(1, std::memory_order_relaxed);
    DS_TELEM_COUNT("sweep.quarantined", 1);
  }
  result.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  if (state.journal != nullptr) {
    const ds::MutexLock lock(state.journal_mu);
    state.journal->Append(JournalLine(result));
  }
  if (state.events != nullptr) {
    telemetry::Event e = telemetry::MakeEvent(
        telemetry::EventKind::kCompleted,
        static_cast<std::int64_t>(index),
        static_cast<std::int32_t>(result.attempts));
    e.SetDetail(result.quarantined ? "quarantined"
                : !result.ok       ? "failed"
                : result.skipped   ? "skipped"
                                   : "ok");
    e.AddField("wall_ms", result.wall_ms);
    PublishEvent(state, e);
  }
  // After the journal append (a crash can't stream a row it would not
  // resume) and outside every engine lock.
  if (state.on_result != nullptr) (*state.on_result)(result);
  state.completed.fetch_add(1, std::memory_order_relaxed);
  state.in_flight.fetch_sub(1, std::memory_order_relaxed);
}

void WorkerLoop(SharedState& state, std::size_t self) {
  std::vector<WorkerQueue>& queues = *state.queues;
  const std::size_t workers = queues.size();
  for (;;) {
    if (state.stop_after != 0 &&
        state.completed.load(std::memory_order_relaxed) >= state.stop_after)
      return;
    if (state.cancel != nullptr && state.cancel->cancelled()) return;
    std::size_t index = 0;
    if (queues[self].PopBack(&index)) {
      ExecuteJob(state, self, index);
      continue;
    }
    bool stole = false;
    for (std::size_t k = 1; k < workers && !stole; ++k) {
      if (queues[(self + k) % workers].StealFront(&index)) {
        state.steals.fetch_add(1, std::memory_order_relaxed);
        stole = true;
      }
    }
    if (!stole) return;  // every queue empty: done
    ExecuteJob(state, self, index);
  }
}

}  // namespace

SweepEngine::SweepEngine(SweepSpec spec, SweepOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {
  options_.chaos.Validate();
}

SweepOutcome SweepEngine::Run() {
  DS_TELEM_SPAN("runtime", "sweep_run", ds::telemetry::TraceLevel::kSpan);
  const auto start = Clock::now();

  const std::vector<SweepJob> jobs = spec_.Jobs();
  DS_REQUIRE(!jobs.empty(), "SweepEngine: spec expands to zero jobs");

  ModelCache& cache =
      options_.cache != nullptr ? *options_.cache : ModelCache::Process();
  if (options_.cache_budget_mb > 0.0)
    cache.set_budget_bytes(static_cast<std::size_t>(
        options_.cache_budget_mb * 1024.0 * 1024.0));
  const ModelCache::Stats cache_before = cache.stats();

  SweepOutcome out;
  out.results.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out.results[i].index = i;
    out.results[i].error = "not executed";
  }
  out.stats.jobs_total = jobs.size();

  // Resume: mark journaled jobs done so the queues never see them.
  // Quarantined journal rows count as done too -- a job that exhausted
  // its budget once is poison until the operator clears the journal.
  std::vector<bool> done(jobs.size(), false);
  if (options_.resume) {
    DS_REQUIRE(!options_.checkpoint_path.empty(),
               "SweepEngine: resume requires a checkpoint path");
    std::vector<JobResult> completed;
    JournalLoadStats load_stats;
    if (LoadJournal(options_.checkpoint_path, spec_.Fingerprint(),
                    &completed, &load_stats)) {
      for (JobResult& r : completed) {
        DS_REQUIRE(r.index < jobs.size(),
                   "SweepEngine: journal job " << r.index << " out of range");
        if (!done[r.index]) ++out.stats.jobs_resumed;
        done[r.index] = true;  // last record wins
        out.results[r.index] = std::move(r);
      }
    }
    out.stats.journal_corrupt_records = load_stats.corrupt_records;
    out.stats.journal_truncated_bytes = load_stats.truncated_bytes;
    out.stats.journal_dedup_drops = load_stats.dedup_drops;
  }

  // Stream resumed rows exactly once each, in index order, before any
  // worker can race new completions into the callback.
  if (options_.on_result) {
    for (std::size_t i = 0; i < jobs.size(); ++i)
      if (done[i]) options_.on_result(out.results[i]);
  }

  // Open (or continue) the journal before spawning workers so an
  // unwritable path fails the run up front, not mid-sweep.
  JournalWriter journal;
  if (!options_.checkpoint_path.empty()) {
    const bool fresh = !options_.resume || out.stats.jobs_resumed == 0;
    journal.Open(options_.checkpoint_path, fresh, options_.journal_sync);
    if (fresh) journal.Append(JournalHeaderLine(spec_));
  }

  std::size_t threads = options_.threads;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;

  // Pending jobs, round-robin across worker deques in index order.
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < jobs.size(); ++i)
    if (!done[i]) pending.push_back(i);
  threads = std::min(threads, std::max<std::size_t>(pending.size(), 1));

  std::vector<WorkerQueue> queues(threads);
  for (std::size_t i = 0; i < pending.size(); ++i)
    queues[i % threads].PushFront(pending[i]);
  // push_front + owner PopBack => each worker drains its slice in
  // ascending index order, matching the serial engine's traversal.

  SharedState state;
  state.spec = &spec_;
  state.jobs = &jobs;
  state.cache = &cache;
  state.results = &out.results;
  state.queues = &queues;
  state.stop_after = options_.stop_after_jobs;
  state.max_attempts = 1 + options_.job_retries;
  state.backoff_ms = options_.retry_backoff_ms;
  if (journal.is_open()) state.journal = &journal;
  if (options_.on_result) state.on_result = &options_.on_result;
  if (options_.cancel != nullptr) state.cancel = options_.cancel.get();
  state.events = options_.events != nullptr ? options_.events
                                            : telemetry::ProcessEventBus();

  if (state.events != nullptr) {
    telemetry::Event e =
        telemetry::MakeEvent(telemetry::EventKind::kRunStart);
    e.AddField("jobs_total", static_cast<double>(jobs.size()));
    e.AddField("jobs_resumed",
               static_cast<double>(out.stats.jobs_resumed));
    e.AddField("threads", static_cast<double>(threads));
    e.SetDetail(spec_.name());
    PublishEvent(state, e);
    for (const std::size_t i : pending)
      PublishEvent(state,
                   telemetry::MakeEvent(telemetry::EventKind::kScheduled,
                                        static_cast<std::int64_t>(i)));
  }

  std::unique_ptr<faults::ChaosInjector> chaos;
  if (options_.chaos.AnyChaosPossible()) {
    chaos = std::make_unique<faults::ChaosInjector>(options_.chaos);
    state.chaos = chaos.get();
    state.chaos_log = &out.chaos_log;
  }

  std::unique_ptr<Watchdog> watchdog;
  if (options_.job_deadline_ms > 0.0) {
    watchdog =
        std::make_unique<Watchdog>(threads, options_.job_deadline_ms);
    state.watchdog = watchdog.get();
  }

  // Progress heartbeat: pure observation of the atomics the workers
  // bump, so the reporter can run alongside any thread count (including
  // the inline single-thread path) without touching results.
  std::unique_ptr<telemetry::HeartbeatReporter> heartbeat;
  if (options_.progress_stream != nullptr || state.events != nullptr) {
    const std::size_t jobs_total = jobs.size();
    const std::size_t jobs_resumed = out.stats.jobs_resumed;
    auto sampler = [&state, &cache, jobs_total, jobs_resumed, start] {
      telemetry::HeartbeatSnapshot snap;
      snap.jobs_total = jobs_total;
      snap.jobs_done =
          jobs_resumed + state.completed.load(std::memory_order_relaxed);
      snap.jobs_in_flight = state.in_flight.load(std::memory_order_relaxed);
      snap.jobs_quarantined =
          state.jobs_quarantined.load(std::memory_order_relaxed);
      snap.retries = state.retries_total.load(std::memory_order_relaxed);
      const ModelCache::Stats cs = cache.stats();
      snap.cache_hits = cs.hits;
      snap.cache_misses = cs.misses;
      snap.cache_bytes = cs.bytes;
      snap.elapsed_s =
          std::chrono::duration<double>(Clock::now() - start).count();
      return snap;
    };
    telemetry::HeartbeatReporter::Options hb;
    hb.period_ms = options_.heartbeat_ms > 0.0 ? options_.heartbeat_ms
                                               : 500.0;
    hb.progress = options_.progress_stream;
    hb.label = spec_.name().empty() ? "sweep" : spec_.name();
    heartbeat = std::make_unique<telemetry::HeartbeatReporter>(
        std::move(sampler), std::move(hb));
  }

  if (threads == 1 && watchdog == nullptr) {
    WorkerLoop(state, 0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w)
      pool.emplace_back([&state, w] { WorkerLoop(state, w); });
    for (std::thread& t : pool) t.join();
  }
  if (heartbeat != nullptr) heartbeat->Stop();
  watchdog.reset();  // stop the scanner before stats are read
  journal.Close();

  const ModelCache::Stats cache_after = cache.stats();
  out.stats.threads_used = threads;
  out.stats.steals = state.steals.load();
  out.stats.cache_hits = cache_after.hits - cache_before.hits;
  out.stats.cache_misses = cache_after.misses - cache_before.misses;
  out.stats.cache_evictions = cache_after.evictions - cache_before.evictions;
  out.stats.cache_bytes = cache_after.bytes;
  out.stats.jobs_retried = state.jobs_retried.load();
  out.stats.jobs_timed_out = state.jobs_timed_out.load();
  out.stats.jobs_quarantined = state.jobs_quarantined.load();
  out.stats.retries_total = state.retries_total.load();
  for (const JobResult& r : out.results) {
    if (r.ok) {
      if (r.skipped) ++out.stats.jobs_skipped;
    } else if (r.error == "not executed") {
      ++out.stats.jobs_pending;
    } else {
      ++out.stats.jobs_failed;
    }
  }
  out.stats.jobs_executed = jobs.size() - out.stats.jobs_resumed -
                            out.stats.jobs_pending;
  out.stats.wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  if (state.events != nullptr) {
    telemetry::Event e = telemetry::MakeEvent(telemetry::EventKind::kRunEnd);
    e.AddField("executed", static_cast<double>(out.stats.jobs_executed));
    e.AddField("failed", static_cast<double>(out.stats.jobs_failed));
    e.AddField("quarantined",
               static_cast<double>(out.stats.jobs_quarantined));
    e.AddField("retries", static_cast<double>(out.stats.retries_total));
    e.AddField("steals", static_cast<double>(out.stats.steals));
    e.AddField("wall_s", out.stats.wall_s);
    e.SetDetail(spec_.name());
    PublishEvent(state, e);
  }

  DS_ENSURE(out.results.size() == jobs.size(),
            "SweepEngine: result/job count mismatch");
  return out;
}

}  // namespace ds::runtime
