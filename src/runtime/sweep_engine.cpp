#include "runtime/sweep_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "runtime/scenarios.hpp"
#include "telemetry/event_bus.hpp"
#include "telemetry/heartbeat.hpp"
#include "telemetry/scoped.hpp"
#include "util/contracts.hpp"
#include "util/lock_levels.hpp"
#include "util/lu.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace ds::runtime {

namespace {

using Clock = std::chrono::steady_clock;

/// Internal signal: the watchdog cancelled this attempt (or a chaos
/// delay was cut short by cancellation). Not a std::exception on
/// purpose -- nothing but the attempt loop may catch it.
struct JobTimeout {};

/// SplitMix64 finalizer (same mixing as the sweep spec / chaos seeds)
/// for deterministic backoff jitter.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// How eagerly the engine forms lockstep cohorts for batchable kinds.
/// The top rung of the thermal kernel ladder (lu -> propagator ->
/// batch), driven by the same DS_THERMAL_KERNEL env var the transient
/// simulator reads, so one knob pins the whole ladder for A/B runs.
enum class BatchMode {
  kOff,     // lu / propagator pinned: scalar lane only
  kAuto,    // batch a cohort key only once >= 2 of its jobs are pending
  kAlways,  // DS_THERMAL_KERNEL=batch: form cohorts eagerly
};

BatchMode ResolveBatchMode() {
  // Read-only env lookup; nothing in this process calls setenv, so the
  // getenv data race concurrency-mt-unsafe guards against cannot occur.
  const char* env = std::getenv("DS_THERMAL_KERNEL");  // NOLINT(concurrency-mt-unsafe)
  if (env != nullptr) {
    const std::string_view name(env);
    if (name == "lu" || name == "propagator") return BatchMode::kOff;
    if (name == "batch") return BatchMode::kAlways;
  }
  return BatchMode::kAuto;
}

/// Per-worker queue of chunk ids. A chunk is one unit of worker work:
/// a singleton job (scalar lane) or a lockstep cohort. Owner pops LIFO
/// from the back; thieves take FIFO from the front. Coarse-grained
/// (one mutex per deque) is plenty: chunks are milliseconds-to-
/// seconds, so queue ops are noise.
struct WorkerQueue {
  ds::Mutex mu{ds::locks::kSweepQueue};
  std::deque<std::size_t> jobs DS_GUARDED_BY(mu);  // chunk ids

  void PushFront(std::size_t index) {
    const ds::MutexLock lock(mu);
    jobs.push_front(index);
  }

  bool PopBack(std::size_t* out) {
    const ds::MutexLock lock(mu);
    if (jobs.empty()) return false;
    *out = jobs.back();
    jobs.pop_back();
    return true;
  }

  bool StealFront(std::size_t* out) {
    const ds::MutexLock lock(mu);
    if (jobs.empty()) return false;
    *out = jobs.front();
    jobs.pop_front();
    return true;
  }
};

/// Deadline enforcement: one slot per worker holding the attempt's
/// cancel token and absolute deadline; one watchdog thread scanning
/// the slots. The watchdog only ever *cancels tokens* -- the worker
/// owns its result slot, so there is no data race on rows.
class Watchdog {
 public:
  Watchdog(std::size_t workers, double deadline_ms)
      : deadline_ms_(deadline_ms) {
    {
      // The scanner thread starts below; locking keeps the guarded
      // write visible to the thread-safety analysis.
      const ds::MutexLock lock(mu_);
      slots_.resize(workers);
    }
    thread_ = std::thread([this] { Loop(); });
  }

  ~Watchdog() {
    {
      const ds::MutexLock lock(mu_);
      shutdown_ = true;
    }
    cv_.NotifyAll();
    thread_.join();
  }

  void Begin(std::size_t worker,
             std::shared_ptr<faults::CancelToken> token) {
    BeginGroup(worker, {std::move(token)});
  }

  /// One deadline for a whole lockstep cohort: members start together,
  /// so the group shares a single expiry. The budget scales with the
  /// group size -- a k-member cohort legitimately takes several times
  /// one job's wall clock (the panel pass amortizes operator traffic,
  /// it does not divide the work k ways), so job_deadline_ms stays
  /// calibrated for single jobs and a healthy cohort never trips it;
  /// k jobs' worth of budget still bounds a hung cohort. On expiry
  /// every member token is cancelled; each member detaches to the
  /// scalar retry ladder individually (see ExecuteCohort).
  void BeginGroup(std::size_t worker,
                  std::vector<std::shared_ptr<faults::CancelToken>> tokens) {
    const double budget_ms =
        deadline_ms_ *
        static_cast<double>(std::max<std::size_t>(tokens.size(), 1));
    const ds::MutexLock lock(mu_);
    slots_[worker].tokens = std::move(tokens);
    slots_[worker].deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               budget_ms));
  }

  void End(std::size_t worker) {
    const ds::MutexLock lock(mu_);
    slots_[worker].tokens.clear();
  }

 private:
  struct Slot {
    // Empty = idle; one token per attempt (scalar) or cohort member.
    std::vector<std::shared_ptr<faults::CancelToken>> tokens;
    Clock::time_point deadline;
  };

  void Loop() {
    // Tick fast enough that a cancellation lands well inside the
    // deadline's own order of magnitude, but never busier than 1 kHz.
    const auto tick = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(
            std::clamp(deadline_ms_ / 4.0, 1.0, 50.0)));
    ds::MutexLock lock(mu_);
    while (!shutdown_) {
      const auto wake = Clock::now() + tick;
      while (!shutdown_) {
        if (cv_.WaitUntil(lock, wake)) break;  // tick elapsed
      }
      if (shutdown_) return;
      const auto now = Clock::now();
      for (Slot& slot : slots_) {
        if (!slot.tokens.empty() && now >= slot.deadline) {
          // Cancel() takes the token's own leaf-level mutex beneath
          // mu_ (kWatchdog -> kCancelToken, descending).
          for (const auto& token : slot.tokens) token->Cancel();
          slot.tokens.clear();  // cancel once; worker will End() anyway
        }
      }
    }
  }

  ds::Mutex mu_{ds::locks::kWatchdog};
  ds::CondVar cv_;
  std::vector<Slot> slots_ DS_GUARDED_BY(mu_);
  double deadline_ms_;
  bool shutdown_ DS_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

struct SharedState {
  const SweepSpec* spec = nullptr;
  const std::vector<SweepJob>* jobs = nullptr;
  ModelCache* cache = nullptr;
  std::vector<JobResult>* results = nullptr;
  std::vector<WorkerQueue>* queues = nullptr;
  // Units of work the queues index into: singleton = scalar job,
  // larger = lockstep cohort (all members share a BatchCohortKey).
  const std::vector<std::vector<std::size_t>>* chunks = nullptr;

  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::size_t> completed{0};
  std::size_t stop_after = 0;  // 0 = unlimited

  // Resilience knobs + counters.
  std::size_t max_attempts = 1;
  double backoff_ms = 0.0;
  Watchdog* watchdog = nullptr;  // null when job_deadline_ms == 0
  const faults::ChaosInjector* chaos = nullptr;
  ds::Mutex chaos_log_mu{ds::locks::kChaosLog};
  faults::FaultLog* chaos_log DS_PT_GUARDED_BY(chaos_log_mu) = nullptr;
  std::atomic<std::size_t> jobs_retried{0};
  std::atomic<std::size_t> jobs_timed_out{0};
  std::atomic<std::size_t> jobs_quarantined{0};
  std::atomic<std::uint64_t> retries_total{0};
  std::atomic<std::size_t> batch_detached{0};

  ds::Mutex journal_mu{ds::locks::kJournal};
  JournalWriter* journal DS_PT_GUARDED_BY(journal_mu) = nullptr;

  // Observability: engine-emitted job-lifecycle events (resolved from
  // SweepOptions::events or the ambient bus) and the in-flight gauge
  // the heartbeat sampler reads.
  telemetry::EventBus* events = nullptr;
  std::atomic<std::size_t> in_flight{0};

  // Streaming hook + cooperative cancellation (see SweepOptions).
  const std::function<void(const JobResult&)>* on_result = nullptr;
  const faults::CancelToken* cancel = nullptr;
};

/// Publishes to the engine's resolved bus; no-op without one. Dropped
/// events are counted by the bus, never reported here -- observability
/// must not steer the run.
void PublishEvent(const SharedState& state, const telemetry::Event& event) {
  if (state.events != nullptr) state.events->Publish(event);
}

/// Exponential backoff with deterministic +/-25% jitter, capped at 1 s.
void BackoffBeforeRetry(const SharedState& state, std::size_t index,
                        std::size_t attempt) {
  if (state.backoff_ms <= 0.0) return;
  double wait_ms = state.backoff_ms *
                   std::pow(2.0, static_cast<double>(attempt - 1));
  util::Rng rng(Mix(Mix(static_cast<std::uint64_t>(index) ^
                        0x626b6f66ULL) ^  // distinct stream from chaos
                    static_cast<std::uint64_t>(attempt)));
  wait_ms *= rng.Uniform(0.75, 1.25);
  wait_ms = std::min(wait_ms, 1000.0);
  if (state.events != nullptr) {
    telemetry::Event e = telemetry::MakeEvent(
        telemetry::EventKind::kBackoff, static_cast<std::int64_t>(index),
        static_cast<std::int32_t>(attempt));
    e.AddField("wait_ms", wait_ms);
    PublishEvent(state, e);
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(wait_ms));
}

/// Final accounting for a job whose result is settled: resilience
/// counters, wall clock, journal append, completion event, streaming
/// callback, completed/in-flight gauges. Shared by the scalar attempt
/// ladder and cohort retirement so both lanes retire rows identically.
void RetireJob(SharedState& state, JobResult& result,
               Clock::time_point start, bool ever_timed_out) {
  if (result.attempts > 1)
    state.jobs_retried.fetch_add(1, std::memory_order_relaxed);
  if (ever_timed_out)
    state.jobs_timed_out.fetch_add(1, std::memory_order_relaxed);
  if (result.quarantined) {
    state.jobs_quarantined.fetch_add(1, std::memory_order_relaxed);
    DS_TELEM_COUNT("sweep.quarantined", 1);
  }
  result.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  if (state.journal != nullptr) {
    const ds::MutexLock lock(state.journal_mu);
    state.journal->Append(JournalLine(result));
  }
  if (state.events != nullptr) {
    telemetry::Event e = telemetry::MakeEvent(
        telemetry::EventKind::kCompleted,
        static_cast<std::int64_t>(result.index),
        static_cast<std::int32_t>(result.attempts));
    e.SetDetail(result.quarantined ? "quarantined"
                : !result.ok       ? "failed"
                : result.skipped   ? "skipped"
                                   : "ok");
    e.AddField("wall_ms", result.wall_ms);
    PublishEvent(state, e);
  }
  // After the journal append (a crash can't stream a row it would not
  // resume) and outside every engine lock.
  if (state.on_result != nullptr) (*state.on_result)(result);
  state.completed.fetch_add(1, std::memory_order_relaxed);
  state.in_flight.fetch_sub(1, std::memory_order_relaxed);
}

/// Runs one job to its final outcome: up to max_attempts attempts with
/// chaos injection, deadline enforcement, retry classification and
/// quarantine; then journal append. Never throws.
void ExecuteJob(SharedState& state, std::size_t worker, std::size_t index) {
  const SweepJob& job = (*state.jobs)[index];
  JobResult& result = (*state.results)[index];
  const auto start = Clock::now();
  bool ever_timed_out = false;
  state.in_flight.fetch_add(1, std::memory_order_relaxed);
  {
    DS_TELEM_SPAN_ARG("runtime", "sweep_job",
                      ds::telemetry::TraceLevel::kSpan, "job",
                      static_cast<double>(index));
    for (std::size_t attempt = 1;; ++attempt) {
      // Attempt-scoped span carrying the same correlation pair as the
      // events, so Perfetto can line a retry chain up against its
      // chaos injections and the events file.
      DS_TELEM_SPAN_ARG2("runtime", "sweep_attempt",
                         ds::telemetry::TraceLevel::kSpan, "job",
                         static_cast<double>(index), "attempt",
                         static_cast<double>(attempt));
      if (state.events != nullptr)
        PublishEvent(state, telemetry::MakeEvent(
                                telemetry::EventKind::kStarted,
                                static_cast<std::int64_t>(index),
                                static_cast<std::int32_t>(attempt)));
      result = JobResult{};  // each attempt starts from a clean row
      result.index = index;
      result.attempts = attempt;
      auto token = std::make_shared<faults::CancelToken>();
      if (state.watchdog != nullptr) state.watchdog->Begin(worker, token);
      bool transient = false;
      try {
        if (state.chaos != nullptr) {
          const faults::ChaosDecision decision =
              state.chaos->Decide(index, attempt - 1);
          if ((decision.fail || decision.delay) &&
              state.chaos_log != nullptr) {
            const ds::MutexLock lock(state.chaos_log_mu);
            faults::ChaosInjector::LogDecision(*state.chaos_log, decision,
                                               index, attempt - 1);
          }
          if ((decision.fail || decision.delay) && state.events != nullptr) {
            telemetry::Event e = telemetry::MakeEvent(
                telemetry::EventKind::kChaosInject,
                static_cast<std::int64_t>(index),
                static_cast<std::int32_t>(attempt));
            e.SetDetail(decision.fail ? "fail" : "delay");
            if (decision.delay) e.AddField("delay_ms", decision.delay_ms);
            PublishEvent(state, e);
          }
          if (decision.delay && !token->SleepFor(decision.delay_ms))
            throw JobTimeout{};
          if (decision.fail)
            throw util::SolverError("chaos: injected transient job failure");
        }
        RunScenario(state.spec->kind(), job, *state.cache, &result);
        // Scenario runners are pure compute and cannot observe the
        // token mid-run; an overrun is detected here and the (late)
        // result is discarded so rows never depend on host speed vs.
        // an enabled deadline.
        if (token->cancelled()) throw JobTimeout{};
      } catch (const JobTimeout&) {
        transient = true;
        ever_timed_out = true;
        result = JobResult{};
        result.index = index;
        result.attempts = attempt;
        result.error = "deadline exceeded";
        DS_TELEM_COUNT("sweep.job_timeouts", 1);
      } catch (const util::SolverError& e) {
        transient = true;
        result = JobResult{};
        result.index = index;
        result.attempts = attempt;
        result.error = e.what();
      } catch (const std::exception& e) {
        result = JobResult{};
        result.index = index;
        result.attempts = attempt;
        result.error = e.what();
      }
      if (state.watchdog != nullptr) state.watchdog->End(worker);
      result.timed_out = ever_timed_out;
      if (result.ok || !transient) break;  // success or permanent failure
      if (attempt >= state.max_attempts) {
        result.quarantined = true;
        if (state.events != nullptr) {
          telemetry::Event e = telemetry::MakeEvent(
              telemetry::EventKind::kQuarantined,
              static_cast<std::int64_t>(index),
              static_cast<std::int32_t>(attempt));
          e.SetDetail(result.error);
          PublishEvent(state, e);
        }
        break;
      }
      state.retries_total.fetch_add(1, std::memory_order_relaxed);
      DS_TELEM_COUNT("sweep.retries", 1);
      if (state.events != nullptr) {
        telemetry::Event e = telemetry::MakeEvent(
            telemetry::EventKind::kRetry,
            static_cast<std::int64_t>(index),
            static_cast<std::int32_t>(attempt));
        e.SetDetail(result.error);
        PublishEvent(state, e);
      }
      BackoffBeforeRetry(state, index, attempt);
    }
  }
  RetireJob(state, result, start, ever_timed_out);
}

/// Runs one lockstep cohort: every member advances through one shared
/// BatchStepPropagator panel pass per control period (see
/// RunBoostTransientCohort). Members are pre-screened to have no chaos
/// injections on any attempt, so a member only leaves the happy path
/// by detaching -- watchdog cancellation or a member-level exception --
/// after which it re-runs through ExecuteJob's full scalar retry
/// ladder. Rows are byte-identical either way (both lanes run the same
/// panel kernels), so detachment costs time, never determinism. Never
/// throws.
void ExecuteCohort(SharedState& state, std::size_t worker,
                   const std::vector<std::size_t>& members) {
  const std::size_t k = members.size();
  const auto start = Clock::now();
  state.in_flight.fetch_add(k, std::memory_order_relaxed);
  std::vector<const SweepJob*> job_ptrs(k, nullptr);
  std::vector<JobResult*> result_ptrs(k, nullptr);
  std::vector<std::shared_ptr<faults::CancelToken>> tokens(k);
  for (std::size_t m = 0; m < k; ++m) {
    const std::size_t index = members[m];
    job_ptrs[m] = &(*state.jobs)[index];
    JobResult& result = (*state.results)[index];
    result = JobResult{};
    result.index = index;
    result.attempts = 1;
    result_ptrs[m] = &result;
    tokens[m] = std::make_shared<faults::CancelToken>();
    // Tagged "cohort" so consumers can tell this lane's start from the
    // untagged scalar kStarted a detached member re-publishes through
    // ExecuteJob -- per-index accounting stays exact either way: one
    // untagged start per scalar attempt, one "cohort" start per cohort
    // membership.
    if (state.events != nullptr) {
      telemetry::Event e = telemetry::MakeEvent(
          telemetry::EventKind::kStarted, static_cast<std::int64_t>(index),
          static_cast<std::int32_t>(1));
      e.SetDetail("cohort");
      PublishEvent(state, e);
    }
  }
  std::vector<bool> detached(k, false);
  bool cohort_failed = false;
  {
    DS_TELEM_SPAN_ARG("runtime", "sweep_cohort",
                      ds::telemetry::TraceLevel::kSpan, "k",
                      static_cast<double>(k));
    if (state.watchdog != nullptr) state.watchdog->BeginGroup(worker, tokens);
    const auto should_detach = [&tokens](std::size_t m) {
      return tokens[m]->cancelled();
    };
    try {
      RunBoostTransientCohort(job_ptrs, *state.cache, result_ptrs,
                              should_detach, &detached);
    } catch (...) {
      // Cohort-level failure (e.g. the shared fold threw): nobody's
      // row is trustworthy; every member re-runs scalar, where the
      // per-attempt ladder records the real error per row.
      DS_TELEM_COUNT("sweep.cohort_failures", 1);
      cohort_failed = true;
    }
    if (state.watchdog != nullptr) state.watchdog->End(worker);
  }
  for (std::size_t m = 0; m < k; ++m) {
    // A cancellation landing after the member's last detach poll still
    // voids the row, matching the scalar lane's late-cancel check --
    // rows never depend on host speed vs. an enabled deadline.
    if (cohort_failed || tokens[m]->cancelled()) detached[m] = true;
  }
  for (std::size_t m = 0; m < k; ++m) {
    const std::size_t index = members[m];
    if (!detached[m]) {
      RetireJob(state, (*state.results)[index], start,
                /*ever_timed_out=*/false);
      continue;
    }
    state.batch_detached.fetch_add(1, std::memory_order_relaxed);
    DS_TELEM_COUNT("sweep.batch_detached", 1);
    if (state.events != nullptr) {
      telemetry::Event e = telemetry::MakeEvent(
          telemetry::EventKind::kRetry, static_cast<std::int64_t>(index),
          static_cast<std::int32_t>(1));
      e.SetDetail("cohort detach");
      PublishEvent(state, e);
    }
    // ExecuteJob re-takes the in-flight gauge and runs the member's
    // fresh scalar attempt ladder (attempt 1, deadline, retries).
    state.in_flight.fetch_sub(1, std::memory_order_relaxed);
    ExecuteJob(state, worker, index);
  }
}

/// Dispatches one claimed chunk to its lane.
void RunChunk(SharedState& state, std::size_t worker, std::size_t id) {
  const std::vector<std::size_t>& chunk = (*state.chunks)[id];
  if (chunk.size() == 1)
    ExecuteJob(state, worker, chunk.front());
  else
    ExecuteCohort(state, worker, chunk);
}

void WorkerLoop(SharedState& state, std::size_t self) {
  std::vector<WorkerQueue>& queues = *state.queues;
  const std::size_t workers = queues.size();
  for (;;) {
    if (state.stop_after != 0 &&
        state.completed.load(std::memory_order_relaxed) >= state.stop_after)
      return;
    if (state.cancel != nullptr && state.cancel->cancelled()) return;
    std::size_t id = 0;
    if (queues[self].PopBack(&id)) {
      RunChunk(state, self, id);
      continue;
    }
    bool stole = false;
    for (std::size_t k = 1; k < workers && !stole; ++k) {
      if (queues[(self + k) % workers].StealFront(&id)) {
        state.steals.fetch_add(1, std::memory_order_relaxed);
        stole = true;
      }
    }
    if (!stole) return;  // every queue empty: done
    RunChunk(state, self, id);
  }
}

}  // namespace

SweepEngine::SweepEngine(SweepSpec spec, SweepOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {
  options_.chaos.Validate();
}

SweepOutcome SweepEngine::Run() {
  DS_TELEM_SPAN("runtime", "sweep_run", ds::telemetry::TraceLevel::kSpan);
  const auto start = Clock::now();

  const std::vector<SweepJob> jobs = spec_.Jobs();
  DS_REQUIRE(!jobs.empty(), "SweepEngine: spec expands to zero jobs");

  ModelCache& cache =
      options_.cache != nullptr ? *options_.cache : ModelCache::Process();
  if (options_.cache_budget_mb > 0.0)
    cache.set_budget_bytes(static_cast<std::size_t>(
        options_.cache_budget_mb * 1024.0 * 1024.0));
  const ModelCache::Stats cache_before = cache.stats();

  SweepOutcome out;
  out.results.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out.results[i].index = i;
    out.results[i].error = "not executed";
  }
  out.stats.jobs_total = jobs.size();

  // Resume: mark journaled jobs done so the queues never see them.
  // Quarantined journal rows count as done too -- a job that exhausted
  // its budget once is poison until the operator clears the journal.
  std::vector<bool> done(jobs.size(), false);
  if (options_.resume) {
    DS_REQUIRE(!options_.checkpoint_path.empty(),
               "SweepEngine: resume requires a checkpoint path");
    std::vector<JobResult> completed;
    JournalLoadStats load_stats;
    if (LoadJournal(options_.checkpoint_path, spec_.Fingerprint(),
                    &completed, &load_stats)) {
      for (JobResult& r : completed) {
        DS_REQUIRE(r.index < jobs.size(),
                   "SweepEngine: journal job " << r.index << " out of range");
        if (!done[r.index]) ++out.stats.jobs_resumed;
        done[r.index] = true;  // last record wins
        out.results[r.index] = std::move(r);
      }
    }
    out.stats.journal_corrupt_records = load_stats.corrupt_records;
    out.stats.journal_truncated_bytes = load_stats.truncated_bytes;
    out.stats.journal_dedup_drops = load_stats.dedup_drops;
  }

  // Stream resumed rows exactly once each, in index order, before any
  // worker can race new completions into the callback.
  if (options_.on_result) {
    for (std::size_t i = 0; i < jobs.size(); ++i)
      if (done[i]) options_.on_result(out.results[i]);
  }

  // Open (or continue) the journal before spawning workers so an
  // unwritable path fails the run up front, not mid-sweep.
  JournalWriter journal;
  if (!options_.checkpoint_path.empty()) {
    const bool fresh = !options_.resume || out.stats.jobs_resumed == 0;
    journal.Open(options_.checkpoint_path, fresh, options_.journal_sync);
    if (fresh) journal.Append(JournalHeaderLine(spec_));
  }

  std::size_t threads = options_.threads;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;

  // Pending jobs in index order.
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < jobs.size(); ++i)
    if (!done[i]) pending.push_back(i);

  // Chaos is constructed before chunk formation: the injector's
  // Decide() is pure, so the formation pass can pre-screen jobs that
  // will see an injection on *any* attempt and route them down the
  // scalar lane, where the retry/quarantine ladder (whose outcome IS a
  // CSV column) behaves bitwise like a batching-off run.
  std::unique_ptr<faults::ChaosInjector> chaos;
  if (options_.chaos.AnyChaosPossible())
    chaos = std::make_unique<faults::ChaosInjector>(options_.chaos);

  // Chunk formation: a chunk is one unit of worker work -- a singleton
  // job index (the scalar lane) or a lockstep cohort of batchable jobs
  // sharing a BatchCohortKey (one model content hash + dt, hence one
  // shared folded propagator). DS_THERMAL_KERNEL=batch forms cohorts
  // eagerly; auto (default) batches a key only once >= 2 of its jobs
  // are pending, mirroring the transient simulator's lazy kAuto
  // upgrade; lu/propagator pin the scalar lane for A/B runs.
  std::vector<std::vector<std::size_t>> chunks;
  chunks.reserve(pending.size());
  const std::size_t max_k = std::max<std::size_t>(options_.batch_max_k, 1);
  const BatchMode mode = (max_k >= 2 && KindIsBatchable(spec_.kind()))
                             ? ResolveBatchMode()
                             : BatchMode::kOff;
  if (mode == BatchMode::kOff) {
    for (const std::size_t i : pending) chunks.push_back({i});
  } else {
    const std::size_t max_attempts = 1 + options_.job_retries;
    const auto chaos_touched = [&](std::size_t index) {
      if (chaos == nullptr) return false;
      for (std::size_t a = 0; a < max_attempts; ++a) {
        const faults::ChaosDecision d = chaos->Decide(index, a);
        if (d.fail || d.delay) return true;
      }
      return false;
    };
    std::vector<std::string> keys(pending.size());
    std::vector<bool> scalar_only(pending.size(), false);
    std::unordered_map<std::string, std::size_t> key_pending;
    for (std::size_t p = 0; p < pending.size(); ++p) {
      if (chaos_touched(pending[p])) {
        scalar_only[p] = true;
        continue;
      }
      keys[p] = BatchCohortKey(spec_.kind(), jobs[pending[p]].point);
      ++key_pending[keys[p]];
    }
    std::unordered_map<std::string, std::size_t> open;  // key -> chunk
    for (std::size_t p = 0; p < pending.size(); ++p) {
      const std::size_t i = pending[p];
      const bool batch = !scalar_only[p] &&
                         (mode == BatchMode::kAlways ||
                          key_pending[keys[p]] >= 2);
      if (!batch) {
        chunks.push_back({i});
        continue;
      }
      const auto it = open.find(keys[p]);
      if (it != open.end() && chunks[it->second].size() < max_k) {
        chunks[it->second].push_back(i);
      } else {
        open[keys[p]] = chunks.size();  // start (or replace a full) chunk
        chunks.push_back({i});
      }
    }
  }
  for (const std::vector<std::size_t>& chunk : chunks) {
    if (chunk.size() < 2) continue;
    ++out.stats.batch_cohorts;
    out.stats.batch_cohort_members += chunk.size();
    DS_TELEM_COUNT("thermal.batch.cohorts", 1);
    DS_TELEM_COUNT("thermal.batch.cohort_members", chunk.size());
  }

  // Chunks round-robin across worker deques in formation order.
  threads = std::min(threads, std::max<std::size_t>(chunks.size(), 1));

  std::vector<WorkerQueue> queues(threads);
  for (std::size_t c = 0; c < chunks.size(); ++c)
    queues[c % threads].PushFront(c);
  // push_front + owner PopBack => each worker drains its slice in
  // ascending index order, matching the serial engine's traversal.

  SharedState state;
  state.spec = &spec_;
  state.jobs = &jobs;
  state.cache = &cache;
  state.results = &out.results;
  state.queues = &queues;
  state.chunks = &chunks;
  state.stop_after = options_.stop_after_jobs;
  state.max_attempts = 1 + options_.job_retries;
  state.backoff_ms = options_.retry_backoff_ms;
  if (journal.is_open()) state.journal = &journal;
  if (options_.on_result) state.on_result = &options_.on_result;
  if (options_.cancel != nullptr) state.cancel = options_.cancel.get();
  state.events = options_.events != nullptr ? options_.events
                                            : telemetry::ProcessEventBus();

  if (state.events != nullptr) {
    telemetry::Event e =
        telemetry::MakeEvent(telemetry::EventKind::kRunStart);
    e.AddField("jobs_total", static_cast<double>(jobs.size()));
    e.AddField("jobs_resumed",
               static_cast<double>(out.stats.jobs_resumed));
    e.AddField("threads", static_cast<double>(threads));
    e.SetDetail(spec_.name());
    PublishEvent(state, e);
    for (const std::size_t i : pending)
      PublishEvent(state,
                   telemetry::MakeEvent(telemetry::EventKind::kScheduled,
                                        static_cast<std::int64_t>(i)));
  }

  if (chaos != nullptr) {
    state.chaos = chaos.get();
    state.chaos_log = &out.chaos_log;
  }

  std::unique_ptr<Watchdog> watchdog;
  if (options_.job_deadline_ms > 0.0) {
    watchdog =
        std::make_unique<Watchdog>(threads, options_.job_deadline_ms);
    state.watchdog = watchdog.get();
  }

  // Progress heartbeat: pure observation of the atomics the workers
  // bump, so the reporter can run alongside any thread count (including
  // the inline single-thread path) without touching results.
  std::unique_ptr<telemetry::HeartbeatReporter> heartbeat;
  if (options_.progress_stream != nullptr || state.events != nullptr) {
    const std::size_t jobs_total = jobs.size();
    const std::size_t jobs_resumed = out.stats.jobs_resumed;
    auto sampler = [&state, &cache, jobs_total, jobs_resumed, start] {
      telemetry::HeartbeatSnapshot snap;
      snap.jobs_total = jobs_total;
      snap.jobs_done =
          jobs_resumed + state.completed.load(std::memory_order_relaxed);
      snap.jobs_in_flight = state.in_flight.load(std::memory_order_relaxed);
      snap.jobs_quarantined =
          state.jobs_quarantined.load(std::memory_order_relaxed);
      snap.retries = state.retries_total.load(std::memory_order_relaxed);
      const ModelCache::Stats cs = cache.stats();
      snap.cache_hits = cs.hits;
      snap.cache_misses = cs.misses;
      snap.cache_bytes = cs.bytes;
      snap.elapsed_s =
          std::chrono::duration<double>(Clock::now() - start).count();
      return snap;
    };
    telemetry::HeartbeatReporter::Options hb;
    hb.period_ms = options_.heartbeat_ms > 0.0 ? options_.heartbeat_ms
                                               : 500.0;
    hb.progress = options_.progress_stream;
    hb.label = spec_.name().empty() ? "sweep" : spec_.name();
    heartbeat = std::make_unique<telemetry::HeartbeatReporter>(
        std::move(sampler), std::move(hb));
  }

  if (threads == 1 && watchdog == nullptr) {
    WorkerLoop(state, 0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w)
      pool.emplace_back([&state, w] { WorkerLoop(state, w); });
    for (std::thread& t : pool) t.join();
  }
  if (heartbeat != nullptr) heartbeat->Stop();
  watchdog.reset();  // stop the scanner before stats are read
  journal.Close();

  const ModelCache::Stats cache_after = cache.stats();
  out.stats.threads_used = threads;
  out.stats.steals = state.steals.load();
  out.stats.cache_hits = cache_after.hits - cache_before.hits;
  out.stats.cache_misses = cache_after.misses - cache_before.misses;
  out.stats.cache_evictions = cache_after.evictions - cache_before.evictions;
  out.stats.cache_bytes = cache_after.bytes;
  out.stats.jobs_retried = state.jobs_retried.load();
  out.stats.jobs_timed_out = state.jobs_timed_out.load();
  out.stats.jobs_quarantined = state.jobs_quarantined.load();
  out.stats.retries_total = state.retries_total.load();
  out.stats.batch_detached = state.batch_detached.load();
  for (const JobResult& r : out.results) {
    if (r.ok) {
      if (r.skipped) ++out.stats.jobs_skipped;
    } else if (r.error == "not executed") {
      ++out.stats.jobs_pending;
    } else {
      ++out.stats.jobs_failed;
    }
  }
  out.stats.jobs_executed = jobs.size() - out.stats.jobs_resumed -
                            out.stats.jobs_pending;
  out.stats.wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  if (state.events != nullptr) {
    telemetry::Event e = telemetry::MakeEvent(telemetry::EventKind::kRunEnd);
    e.AddField("executed", static_cast<double>(out.stats.jobs_executed));
    e.AddField("failed", static_cast<double>(out.stats.jobs_failed));
    e.AddField("quarantined",
               static_cast<double>(out.stats.jobs_quarantined));
    e.AddField("retries", static_cast<double>(out.stats.retries_total));
    e.AddField("steals", static_cast<double>(out.stats.steals));
    e.AddField("wall_s", out.stats.wall_s);
    e.SetDetail(spec_.name());
    PublishEvent(state, e);
  }

  DS_ENSURE(out.results.size() == jobs.size(),
            "SweepEngine: result/job count mismatch");
  return out;
}

}  // namespace ds::runtime
