#include "runtime/scenarios.hpp"

#include <algorithm>

#include "apps/app_profile.hpp"
#include "core/boosting.hpp"
#include "core/estimator.hpp"
#include "core/mapping.hpp"
#include "core/tsp.hpp"
#include "power/technology.hpp"
#include "uarch/characterize.hpp"
#include "uarch/multicore.hpp"
#include "uarch/trace_gen.hpp"
#include "util/contracts.hpp"

namespace ds::runtime {

namespace {

core::MappingPolicy PolicyByName(const std::string& name) {
  if (name == "contiguous") return core::MappingPolicy::kContiguous;
  if (name == "spread") return core::MappingPolicy::kSpread;
  if (name == "checkerboard") return core::MappingPolicy::kCheckerboard;
  if (name == "densest" || name == "worst")
    return core::MappingPolicy::kDensest;
  DS_REQUIRE(false, "RunScenario: unknown mapping policy '" << name << "'");
}

/// Builds the point's platform with cache-shared thermal assets
/// installed, so the job never factorizes a conductance matrix that any
/// earlier job (or concurrent job, after blocking on the build) already
/// produced.
arch::Platform MakePlatform(const SweepPoint& point, ModelCache& cache) {
  const power::TechnologyParams& tech = power::TechByName(point.node);
  arch::Platform platform =
      point.cores > 0 ? arch::Platform(tech.node, point.cores)
                      : arch::Platform::PaperPlatform(tech.node);
  if (point.tdtm_c > 0.0) platform.set_tdtm_c(point.tdtm_c);
  cache.InstallThermal(platform);
  return platform;
}

std::size_t LevelFor(const arch::Platform& platform, double freq_ghz) {
  if (freq_ghz <= 0.0) return platform.ladder().NominalLevel();
  return platform.ladder().LevelAtOrBelow(freq_ghz);
}

void RunEstimate(const SweepPoint& p, ModelCache& cache, JobResult* result) {
  const arch::Platform platform = MakePlatform(p, cache);
  const apps::AppProfile& app = apps::AppByName(p.app);
  const core::DarkSiliconEstimator estimator(platform);
  const std::size_t level = LevelFor(platform, p.freq_ghz);
  const core::MappingPolicy policy = PolicyByName(p.mapping);
  const core::Estimate e =
      p.constraint == "thermal"
          ? estimator.UnderTemperature(app, p.threads, level, policy)
          : estimator.UnderPowerBudget(app, p.threads, level, p.tdp_w,
                                       policy);
  result->metrics = {
      {"level_freq_ghz", platform.ladder()[level].freq},
      {"active_cores", static_cast<double>(e.active_cores)},
      {"instances", static_cast<double>(e.instances)},
      {"dark_frac", e.dark_fraction},
      {"total_power_w", e.total_power_w},
      {"budget_power_w", e.budget_power_w},
      {"peak_temp_c", e.peak_temp_c},
      {"violation", e.thermal_violation ? 1.0 : 0.0},
      {"gips", e.total_gips},
  };
}

void RunTspCurve(const SweepPoint& p, ModelCache& cache, JobResult* result) {
  const arch::Platform platform = MakePlatform(p, cache);
  DS_REQUIRE(p.count >= 1 && p.count <= platform.num_cores(),
             "tsp_curve: count " << p.count << " out of 1.."
                                 << platform.num_cores());
  const double budget = p.mapping == "spread"
                            ? cache.TspBestCase(platform, p.count)
                            : cache.TspWorstCase(platform, p.count);
  result->metrics = {
      {"tsp_w_per_core", budget},
      {"total_w", budget * static_cast<double>(p.count)},
  };
}

void RunTspPerf(const SweepPoint& p, ModelCache& cache, JobResult* result) {
  const arch::Platform platform = MakePlatform(p, cache);
  const apps::AppProfile& app = apps::AppByName(p.app);
  const core::Tsp tsp(platform);
  const std::size_t active = static_cast<std::size_t>(
      static_cast<double>(platform.num_cores()) * (1.0 - p.dark_pct / 100.0));
  DS_REQUIRE(active >= 1, "tsp_perf: dark_pct " << p.dark_pct
                                                << " leaves no active core");
  const double budget = p.mapping == "spread"
                            ? cache.TspBestCase(platform, active)
                            : cache.TspWorstCase(platform, active);
  std::size_t level = 0;
  double freq = 0.0;
  double gips = 0.0;
  const bool feasible =
      tsp.MaxLevelWithinBudget(app, p.threads, budget, &level);
  if (feasible) {
    // TSP operates within the nominal DVFS range (no boosting).
    level = std::min(level, platform.ladder().NominalLevel());
    freq = platform.ladder()[level].freq;
    const std::size_t instances = active / p.threads;
    gips = static_cast<double>(instances) * app.InstanceGips(p.threads, freq);
    if (active % p.threads != 0)
      gips += app.InstanceGips(active % p.threads, freq);
  }
  result->metrics = {
      {"active", static_cast<double>(active)},
      {"budget_w_per_core", budget},
      {"feasible", feasible ? 1.0 : 0.0},
      {"freq_ghz", freq},
      {"gips", gips},
  };
}

void RunBoost(const SweepPoint& p, ModelCache& cache, JobResult* result) {
  const arch::Platform platform = MakePlatform(p, cache);
  const apps::AppProfile& app = apps::AppByName(p.app);
  const core::BoostingSimulator sim(platform, app, p.instances, p.threads);
  std::size_t level = 0;
  if (!sim.MaxSafeConstantLevel(p.power_cap_w, &level)) {
    result->skipped = true;
    return;
  }
  const core::Estimate steady = sim.SteadyAtLevel(level);
  const core::BoostingSimulator::QuasiSteadyBoost boost =
      sim.EstimateBoosting(platform.tdtm_c(), p.power_cap_w);
  result->metrics = {
      {"const_freq_ghz", platform.ladder()[level].freq},
      {"const_gips", sim.GipsAtLevel(level)},
      {"const_power_w", steady.total_power_w},
      {"boost_gips", boost.avg_gips},
      {"boost_avg_power_w", boost.avg_power_w},
      {"boost_peak_power_w", boost.peak_power_w},
      {"boost_base_freq_ghz", platform.ladder()[boost.base_level].freq},
  };
}

void RunCharacterize(const SweepPoint& p, JobResult* result) {
  const uarch::Characterization c =
      uarch::Characterize(uarch::TraceParamsByName(p.app));
  result->metrics = {
      {"ipc", c.ipc},
      {"ceff22_nf", c.ceff22_nf},
      {"pind22_w", c.pind22_w},
      {"l1_miss_rate", c.sim.l1_miss_rate},
      {"mpki_l2", c.sim.mpki_l2},
      {"branch_mispredict_rate", c.sim.branch_mispredict_rate},
  };
}

void RunSpeedup(const SweepPoint& p, JobResult* result) {
  const uarch::SyncParams& params = uarch::SyncParamsByName(p.app);
  std::vector<uarch::SpeedupResult> curve;
  for (const std::size_t n : {2UL, 4UL, 8UL, 16UL, 64UL})
    curve.push_back(uarch::SimulateSpeedup(params, n));
  const uarch::SpeedupResult& at8 = curve[2];
  result->metrics = {
      {"s2", curve[0].speedup},
      {"s4", curve[1].speedup},
      {"s8", curve[2].speedup},
      {"s16", curve[3].speedup},
      {"s64", curve[4].speedup},
      {"serial_frac_fit", uarch::FitSerialFraction(curve)},
      {"lock_wait_frac", at8.lock_wait_fraction},
      {"barrier_wait_frac", at8.barrier_wait_fraction},
  };
}

}  // namespace

void RunScenario(SweepKind kind, const SweepJob& job, ModelCache& cache,
                 JobResult* result) {
  result->index = job.index;
  switch (kind) {
    case SweepKind::kEstimate: RunEstimate(job.point, cache, result); break;
    case SweepKind::kTspCurve: RunTspCurve(job.point, cache, result); break;
    case SweepKind::kTspPerf: RunTspPerf(job.point, cache, result); break;
    case SweepKind::kBoost: RunBoost(job.point, cache, result); break;
    case SweepKind::kCharacterize: RunCharacterize(job.point, result); break;
    case SweepKind::kSpeedup: RunSpeedup(job.point, result); break;
  }
  result->ok = true;
}

std::vector<std::string> MetricColumns(SweepKind kind) {
  switch (kind) {
    case SweepKind::kEstimate:
      return {"level_freq_ghz", "active_cores", "instances",
              "dark_frac",      "total_power_w", "budget_power_w",
              "peak_temp_c",    "violation",     "gips"};
    case SweepKind::kTspCurve:
      return {"tsp_w_per_core", "total_w"};
    case SweepKind::kTspPerf:
      return {"active", "budget_w_per_core", "feasible", "freq_ghz", "gips"};
    case SweepKind::kBoost:
      return {"const_freq_ghz",    "const_gips",
              "const_power_w",     "boost_gips",
              "boost_avg_power_w", "boost_peak_power_w",
              "boost_base_freq_ghz"};
    case SweepKind::kCharacterize:
      return {"ipc",         "ceff22_nf", "pind22_w",
              "l1_miss_rate", "mpki_l2",  "branch_mispredict_rate"};
    case SweepKind::kSpeedup:
      return {"s2",  "s4",  "s8",
              "s16", "s64", "serial_frac_fit",
              "lock_wait_frac", "barrier_wait_frac"};
  }
  DS_REQUIRE(false, "MetricColumns: invalid kind");
}

}  // namespace ds::runtime
