#include "runtime/scenarios.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "apps/app_profile.hpp"
#include "core/boosting.hpp"
#include "thermal/batch_propagator.hpp"
#include "thermal/steady_state.hpp"
#include "core/estimator.hpp"
#include "core/mapping.hpp"
#include "core/tsp.hpp"
#include "power/technology.hpp"
#include "uarch/characterize.hpp"
#include "uarch/multicore.hpp"
#include "uarch/trace_gen.hpp"
#include "util/contracts.hpp"

namespace ds::runtime {

namespace {

core::MappingPolicy PolicyByName(const std::string& name) {
  if (name == "contiguous") return core::MappingPolicy::kContiguous;
  if (name == "spread") return core::MappingPolicy::kSpread;
  if (name == "checkerboard") return core::MappingPolicy::kCheckerboard;
  if (name == "densest" || name == "worst")
    return core::MappingPolicy::kDensest;
  DS_REQUIRE(false, "RunScenario: unknown mapping policy '" << name << "'");
}

/// Builds the point's platform with cache-shared thermal assets
/// installed, so the job never factorizes a conductance matrix that any
/// earlier job (or concurrent job, after blocking on the build) already
/// produced.
arch::Platform MakePlatform(const SweepPoint& point, ModelCache& cache) {
  const power::TechnologyParams& tech = power::TechByName(point.node);
  arch::Platform platform =
      point.cores > 0 ? arch::Platform(tech.node, point.cores)
                      : arch::Platform::PaperPlatform(tech.node);
  if (point.tdtm_c > 0.0) platform.set_tdtm_c(point.tdtm_c);
  cache.InstallThermal(platform);
  return platform;
}

std::size_t LevelFor(const arch::Platform& platform, double freq_ghz) {
  if (freq_ghz <= 0.0) return platform.ladder().NominalLevel();
  return platform.ladder().LevelAtOrBelow(freq_ghz);
}

void RunEstimate(const SweepPoint& p, ModelCache& cache, JobResult* result) {
  const arch::Platform platform = MakePlatform(p, cache);
  const apps::AppProfile& app = apps::AppByName(p.app);
  const core::DarkSiliconEstimator estimator(platform);
  const std::size_t level = LevelFor(platform, p.freq_ghz);
  const core::MappingPolicy policy = PolicyByName(p.mapping);
  const core::Estimate e =
      p.constraint == "thermal"
          ? estimator.UnderTemperature(app, p.threads, level, policy)
          : estimator.UnderPowerBudget(app, p.threads, level, p.tdp_w,
                                       policy);
  result->metrics = {
      {"level_freq_ghz", platform.ladder()[level].freq},
      {"active_cores", static_cast<double>(e.active_cores)},
      {"instances", static_cast<double>(e.instances)},
      {"dark_frac", e.dark_fraction},
      {"total_power_w", e.total_power_w},
      {"budget_power_w", e.budget_power_w},
      {"peak_temp_c", e.peak_temp_c},
      {"violation", e.thermal_violation ? 1.0 : 0.0},
      {"gips", e.total_gips},
  };
}

void RunTspCurve(const SweepPoint& p, ModelCache& cache, JobResult* result) {
  const arch::Platform platform = MakePlatform(p, cache);
  DS_REQUIRE(p.count >= 1 && p.count <= platform.num_cores(),
             "tsp_curve: count " << p.count << " out of 1.."
                                 << platform.num_cores());
  const double budget = p.mapping == "spread"
                            ? cache.TspBestCase(platform, p.count)
                            : cache.TspWorstCase(platform, p.count);
  result->metrics = {
      {"tsp_w_per_core", budget},
      {"total_w", budget * static_cast<double>(p.count)},
  };
}

void RunTspPerf(const SweepPoint& p, ModelCache& cache, JobResult* result) {
  const arch::Platform platform = MakePlatform(p, cache);
  const apps::AppProfile& app = apps::AppByName(p.app);
  const core::Tsp tsp(platform);
  const std::size_t active = static_cast<std::size_t>(
      static_cast<double>(platform.num_cores()) * (1.0 - p.dark_pct / 100.0));
  DS_REQUIRE(active >= 1, "tsp_perf: dark_pct " << p.dark_pct
                                                << " leaves no active core");
  const double budget = p.mapping == "spread"
                            ? cache.TspBestCase(platform, active)
                            : cache.TspWorstCase(platform, active);
  std::size_t level = 0;
  double freq = 0.0;
  double gips = 0.0;
  const bool feasible =
      tsp.MaxLevelWithinBudget(app, p.threads, budget, &level);
  if (feasible) {
    // TSP operates within the nominal DVFS range (no boosting).
    level = std::min(level, platform.ladder().NominalLevel());
    freq = platform.ladder()[level].freq;
    const std::size_t instances = active / p.threads;
    gips = static_cast<double>(instances) * app.InstanceGips(p.threads, freq);
    if (active % p.threads != 0)
      gips += app.InstanceGips(active % p.threads, freq);
  }
  result->metrics = {
      {"active", static_cast<double>(active)},
      {"budget_w_per_core", budget},
      {"feasible", feasible ? 1.0 : 0.0},
      {"freq_ghz", freq},
      {"gips", gips},
  };
}

void RunBoost(const SweepPoint& p, ModelCache& cache, JobResult* result) {
  const arch::Platform platform = MakePlatform(p, cache);
  const apps::AppProfile& app = apps::AppByName(p.app);
  const core::BoostingSimulator sim(platform, app, p.instances, p.threads);
  std::size_t level = 0;
  if (!sim.MaxSafeConstantLevel(p.power_cap_w, &level)) {
    result->skipped = true;
    return;
  }
  const core::Estimate steady = sim.SteadyAtLevel(level);
  const core::BoostingSimulator::QuasiSteadyBoost boost =
      sim.EstimateBoosting(platform.tdtm_c(), p.power_cap_w);
  result->metrics = {
      {"const_freq_ghz", platform.ladder()[level].freq},
      {"const_gips", sim.GipsAtLevel(level)},
      {"const_power_w", steady.total_power_w},
      {"boost_gips", boost.avg_gips},
      {"boost_avg_power_w", boost.avg_power_w},
      {"boost_peak_power_w", boost.peak_power_w},
      {"boost_base_freq_ghz", platform.ladder()[boost.base_level].freq},
  };
}

/// boost_transient: settle steps at the base level between the steady
/// warm start and the closed loop. Advanced through the batched hold
/// operator (one application) on every lane, so the hold fast path is
/// exercised in production, not just in benches.
constexpr std::size_t kBtSettleSteps = 8;

/// One boost_transient member's control state. The platform lives on
/// the heap so the BoostingSimulator's internal pointer stays stable
/// while the member vector grows.
struct BtMember {
  const SweepPoint* p = nullptr;
  JobResult* result = nullptr;
  std::unique_ptr<arch::Platform> platform;
  std::unique_ptr<core::BoostingSimulator> sim;
  std::size_t handle = 0;  // BatchStepPropagator member handle
  std::size_t level = 0;
  bool stepping = false;  // in the lockstep loop (not skipped/detached)
  double gips_acc = 0.0;
  double energy_acc = 0.0;
  double max_power_w = 0.0;
  double max_temp_c = 0.0;
};

/// Per-control-period control decision + power update for one member;
/// mirrors BoostingSimulator::RunBoosting's loop body against the
/// member's panel column instead of a private TransientSimulator.
void BtControlStep(BtMember& m, thermal::BatchStepPropagator& batch,
                   double dt_s, std::vector<double>& temps_buf,
                   std::vector<double>& powers_buf) {
  const power::DvfsLadder& ladder = m.platform->ladder();
  const double threshold_c = m.platform->tdtm_c();
  const double peak = batch.PeakDieTemp(m.handle);
  auto member_state = batch.MemberState(m.handle);
  temps_buf.assign(member_state.begin(),
                   member_state.begin() +
                       static_cast<std::ptrdiff_t>(
                           m.platform->num_cores()));
  if (peak < threshold_c) {
    const std::size_t up = ladder.StepUp(m.level);
    if (up != m.level) {
      powers_buf = m.sim->CorePowersAt(up, temps_buf);
      double total_up = 0.0;
      for (const double w : powers_buf) total_up += w;
      if (total_up <= m.p->power_cap_w) m.level = up;
    }
  } else {
    m.level = ladder.StepDown(m.level);
  }
  powers_buf = m.sim->CorePowersAt(m.level, temps_buf);
  double total_power = 0.0;
  for (const double w : powers_buf) total_power += w;
  batch.SetPowers(m.handle, powers_buf);

  const double gips = m.sim->GipsAtLevel(m.level);
  m.gips_acc += gips;
  m.energy_acc += total_power * dt_s;
  m.max_power_w = std::max(m.max_power_w, total_power);
  m.max_temp_c = std::max(m.max_temp_c, peak);
}

void BtFinishMember(BtMember& m, thermal::BatchStepPropagator& batch,
                    std::size_t steps, double duration_s) {
  const double peak = batch.PeakDieTemp(m.handle);
  m.max_temp_c = std::max(m.max_temp_c, peak);
  m.result->metrics = {
      {"avg_gips", m.gips_acc / static_cast<double>(steps)},
      {"avg_power_w", m.energy_acc / duration_s},
      {"energy_j", m.energy_acc},
      {"max_power_w", m.max_power_w},
      {"max_temp_c", m.max_temp_c},
      {"final_peak_c", peak},
      {"final_freq_ghz", m.platform->ladder()[m.level].freq},
  };
  m.result->ok = true;
}

void RunCharacterize(const SweepPoint& p, JobResult* result) {
  const uarch::Characterization c =
      uarch::Characterize(uarch::TraceParamsByName(p.app));
  result->metrics = {
      {"ipc", c.ipc},
      {"ceff22_nf", c.ceff22_nf},
      {"pind22_w", c.pind22_w},
      {"l1_miss_rate", c.sim.l1_miss_rate},
      {"mpki_l2", c.sim.mpki_l2},
      {"branch_mispredict_rate", c.sim.branch_mispredict_rate},
  };
}

void RunSpeedup(const SweepPoint& p, JobResult* result) {
  const uarch::SyncParams& params = uarch::SyncParamsByName(p.app);
  std::vector<uarch::SpeedupResult> curve;
  for (const std::size_t n : {2UL, 4UL, 8UL, 16UL, 64UL})
    curve.push_back(uarch::SimulateSpeedup(params, n));
  const uarch::SpeedupResult& at8 = curve[2];
  result->metrics = {
      {"s2", curve[0].speedup},
      {"s4", curve[1].speedup},
      {"s8", curve[2].speedup},
      {"s16", curve[3].speedup},
      {"s64", curve[4].speedup},
      {"serial_frac_fit", uarch::FitSerialFraction(curve)},
      {"lock_wait_frac", at8.lock_wait_fraction},
      {"barrier_wait_frac", at8.barrier_wait_fraction},
  };
}

}  // namespace

void RunBoostTransientCohort(
    std::span<const SweepJob* const> jobs, ModelCache& cache,
    std::span<JobResult* const> results,
    const std::function<bool(std::size_t)>& should_detach,
    std::vector<bool>* detached) {
  DS_REQUIRE(jobs.size() == results.size() && !jobs.empty(),
             "RunBoostTransientCohort: " << jobs.size() << " jobs, "
                                         << results.size() << " results");
  DS_REQUIRE(detached != nullptr && detached->size() == jobs.size(),
             "RunBoostTransientCohort: detached vector size mismatch");
  const bool cohort_mode = static_cast<bool>(should_detach);
  const std::size_t k = jobs.size();

  const double dt_s = jobs[0]->point.control_ms * 1e-3;
  const std::size_t steps = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(jobs[0]->point.duration_s / dt_s)));
  const double duration_s = static_cast<double>(steps) * dt_s;
  // dt and step count are cohort-wide (derived from jobs[0]), so the
  // cohort key MUST split on both; enforce it here so a key regression
  // is a loud cohort failure (-> scalar re-run), never silent rows
  // simulated for the wrong horizon.
  for (std::size_t i = 1; i < k; ++i)
    DS_REQUIRE(jobs[i]->point.control_ms == jobs[0]->point.control_ms &&
                   jobs[i]->point.duration_s == jobs[0]->point.duration_s,
               "RunBoostTransientCohort: member " << i
                   << " mixes control_ms/duration_s with member 0");

  std::vector<BtMember> members(k);
  std::unique_ptr<thermal::BatchStepPropagator> batch;
  // Shared scratch, hoisted out of every loop: member phases fully
  // overwrite them, so sharing is safe and the hot path stays
  // allocation-light.
  std::vector<double> temps_buf;
  std::vector<double> powers_buf;
  std::vector<double> state_buf;

  for (std::size_t i = 0; i < k; ++i) {
    BtMember& m = members[i];
    m.p = &jobs[i]->point;
    m.result = results[i];
    bool added = false;
    try {
      m.platform =
          std::make_unique<arch::Platform>(MakePlatform(*m.p, cache));
      const apps::AppProfile& app = apps::AppByName(m.p->app);
      m.sim = std::make_unique<core::BoostingSimulator>(
          *m.platform, app, m.p->instances, m.p->threads,
          PolicyByName(m.p->mapping));
      std::size_t level = 0;
      if (!m.sim->MaxSafeConstantLevel(m.p->power_cap_w, &level)) {
        m.result->skipped = true;
        m.result->ok = true;
        continue;
      }
      m.level = level;
      // Leakage/temperature fixed point, as in BoostingSimulator's
      // closed loops; SteadyStateSolver is deterministic, so every
      // lane and cohort size starts from bitwise the same state.
      const thermal::SteadyStateSolver solver(m.platform->thermal_model());
      temps_buf.assign(m.platform->num_cores(),
                       m.platform->thermal_model().ambient_c());
      for (int it = 0; it < 3; ++it) {
        powers_buf = m.sim->CorePowersAt(level, temps_buf);
        state_buf = solver.SolveFull(powers_buf);
        temps_buf.assign(state_buf.begin(),
                         state_buf.begin() + static_cast<std::ptrdiff_t>(
                                                 m.platform->num_cores()));
      }
      if (batch == nullptr) {
        // One folded propagator serves the whole cohort; the shared
        // PropagatorSet memoizes it across cohorts and sweep threads.
        batch = std::make_unique<thermal::BatchStepPropagator>(
            m.platform->propagators()->For(m.platform->thermal_model(),
                                           dt_s),
            k);
      }
      m.handle = batch->AddMember(state_buf);
      added = true;
      batch->SetPowers(m.handle, powers_buf);
      m.stepping = true;
    } catch (...) {
      // Evict a half-initialized member (e.g. SetPowers rejected a
      // non-finite power after AddMember succeeded) so the cohort does
      // not step a ghost column for the whole run.
      if (added && batch != nullptr) batch->RemoveMember(m.handle);
      if (!cohort_mode) throw;
      (*detached)[i] = true;
    }
  }

  if (batch == nullptr) return;  // every member skipped or detached

  // Settle segment at the base level: one batched hold application
  // bridges the steady warm start and the closed loop.
  batch->StepN(kBtSettleSteps);

  for (std::size_t s = 0; s < steps; ++s) {
    std::size_t stepping = 0;
    for (std::size_t i = 0; i < k; ++i) {
      BtMember& m = members[i];
      if (!m.stepping) continue;
      if (cohort_mode && should_detach(i)) {
        batch->RemoveMember(m.handle);
        m.stepping = false;
        (*detached)[i] = true;
        continue;
      }
      try {
        BtControlStep(m, *batch, dt_s, temps_buf, powers_buf);
        ++stepping;
      } catch (...) {
        if (!cohort_mode) throw;
        batch->RemoveMember(m.handle);
        m.stepping = false;
        (*detached)[i] = true;
      }
    }
    if (stepping == 0) return;
    batch->Step();
  }

  for (BtMember& m : members)
    if (m.stepping) BtFinishMember(m, *batch, steps, duration_s);
}

void RunScenario(SweepKind kind, const SweepJob& job, ModelCache& cache,
                 JobResult* result) {
  result->index = job.index;
  switch (kind) {
    case SweepKind::kEstimate: RunEstimate(job.point, cache, result); break;
    case SweepKind::kTspCurve: RunTspCurve(job.point, cache, result); break;
    case SweepKind::kTspPerf: RunTspPerf(job.point, cache, result); break;
    case SweepKind::kBoost: RunBoost(job.point, cache, result); break;
    case SweepKind::kCharacterize: RunCharacterize(job.point, result); break;
    case SweepKind::kSpeedup: RunSpeedup(job.point, result); break;
    case SweepKind::kBoostTransient: {
      // Scalar lane = a cohort of one through the same panel-kernel
      // code, which is what keeps sweep CSVs byte-identical at any
      // --batch-max-k. A null detach predicate lets exceptions
      // propagate to the engine's retry classification.
      const SweepJob* jp = &job;
      JobResult* rp = result;
      std::vector<bool> detached(1, false);
      RunBoostTransientCohort(std::span<const SweepJob* const>(&jp, 1),
                              cache, std::span<JobResult* const>(&rp, 1),
                              nullptr, &detached);
      break;
    }
  }
  result->ok = true;
}

bool KindIsBatchable(SweepKind kind) {
  return kind == SweepKind::kBoostTransient;
}

std::string BatchCohortKey(SweepKind kind, const SweepPoint& point) {
  if (!KindIsBatchable(kind)) return "";
  // (node, cores) pins the floorplan/package content -- and therefore
  // the model hash -- and control_ms pins dt; duration_s pins the step
  // count (RunBoostTransientCohort derives it from jobs[0], so a
  // mixed-duration cohort would run every member for the first
  // member's horizon); tdtm_c does not enter the RC model but DOES
  // change ThermalAssets installation inputs, so it is included
  // conservatively.
  std::string key = point.node;
  key += '/';
  key += CanonicalNumber(static_cast<double>(point.cores));
  key += '/';
  key += CanonicalNumber(point.control_ms);
  key += '/';
  key += CanonicalNumber(point.duration_s);
  key += '/';
  key += CanonicalNumber(point.tdtm_c);
  return key;
}

std::vector<std::string> MetricColumns(SweepKind kind) {
  switch (kind) {
    case SweepKind::kEstimate:
      return {"level_freq_ghz", "active_cores", "instances",
              "dark_frac",      "total_power_w", "budget_power_w",
              "peak_temp_c",    "violation",     "gips"};
    case SweepKind::kTspCurve:
      return {"tsp_w_per_core", "total_w"};
    case SweepKind::kTspPerf:
      return {"active", "budget_w_per_core", "feasible", "freq_ghz", "gips"};
    case SweepKind::kBoost:
      return {"const_freq_ghz",    "const_gips",
              "const_power_w",     "boost_gips",
              "boost_avg_power_w", "boost_peak_power_w",
              "boost_base_freq_ghz"};
    case SweepKind::kCharacterize:
      return {"ipc",         "ceff22_nf", "pind22_w",
              "l1_miss_rate", "mpki_l2",  "branch_mispredict_rate"};
    case SweepKind::kSpeedup:
      return {"s2",  "s4",  "s8",
              "s16", "s64", "serial_frac_fit",
              "lock_wait_frac", "barrier_wait_frac"};
    case SweepKind::kBoostTransient:
      return {"avg_gips",    "avg_power_w", "energy_j",
              "max_power_w", "max_temp_c",  "final_peak_c",
              "final_freq_ghz"};
  }
  DS_REQUIRE(false, "MetricColumns: invalid kind");
}

}  // namespace ds::runtime
