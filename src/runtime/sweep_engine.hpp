// Work-stealing parallel executor for SweepSpec jobs.
//
// Jobs are distributed round-robin over per-worker deques; a worker
// drains its own deque LIFO and steals FIFO from its neighbours when
// empty, which keeps the long jobs of an irregular grid (different
// core counts factor very differently) spread across the pool without
// a central queue bottleneck. Scheduling never affects results: every
// job writes only its own slot of the index-ordered result vector, and
// the scenario runners are pure (see scenarios.hpp), so `--threads 1`
// and `--threads N` produce byte-identical rows.
//
// Checkpointing: with a journal path set, every completed job is
// appended as one JSON line (flushed immediately). A later run with
// `resume = true` loads the journal, verifies it belongs to the same
// spec (content fingerprint), and executes only the jobs missing from
// it -- each job runs exactly once across the two runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/model_cache.hpp"
#include "runtime/result_sink.hpp"
#include "runtime/sweep_spec.hpp"

namespace ds::runtime {

struct SweepOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t threads = 1;

  /// Journal path; empty disables checkpointing.
  std::string checkpoint_path;

  /// Load `checkpoint_path` and skip jobs it already records.
  bool resume = false;

  /// Test hook: stop claiming new jobs once this many have completed
  /// in this run (0 = run everything). Exact with threads == 1; with
  /// more threads, in-flight jobs still finish.
  std::size_t stop_after_jobs = 0;

  /// Cache for shared thermal artifacts; nullptr = the process cache.
  ModelCache* cache = nullptr;
};

struct SweepStats {
  std::size_t jobs_total = 0;
  std::size_t jobs_executed = 0;  // run by this engine instance
  std::size_t jobs_resumed = 0;   // loaded from the journal
  std::size_t jobs_failed = 0;
  std::size_t jobs_skipped = 0;   // infeasible scenarios (ok, no metrics)
  std::size_t jobs_pending = 0;   // not run (stop_after_jobs)
  std::size_t threads_used = 0;
  std::uint64_t steals = 0;
  std::uint64_t cache_hits = 0;    // ModelCache hits during this run
  std::uint64_t cache_misses = 0;
  double wall_s = 0.0;
};

struct SweepOutcome {
  /// One entry per job, index order. With stop_after_jobs, entries for
  /// unexecuted jobs have ok == false and error == "not executed".
  std::vector<JobResult> results;
  SweepStats stats;
};

class SweepEngine {
 public:
  explicit SweepEngine(SweepSpec spec, SweepOptions options = {});

  /// Expands, (optionally) resumes, executes, and returns the ordered
  /// results. Individual job failures are recorded per-result; this
  /// only throws for boundary errors (bad spec, unreadable or foreign
  /// journal, unwritable checkpoint file).
  SweepOutcome Run();

  const SweepSpec& spec() const { return spec_; }

 private:
  SweepSpec spec_;
  SweepOptions options_;
};

}  // namespace ds::runtime
