// Work-stealing, failure-tolerant parallel executor for SweepSpec jobs.
//
// Jobs are distributed round-robin over per-worker deques; a worker
// drains its own deque LIFO and steals FIFO from its neighbours when
// empty, which keeps the long jobs of an irregular grid (different
// core counts factor very differently) spread across the pool without
// a central queue bottleneck. Scheduling never affects results: every
// job writes only its own slot of the index-ordered result vector, and
// the scenario runners are pure (see scenarios.hpp), so `--threads 1`
// and `--threads N` produce byte-identical rows.
//
// Resilience model (per job):
//   - transient failures (util::SolverError, injected chaos faults,
//     watchdog timeouts) are retried up to `job_retries` times with
//     exponential backoff + deterministic jitter;
//   - a job that exhausts its budget is *quarantined*: recorded as a
//     failed row (status "quarantined") in the results and the
//     journal, never retried on resume, and never aborts the sweep;
//   - any other exception is a permanent failure -- recorded
//     immediately, no retries (re-running a deterministic bug wastes
//     the budget);
//   - with `job_deadline_ms` set, a watchdog thread cancels attempts
//     that overrun their wall-clock deadline. Cancellation interrupts
//     chaos delays immediately; a scenario computation that overruns
//     is detected when it returns and the attempt is discarded as a
//     timeout.
//
// Checkpointing: with a journal path set, every completed job is
// appended as one CRC-framed record (see journal.hpp) under the
// configured fsync policy. A later run with `resume = true` loads the
// journal, verifies it belongs to the same spec (content fingerprint),
// repairs a torn tail, skips corrupt records, and executes only the
// jobs missing from it -- each job runs exactly once across the two
// runs (quarantined jobs are *not* re-run; delete the journal to give
// them another chance).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "faults/chaos.hpp"
#include "runtime/journal.hpp"
#include "runtime/model_cache.hpp"
#include "runtime/result_sink.hpp"
#include "runtime/sweep_spec.hpp"

namespace ds::telemetry {
class EventBus;
}  // namespace ds::telemetry

namespace ds::runtime {

struct SweepOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t threads = 1;

  /// Journal path; empty disables checkpointing.
  std::string checkpoint_path;

  /// Load `checkpoint_path` and skip jobs it already records.
  bool resume = false;

  /// Test hook: stop claiming new jobs once this many have completed
  /// in this run (0 = run everything). Exact with threads == 1; with
  /// more threads, in-flight jobs still finish.
  std::size_t stop_after_jobs = 0;

  /// Cache for shared thermal artifacts; nullptr = the process cache.
  ModelCache* cache = nullptr;

  /// Per-attempt wall-clock deadline enforced by the watchdog thread;
  /// 0 disables the watchdog entirely.
  double job_deadline_ms = 0.0;

  /// Extra attempts after the first for transient failures.
  std::size_t job_retries = 2;

  /// Base backoff before retry k is 2^(k-1) * this, +/-25% jitter
  /// (deterministic per job/attempt), capped at 1 s.
  double retry_backoff_ms = 10.0;

  /// fsync policy for journal appends.
  JournalSync journal_sync = JournalSync::kBatch;

  /// ModelCache byte budget applied for this run; 0 = leave the
  /// cache's current budget untouched.
  double cache_budget_mb = 0.0;

  /// Job-level chaos injection (tests / --chaos-* flags).
  faults::ChaosConfig chaos;

  /// Event bus for job-lifecycle events emitted by the engine itself;
  /// nullptr falls back to the ambient telemetry::ProcessEventBus().
  /// (Deep layers -- journal recovery, ModelCache eviction -- and the
  /// heartbeat always use the ambient bus; this override exists so
  /// tests can capture engine events without global state.)
  telemetry::EventBus* events = nullptr;

  /// Live status line sink (--progress hands it stderr); nullptr
  /// disables rendering. Enables the HeartbeatReporter.
  std::ostream* progress_stream = nullptr;

  /// Heartbeat sampling period. The reporter runs whenever
  /// progress_stream is set or an event bus is active.
  double heartbeat_ms = 500.0;

  /// Called once per finished job with its final row: resumed rows
  /// fire from Run()'s thread (ascending index order) before workers
  /// start; executed rows fire from whichever worker retired the job,
  /// in completion order. Called with no engine lock held; must be
  /// thread-safe. The streaming sweep service reorders these into the
  /// byte-exact CSV stream. Empty disables.
  std::function<void(const JobResult&)> on_result;

  /// Cooperative cancellation: once cancelled, workers stop claiming
  /// new jobs (in-flight attempts still finish -- the watchdog owns
  /// per-attempt interruption); unclaimed jobs are recorded as pending
  /// ("not executed"). nullptr disables.
  std::shared_ptr<faults::CancelToken> cancel;

  /// Largest lockstep cohort formed for batchable kinds (boost_transient):
  /// ready jobs sharing a BatchCohortKey advance through one panel pass
  /// per control period instead of k separate GEMV sweeps. 1 disables
  /// batching. Results are byte-identical at any value (the scalar lane
  /// runs the same k = 1 panel kernels); DS_THERMAL_KERNEL=batch forms
  /// cohorts eagerly, auto (default) only when >= 2 jobs share a key,
  /// lu/propagator disable cohorts for A/B runs.
  std::size_t batch_max_k = 16;
};

struct SweepStats {
  std::size_t jobs_total = 0;
  std::size_t jobs_executed = 0;  // run by this engine instance
  std::size_t jobs_resumed = 0;   // loaded from the journal
  std::size_t jobs_failed = 0;    // includes quarantined jobs
  std::size_t jobs_skipped = 0;   // infeasible scenarios (ok, no metrics)
  std::size_t jobs_pending = 0;   // not run (stop_after_jobs)
  std::size_t threads_used = 0;
  std::uint64_t steals = 0;
  std::uint64_t cache_hits = 0;    // ModelCache hits during this run
  std::uint64_t cache_misses = 0;

  // Resilience counters (this run only; resumed rows don't count).
  std::size_t jobs_retried = 0;      // jobs that needed >= 2 attempts
  std::size_t jobs_timed_out = 0;    // jobs with >= 1 watchdog timeout
  std::size_t jobs_quarantined = 0;  // jobs retired after exhausting retries
  std::uint64_t retries_total = 0;   // attempts beyond each job's first

  // Journal recovery (resume only).
  std::size_t journal_corrupt_records = 0;  // CRC/framing records skipped
  std::size_t journal_truncated_bytes = 0;  // torn tail repaired on load
  std::size_t journal_dedup_drops = 0;      // duplicate records superseded

  // ModelCache budget accounting (deltas/absolute at end of run).
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_bytes = 0;

  // Lockstep batching (boost_transient cohorts; this run only).
  std::size_t batch_cohorts = 0;        // cohorts formed with k >= 2
  std::size_t batch_cohort_members = 0; // jobs executed inside them
  std::size_t batch_detached = 0;       // members detached to scalar rerun

  double wall_s = 0.0;
};

struct SweepOutcome {
  /// One entry per job, index order. With stop_after_jobs, entries for
  /// unexecuted jobs have ok == false and error == "not executed".
  std::vector<JobResult> results;
  SweepStats stats;

  /// Injected chaos events (kJobTransient / kJobDelay), when chaos is
  /// enabled. Event order follows completion order, not job order.
  faults::FaultLog chaos_log;
};

class SweepEngine {
 public:
  /// Throws std::invalid_argument if options.chaos fails Validate().
  explicit SweepEngine(SweepSpec spec, SweepOptions options = {});

  /// Expands, (optionally) resumes, executes, and returns the ordered
  /// results. Individual job failures are recorded per-result; this
  /// only throws for boundary errors (bad spec, unreadable or foreign
  /// journal, unwritable checkpoint file).
  SweepOutcome Run();

  const SweepSpec& spec() const { return spec_; }

 private:
  SweepSpec spec_;
  SweepOptions options_;
};

}  // namespace ds::runtime
