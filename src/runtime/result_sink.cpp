#include "runtime/result_sink.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/contracts.hpp"
#include "util/csv.hpp"

namespace ds::runtime {

namespace {

/// Exact round-trip float formatting for rows.
std::string ExactNumber(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Minimal JSON string escaping (keys here are identifiers, but error
/// strings can carry anything).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* StatusOf(const JobResult& r) {
  if (r.quarantined) return "quarantined";
  if (!r.ok) return "failed";
  return r.skipped ? "skipped" : "ok";
}

/// Flushes `os` and raises SinkWriteError if the stream has gone bad.
void CheckStream(std::ostream& os, std::size_t rows_written,
                 const char* what) {
  os.flush();
  if (os.good()) return;
  std::ostringstream msg;
  msg << "ResultSink: " << what << " stream failed after " << rows_written
      << " rows";
  throw SinkWriteError(msg.str(), rows_written);
}

}  // namespace

double Metric(const JobResult& result, std::string_view name) {
  for (const auto& [key, value] : result.metrics)
    if (key == name) return value;
  DS_REQUIRE(false, "JobResult " << result.index << ": no metric '" << name
                                 << "'");
}

bool HasMetric(const JobResult& result, std::string_view name) {
  for (const auto& [key, value] : result.metrics) {
    (void)value;
    if (key == name) return true;
  }
  return false;
}

ResultSink::ResultSink(const SweepSpec& spec,
                       const std::vector<SweepJob>& jobs)
    : param_columns_(spec.ParamColumns()) {
  jobs_.reserve(jobs.size());
  for (const SweepJob& job : jobs) {
    DS_REQUIRE(job.index == jobs_.size(),
               "ResultSink: jobs must arrive in index order");
    jobs_.push_back(job.params);
  }
}

std::vector<std::string> ResultSink::Header(
    const std::vector<JobResult>& results) const {
  std::vector<std::string> header{"job", "status"};
  header.insert(header.end(), param_columns_.begin(), param_columns_.end());
  for (const JobResult& r : results) {
    if (!r.ok || r.skipped) continue;
    for (const auto& [key, value] : r.metrics) {
      (void)value;
      header.push_back(key);
    }
    break;
  }
  return header;
}

std::string ResultSink::CsvHeaderLine(const JobResult* first_ok) const {
  std::string line = "job,status";
  for (const std::string& col : param_columns_) {
    line += ",";
    line += col;
  }
  if (first_ok != nullptr) {
    for (const auto& [key, value] : first_ok->metrics) {
      (void)value;
      line += ",";
      line += key;
    }
  }
  line += "\n";
  return line;
}

std::size_t ResultSink::MetricColumns(const JobResult* first_ok) {
  return first_ok != nullptr ? first_ok->metrics.size() : 0;
}

std::string ResultSink::CsvRowLine(const JobResult& r,
                                   std::size_t metric_cols) const {
  DS_REQUIRE(r.index < jobs_.size(),
             "ResultSink: row " << r.index << " of " << jobs_.size()
                                << " jobs");
  std::string line = std::to_string(r.index);
  line += ",";
  line += StatusOf(r);
  for (const auto& [field, value] : jobs_[r.index]) {
    (void)field;
    line += ",";
    line += value;
  }
  if (r.ok && !r.skipped) {
    DS_REQUIRE(r.metrics.size() == metric_cols,
               "ResultSink: job " << r.index << " has " << r.metrics.size()
                                  << " metrics, header has " << metric_cols);
    for (const auto& [key, value] : r.metrics) {
      (void)key;
      line += ",";
      line += ExactNumber(value);
    }
  } else {
    line.append(metric_cols, ',');
  }
  line += "\n";
  return line;
}

void ResultSink::WriteCsv(std::ostream& os,
                          const std::vector<JobResult>& results) const {
  DS_REQUIRE(results.size() == jobs_.size(),
             "ResultSink: " << results.size() << " results for "
                            << jobs_.size() << " jobs");
  const JobResult* first_ok = nullptr;
  for (const JobResult& r : results) {
    if (!r.ok || r.skipped) continue;
    first_ok = &r;
    break;
  }
  os << CsvHeaderLine(first_ok);
  const std::size_t metric_cols = MetricColumns(first_ok);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const JobResult& r = results[i];
    DS_REQUIRE(r.index == i, "ResultSink: result " << r.index << " at row "
                                                   << i);
    os << CsvRowLine(r, metric_cols);
    if ((i + 1) % kFlushEveryRows == 0) CheckStream(os, i + 1, "CSV");
  }
  CheckStream(os, results.size(), "CSV");
}

void ResultSink::WriteCsv(const std::string& path,
                          const std::vector<JobResult>& results) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good())
    throw SinkWriteError("ResultSink: cannot open '" + path + "'", 0);
  try {
    WriteCsv(out, results);
  } catch (const SinkWriteError& e) {
    throw SinkWriteError(std::string(e.what()) + " (path '" + path + "')",
                         e.rows_written());
  }
}

void ResultSink::WriteJsonRows(std::ostream& os,
                               const std::vector<JobResult>& results) const {
  DS_REQUIRE(results.size() == jobs_.size(),
             "ResultSink: " << results.size() << " results for "
                            << jobs_.size() << " jobs");
  os << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const JobResult& r = results[i];
    os << "  {\"job\": " << i << ", \"status\": \"" << StatusOf(r) << "\"";
    for (const auto& [field, value] : jobs_[i])
      os << ", \"" << JsonEscape(field) << "\": \"" << JsonEscape(value)
         << "\"";
    if (r.ok && !r.skipped) {
      for (const auto& [key, value] : r.metrics)
        os << ", \"" << JsonEscape(key) << "\": " << ExactNumber(value);
    }
    if (!r.ok)
      os << ", \"error\": \"" << JsonEscape(r.error) << "\"";
    os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    if ((i + 1) % kFlushEveryRows == 0) CheckStream(os, i + 1, "JSON");
  }
  os << "]\n";
  CheckStream(os, results.size(), "JSON");
}

void ResultSink::WriteJsonRows(const std::string& path,
                               const std::vector<JobResult>& results) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good())
    throw SinkWriteError("ResultSink: cannot open '" + path + "'", 0);
  try {
    WriteJsonRows(out, results);
  } catch (const SinkWriteError& e) {
    throw SinkWriteError(std::string(e.what()) + " (path '" + path + "')",
                         e.rows_written());
  }
}

}  // namespace ds::runtime
