#include "runtime/result_sink.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "telemetry/json.hpp"
#include "util/contracts.hpp"
#include "util/csv.hpp"

namespace ds::runtime {

namespace {

/// Exact round-trip float formatting for rows and journal lines.
std::string ExactNumber(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Minimal JSON string escaping (keys here are identifiers, but error
/// strings can carry anything).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* StatusOf(const JobResult& r) {
  if (!r.ok) return "failed";
  return r.skipped ? "skipped" : "ok";
}

}  // namespace

double Metric(const JobResult& result, std::string_view name) {
  for (const auto& [key, value] : result.metrics)
    if (key == name) return value;
  DS_REQUIRE(false, "JobResult " << result.index << ": no metric '" << name
                                 << "'");
}

bool HasMetric(const JobResult& result, std::string_view name) {
  for (const auto& [key, value] : result.metrics) {
    (void)value;
    if (key == name) return true;
  }
  return false;
}

ResultSink::ResultSink(const SweepSpec& spec,
                       const std::vector<SweepJob>& jobs)
    : param_columns_(spec.ParamColumns()) {
  jobs_.reserve(jobs.size());
  for (const SweepJob& job : jobs) {
    DS_REQUIRE(job.index == jobs_.size(),
               "ResultSink: jobs must arrive in index order");
    jobs_.push_back(job.params);
  }
}

std::vector<std::string> ResultSink::Header(
    const std::vector<JobResult>& results) const {
  std::vector<std::string> header{"job", "status"};
  header.insert(header.end(), param_columns_.begin(), param_columns_.end());
  for (const JobResult& r : results) {
    if (!r.ok || r.skipped) continue;
    for (const auto& [key, value] : r.metrics) {
      (void)value;
      header.push_back(key);
    }
    break;
  }
  return header;
}

void ResultSink::WriteCsv(std::ostream& os,
                          const std::vector<JobResult>& results) const {
  DS_REQUIRE(results.size() == jobs_.size(),
             "ResultSink: " << results.size() << " results for "
                            << jobs_.size() << " jobs");
  const std::vector<std::string> header = Header(results);
  for (std::size_t c = 0; c < header.size(); ++c)
    os << (c > 0 ? "," : "") << header[c];
  os << "\n";
  const std::size_t metric_cols = header.size() - 2 - param_columns_.size();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const JobResult& r = results[i];
    DS_REQUIRE(r.index == i, "ResultSink: result " << r.index << " at row "
                                                   << i);
    os << i << "," << StatusOf(r);
    for (const auto& [field, value] : jobs_[i]) {
      (void)field;
      os << "," << value;
    }
    if (r.ok && !r.skipped) {
      DS_REQUIRE(r.metrics.size() == metric_cols,
                 "ResultSink: job " << i << " has " << r.metrics.size()
                                    << " metrics, header has " << metric_cols);
      for (const auto& [key, value] : r.metrics) {
        (void)key;
        os << "," << ExactNumber(value);
      }
    } else {
      for (std::size_t c = 0; c < metric_cols; ++c) os << ",";
    }
    os << "\n";
  }
}

void ResultSink::WriteCsv(const std::string& path,
                          const std::vector<JobResult>& results) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  DS_REQUIRE(out.good(), "ResultSink: cannot open '" << path << "'");
  WriteCsv(out, results);
  out.flush();
  DS_REQUIRE(out.good(), "ResultSink: write to '" << path << "' failed");
}

void ResultSink::WriteJsonRows(std::ostream& os,
                               const std::vector<JobResult>& results) const {
  DS_REQUIRE(results.size() == jobs_.size(),
             "ResultSink: " << results.size() << " results for "
                            << jobs_.size() << " jobs");
  os << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const JobResult& r = results[i];
    os << "  {\"job\": " << i << ", \"status\": \"" << StatusOf(r) << "\"";
    for (const auto& [field, value] : jobs_[i])
      os << ", \"" << JsonEscape(field) << "\": \"" << JsonEscape(value)
         << "\"";
    if (r.ok && !r.skipped) {
      for (const auto& [key, value] : r.metrics)
        os << ", \"" << JsonEscape(key) << "\": " << ExactNumber(value);
    }
    if (!r.ok)
      os << ", \"error\": \"" << JsonEscape(r.error) << "\"";
    os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

void ResultSink::WriteJsonRows(const std::string& path,
                               const std::vector<JobResult>& results) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  DS_REQUIRE(out.good(), "ResultSink: cannot open '" << path << "'");
  WriteJsonRows(out, results);
  out.flush();
  DS_REQUIRE(out.good(), "ResultSink: write to '" << path << "' failed");
}

std::string JournalHeaderLine(const SweepSpec& spec) {
  std::ostringstream os;
  os << "{\"sweep\": \"" << JsonEscape(spec.name()) << "\", \"version\": 1, "
     << "\"fingerprint\": \"" << spec.Fingerprint() << "\"}";
  return os.str();
}

std::string JournalLine(const JobResult& result) {
  std::ostringstream os;
  os << "{\"job\": " << result.index << ", \"ok\": "
     << (result.ok ? "true" : "false")
     << ", \"skipped\": " << (result.skipped ? "true" : "false");
  if (!result.ok) os << ", \"error\": \"" << JsonEscape(result.error) << "\"";
  os << ", \"metrics\": {";
  bool first = true;
  for (const auto& [key, value] : result.metrics) {
    os << (first ? "" : ", ") << "\"" << JsonEscape(key)
       << "\": " << ExactNumber(value);
    first = false;
  }
  os << "}}";
  return os.str();
}

bool LoadJournal(const std::string& path,
                 const std::string& expect_fingerprint,
                 std::vector<JobResult>* completed) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const telemetry::JsonValue doc = telemetry::ParseJson(line);
    DS_REQUIRE(doc.is_object(), "sweep journal '" << path
                                                  << "': malformed line");
    if (!saw_header) {
      const telemetry::JsonValue* version = doc.Find("version");
      const telemetry::JsonValue* fingerprint = doc.Find("fingerprint");
      DS_REQUIRE(version != nullptr && version->is_number() &&
                     version->number == 1.0,  // ds_lint: allow(float-equals)
                 "sweep journal '" << path << "': unsupported version");
      DS_REQUIRE(fingerprint != nullptr && fingerprint->is_string() &&
                     fingerprint->str == expect_fingerprint,
                 "sweep journal '"
                     << path
                     << "' belongs to a different sweep spec; delete it or "
                        "pass a fresh checkpoint path");
      saw_header = true;
      continue;
    }
    const telemetry::JsonValue* job = doc.Find("job");
    const telemetry::JsonValue* ok = doc.Find("ok");
    const telemetry::JsonValue* metrics = doc.Find("metrics");
    DS_REQUIRE(job != nullptr && job->is_number() && ok != nullptr &&
                   metrics != nullptr && metrics->is_object(),
               "sweep journal '" << path << "': malformed job line");
    JobResult r;
    r.index = static_cast<std::size_t>(job->number);
    r.ok = ok->boolean;
    if (const telemetry::JsonValue* skipped = doc.Find("skipped"))
      r.skipped = skipped->boolean;
    if (const telemetry::JsonValue* error = doc.Find("error"))
      r.error = error->str;
    r.metrics.reserve(metrics->object.size());
    for (const auto& [key, value] : metrics->object) {
      DS_REQUIRE(value.is_number(), "sweep journal '"
                                        << path << "': metric '" << key
                                        << "' is not a number");
      r.metrics.emplace_back(key, value.number);
    }
    completed->push_back(std::move(r));
  }
  DS_REQUIRE(saw_header, "sweep journal '" << path << "': missing header");
  return true;
}

}  // namespace ds::runtime
