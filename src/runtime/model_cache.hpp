// Shared thermal-model cache for the sweep engine.
//
// Every scenario in a sweep that shares a floorplan/package also shares
// the expensive thermal artifacts: the LU factorization of the RC
// conductance matrix (O(n^3) in 4N+12 nodes), the die influence matrix
// (N more solves) and the TSP-per-active-count tables derived from it.
// Pre-engine, each bench rebuilt those per Platform instance; the cache
// memoizes them under a content key so that a 70-job sweep over one
// floorplan performs exactly one factorization.
//
// Keying: the full geometric/material content of (Floorplan,
// PackageParams), compared value-for-value -- two floorplans with the
// same grid and tile size hit the same entry no matter how they were
// constructed. Bitwise-identical inputs produce bitwise-identical
// cached results, so cached and uncached solves agree exactly (tested
// by test_runtime: max-abs diff == 0).
//
// Thread safety: the entry map is mutex-protected; each entry is built
// exactly once under a std::once_flag, so concurrent first requests for
// one key block until the single builder finishes. Hit/miss counts are
// therefore deterministic for a fixed job set: misses == distinct keys.
//
// Byte budget: set_budget_bytes caps the approximate resident size
// (dense G/C matrices, LU factorization, influence matrix, folded
// propagators). After each request the least-recently-used entries are
// evicted until the cache fits -- except the entry just requested,
// which is pinned so a single oversized floorplan still works (the
// budget degrades to "keep one"). Eviction only drops the cache's
// reference: in-flight users keep their shared_ptrs alive, so a tight
// budget costs rebuilds (counted in stats().evictions and the
// "modelcache.evictions" counter), never correctness and never an
// unbounded footprint.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "util/lock_levels.hpp"
#include "util/thread_annotations.hpp"

#include "arch/platform.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/propagator.hpp"
#include "thermal/rc_model.hpp"
#include "thermal/steady_state.hpp"

namespace ds::runtime {

/// Content hash of the (floorplan, package) cache key: SplitMix64 mixed
/// over the key scalars' bit patterns. This is the `model_hash`
/// correlation field on cache_evict events -- a Perfetto/ds_report user
/// can tie an eviction back to the model family it dropped.
std::uint64_t ModelContentHash(const thermal::Floorplan& fp,
                               const thermal::PackageParams& pkg = {});

/// The shareable per-floorplan thermal state: RC network, a solver
/// factored from it (influence matrix forced, so sharing is read-only)
/// and the dt -> step-propagator cache tied to the model, so every
/// sweep job at a given control period reuses one folded step operator
/// (PropagatorSet is internally synchronized).
struct ThermalAssets {
  std::shared_ptr<const thermal::RcModel> model;
  std::shared_ptr<const thermal::SteadyStateSolver> solver;
  std::shared_ptr<const thermal::PropagatorSet> propagators;
};

class ModelCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t tsp_hits = 0;
    std::uint64_t tsp_misses = 0;
    std::uint64_t evictions = 0;  // entries dropped to fit the budget
    std::uint64_t bytes = 0;      // approx resident bytes after last Get
  };

  /// Returns the shared assets for (fp, pkg), building them on first
  /// request. Also bumps the "modelcache.hits"/"modelcache.misses"
  /// telemetry counters.
  ThermalAssets Get(const thermal::Floorplan& fp,
                    const thermal::PackageParams& pkg = {});

  /// Get() for the platform's floorplan (default package) followed by
  /// Platform::AdoptThermalAssets, after which the platform can be used
  /// from the calling thread without ever factorizing.
  void InstallThermal(arch::Platform& platform);

  /// Memoized worst-case (densest-mapping) TSP(m) for the platform's
  /// thermal model; equals core::Tsp(platform).WorstCase(m) exactly.
  double TspWorstCase(const arch::Platform& platform, std::size_t m);

  /// Memoized best-case (spread-mapping) TSP(m); equals
  /// core::Tsp(platform).BestCase(m) exactly.
  double TspBestCase(const arch::Platform& platform, std::size_t m);

  /// Drops every entry (tests; long-lived processes switching studies).
  void Clear();

  /// Byte ceiling for cached entries; 0 = unlimited. Takes effect on
  /// the next Get (never evicts eagerly here).
  void set_budget_bytes(std::size_t bytes);
  std::size_t budget_bytes() const;

  Stats stats() const;

  /// The process-wide cache used by default by the sweep engine.
  static ModelCache& Process();

 private:
  struct Entry {
    std::once_flag once;
    ThermalAssets assets;
    std::atomic<bool> built{false};  // assets valid (set after call_once)
    // Guarded by the *enclosing* ModelCache::mu_ -- a nested struct
    // cannot name the outer capability, so this one stays a comment
    // contract (every access site sits under a MutexLock on mu_).
    std::uint64_t last_use = 0;
    std::uint64_t key_hash = 0;      // content-key hash (event correlation)
    /// Taken only after ModelCache::mu_ is released, never beneath it.
    Mutex tsp_mu{locks::kModelCacheEntry};
    // ('w' | 'b', active count) -> budget [W/core]
    std::map<std::pair<char, std::size_t>, double> tsp DS_GUARDED_BY(tsp_mu);
  };

  std::shared_ptr<Entry> GetEntry(const thermal::Floorplan& fp,
                                  const thermal::PackageParams& pkg,
                                  bool count_stats);
  double TspForEntry(const arch::Platform& platform, std::size_t m,
                     char kind);

  /// Approximate resident bytes of one *built* entry (0 while the
  /// builder is still running -- mid-build entries are never charged
  /// or evicted; their size lands on the next enforcement pass).
  static std::size_t EntryBytes(const Entry& entry);

  /// Recomputes total bytes and evicts LRU entries (never `pinned`)
  /// until the budget fits. Updates bytes_ and the telemetry gauge.
  void EnforceBudget(const Entry* pinned);

  mutable Mutex mu_{locks::kModelCache};
  std::map<std::vector<double>, std::shared_ptr<Entry>> entries_
      DS_GUARDED_BY(mu_);
  std::size_t budget_bytes_ DS_GUARDED_BY(mu_) = 0;   // 0 = unlimited
  std::uint64_t use_counter_ DS_GUARDED_BY(mu_) = 0;  // LRU clock
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> tsp_hits_{0};
  std::atomic<std::uint64_t> tsp_misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace ds::runtime
