#include "faults/chaos.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace ds::faults {

namespace {

/// SplitMix64 finalizer -- the same mixing the sweep spec uses for
/// per-job seeds, applied twice to fold (job, attempt) into the chaos
/// seed without correlation between neighbouring jobs or attempts.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void CancelToken::Cancel() {
  {
    const MutexLock lock(mu_);
    cancelled_ = true;
  }
  cv_.NotifyAll();
}

bool CancelToken::cancelled() const {
  const MutexLock lock(mu_);
  return cancelled_;
}

bool CancelToken::SleepFor(double duration_ms) const {
  MutexLock lock(mu_);
  if (duration_ms <= 0.0) return !cancelled_;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(duration_ms));
  while (!cancelled_) {
    if (cv_.WaitUntil(lock, deadline)) return !cancelled_;
  }
  return false;
}

void ChaosConfig::Validate() const {
  const auto rate_ok = [](double r) {
    return std::isfinite(r) && r >= 0.0 && r <= 1.0;
  };
  if (!rate_ok(fail_rate) || !rate_ok(delay_rate))
    throw std::invalid_argument(
        "ChaosConfig: rates must be finite and in [0, 1]");
  if (!std::isfinite(delay_ms) || delay_ms < 0.0)
    throw std::invalid_argument(
        "ChaosConfig: delay_ms must be finite and >= 0");
  if (max_faulty_attempts == 0)
    throw std::invalid_argument(
        "ChaosConfig: max_faulty_attempts must be >= 1 (use enabled=false "
        "to disable chaos)");
}

bool ChaosConfig::AnyChaosPossible() const {
  return enabled && (fail_rate > 0.0 || (delay_rate > 0.0 && delay_ms > 0.0));
}

ChaosInjector::ChaosInjector(const ChaosConfig& config) : config_(config) {
  config_.Validate();
}

ChaosDecision ChaosInjector::Decide(std::size_t job,
                                    std::size_t attempt) const {
  ChaosDecision d;
  if (!config_.enabled || attempt >= config_.max_faulty_attempts) return d;
  util::Rng rng(Mix(Mix(config_.seed ^ static_cast<std::uint64_t>(job)) ^
                    static_cast<std::uint64_t>(attempt)));
  // Fixed sampling order (delay first) so a decision never depends on
  // which classes are enabled elsewhere.
  const double delay_draw = rng.Uniform(0.0, 1.0);
  const double fail_draw = rng.Uniform(0.0, 1.0);
  if (config_.delay_rate > 0.0 && delay_draw < config_.delay_rate &&
      config_.delay_ms > 0.0) {
    d.delay = true;
    d.delay_ms = config_.delay_ms;
  }
  if (config_.fail_rate > 0.0 && fail_draw < config_.fail_rate) d.fail = true;
  return d;
}

void ChaosInjector::LogDecision(FaultLog& log, const ChaosDecision& decision,
                                std::size_t job, std::size_t attempt) {
  const double t = static_cast<double>(attempt);
  const std::string detail =
      "job " + std::to_string(job) + " attempt " + std::to_string(attempt);
  if (decision.delay)
    log.Record(t, FaultEventKind::kInjected, FaultKind::kJobDelay, job,
               decision.delay_ms, detail);
  if (decision.fail)
    log.Record(t, FaultEventKind::kInjected, FaultKind::kJobTransient, job,
               0.0, detail);
}

}  // namespace ds::faults
