#include "faults/fault_injector.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "telemetry/scoped.hpp"
#include "util/contracts.hpp"
#include "util/table.hpp"

namespace ds::faults {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSensorStuck:
      return "sensor-stuck";
    case FaultKind::kSensorNoise:
      return "sensor-noise";
    case FaultKind::kSensorDrift:
      return "sensor-drift";
    case FaultKind::kSensorDropout:
      return "sensor-dropout";
    case FaultKind::kSensorNan:
      return "sensor-nan";
    case FaultKind::kCoreFailStop:
      return "core-fail-stop";
    case FaultKind::kCoreTransient:
      return "core-transient";
    case FaultKind::kDvfsStuck:
      return "dvfs-stuck";
    case FaultKind::kSolverNonConvergence:
      return "solver-non-convergence";
    case FaultKind::kJobTransient:
      return "job-transient";
    case FaultKind::kJobDelay:
      return "job-delay";
  }
  return "?";
}

const char* FaultEventKindName(FaultEventKind kind) {
  switch (kind) {
    case FaultEventKind::kInjected:
      return "injected";
    case FaultEventKind::kCleared:
      return "cleared";
    case FaultEventKind::kMitigated:
      return "mitigated";
  }
  return "?";
}

void FaultLog::Record(double time_s, FaultEventKind event, FaultKind kind,
                      std::size_t core, double value, std::string detail) {
#if DS_TELEMETRY_COMPILED_IN
  // Bridge every log entry into the trace stream as an instant event.
  // Trace timestamps are wall-clock; simulation time and the affected
  // core ride along as arguments. The category encodes the event kind
  // so Perfetto can color-group injections vs. mitigations.
  const char* cat = "fault.injected";
  switch (event) {
    case FaultEventKind::kInjected:
      DS_TELEM_COUNT("faults.injected", 1);
      break;
    case FaultEventKind::kCleared:
      cat = "fault.cleared";
      DS_TELEM_COUNT("faults.cleared", 1);
      break;
    case FaultEventKind::kMitigated:
      cat = "fault.mitigated";
      DS_TELEM_COUNT("faults.mitigated", 1);
      break;
  }
  ds::telemetry::EmitInstant(
      cat, FaultKindName(kind), ds::telemetry::TraceLevel::kDecision,
      "sim_time_s", time_s, "core",
      core == kNoCore ? -1.0 : static_cast<double>(core));
#endif
  events_.push_back(
      {time_s, event, kind, core, value, std::move(detail)});
}

std::size_t FaultLog::CountEvents(FaultEventKind event) const {
  std::size_t count = 0;
  for (const FaultEvent& e : events_)
    if (e.event == event) ++count;
  return count;
}

std::size_t FaultLog::CountInjected(FaultKind kind) const {
  std::size_t count = 0;
  for (const FaultEvent& e : events_)
    if (e.event == FaultEventKind::kInjected && e.kind == kind) ++count;
  return count;
}

std::size_t FaultLog::CountMitigated(FaultKind kind) const {
  std::size_t count = 0;
  for (const FaultEvent& e : events_)
    if (e.event == FaultEventKind::kMitigated && e.kind == kind) ++count;
  return count;
}

bool FaultLog::EveryInjectionMitigated() const {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& inj = events_[i];
    if (inj.event != FaultEventKind::kInjected) continue;
    bool matched = false;
    for (std::size_t j = 0; j < events_.size(); ++j) {
      const FaultEvent& mit = events_[j];
      if (mit.event == FaultEventKind::kMitigated && mit.kind == inj.kind &&
          mit.core == inj.core && mit.time_s >= inj.time_s) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

void FaultLog::WriteCsv(const std::string& path) const {
  // Build a util::Table and reuse its CSV writer (single dump path for
  // tabular output across the repo).
  util::Table table({"time_s", "event", "kind", "core", "value", "detail"});
  for (const FaultEvent& e : events_) {
    table.Row()
        .Cell(std::to_string(e.time_s))
        .Cell(FaultEventKindName(e.event))
        .Cell(FaultKindName(e.kind))
        .Cell(e.core == kNoCore ? std::string("-") : std::to_string(e.core))
        .Cell(std::to_string(e.value))
        .Cell(e.detail);
  }
  table.WriteCsv(path);
}

void FaultConfig::Validate() const {
  auto rate_ok = [](double r) {
    return std::isfinite(r) && r >= 0.0 && r <= 1.0;
  };
  DS_REQUIRE(rate_ok(sensor_stuck_rate) && rate_ok(sensor_dropout_rate) &&
                 rate_ok(sensor_nan_rate) && rate_ok(sensor_drift_rate) &&
                 rate_ok(core_failstop_rate) && rate_ok(core_transient_rate) &&
                 rate_ok(dvfs_stuck_rate) && rate_ok(solver_fail_rate),
             "FaultConfig: per-step rates must be finite and within [0, 1]");
  DS_REQUIRE(std::isfinite(sensor_noise_sigma_c) && sensor_noise_sigma_c >= 0.0,
             "FaultConfig: sensor_noise_sigma_c " << sensor_noise_sigma_c
                 << " must be finite and >= 0");
  DS_REQUIRE(std::isfinite(sensor_drift_c_per_s),
             "FaultConfig: sensor_drift_c_per_s must be finite");
  DS_REQUIRE(stuck_duration_s > 0.0 && dropout_duration_s > 0.0 &&
                 transient_duration_s > 0.0 && dvfs_stuck_duration_s > 0.0,
             "FaultConfig: fault durations must be positive");
  DS_REQUIRE(!std::isnan(max_injection_time_s),
             "FaultConfig: max_injection_time_s must not be NaN");
}

bool FaultConfig::AnyFaultPossible() const {
  return enabled &&
         (sensor_stuck_rate > 0.0 || sensor_dropout_rate > 0.0 ||
          sensor_nan_rate > 0.0 || sensor_drift_rate > 0.0 ||
          sensor_noise_sigma_c > 0.0 || core_failstop_rate > 0.0 ||
          core_transient_rate > 0.0 || dvfs_stuck_rate > 0.0 ||
          solver_fail_rate > 0.0);
}

FaultInjector::FaultInjector(const FaultConfig& config, std::size_t num_cores)
    : config_(config),
      num_cores_(num_cores),
      rng_(config.seed),
      sensors_(num_cores),
      cores_(num_cores),
      core_down_(num_cores, false) {
  config_.Validate();
}

void FaultInjector::BeginStep(double time_s, double dt_s) {
  time_s_ = time_s;
  dt_s_ = dt_s;
  injecting_ = time_s <= config_.max_injection_time_s;

  // Expire bounded faults first so a fault slot can be re-used.
  for (std::size_t c = 0; c < num_cores_; ++c) {
    SensorState& s = sensors_[c];
    s.nan_this_step = false;
    if (s.stuck_until_s >= 0.0 && time_s > s.stuck_until_s) {
      s.stuck_until_s = -1.0;
      log_.Record(time_s, FaultEventKind::kCleared, FaultKind::kSensorStuck,
                  c, s.stuck_value_c, "stuck interval expired");
    }
    if (s.dropout_until_s >= 0.0 && time_s > s.dropout_until_s) {
      s.dropout_until_s = -1.0;
      log_.Record(time_s, FaultEventKind::kCleared,
                  FaultKind::kSensorDropout, c, 0.0,
                  "sensor delivering again");
    }
    CoreState& core = cores_[c];
    if (core.down && !core.permanent && time_s > core.down_until_s) {
      core.down = false;
      core_down_[c] = false;
      --num_down_;
      newly_recovered_.push_back(c);
      log_.Record(time_s, FaultEventKind::kCleared, FaultKind::kCoreTransient,
                  c, 0.0, "transient outage ended");
    }
  }
  if (dvfs_stuck_until_s_ >= 0.0 && time_s > dvfs_stuck_until_s_) {
    dvfs_stuck_until_s_ = -1.0;
    log_.Record(time_s, FaultEventKind::kCleared, FaultKind::kDvfsStuck,
                kNoCore, static_cast<double>(dvfs_stuck_level_),
                "actuator accepting commands again");
  }

  if (!injecting_) return;

  // Sample new faults in a fixed core order (determinism).
  for (std::size_t c = 0; c < num_cores_; ++c) {
    SensorState& s = sensors_[c];
    if (s.stuck_until_s < 0.0 && Hit(config_.sensor_stuck_rate)) {
      s.stuck_until_s = time_s + config_.stuck_duration_s;
      s.stuck_value_c = s.last_value_c;
      log_.Record(time_s, FaultEventKind::kInjected, FaultKind::kSensorStuck,
                  c, s.stuck_value_c, "reading frozen at last value");
    }
    if (s.dropout_until_s < 0.0 && Hit(config_.sensor_dropout_rate)) {
      s.dropout_until_s = time_s + config_.dropout_duration_s;
      log_.Record(time_s, FaultEventKind::kInjected,
                  FaultKind::kSensorDropout, c, 0.0,
                  "sensor stopped delivering (stale valid-bit)");
    }
    if (Hit(config_.sensor_nan_rate)) {
      s.nan_this_step = true;
      log_.Record(time_s, FaultEventKind::kInjected, FaultKind::kSensorNan,
                  c, 0.0, "single NaN reading");
    }
    if (!s.drifting && Hit(config_.sensor_drift_rate)) {
      s.drifting = true;
      log_.Record(time_s, FaultEventKind::kInjected, FaultKind::kSensorDrift,
                  c, config_.sensor_drift_c_per_s, "slow drift started");
    }

    CoreState& core = cores_[c];
    if (!core.down && num_down_ < config_.max_failed_cores) {
      if (Hit(config_.core_failstop_rate)) {
        core.down = true;
        core.permanent = true;
        core_down_[c] = true;
        ++num_down_;
        newly_down_.push_back(c);
        log_.Record(time_s, FaultEventKind::kInjected,
                    FaultKind::kCoreFailStop, c, 0.0,
                    "core fail-stopped (permanent)");
      } else if (Hit(config_.core_transient_rate)) {
        core.down = true;
        core.permanent = false;
        core.down_until_s = time_s + config_.transient_duration_s;
        core_down_[c] = true;
        ++num_down_;
        newly_down_.push_back(c);
        log_.Record(time_s, FaultEventKind::kInjected,
                    FaultKind::kCoreTransient, c, 0.0,
                    "core transiently unavailable");
      }
    }
  }

  if (dvfs_stuck_until_s_ < 0.0 && Hit(config_.dvfs_stuck_rate)) {
    dvfs_stuck_until_s_ = time_s + config_.dvfs_stuck_duration_s;
    dvfs_fault_mitigation_logged_ = false;
    // The stuck level is latched on the first ApplyDvfs of the fault.
    dvfs_stuck_level_ = std::numeric_limits<std::size_t>::max();
    log_.Record(time_s, FaultEventKind::kInjected, FaultKind::kDvfsStuck,
                kNoCore, 0.0, "actuator ignoring level commands");
  }
}

SensorReading FaultInjector::CorruptReading(std::size_t core,
                                            double true_temp_c) {
  SensorState& s = sensors_[core];
  s.has_active = false;
  double value = true_temp_c;

  if (s.drifting) {
    s.drift_c += config_.sensor_drift_c_per_s * dt_s_;
    value += s.drift_c;
    s.active = FaultKind::kSensorDrift;
    s.has_active = true;
  }
  if (config_.sensor_noise_sigma_c > 0.0) {
    value += rng_.Normal(0.0, config_.sensor_noise_sigma_c);
    if (!s.has_active) {
      s.active = FaultKind::kSensorNoise;
      s.has_active = true;
    }
  }
  if (s.stuck_until_s >= 0.0) {
    value = s.stuck_value_c;
    s.active = FaultKind::kSensorStuck;
    s.has_active = true;
  }
  if (s.nan_this_step) {
    value = std::numeric_limits<double>::quiet_NaN();
    s.active = FaultKind::kSensorNan;
    s.has_active = true;
  }
  if (s.dropout_until_s >= 0.0) {
    // Stale: the bus keeps seeing the last delivered value, not fresh.
    s.active = FaultKind::kSensorDropout;
    s.has_active = true;
    return {s.last_value_c, false};
  }
  s.last_value_c = value;
  return {value, true};
}

bool FaultInjector::ActiveSensorFault(std::size_t core,
                                      FaultKind* kind) const {
  const SensorState& s = sensors_[core];
  if (!s.has_active) return false;
  if (kind != nullptr) *kind = s.active;
  return true;
}

std::vector<std::size_t> FaultInjector::TakeNewlyDownCores() {
  return std::exchange(newly_down_, {});
}

std::vector<std::size_t> FaultInjector::TakeNewlyRecoveredCores() {
  return std::exchange(newly_recovered_, {});
}

std::size_t FaultInjector::ApplyDvfs(std::size_t requested_level,
                                     std::size_t current_level) {
  if (dvfs_stuck_until_s_ < 0.0) return requested_level;
  if (dvfs_stuck_level_ == std::numeric_limits<std::size_t>::max())
    dvfs_stuck_level_ = current_level;
  if (requested_level != dvfs_stuck_level_ &&
      !dvfs_fault_mitigation_logged_) {
    dvfs_fault_mitigation_logged_ = true;
    log_.Record(time_s_, FaultEventKind::kMitigated, FaultKind::kDvfsStuck,
                kNoCore, static_cast<double>(dvfs_stuck_level_),
                "command blocked; governor re-issues each period and "
                "tracks the measured level");
  }
  return dvfs_stuck_level_;
}

bool FaultInjector::ConsumeSolverFault() {
  if (!injecting_ || !Hit(config_.solver_fail_rate)) return false;
  log_.Record(time_s_, FaultEventKind::kInjected,
              FaultKind::kSolverNonConvergence, kNoCore, 0.0,
              "steady-state solve declared non-convergent");
  return true;
}

}  // namespace ds::faults
