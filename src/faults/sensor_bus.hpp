// Validated thermal-sensor bus with graceful degradation.
//
// Every controller in this repo used to read die temperatures straight
// out of the RC model -- i.e. it trusted a perfect sensor. SensorBus is
// the indirection real thermal stacks put in between:
//
//   truth -> (FaultInjector, optional) -> plausibility checks -> value
//
// A reading is rejected when it is NaN/non-finite, outside the
// configured plausible band, or stale (the sensor valid-bit stopped
// updating). Rejected readings are replaced by a trend-corrected EWMA
// of the last accepted readings -- an O(1) stand-in for a model
// predictor, since die temperature moves smoothly at the 1 ms control
// period. After `watchdog_threshold` consecutive control steps with at
// least one bad reading the bus declares the watchdog safe-state
// (consumers must throttle to the lowest ladder level); it re-arms
// after `watchdog_recovery` consecutive clean steps.
//
// With no injector attached, Sample() copies the true temperatures
// verbatim and performs no validation -- controllers built on the bus
// are bit-identical to the pre-bus code when fault injection is off.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "faults/fault_injector.hpp"

namespace ds::faults {

struct SensorBusPolicy {
  double min_plausible_c = -20.0;   // below: sensor is lying
  double max_plausible_c = 150.0;   // above: sensor is lying
  double ewma_alpha = 0.25;         // smoothing of the fallback estimate
  std::size_t watchdog_threshold = 5;   // bad steps before safe-state
  std::size_t watchdog_recovery = 50;   // clean steps to leave safe-state

  /// Throws std::invalid_argument on inverted bounds, alpha outside
  /// (0, 1] or a zero watchdog threshold.
  void Validate() const;
};

class SensorBus {
 public:
  /// A bus over `num_cores` sensors; the fallback estimator starts at
  /// `ambient_c`. Throws std::invalid_argument on invalid `policy`.
  SensorBus(std::size_t num_cores, double ambient_c,
            SensorBusPolicy policy = {});

  /// Attaches the fault source. Mitigations (substituted readings,
  /// safe-state transitions) are recorded in the injector's log.
  /// Pass nullptr to detach (pass-through mode).
  void AttachInjector(FaultInjector* injector);

  /// Ingests one control step of true temperatures and returns the
  /// sensed (validated, possibly substituted) per-core temperatures.
  /// The span stays valid until the next Sample() call.
  const std::vector<double>& Sample(double time_s,
                                    std::span<const double> true_temps);

  /// Latest sensed temperatures (result of the last Sample()).
  const std::vector<double>& temps() const { return sensed_; }

  /// Peak of the latest sensed temperatures.
  double PeakTemp() const;

  /// True while the watchdog holds the chip in the safe-state.
  bool InSafeState() const { return safe_state_; }

  /// Readings rejected and substituted so far (all cores, all steps).
  std::size_t substitutions() const { return substitutions_; }

  /// True when `core`'s reading was rejected in the last Sample().
  bool ReadingWasBad(std::size_t core) const { return bad_[core]; }

  const SensorBusPolicy& policy() const { return policy_; }

 private:
  SensorBusPolicy policy_;
  FaultInjector* injector_ = nullptr;
  std::vector<double> sensed_;
  std::vector<double> ewma_;      // smoothed last-accepted readings
  std::vector<double> trend_;     // smoothed per-step delta
  std::vector<bool> bad_;
  std::vector<bool> seeded_;      // ewma seeded with a real reading yet
  std::size_t bad_streak_ = 0;    // consecutive steps with >= 1 bad reading
  std::size_t clean_streak_ = 0;
  bool safe_state_ = false;
  std::size_t substitutions_ = 0;
};

}  // namespace ds::faults
