#include "faults/sensor_bus.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/contracts.hpp"

namespace ds::faults {

void SensorBusPolicy::Validate() const {
  DS_REQUIRE(min_plausible_c < max_plausible_c,
             "SensorBusPolicy: plausible band [" << min_plausible_c << ", "
                 << max_plausible_c << "] must be non-empty");
  DS_REQUIRE(ewma_alpha > 0.0 && ewma_alpha <= 1.0,
             "SensorBusPolicy: ewma_alpha " << ewma_alpha
                 << " must be in (0, 1]");
  DS_REQUIRE(watchdog_threshold >= 1,
             "SensorBusPolicy: watchdog_threshold must be >= 1");
}

SensorBus::SensorBus(std::size_t num_cores, double ambient_c,
                     SensorBusPolicy policy)
    : policy_(policy),
      sensed_(num_cores, ambient_c),
      ewma_(num_cores, ambient_c),
      trend_(num_cores, 0.0),
      bad_(num_cores, false),
      seeded_(num_cores, false) {
  policy_.Validate();
}

void SensorBus::AttachInjector(FaultInjector* injector) {
  injector_ = injector;
}

const std::vector<double>& SensorBus::Sample(
    double time_s, std::span<const double> true_temps) {
  const std::size_t n = sensed_.size();
  if (injector_ == nullptr) {
    // Pass-through: exactly the true temperatures, no validation work.
    sensed_.assign(true_temps.begin(), true_temps.end());
    return sensed_;
  }

  bool any_bad = false;
  for (std::size_t c = 0; c < n; ++c) {
    const SensorReading reading = injector_->CorruptReading(c, true_temps[c]);
    const bool implausible = !std::isfinite(reading.value_c) ||
                             reading.value_c < policy_.min_plausible_c ||
                             reading.value_c > policy_.max_plausible_c;
    const bool reject = !reading.fresh || implausible;
    bad_[c] = reject;
    if (!reject) {
      // Accept, refresh the fallback estimator.
      if (!seeded_[c]) {
        ewma_[c] = reading.value_c;
        trend_[c] = 0.0;
        seeded_[c] = true;
      } else {
        const double prev = ewma_[c];
        ewma_[c] = policy_.ewma_alpha * reading.value_c +
                   (1.0 - policy_.ewma_alpha) * ewma_[c];
        trend_[c] = policy_.ewma_alpha * (ewma_[c] - prev) +
                    (1.0 - policy_.ewma_alpha) * trend_[c];
      }
      sensed_[c] = reading.value_c;
      continue;
    }

    any_bad = true;
    // Substitute the trend-corrected EWMA (model-predicted estimate);
    // let the prediction coast along its trend while the sensor is out.
    ewma_[c] += trend_[c];
    sensed_[c] = ewma_[c];
    ++substitutions_;
    FaultKind kind = FaultKind::kSensorNan;
    if (!injector_->ActiveSensorFault(c, &kind)) {
      // Rejected without a matching injected fault (e.g. drift walked
      // out of the plausible band long after injection): classify by
      // symptom so the log stays self-describing.
      kind = !reading.fresh ? FaultKind::kSensorDropout
                            : FaultKind::kSensorNan;
    }
    injector_->log().Record(
        time_s, FaultEventKind::kMitigated, kind, c, sensed_[c],
        !reading.fresh ? "stale reading replaced by EWMA estimate"
                       : "implausible reading replaced by EWMA estimate");
  }

  // Watchdog bookkeeping.
  if (any_bad) {
    ++bad_streak_;
    clean_streak_ = 0;
    if (!safe_state_ && bad_streak_ >= policy_.watchdog_threshold) {
      safe_state_ = true;
      injector_->log().Record(
          time_s, FaultEventKind::kMitigated, FaultKind::kSensorDropout,
          kNoCore, static_cast<double>(bad_streak_),
          "watchdog safe-state entered (throttle to lowest level)");
    }
  } else {
    bad_streak_ = 0;
    ++clean_streak_;
    if (safe_state_ && clean_streak_ >= policy_.watchdog_recovery) {
      safe_state_ = false;
      injector_->log().Record(
          time_s, FaultEventKind::kCleared, FaultKind::kSensorDropout,
          kNoCore, static_cast<double>(clean_streak_),
          "watchdog safe-state left after clean readings");
    }
  }
  return sensed_;
}

double SensorBus::PeakTemp() const {
  return *std::max_element(sensed_.begin(), sensed_.end());
}

}  // namespace ds::faults
