// Job-level chaos injection for the sweep runtime.
//
// The PR-1 fault injector exercises the *physics* consumers (sensors,
// cores, DVFS, solver). This layer exercises the *executor*: it makes
// individual sweep jobs fail with a transient error or hang long
// enough to trip the watchdog deadline, so the retry / backoff /
// quarantine machinery in runtime::SweepEngine can be proven under
// TSan instead of trusted.
//
// Determinism contract: every decision is a pure function of
// (config.seed, job index, attempt index). A chaos run is therefore
// exactly reproducible regardless of thread count or scheduling, and a
// test can pick (rates, max_faulty_attempts, retry budget) so that
// every job is guaranteed to eventually succeed -- which is what lets
// CI demand byte-identical result rows from a chaos run and a clean
// run. Injections are recorded through the same faults::FaultLog used
// by the closed-loop simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

#include "faults/fault_injector.hpp"
#include "util/lock_levels.hpp"
#include "util/thread_annotations.hpp"

namespace ds::faults {

/// Cancellable sleep primitive shared by the watchdog and the chaos
/// delay path. A worker sleeps on the token; the watchdog cancels it
/// when the job deadline passes, so even an injected multi-second hang
/// unblocks within one watchdog tick.
class CancelToken {
 public:
  void Cancel();
  bool cancelled() const;

  /// Blocks up to `duration_ms`. Returns true if the full duration
  /// elapsed, false if the token was cancelled first (or already was).
  bool SleepFor(double duration_ms) const;

 private:
  mutable Mutex mu_{locks::kCancelToken};
  mutable CondVar cv_;
  bool cancelled_ DS_GUARDED_BY(mu_) = false;
};

/// Chaos scenario description for `darksilicon sweep --chaos-*`.
/// Rates are per job *attempt*; 0 disables the class.
struct ChaosConfig {
  bool enabled = false;
  std::uint64_t seed = 42;

  /// P(attempt throws a transient util::SolverError).
  double fail_rate = 0.0;
  /// P(attempt sleeps `delay_ms` before running). Combined with a job
  /// deadline this exercises the watchdog-timeout path.
  double delay_rate = 0.0;
  double delay_ms = 0.0;

  /// Attempts at index >= this are never sabotaged. Setting it at or
  /// below the engine's retry budget guarantees every job eventually
  /// succeeds -- the knob behind the byte-identical chaos CI check.
  std::size_t max_faulty_attempts = std::numeric_limits<std::size_t>::max();

  /// Throws std::invalid_argument on rates outside [0, 1], a negative
  /// or non-finite delay, or a zero max_faulty_attempts.
  void Validate() const;

  /// enabled and at least one class has a non-zero rate.
  bool AnyChaosPossible() const;
};

/// What happens to one (job, attempt).
struct ChaosDecision {
  bool fail = false;
  bool delay = false;
  double delay_ms = 0.0;
};

class ChaosInjector {
 public:
  /// Throws std::invalid_argument if `config` fails Validate().
  explicit ChaosInjector(const ChaosConfig& config);

  /// Decision for attempt `attempt` (0-based) of job `job`. Pure and
  /// thread-safe: a fresh generator is seeded from (seed, job, attempt)
  /// per call, so concurrent workers never share mutable state.
  ChaosDecision Decide(std::size_t job, std::size_t attempt) const;

  /// Records an injected decision into `log` (caller synchronizes; the
  /// engine serializes on its journal mutex). `time_s` is the attempt
  /// index -- chaos events are logical, not wall-clock.
  static void LogDecision(FaultLog& log, const ChaosDecision& decision,
                          std::size_t job, std::size_t attempt);

  const ChaosConfig& config() const { return config_; }

 private:
  ChaosConfig config_;
};

}  // namespace ds::faults
