// Deterministic fault injection for the closed-loop runtime.
//
// The paper's runtime techniques (TSP, DTM, boosting, online admission)
// are what keep a dark-silicon chip safe -- but only if they keep
// working when the inputs lie. This subsystem injects the faults a real
// thermal-management stack must survive:
//
//   sensors   -- stuck-at, additive Gaussian noise, slow drift,
//                dropout (stale readings: the valid-bit stops updating),
//                single-reading NaN;
//   cores     -- permanent fail-stop and transient unavailability;
//   actuator  -- DVFS ladder stuck at its current level (commands
//                silently ignored) for a bounded interval;
//   solver    -- steady-state solve declared non-convergent, forcing
//                the perturbed-pivot retry path.
//
// All scheduling is driven by one seeded mt19937_64 sampled in a fixed
// per-step, per-core order, so a (config, seed) pair always produces an
// identical fault trace regardless of how the consumer reacts. Every
// injection, expiry and mitigation is recorded in a FaultLog that can
// be queried in tests and dumped to CSV.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ds::faults {

/// Sentinel core index for chip-wide events.
inline constexpr std::size_t kNoCore = std::numeric_limits<std::size_t>::max();

enum class FaultKind {
  kSensorStuck,
  kSensorNoise,
  kSensorDrift,
  kSensorDropout,
  kSensorNan,
  kCoreFailStop,
  kCoreTransient,
  kDvfsStuck,
  kSolverNonConvergence,
  kJobTransient,  // sweep job attempt fails with a transient error
  kJobDelay,      // sweep job attempt is delayed (deadline/watchdog test)
};

const char* FaultKindName(FaultKind kind);

enum class FaultEventKind {
  kInjected,   // fault became active
  kCleared,    // bounded fault expired on its own
  kMitigated,  // a consumer detected/absorbed the fault
};

const char* FaultEventKindName(FaultEventKind kind);

struct FaultEvent {
  double time_s = 0.0;
  FaultEventKind event = FaultEventKind::kInjected;
  FaultKind kind = FaultKind::kSensorDropout;
  std::size_t core = kNoCore;  // kNoCore for chip-wide faults
  double value = 0.0;          // kind-specific (stuck temp, level, ...)
  std::string detail;
};

/// Append-only structured record of injections and mitigations.
class FaultLog {
 public:
  void Record(double time_s, FaultEventKind event, FaultKind kind,
              std::size_t core, double value, std::string detail);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  std::size_t CountEvents(FaultEventKind event) const;
  std::size_t CountInjected(FaultKind kind) const;
  std::size_t CountMitigated(FaultKind kind) const;

  /// True when every kInjected event is followed (at an equal or later
  /// timestamp) by a kMitigated event of the same kind and core.
  bool EveryInjectionMitigated() const;

  /// Dumps the full event list (one row per event) to `path`.
  /// Propagates CsvWriter errors (std::runtime_error) on I/O failure.
  void WriteCsv(const std::string& path) const;

 private:
  std::vector<FaultEvent> events_;
};

/// Fault scenario description. All rates are per control step (and per
/// core where the fault is per-core); 0 disables the class. The struct
/// is cheap to copy and embeds in SimConfig/OnlineConfig; `enabled`
/// false keeps every consumer on its exact fault-free code path.
struct FaultConfig {
  bool enabled = false;
  std::uint64_t seed = 42;

  // Sensor faults (per step, per core).
  double sensor_stuck_rate = 0.0;      // reading freezes at current value
  double sensor_dropout_rate = 0.0;    // sensor stops delivering (stale)
  double sensor_nan_rate = 0.0;        // one NaN reading
  double sensor_drift_rate = 0.0;      // sensor starts drifting
  double sensor_noise_sigma_c = 0.0;   // additive N(0, sigma) on every reading
  double sensor_drift_c_per_s = 2.0;   // drift slope once drifting
  double stuck_duration_s = 0.2;
  double dropout_duration_s = 0.05;

  // Core faults (per step, per core).
  double core_failstop_rate = 0.0;     // permanent
  double core_transient_rate = 0.0;    // bounded outage
  double transient_duration_s = 0.5;
  std::size_t max_failed_cores =       // cap on simultaneously-down cores
      std::numeric_limits<std::size_t>::max();

  // DVFS actuator faults (per step, chip-wide governor).
  double dvfs_stuck_rate = 0.0;        // ladder ignores commands
  double dvfs_stuck_duration_s = 0.1;

  // Steady-state solver faults (per solve).
  double solver_fail_rate = 0.0;       // declare the solve non-convergent

  // No new faults are injected after this time (existing ones still
  // expire/persist); keeps end-of-run injections from being un-mitigable
  // in bounded-duration acceptance runs. Infinity = inject forever.
  double max_injection_time_s = std::numeric_limits<double>::infinity();

  /// Throws std::invalid_argument on out-of-range rates (must be finite,
  /// in [0, 1]), non-positive durations or a non-finite noise sigma.
  void Validate() const;

  /// enabled and at least one fault class has a non-zero rate/sigma.
  bool AnyFaultPossible() const;
};

/// One sensor reading as delivered by the (possibly faulty) interface.
/// `fresh` models the sensor valid-bit: a dropout keeps the last value
/// latched with fresh = false, which is how real buses detect staleness.
struct SensorReading {
  double value_c = 0.0;
  bool fresh = true;
};

class FaultInjector {
 public:
  /// Throws std::invalid_argument if `config` fails Validate().
  FaultInjector(const FaultConfig& config, std::size_t num_cores);

  /// Advances the fault schedule by one control step ending at
  /// `time_s`: samples new faults, expires bounded ones. Must be called
  /// once per step before any Corrupt*/Apply* queries for that step.
  void BeginStep(double time_s, double dt_s);

  /// Passes a true temperature through the faulty sensor path.
  SensorReading CorruptReading(std::size_t core, double true_temp_c);

  /// Fault (if any) currently corrupting `core`'s sensor, for matching
  /// mitigation log entries. Only meaningful after CorruptReading.
  bool ActiveSensorFault(std::size_t core, FaultKind* kind) const;

  /// True while `core` is fail-stopped or in a transient outage.
  bool CoreDown(std::size_t core) const { return core_down_[core]; }

  /// True when `core`'s current outage is permanent (fail-stop).
  bool CoreDownPermanent(std::size_t core) const {
    return cores_[core].down && cores_[core].permanent;
  }

  /// Cores that went down during the current step (drained on read, so
  /// the consumer sees each failure exactly once).
  std::vector<std::size_t> TakeNewlyDownCores();

  /// Cores whose transient outage ended during the current step.
  std::vector<std::size_t> TakeNewlyRecoveredCores();

  /// Routes a governor DVFS request through the (possibly stuck)
  /// actuator: returns the level actually applied.
  std::size_t ApplyDvfs(std::size_t requested_level,
                        std::size_t current_level);

  /// True when the next steady-state solve should be treated as
  /// non-convergent (consumed: at most one failure per query that
  /// returns true). The injection is logged here; the consumer logs the
  /// matching mitigation once its retry path succeeds.
  bool ConsumeSolverFault();

  FaultLog& log() { return log_; }
  const FaultLog& log() const { return log_; }
  const FaultConfig& config() const { return config_; }
  std::size_t num_down_cores() const { return num_down_; }

 private:
  struct SensorState {
    double stuck_until_s = -1.0;
    double stuck_value_c = 0.0;
    double dropout_until_s = -1.0;
    double last_value_c = 0.0;
    bool drifting = false;
    double drift_c = 0.0;
    bool nan_this_step = false;
    FaultKind active = FaultKind::kSensorNoise;  // valid iff has_active
    bool has_active = false;
  };

  struct CoreState {
    bool down = false;
    bool permanent = false;
    double down_until_s = 0.0;  // transient only
  };

  bool Hit(double rate) { return rate > 0.0 && rng_.Uniform(0.0, 1.0) < rate; }

  FaultConfig config_;
  std::size_t num_cores_;
  util::Rng rng_;
  FaultLog log_;
  double time_s_ = 0.0;
  double dt_s_ = 0.0;
  bool injecting_ = true;  // false past max_injection_time_s

  std::vector<SensorState> sensors_;
  std::vector<CoreState> cores_;
  std::vector<bool> core_down_;  // dense flag mirror of cores_[i].down
  std::size_t num_down_ = 0;
  std::vector<std::size_t> newly_down_;
  std::vector<std::size_t> newly_recovered_;

  double dvfs_stuck_until_s_ = -1.0;
  std::size_t dvfs_stuck_level_ = 0;
  bool dvfs_fault_mitigation_logged_ = false;
};

}  // namespace ds::faults
