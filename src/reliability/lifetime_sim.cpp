#include "reliability/lifetime_sim.hpp"

#include <stdexcept>

#include "core/mapping.hpp"

namespace ds::reliability {

const char* LifetimePolicyName(LifetimePolicy policy) {
  switch (policy) {
    case LifetimePolicy::kStaticContiguous:
      return "static-contiguous";
    case LifetimePolicy::kStaticSpread:
      return "static-spread";
    case LifetimePolicy::kRotateAgingAware:
      return "rotate-aging-aware";
  }
  return "?";
}

LifetimeSimulator::LifetimeSimulator(const arch::Platform& platform,
                                     const apps::AppProfile& app,
                                     std::size_t active_cores)
    : platform_(&platform),
      app_(&app),
      active_cores_(active_cores),
      estimator_(platform) {
  if (active_cores > platform.num_cores())
    throw std::invalid_argument("LifetimeSimulator: too many active cores");
}

LifetimeResult LifetimeSimulator::Run(LifetimePolicy policy,
                                      std::size_t epochs, double epoch_hours,
                                      double budget_h) const {
  const std::size_t level = platform_->ladder().NominalLevel();
  const power::VfLevel& vf = platform_->ladder()[level];
  apps::Workload w;
  w.AddN({app_, 8, vf.freq, vf.vdd}, active_cores_ / 8);
  if (active_cores_ % 8 != 0)
    w.Add({app_, active_cores_ % 8, vf.freq, vf.vdd});

  LifetimeResult result{AgingState(platform_->num_cores())};
  const util::Matrix& influence = platform_->solver().InfluenceMatrix();

  std::vector<std::size_t> static_set;
  if (policy == LifetimePolicy::kStaticContiguous)
    static_set = core::SelectCores(*platform_, active_cores_,
                                   core::MappingPolicy::kContiguous);
  else if (policy == LifetimePolicy::kStaticSpread)
    static_set = core::SelectCores(*platform_, active_cores_,
                                   core::MappingPolicy::kSpread);

  double temp_acc = 0.0;
  double gips_acc = 0.0;
  for (std::size_t e = 0; e < epochs; ++e) {
    const std::vector<std::size_t> set =
        policy == LifetimePolicy::kRotateAgingAware
            ? SelectAgingAware(influence, result.aging, active_cores_)
            : static_set;
    const core::Estimate est = estimator_.EvaluateWorkload(w, set);
    result.aging.Advance(est.core_temps, epoch_hours);
    temp_acc += est.peak_temp_c;
    gips_acc += est.total_gips;
  }

  result.max_wear_h = result.aging.MaxWear();
  result.mean_wear_h = result.aging.MeanWear();
  result.imbalance = result.aging.Imbalance();
  result.avg_peak_temp_c = temp_acc / static_cast<double>(epochs);
  result.avg_gips = gips_acc / static_cast<double>(epochs);
  const double sim_hours = static_cast<double>(epochs) * epoch_hours;
  const double wear_rate = result.max_wear_h / sim_hours;  // eq-h per hour
  result.years_to_budget =
      wear_rate > 0.0 ? budget_h / wear_rate / (365.0 * 24.0) : 0.0;
  return result;
}

}  // namespace ds::reliability
