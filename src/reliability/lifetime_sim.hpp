// Epoch-based lifetime simulation: runs a fixed workload for many
// epochs under a placement policy and accumulates per-core wear from
// the steady-state thermal profile of each epoch. Demonstrates the
// Hayat [3] effect the paper highlights: rotating the active set over
// the dark cores decelerates and balances aging.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "apps/app_profile.hpp"
#include "arch/platform.hpp"
#include "core/estimator.hpp"
#include "reliability/aging.hpp"

namespace ds::reliability {

enum class LifetimePolicy {
  kStaticContiguous,  // fixed block of cores, forever
  kStaticSpread,      // fixed patterned set, forever
  kRotateAgingAware,  // re-select the least-worn dispersed set per epoch
};

const char* LifetimePolicyName(LifetimePolicy policy);

struct LifetimeResult {
  AgingState aging;
  double max_wear_h = 0.0;       // equivalent stress hours, worst core
  double mean_wear_h = 0.0;
  double imbalance = 1.0;        // max/mean
  double avg_peak_temp_c = 0.0;  // across epochs
  double avg_gips = 0.0;
  /// Years until the worst core exhausts `budget_h` equivalent hours,
  /// extrapolating the simulated wear rate.
  double years_to_budget = 0.0;
};

class LifetimeSimulator {
 public:
  /// `active_cores` cores run `app` at the nominal level each epoch.
  LifetimeSimulator(const arch::Platform& platform,
                    const apps::AppProfile& app, std::size_t active_cores);

  /// Simulates `epochs` epochs of `epoch_hours` each under `policy`.
  /// `budget_h` is the per-core lifetime budget in equivalent stress
  /// hours at T_ref (default: 10 years of continuous reference-level
  /// stress).
  LifetimeResult Run(LifetimePolicy policy, std::size_t epochs,
                     double epoch_hours,
                     double budget_h = 10.0 * 365.0 * 24.0) const;

 private:
  const arch::Platform* platform_;
  const apps::AppProfile* app_;
  std::size_t active_cores_;
  core::DarkSiliconEstimator estimator_;
};

}  // namespace ds::reliability
