// Temperature-driven aging and lifetime balancing.
//
// The paper's Sec. 1 motivates leveraging dark silicon "to improve the
// thermal profiles and reliability of manycore systems" (Hayat [3],
// ASER [4], DaSim [5]): spare (dark) cores allow rotating the active
// set so no single core accumulates wear at the hot spots.
//
// Wear model: the dominant silicon aging mechanisms (NBTI,
// electromigration, TDDB) accelerate exponentially in temperature with
// an Arrhenius law. We track, per core, *equivalent stress hours*:
//
//   wear_i += AF(T_i) * dt,   AF(T) = exp( (Ea/k_B) (1/T_ref - 1/T) )
//
// with Ea = 0.7 eV and T_ref = 80 C (AF = 1 when a core sits exactly at
// the thermal threshold; cooler cores age slower, hotter ones faster).
// A core's lifetime budget is expressed in equivalent hours at T_ref,
// so max_i wear_i directly bounds the chip's time-to-first-failure.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/matrix.hpp"

namespace ds::reliability {

/// Arrhenius acceleration factor at temperature `t_c` [Celsius],
/// relative to the reference temperature.
double AccelerationFactor(double t_c);

inline constexpr double kActivationEnergyEv = 0.7;
inline constexpr double kBoltzmannEv = 8.617e-5;  // [eV/K]
inline constexpr double kReferenceTempC = 80.0;

/// Per-core accumulated wear in equivalent stress hours at T_ref.
class AgingState {
 public:
  explicit AgingState(std::size_t num_cores) : wear_(num_cores, 0.0) {}

  std::size_t num_cores() const { return wear_.size(); }
  const std::vector<double>& wear() const { return wear_; }
  double WearOf(std::size_t core) const { return wear_[core]; }

  /// Accrues `hours` of operation at the given per-core temperatures.
  /// Requires temps_c.size() == num_cores().
  void Advance(std::span<const double> temps_c, double hours);

  double MaxWear() const;
  double MeanWear() const;
  /// Max/mean wear ratio: 1.0 = perfectly balanced aging.
  double Imbalance() const;

 private:
  std::vector<double> wear_;
};

/// Aging-aware active-set selection (Hayat-style rotation): restricts
/// the candidate pool to the least-worn `pool_factor * count` cores and
/// applies thermal dispersion (greedy min-peak on the influence matrix)
/// inside that pool, so wear equalizes over epochs without giving up
/// the patterning benefit.
std::vector<std::size_t> SelectAgingAware(const util::Matrix& influence,
                                          const AgingState& aging,
                                          std::size_t count,
                                          double pool_factor = 1.5);

}  // namespace ds::reliability
