#include "reliability/aging.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "util/contracts.hpp"

namespace ds::reliability {

double AccelerationFactor(double t_c) {
  const double t_k = t_c + 273.15;
  const double ref_k = kReferenceTempC + 273.15;
  return std::exp((kActivationEnergyEv / kBoltzmannEv) *
                  (1.0 / ref_k - 1.0 / t_k));
}

void AgingState::Advance(std::span<const double> temps_c, double hours) {
  if (temps_c.size() != wear_.size())
    throw std::invalid_argument("AgingState::Advance: size mismatch");
  if (hours < 0.0)
    throw std::invalid_argument("AgingState::Advance: negative duration");
  for (std::size_t i = 0; i < wear_.size(); ++i)
    wear_[i] += AccelerationFactor(temps_c[i]) * hours;
}

double AgingState::MaxWear() const {
  double m = 0.0;
  for (const double w : wear_) m = std::max(m, w);
  return m;
}

double AgingState::MeanWear() const {
  if (wear_.empty()) return 0.0;
  return std::accumulate(wear_.begin(), wear_.end(), 0.0) /
         static_cast<double>(wear_.size());
}

double AgingState::Imbalance() const {
  const double mean = MeanWear();
  return mean > 0.0 ? MaxWear() / mean : 1.0;
}

std::vector<std::size_t> SelectAgingAware(const util::Matrix& influence,
                                          const AgingState& aging,
                                          std::size_t count,
                                          double pool_factor) {
  const std::size_t n = influence.rows();
  if (count > n)
    throw std::invalid_argument("SelectAgingAware: count exceeds cores");
  if (aging.num_cores() != n)
    throw std::invalid_argument("SelectAgingAware: aging size mismatch");
  if (pool_factor < 1.0)
    throw std::invalid_argument("SelectAgingAware: pool_factor < 1");

  // Candidate pool: the least-worn cores.
  const std::size_t pool_size = std::min(
      n, static_cast<std::size_t>(pool_factor * static_cast<double>(count)));
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  std::stable_sort(pool.begin(), pool.end(), [&](std::size_t a, std::size_t b) {
    return aging.WearOf(a) < aging.WearOf(b);
  });
  pool.resize(pool_size);

  // Greedy thermal dispersion inside the pool (as SelectSpread, but
  // restricted to the candidates).
  std::vector<bool> in_pool(n, false);
  for (const std::size_t c : pool) in_pool[c] = true;
  std::vector<bool> chosen(n, false);
  std::vector<double> row_sum(n, 0.0);
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::size_t step = 0; step < count; ++step) {
    std::size_t best = n;
    double best_peak = std::numeric_limits<double>::infinity();
    for (const std::size_t cand : pool) {
      if (chosen[cand]) continue;
      double peak = row_sum[cand] + influence(cand, cand);
      for (const std::size_t i : out)
        peak = std::max(peak, row_sum[i] + influence(i, cand));
      if (peak < best_peak) {
        best_peak = peak;
        best = cand;
      }
    }
    DS_INVARIANT(best < n, "SelectAgingAware: greedy step " << step
                               << " found no candidate");
    chosen[best] = true;
    out.push_back(best);
    for (std::size_t i = 0; i < n; ++i) row_sum[i] += influence(i, best);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ds::reliability
