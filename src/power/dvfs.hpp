// Discrete DVFS ladders.
//
// Real processors expose a finite set of voltage/frequency pairs; the
// paper uses 200 MHz frequency steps (its Turbo-Boost-style controller
// moves one step per millisecond). A DvfsLadder enumerates the (f, V)
// pairs of one node, each pair lying on the Eq. (2) curve.
#pragma once

#include <vector>

#include "power/technology.hpp"
#include "power/vf_curve.hpp"

namespace ds::power {

struct VfLevel {
  double freq;  // [GHz]
  double vdd;   // [V]
};

class DvfsLadder {
 public:
  /// Levels from `f_min` to `f_max` (inclusive, within half a step) in
  /// increments of `step` GHz; voltages from the node's Eq. (2) curve.
  /// Throws std::invalid_argument on empty or inverted ranges.
  DvfsLadder(const TechnologyParams& tech, double f_min, double f_max,
             double step = 0.2);

  /// Default ladder of a node: 1.0 GHz .. boost_max_freq in 200 MHz steps.
  static DvfsLadder Default(const TechnologyParams& tech);

  const std::vector<VfLevel>& levels() const { return levels_; }
  std::size_t size() const { return levels_.size(); }
  const VfLevel& operator[](std::size_t i) const { return levels_[i]; }

  /// Highest level with freq <= f (clamped to the lowest level).
  std::size_t LevelAtOrBelow(double f) const;

  /// Index of the node's nominal frequency level.
  std::size_t NominalLevel() const { return nominal_level_; }

  /// Step up/down by one level, saturating at the ladder ends.
  std::size_t StepUp(std::size_t level) const;
  std::size_t StepDown(std::size_t level) const;

 private:
  std::vector<VfLevel> levels_;
  std::size_t nominal_level_ = 0;
};

}  // namespace ds::power
