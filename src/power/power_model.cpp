#include "power/power_model.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace ds::power {

double PowerModel::DynamicPower(double activity, double ceff22_nf, double vdd,
                                double freq) const {
  DS_REQUIRE(activity >= 0.0 && activity <= 1.0,
             "PowerModel::DynamicPower: activity factor " << activity
                                                          << " not in [0,1]");
  DS_REQUIRE(ceff22_nf >= 0.0 && std::isfinite(ceff22_nf),
             "PowerModel::DynamicPower: Ceff " << ceff22_nf << " nF");
  DS_REQUIRE(vdd > 0.0 && std::isfinite(vdd),
             "PowerModel::DynamicPower: Vdd " << vdd << " V");
  DS_REQUIRE(freq >= 0.0 && std::isfinite(freq),
             "PowerModel::DynamicPower: frequency " << freq << " GHz");
  // nF * V^2 * GHz = 1e-9 F * V^2 * 1e9 Hz = W.
  const double ceff = ceff22_nf * tech_->cap_scale;
  return activity * ceff * vdd * vdd * freq;
}

double PowerModel::IndependentPower(double pind22, double vdd) const {
  DS_REQUIRE(pind22 >= 0.0 && std::isfinite(pind22),
             "PowerModel::IndependentPower: P_ind " << pind22 << " W");
  DS_REQUIRE(vdd > 0.0 && std::isfinite(vdd),
             "PowerModel::IndependentPower: Vdd " << vdd << " V");
  return pind22 * tech_->cap_scale * tech_->vdd_scale *
         (vdd / tech_->nominal_vdd);
}

double PowerModel::TotalPower(double activity, double ceff22_nf, double pind22,
                              double vdd, double freq, double temp_c) const {
  DS_REQUIRE(std::isfinite(temp_c),
             "PowerModel::TotalPower: temperature " << temp_c << " C");
  const double p = DynamicPower(activity, ceff22_nf, vdd, freq) +
                   LeakagePower(vdd, temp_c) + IndependentPower(pind22, vdd);
  DS_ENSURE(p >= 0.0 && std::isfinite(p),
            "PowerModel::TotalPower: computed " << p << " W");
  return p;
}

double PowerModel::DarkCorePower(double temp_c) const {
  DS_REQUIRE(std::isfinite(temp_c),
             "PowerModel::DarkCorePower: temperature " << temp_c << " C");
  // A gated core sits at a low retention voltage; model the residual as
  // a fixed fraction of nominal-voltage leakage.
  const double p = kGatedLeakageFraction *
                   leakage_.Power(tech_->nominal_vdd, temp_c);
  DS_ENSURE(p >= 0.0 && std::isfinite(p),
            "PowerModel::DarkCorePower: computed " << p << " W");
  return p;
}

}  // namespace ds::power
