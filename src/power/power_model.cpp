#include "power/power_model.hpp"

namespace ds::power {

double PowerModel::DynamicPower(double activity, double ceff22_nf, double vdd,
                                double freq) const {
  // nF * V^2 * GHz = 1e-9 F * V^2 * 1e9 Hz = W.
  const double ceff = ceff22_nf * tech_->cap_scale;
  return activity * ceff * vdd * vdd * freq;
}

double PowerModel::IndependentPower(double pind22, double vdd) const {
  return pind22 * tech_->cap_scale * tech_->vdd_scale *
         (vdd / tech_->nominal_vdd);
}

double PowerModel::TotalPower(double activity, double ceff22_nf, double pind22,
                              double vdd, double freq, double temp_c) const {
  return DynamicPower(activity, ceff22_nf, vdd, freq) +
         LeakagePower(vdd, temp_c) + IndependentPower(pind22, vdd);
}

double PowerModel::DarkCorePower(double temp_c) const {
  // A gated core sits at a low retention voltage; model the residual as
  // a fixed fraction of nominal-voltage leakage.
  return kGatedLeakageFraction *
         leakage_.Power(tech_->nominal_vdd, temp_c);
}

}  // namespace ds::power
