#include "power/vf_curve.hpp"

#include <cmath>
#include <stdexcept>

#include "util/contracts.hpp"

namespace ds::power {

double VfCurve::FrequencyAt(double vdd) const {
  if (vdd <= vth_) return 0.0;
  const double dv = vdd - vth_;
  return k_ * dv * dv / vdd;
}

double VfCurve::VoltageFor(double f) const {
  DS_REQUIRE(f > 0.0 && std::isfinite(f),
             "VfCurve::VoltageFor: frequency " << f << " GHz");
  // Solve k*V^2 - (2*k*vth + f)*V + k*vth^2 = 0 for V; the larger root is
  // the branch with V > Vth where frequency grows with voltage.
  const double b = 2.0 * k_ * vth_ + f;
  const double disc = b * b - 4.0 * k_ * k_ * vth_ * vth_;
  // disc = f^2 + 4*k*vth*f > 0 always for f > 0.
  return (b + std::sqrt(disc)) / (2.0 * k_);
}

VoltageRegion VfCurve::RegionOf(double vdd) const {
  if (vdd < kNtcBoundary) return VoltageRegion::kNearThreshold;
  if (vdd > vnom_ + 1e-9) return VoltageRegion::kBoosting;
  return VoltageRegion::kSuperThreshold;
}

}  // namespace ds::power
