// Temperature- and voltage-dependent leakage model, the I_leak(Vdd, T)
// term of Eq. (1).
//
//   I_leak(V, T) = I0 * exp((V - V_nom) / v0) * (1 + kT * (T - T_ref))
//
// This is the standard linearized-in-T, exponential-in-V compact form
// used by thermal/power co-simulators; McPAT's detailed subthreshold +
// gate leakage collapses to it over the 45..90 C range of interest.
// I0 is the node's calibrated nominal leakage current (technology.cpp).
#pragma once

#include "power/technology.hpp"

namespace ds::power {

class LeakageModel {
 public:
  explicit LeakageModel(const TechnologyParams& tech)
      : i0_(tech.leak_i0), vnom_(tech.nominal_vdd) {}

  /// Leakage current [A] at supply `vdd` [V] and temperature `t_c` [C].
  double Current(double vdd, double t_c) const;

  /// Leakage power [W] = Vdd * I_leak(Vdd, T).
  double Power(double vdd, double t_c) const { return vdd * Current(vdd, t_c); }

  /// d(P_leak)/dT at fixed voltage [W/K]; used by the steady-state
  /// leakage/temperature fixed-point iteration to prove convergence.
  double PowerSlopePerKelvin(double vdd) const;

  /// Voltage sensitivity constant [V].
  static constexpr double kV0 = 0.3;
  /// Temperature coefficient [1/K]: +1% leakage per Kelvin.
  static constexpr double kTempCoeff = 0.01;
  /// Reference temperature [C] for I0 calibration.
  static constexpr double kTrefC = 80.0;

 private:
  double i0_;
  double vnom_;
};

}  // namespace ds::power
