// Technology nodes and ITRS/FinFET scaling factors (paper Fig. 1).
//
// All experiments are calibrated at 22 nm (the paper's gem5/McPAT node)
// and scaled to 16/11/8 nm with the factors below, which are copied
// verbatim from the paper's Fig. 1 table:
//
//   Technology  Vdd   Frequency  Capacitance  Area
//   22nm        1.00  1.00       1.00         1.00
//   16nm        0.89  1.35       0.64         0.53
//   11nm        0.81  1.75       0.39         0.28
//   8nm         0.74  2.3        0.24         0.15
//
// The per-node fitting constant k of Eq. (2) is derived from the node's
// nominal (Vdd, f) point; with V_nom(22nm) = 1.25 V and V_th = 178 mV
// this reproduces the paper's k = 3.7 at 22 nm *and* its NTC operating
// point of 1 GHz @ 0.46 V at 11 nm.
#pragma once

#include <array>
#include <string>

namespace ds::power {

enum class TechNode { N22 = 0, N16 = 1, N11 = 2, N8 = 3 };

inline constexpr std::array<TechNode, 4> kAllNodes = {
    TechNode::N22, TechNode::N16, TechNode::N11, TechNode::N8};

/// Immutable description of one technology node.
struct TechnologyParams {
  TechNode node;
  std::string name;       // "22nm", ...
  double vdd_scale;       // Vdd factor vs 22 nm
  double freq_scale;      // frequency factor vs 22 nm
  double cap_scale;       // effective-capacitance factor vs 22 nm
  double area_scale;      // area factor vs 22 nm
  double nominal_vdd;     // [V] nominal supply
  double nominal_freq;    // [GHz] maximum nominal frequency (paper Sec. 3)
  double vth;             // [V] threshold voltage
  double k_fit;           // Eq. (2) fitting factor [GHz*V / V^2]
  double core_area_mm2;   // area of one Alpha 21264 core at this node
  double leak_i0;         // [A] nominal leakage current at (V_nom, T_ref)
  double boost_max_freq;  // [GHz] ceiling for boosting experiments
};

/// Returns the parameters of `node`. The table is built once at startup.
const TechnologyParams& Tech(TechNode node);

/// Node lookup by name ("22nm", "16nm", "11nm", "8nm").
/// Throws std::invalid_argument for unknown names.
const TechnologyParams& TechByName(const std::string& name);

/// Reference ambient and thermal-threshold temperatures used throughout
/// the paper's experiments (Sec. 3.1: T_DTM = 80 C per Intel datasheet).
/// The paper does not state its ambient; 38 C (a typical within-enclosure
/// value) is calibrated so that the pessimistic TDP of 185 W stays
/// thermally safe while the optimistic 220 W violates T_DTM, exactly as
/// reported for Fig. 5.
inline constexpr double kAmbientC = 38.0;
inline constexpr double kTdtmC = 80.0;

/// Core area at 22 nm measured by the paper's McPAT runs (Sec. 2.1).
inline constexpr double kCoreArea22nm = 9.6;  // mm^2

}  // namespace ds::power
