#include "power/leakage.hpp"

#include <algorithm>
#include <cmath>

namespace ds::power {

double LeakageModel::Current(double vdd, double t_c) const {
  const double v_term = std::exp((vdd - vnom_) / kV0);
  // Clamp the linearized temperature term so extreme extrapolations
  // (far below ambient) cannot produce negative leakage.
  const double t_term =
      std::max(0.1, 1.0 + kTempCoeff * (t_c - kTrefC));
  return i0_ * v_term * t_term;
}

double LeakageModel::PowerSlopePerKelvin(double vdd) const {
  const double v_term = std::exp((vdd - vnom_) / kV0);
  return vdd * i0_ * v_term * kTempCoeff;
}

}  // namespace ds::power
