#include "power/technology.hpp"

#include <array>
#include <stdexcept>

namespace ds::power {
namespace {

constexpr double kVnom22 = 1.25;  // [V] 22 nm nominal supply
constexpr double kVth = 0.178;    // [V] threshold voltage (paper Fig. 2)

// Nominal (maximum) frequencies per node. 16/11/8 nm values are stated in
// the paper (Sec. 3.1 / 3.3: 3.6, 4.0, 4.4 GHz); the 22 nm value follows
// from Eq. (2) with k = 3.7 at V_nom = 1.25 V.
constexpr std::array<double, 4> kNominalFreq = {3.4, 3.6, 4.0, 4.4};

// Fig. 1 scaling-factor table (vs 22 nm).
constexpr std::array<double, 4> kVddScale = {1.00, 0.89, 0.81, 0.74};
constexpr std::array<double, 4> kFreqScale = {1.00, 1.35, 1.75, 2.30};
constexpr std::array<double, 4> kCapScale = {1.00, 0.64, 0.39, 0.24};
constexpr std::array<double, 4> kAreaScale = {1.00, 0.53, 0.28, 0.15};

// Nominal leakage current at 22 nm: calibrated so that leakage power at
// (V_nom, T_DTM) is ~1.25 W per core, i.e. ~15% of the peak total power
// of the H.264 workload in Fig. 3 -- consistent with McPAT's split for
// an Alpha 21264-class out-of-order core. Scaled across nodes with the
// capacitance factor (transistor-count/width proxy), per the paper's
// statement that I_leak is scaled with ITRS factors.
constexpr double kLeakI022 = 1.0;  // [A]

double KFit(double f_nom, double v_nom) {
  const double dv = v_nom - kVth;
  return f_nom * v_nom / (dv * dv);
}

std::array<TechnologyParams, 4> BuildTable() {
  const std::array<std::string, 4> names = {"22nm", "16nm", "11nm", "8nm"};
  std::array<TechnologyParams, 4> table{};
  for (std::size_t i = 0; i < 4; ++i) {
    TechnologyParams& t = table[i];
    t.node = static_cast<TechNode>(i);
    t.name = names[i];
    t.vdd_scale = kVddScale[i];
    t.freq_scale = kFreqScale[i];
    t.cap_scale = kCapScale[i];
    t.area_scale = kAreaScale[i];
    t.nominal_vdd = kVnom22 * kVddScale[i];
    t.nominal_freq = kNominalFreq[i];
    t.vth = kVth;
    t.k_fit = KFit(t.nominal_freq, t.nominal_vdd);
    t.core_area_mm2 = kCoreArea22nm * kAreaScale[i];
    t.leak_i0 = kLeakI022 * kCapScale[i];
    // Boosting may exceed nominal by up to four 200 MHz steps (Sec. 6).
    t.boost_max_freq = t.nominal_freq + 0.8;
  }
  return table;
}

const std::array<TechnologyParams, 4>& Table() {
  static const std::array<TechnologyParams, 4> table = BuildTable();
  return table;
}

}  // namespace

const TechnologyParams& Tech(TechNode node) {
  return Table()[static_cast<std::size_t>(node)];
}

const TechnologyParams& TechByName(const std::string& name) {
  for (const auto& t : Table())
    if (t.name == name) return t;
  throw std::invalid_argument("TechByName: unknown node " + name);
}

}  // namespace ds::power
