// Core power model, Eq. (1) of the paper:
//
//   P = alpha * Ceff_app * Vdd^2 * f  +  Vdd * I_leak(Vdd, T)  +  P_ind
//
// alpha is the core's activity factor (utilization), Ceff_app the
// application's effective switching capacitance, and P_ind the
// frequency-independent power of keeping a core in execution mode.
//
// Applications are characterized at 22 nm (the gem5/McPAT node); this
// class applies the ITRS factors so callers always pass 22 nm-referenced
// application constants regardless of the node being simulated:
//   * Ceff scales with the capacitance factor,
//   * I_leak scales with the capacitance factor (see technology.cpp),
//   * P_ind scales with capacitance x Vdd factors (device count and
//     supply both shrink the fixed power of the always-on logic).
#pragma once

#include "power/leakage.hpp"
#include "power/technology.hpp"

namespace ds::power {

/// Application-independent power evaluation for one core at one node.
class PowerModel {
 public:
  explicit PowerModel(const TechnologyParams& tech)
      : tech_(&tech), leakage_(tech) {}

  /// Dynamic power [W]. `ceff22_nf` is the application's effective
  /// capacitance at 22 nm in nF; vdd in V, freq in GHz.
  double DynamicPower(double activity, double ceff22_nf, double vdd,
                      double freq) const;

  /// Leakage power [W] at this node.
  double LeakagePower(double vdd, double temp_c) const {
    return leakage_.Power(vdd, temp_c);
  }

  /// Independent (execution-mode) power [W]; `pind22` at 22 nm in W,
  /// characterized at the nominal supply. The always-on logic (clock
  /// distribution, uncore) tracks the supply, so P_ind scales linearly
  /// with the actual Vdd relative to nominal -- at nominal voltage this
  /// reduces to the plain ITRS-scaled value.
  double IndependentPower(double pind22, double vdd) const;

  /// Full Eq. (1) for an active core.
  double TotalPower(double activity, double ceff22_nf, double pind22,
                    double vdd, double freq, double temp_c) const;

  /// Power of a dark (power-gated) core. Power gating removes both
  /// dynamic and execution-mode power; a small residual fraction of
  /// leakage remains through the sleep transistors.
  double DarkCorePower(double temp_c) const;

  const TechnologyParams& tech() const { return *tech_; }
  const LeakageModel& leakage() const { return leakage_; }

  /// Residual leakage fraction of a power-gated core.
  static constexpr double kGatedLeakageFraction = 0.03;

 private:
  const TechnologyParams* tech_;
  LeakageModel leakage_;
};

}  // namespace ds::power
