#include "power/dvfs.hpp"

#include <cmath>
#include <stdexcept>

#include "util/contracts.hpp"

namespace ds::power {

DvfsLadder::DvfsLadder(const TechnologyParams& tech, double f_min,
                       double f_max, double step) {
  DS_REQUIRE(f_min > 0.0 && f_max >= f_min && step > 0.0,
             "DvfsLadder: invalid frequency range [" << f_min << ", " << f_max
                 << "] step " << step << " GHz");
  const VfCurve curve(tech);
  for (double f = f_min; f <= f_max + step * 0.5; f += step) {
    levels_.push_back({f, curve.VoltageFor(f)});
    // Every ladder entry must sit on the calibrated V/f curve: the
    // voltage chosen for f must reproduce f when mapped back.
    DS_INVARIANT(std::abs(curve.FrequencyAt(levels_.back().vdd) - f) <=
                     1e-6 * f,
                 "DvfsLadder: level (" << f << " GHz, " << levels_.back().vdd
                     << " V) is off the V/f curve");
  }
  // Locate the nominal level (highest level not above nominal frequency).
  nominal_level_ = LevelAtOrBelow(tech.nominal_freq);
}

DvfsLadder DvfsLadder::Default(const TechnologyParams& tech) {
  return DvfsLadder(tech, 1.0, tech.boost_max_freq, 0.2);
}

std::size_t DvfsLadder::LevelAtOrBelow(double f) const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < levels_.size(); ++i)
    if (levels_[i].freq <= f + 1e-9) best = i;
  return best;
}

std::size_t DvfsLadder::StepUp(std::size_t level) const {
  return level + 1 < levels_.size() ? level + 1 : level;
}

std::size_t DvfsLadder::StepDown(std::size_t level) const {
  return level > 0 ? level - 1 : 0;
}

}  // namespace ds::power
