// Voltage/frequency relation, Eq. (2) of the paper:
//
//     f = k * (Vdd - Vth)^2 / Vdd
//
// For a given supply voltage there is a maximum stable frequency; running
// above the minimum voltage for a target frequency is wasteful, so every
// operating point in this repository is an (f, V(f)) pair on this curve.
#pragma once

#include "power/technology.hpp"

namespace ds::power {

/// Operating region of a supply voltage (paper Fig. 2).
enum class VoltageRegion { kNearThreshold, kSuperThreshold, kBoosting };

class VfCurve {
 public:
  /// Builds the curve for a technology node (k and Vth from its table).
  explicit VfCurve(const TechnologyParams& tech)
      : k_(tech.k_fit), vth_(tech.vth), vnom_(tech.nominal_vdd) {}

  /// Direct construction (used by tests and the 22 nm fit of Fig. 2).
  VfCurve(double k, double vth, double vnom)
      : k_(k), vth_(vth), vnom_(vnom) {}

  /// Maximum stable frequency [GHz] at supply `vdd` [V].
  /// Returns 0 for vdd <= vth (no stable operation below threshold).
  double FrequencyAt(double vdd) const;

  /// Minimum supply voltage [V] for frequency `f` [GHz] (inverse of
  /// Eq. (2), larger quadratic root so that V > Vth and df/dV > 0).
  /// Throws std::invalid_argument for f <= 0.
  double VoltageFor(double f) const;

  /// Classifies a supply voltage. NTC below kNtcBoundary, boosting above
  /// the node's nominal supply, STC in between (paper Sec. 6).
  VoltageRegion RegionOf(double vdd) const;

  double k() const { return k_; }
  double vth() const { return vth_; }
  double nominal_vdd() const { return vnom_; }

  /// Conventional STC/NTC boundary: "Vdd usually takes values above
  /// 0.6 V" in STC (paper Sec. 6).
  static constexpr double kNtcBoundary = 0.6;

 private:
  double k_;
  double vth_;
  double vnom_;
};

}  // namespace ds::power
