// Minimal CSV writer so bench binaries can optionally dump series for
// external plotting in addition to their console tables.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace ds::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Writes one data row; values are formatted with max precision.
  void WriteRow(const std::vector<double>& values);

  /// Mixed string row.
  void WriteRow(const std::vector<std::string>& values);

 private:
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace ds::util
