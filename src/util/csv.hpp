// Minimal CSV writer so bench binaries can optionally dump series for
// external plotting in addition to their console tables.
//
// Stream state is checked after the open and after every write: a full
// disk or revoked permission surfaces as std::runtime_error at the
// failing call instead of as a silently truncated CSV. Call Close()
// (flush + final state check) to get a hard guarantee that the file
// landed; the destructor only closes best-effort.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace ds::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened or the
  /// header cannot be written.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Writes one data row; values are formatted with max precision.
  /// Throws std::invalid_argument on a column-count mismatch and
  /// std::runtime_error if the write fails.
  void WriteRow(const std::vector<double>& values);

  /// Mixed string row. Same error contract as the double overload.
  void WriteRow(const std::vector<std::string>& values);

  /// Flushes and verifies the stream; throws std::runtime_error if any
  /// buffered output could not be committed. Idempotent.
  void Close();

 private:
  void CheckStream(const char* what) const;

  std::ofstream out_;
  std::string path_;
  std::size_t columns_;
};

}  // namespace ds::util
