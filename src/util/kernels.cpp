#include "util/kernels.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace ds::util {
namespace {

/// Shared GEMV body: y (+)= A x with a 4-row register block over a
/// column panel [c0, c1). The four accumulators share every x load and
/// give the compiler four independent FMA chains per column.
template <bool Accumulate>
void GemvPanel(const Matrix& a, std::span<const double> x,
               std::span<double> y) {
  const std::size_t rows = a.rows();
  const std::size_t cols = a.cols();
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const double* a0 = a.row(r).data();
    const double* a1 = a.row(r + 1).data();
    const double* a2 = a.row(r + 2).data();
    const double* a3 = a.row(r + 3).data();
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (std::size_t c0 = 0; c0 < cols; c0 += kKernelColBlock) {
      const std::size_t c1 = std::min(cols, c0 + kKernelColBlock);
      for (std::size_t c = c0; c < c1; ++c) {
        const double xc = x[c];
        s0 += a0[c] * xc;
        s1 += a1[c] * xc;
        s2 += a2[c] * xc;
        s3 += a3[c] * xc;
      }
    }
    if constexpr (Accumulate) {
      y[r] += s0;
      y[r + 1] += s1;
      y[r + 2] += s2;
      y[r + 3] += s3;
    } else {
      y[r] = s0;
      y[r + 1] = s1;
      y[r + 2] = s2;
      y[r + 3] = s3;
    }
  }
  for (; r < rows; ++r) {
    const double* ar = a.row(r).data();
    double s = 0.0;
    for (std::size_t c = 0; c < cols; ++c) s += ar[c] * x[c];
    if constexpr (Accumulate) {
      y[r] += s;
    } else {
      y[r] = s;
    }
  }
}

void CheckGemvShapes(const Matrix& a, std::span<const double> x,
                     std::span<double> y) {
  DS_REQUIRE(x.size() == a.cols() && y.size() == a.rows(),
             "Gemv: A is " << a.rows() << "x" << a.cols() << ", x "
                           << x.size() << ", y " << y.size());
}

/// Shared GEMM body: C (+)= A B, i-k-j order so the inner loop streams
/// one row of B and one row of C (both contiguous), blocked over the
/// k dimension to keep the active B panel resident in cache.
template <bool Accumulate>
void GemmImpl(const Matrix& a, const Matrix& b, Matrix* c) {
  DS_REQUIRE(c != nullptr, "Gemm: null output");
  DS_REQUIRE(a.cols() == b.rows() && c->rows() == a.rows() &&
                 c->cols() == b.cols(),
             "Gemm: A " << a.rows() << "x" << a.cols() << " * B "
                        << b.rows() << "x" << b.cols() << " -> C "
                        << c->rows() << "x" << c->cols());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  if constexpr (!Accumulate) {
    std::fill(c->data().begin(), c->data().end(), 0.0);
  }
  constexpr std::size_t kBlock = 64;  // B panel: 64 rows x n cols
  for (std::size_t k0 = 0; k0 < k; k0 += kBlock) {
    const std::size_t k1 = std::min(k, k0 + kBlock);
    for (std::size_t i = 0; i < m; ++i) {
      const double* ai = a.row(i).data();
      double* ci = c->row(i).data();
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const double aik = ai[kk];
        // Exact zero skip is a sparsity fast path, not a tolerance test.
        if (aik == 0.0) continue;  // ds_lint: allow(float-equals)
        const double* bk = b.row(kk).data();
        for (std::size_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
      }
    }
  }
}

}  // namespace

void Gemv(const Matrix& a, std::span<const double> x, std::span<double> y) {
  CheckGemvShapes(a, x, y);
  GemvPanel<false>(a, x, y);
}

void GemvAdd(const Matrix& a, std::span<const double> x,
             std::span<double> y) {
  CheckGemvShapes(a, x, y);
  GemvPanel<true>(a, x, y);
}

void Gemm(const Matrix& a, const Matrix& b, Matrix* c) {
  GemmImpl<false>(a, b, c);
}

void GemmAdd(const Matrix& a, const Matrix& b, Matrix* c) {
  GemmImpl<true>(a, b, c);
}

}  // namespace ds::util
