#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "telemetry/telemetry.hpp"

namespace ds::util {

double Mean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double StdDev(std::span<const double> v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size()));
}

double GeoMean(std::span<const double> v) {
  return GeoMean(v, nullptr);
}

double GeoMean(std::span<const double> v, std::size_t* skipped_out) {
  // The geometric mean is undefined for non-positive samples. The old
  // `assert(x > 0.0)` was a no-op in Release, silently folding log(x)
  // NaN/-inf into benchmark summaries; instead skip such samples and
  // surface the count (telemetry + optional out-param).
  std::size_t n = 0;
  std::size_t skipped = 0;
  double log_sum = 0.0;
  for (double x : v) {
    if (x > 0.0 && std::isfinite(x)) {
      log_sum += std::log(x);
      ++n;
    } else {
      ++skipped;
    }
  }
  if (skipped_out != nullptr) *skipped_out = skipped;
  if (skipped > 0) {
    static telemetry::Counter& c =
        telemetry::Registry().GetCounter("stats.geomean_skipped");
    c.Add(skipped);
  }
  if (n == 0) return 0.0;
  return std::exp(log_sum / static_cast<double>(n));
}

double Median(std::span<const double> v) { return Percentile(v, 50.0); }

double Percentile(std::span<const double> v, double p) {
  if (v.empty()) return 0.0;
  std::vector<double> sorted(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++count_;
}

double RunningStats::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double RunningStats::min() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double RunningStats::max() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

}  // namespace ds::util
