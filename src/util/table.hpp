// Fixed-width console table printing for the figure-reproduction benches.
//
// Every bench binary prints the same rows/series the paper's figure shows;
// this helper keeps the output aligned and diff-friendly.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ds::util {

/// Accumulates rows of strings/numbers and prints an aligned table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row. Subsequent Cell() calls append to it.
  Table& Row();
  Table& Cell(const std::string& s);
  Table& Cell(double v, int precision = 2);
  Table& Cell(int v);
  Table& Cell(std::size_t v);

  /// Prints headers, separator and all rows, aligned by column.
  void Print(std::ostream& os) const;

  /// Writes the table as CSV (header + rows) to `path`.
  /// Throws std::runtime_error if the file cannot be opened.
  void WriteCsv(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (no trailing spaces).
std::string FormatFixed(double v, int precision);

/// Prints a section banner like "=== Figure 5: ... ===".
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace ds::util
