// LU factorization with partial pivoting.
//
// The thermal solvers factor their conductance matrix once per platform
// and then reuse the factorization for many right-hand sides (one per
// candidate mapping / transient step), so factor and solve are split.
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

#include "util/matrix.hpp"

namespace ds::util {

/// Typed error for linear-solver failures (singular factorization,
/// non-convergent fixed-point iteration, non-finite solutions). Derives
/// from std::runtime_error so existing broad catches keep working while
/// hardened callers can catch the solver class specifically and retry.
class SolverError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// LU factorization (Doolittle, partial pivoting) of a square matrix.
///
/// Usage:
///   LuFactorization lu(G);          // O(n^3), done once
///   std::vector<double> t = lu.Solve(p);  // O(n^2), done many times
class LuFactorization {
 public:
  /// Factors `a`. Throws std::invalid_argument if `a` is not square and
  /// SolverError if the matrix is numerically singular.
  explicit LuFactorization(const Matrix& a);

  /// Perturbed-pivot factorization: a pivot whose magnitude falls below
  /// the singularity threshold is replaced by +/- `pivot_floor` instead
  /// of aborting. This is the retry path for solves that failed or were
  /// declared non-convergent: the perturbation regularizes the system
  /// at O(pivot_floor) accuracy cost. `pivot_floor` must be positive.
  LuFactorization(const Matrix& a, double pivot_floor);

  /// Solves A x = b for x. Requires b.size() == n().
  std::vector<double> Solve(std::span<const double> b) const;

  /// Allocation-free solve into caller storage: x = A^-1 b. Requires
  /// b.size() == x.size() == n(); b and x must not alias (the pivot
  /// permutation is applied while loading b into x). This is the
  /// hot-path overload used by the legacy transient stepping kernel.
  void Solve(std::span<const double> b, std::span<double> x) const;

  /// In-place solve: overwrites `x` (initially the RHS) with the solution.
  void SolveInPlace(std::span<double> x) const;

  /// Blocked multi-RHS solve: treats each column of `b` (n x k) as an
  /// independent right-hand side and overwrites it with the solution,
  /// A B <- B. One cache-blocked pass does the permutation and both
  /// triangular sweeps for every column panel at once -- the inner
  /// loops run across the panel width, so they vectorize where the
  /// one-column solve is a serial dependency chain. Used to fold the
  /// implicit-Euler step operator into dense matrices
  /// (thermal::StepPropagator) and to build the influence matrix in
  /// one call instead of num_cores solves.
  void SolveMany(Matrix* b) const;

  std::size_t n() const { return n_; }

  /// Product of U's diagonal with pivot sign; useful for sanity checks
  /// (a well-formed conductance matrix has non-zero determinant).
  double Determinant() const;

 private:
  /// Forward/back substitution on an already-permuted RHS.
  void SolveInPlaceNoPermute(std::span<double> x) const;

  std::size_t n_ = 0;
  Matrix lu_;                 // packed L (unit diagonal implied) and U
  std::vector<std::size_t> perm_;  // row permutation
  int perm_sign_ = 1;
};

}  // namespace ds::util
