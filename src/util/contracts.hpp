// Runtime contracts that stay live in Release builds.
//
// The library-level `assert` calls this repository started with vanish
// under NDEBUG, which is exactly the configuration CI ships -- a
// malformed floorplan or an out-of-range mapping set would sail through
// a Release binary and produce silently wrong thermal numbers (the
// classic HotSpot failure mode). These macros replace them:
//
//   DS_REQUIRE(cond, detail)   -- precondition at an API boundary
//   DS_ENSURE(cond, detail)    -- postcondition on a produced result
//   DS_INVARIANT(cond, detail) -- internal consistency mid-algorithm
//
// All three are always compiled in. On failure they count the violation
// into the telemetry MetricsRegistry ("contracts.violations" plus a
// per-kind counter) and throw ds::ContractViolation with the condition
// text, source location and a formatted detail message. `detail` is a
// stream expression, so call sites can embed values cheaply:
//
//   DS_REQUIRE(b.size() == n_, "rhs size " << b.size() << " != " << n_);
//
// The failure path is the only path that allocates; the passing path is
// a single predicted branch, cheap enough for per-step solver code.
//
// ContractViolation derives from std::invalid_argument so existing
// callers (and tests) that catch std::invalid_argument / std::logic_error
// keep working; broad catches of std::runtime_error deliberately do NOT
// swallow contract violations -- a broken precondition is a programming
// error, not a recoverable solver condition.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ds {

/// Thrown by DS_REQUIRE / DS_ENSURE / DS_INVARIANT on a failed check.
class ContractViolation : public std::invalid_argument {
 public:
  ContractViolation(const std::string& what, const char* kind,
                    const char* condition, const char* file, int line)
      : std::invalid_argument(what),
        kind_(kind),
        condition_(condition),
        file_(file),
        line_(line) {}

  /// "DS_REQUIRE", "DS_ENSURE" or "DS_INVARIANT".
  const char* kind() const { return kind_; }
  /// The stringified condition that failed.
  const char* condition() const { return condition_; }
  const char* file() const { return file_; }
  int line() const { return line_; }

 private:
  const char* kind_;
  const char* condition_;
  const char* file_;
  int line_;
};

namespace contracts {

/// Total contract violations raised process-wide (all kinds). The same
/// count is mirrored into the telemetry registry as
/// "contracts.violations"; this accessor avoids the registry lock.
std::uint64_t ViolationCount();

namespace internal {

/// Counts the violation (process counter + telemetry registry), formats
/// the message and throws ContractViolation. Out of line so the cold
/// path costs the call sites nothing but a function call.
[[noreturn]] void Raise(const char* kind, const char* condition,
                        const char* file, int line,
                        const std::string& detail);

}  // namespace internal
}  // namespace contracts
}  // namespace ds

#define DS_CONTRACT_IMPL_(kind, cond, detail)                               \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      ::std::ostringstream ds_contract_detail_;                             \
      ds_contract_detail_ << detail;                                        \
      ::ds::contracts::internal::Raise(kind, #cond, __FILE__, __LINE__,     \
                                       ds_contract_detail_.str());          \
    }                                                                       \
  } while (0)

/// Precondition: validates caller-supplied input at an API boundary.
#define DS_REQUIRE(cond, detail) DS_CONTRACT_IMPL_("DS_REQUIRE", cond, detail)

/// Postcondition: validates a result this code is about to hand back.
#define DS_ENSURE(cond, detail) DS_CONTRACT_IMPL_("DS_ENSURE", cond, detail)

/// Invariant: internal consistency that must hold mid-computation.
#define DS_INVARIANT(cond, detail) \
  DS_CONTRACT_IMPL_("DS_INVARIANT", cond, detail)
