#include "util/matrix.hpp"

#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace ds::util {

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::Multiply(std::span<const double> x) const {
  DS_REQUIRE(x.size() == cols_,
             "Matrix::Multiply: x size " << x.size() << " != cols " << cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = data_.data() + r * cols_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += a[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Matrix Matrix::Add(const Matrix& other) const {
  DS_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
             "Matrix::Add: " << rows_ << "x" << cols_ << " vs "
                             << other.rows_ << "x" << other.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] + other.data_[i];
  return out;
}

Matrix Matrix::Scaled(double s) const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * s;
  return out;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  DS_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
             "Matrix::MaxAbsDiff: " << rows_ << "x" << cols_ << " vs "
                                    << other.rows_ << "x" << other.cols_);
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  return m;
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c)
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
  return true;
}

double Dot(std::span<const double> a, std::span<const double> b) {
  DS_REQUIRE(a.size() == b.size(),
             "Dot: sizes " << a.size() << " != " << b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

std::vector<double> Scale(std::span<const double> v, double s) {
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[i] * s;
  return out;
}

std::vector<double> AddVec(std::span<const double> a,
                           std::span<const double> b) {
  DS_REQUIRE(a.size() == b.size(),
             "AddVec: sizes " << a.size() << " != " << b.size());
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<double> SubVec(std::span<const double> a,
                           std::span<const double> b) {
  DS_REQUIRE(a.size() == b.size(),
             "SubVec: sizes " << a.size() << " != " << b.size());
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

double MaxElement(std::span<const double> v) {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : v) m = std::max(m, x);
  return m;
}

double MinElement(std::span<const double> v) {
  double m = std::numeric_limits<double>::infinity();
  for (double x : v) m = std::min(m, x);
  return m;
}

double Norm2(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double MaxAbsDiffVec(std::span<const double> a, std::span<const double> b) {
  DS_REQUIRE(a.size() == b.size(),
             "MaxAbsDiffVec: sizes " << a.size() << " != " << b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

}  // namespace ds::util
