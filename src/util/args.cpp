#include "util/args.hpp"

#include <cstdlib>
#include <stdexcept>

namespace ds::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--key value` unless the next token is another option.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "";
    }
  }
}

bool ArgParser::Has(const std::string& key) const {
  return options_.count(key) != 0;
}

std::string ArgParser::GetString(const std::string& key,
                                 const std::string& def) const {
  const auto it = options_.find(key);
  return it == options_.end() ? def : it->second;
}

double ArgParser::GetDouble(const std::string& key, double def) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0')
    throw std::invalid_argument("ArgParser: --" + key +
                                " expects a number, got '" + it->second +
                                "'");
  return v;
}

int ArgParser::GetInt(const std::string& key, int def) const {
  const double v = GetDouble(key, static_cast<double>(def));
  const int i = static_cast<int>(v);
  if (static_cast<double>(i) != v)
    throw std::invalid_argument("ArgParser: --" + key +
                                " expects an integer");
  return i;
}

std::vector<std::string> ArgParser::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(options_.size());
  for (const auto& [k, v] : options_) keys.push_back(k);
  return keys;
}

}  // namespace ds::util
