// Batched (panel) stepping kernels.
//
// This TU is compiled WITHOUT -ffast-math even in Release (see
// src/util/CMakeLists.txt): IEEE evaluation order here is a functional
// contract, not a tuning choice.
//
// Formulation: the operator is supplied TRANSPOSED (at(c, i) = A(i, c))
// and every output element is an outer-product fold
//
//     out(j, i) = fold over c = 0..n-1 of  x(j, c) * at(c, i)
//
// accumulated strictly in ascending c. On AVX2/FMA builds every
// accumulation is one fused multiply-add (vector lane, scalar std::fma
// in the tails); on other builds it is one rounded multiply followed by
// one add. Either way the per-element operation sequence depends ONLY
// on n and the zero/accumulate mode -- never on k, on the register-tile
// shape, or on the unroll factor -- because each element owns exactly
// one sequential dependency chain. That is what lets the sweep engine
// promise bitwise-identical trajectories at any cohort size: the k = 1
// scalar lane runs the very same fold. (AVX2 and non-AVX2 binaries
// differ -- fused vs unfused -- so the contract is per binary, which is
// what the CSV byte-identity guarantee requires.)
//
// Speed comes from structure instead of reassociation license: the
// register tiles below keep 8 independent output accumulators live
// across the whole c loop, so the operator slab is read once per tile
// and re-used from L1/L2 across cohort members while the fma ports stay
// saturated -- turning the memory-bound GEMV stream into a
// compute-bound panel pass.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

#include "util/contracts.hpp"
#include "util/matrix.hpp"
#include "util/panel.hpp"

namespace ds::util {
namespace {

#if defined(__AVX2__) && defined(__FMA__)

/// 8-output x up-to-4-member register tile: one ymm accumulator pair
/// per member stays live across the full ascending-c loop, each 64-byte
/// operator row slice is loaded once and re-used by every member in the
/// group. The 8-wide slab (n rows x 64 B) fits L1, so across member
/// groups the operator is re-read from L1, not L2/memory. Per-element
/// order: one fused multiply-add per c, ascending.
template <int J>
inline void Tile8(const double* at, std::size_t stride, std::size_t n,
                  const double* const* xj, double* const* oj, bool zero) {
  static_assert(J >= 1 && J <= 4);
  __m256d lo[J], hi[J];
  for (int t = 0; t < J; ++t) {
    lo[t] = zero ? _mm256_setzero_pd() : _mm256_loadu_pd(oj[t]);
    hi[t] = zero ? _mm256_setzero_pd() : _mm256_loadu_pd(oj[t] + 4);
  }
  for (std::size_t c = 0; c < n; ++c, at += stride) {
    const __m256d r0 = _mm256_loadu_pd(at);
    const __m256d r1 = _mm256_loadu_pd(at + 4);
    for (int t = 0; t < J; ++t) {
      const __m256d b = _mm256_set1_pd(xj[t][c]);
      lo[t] = _mm256_fmadd_pd(b, r0, lo[t]);
      hi[t] = _mm256_fmadd_pd(b, r1, hi[t]);
    }
  }
  for (int t = 0; t < J; ++t) {
    _mm256_storeu_pd(oj[t], lo[t]);
    _mm256_storeu_pd(oj[t] + 4, hi[t]);
  }
}

/// 4-output x 1-member tail tile. Same per-element fold.
inline void Tile4x1(const double* at, std::size_t stride, std::size_t n,
                    const double* x0, double* o0, bool zero) {
  __m256d a = zero ? _mm256_setzero_pd() : _mm256_loadu_pd(o0);
  for (std::size_t c = 0; c < n; ++c, at += stride)
    a = _mm256_fmadd_pd(_mm256_set1_pd(x0[c]), _mm256_loadu_pd(at), a);
  _mm256_storeu_pd(o0, a);
}

/// Scalar tail for the last m % 4 outputs of one member: up to three
/// independent ascending-c std::fma chains (hardware-fused on this
/// build), matching the vector lanes' per-element operation exactly.
inline void TileScalar(const double* at, std::size_t stride, std::size_t n,
                       const double* x0, double* o0, std::size_t w,
                       bool zero) {
  double s[3] = {0.0, 0.0, 0.0};
  if (!zero)
    for (std::size_t t = 0; t < w; ++t) s[t] = o0[t];
  for (std::size_t c = 0; c < n; ++c, at += stride) {
    const double b = x0[c];
    for (std::size_t t = 0; t < w; ++t) s[t] = std::fma(b, at[t], s[t]);
  }
  for (std::size_t t = 0; t < w; ++t) o0[t] = s[t];
}

/// One fused-multiply-add axpy pass: o[0..m) += b * a[0..m). Used by
/// the streaming (small-k) form; same per-element operation as the
/// register tiles.
inline void AxpyRow(const double* a, double b, double* o, std::size_t m) {
  const __m256d vb = _mm256_set1_pd(b);
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4)
    _mm256_storeu_pd(
        o + i, _mm256_fmadd_pd(vb, _mm256_loadu_pd(a + i),
                               _mm256_loadu_pd(o + i)));
  for (; i < m; ++i) o[i] = std::fma(b, a[i], o[i]);
}

/// Four-c axpy pass: o += b0 a0 + b1 a1 + b2 a2 + b3 a3 with the four
/// fmas chained in ascending-c order per element -- bitwise identical
/// to four AxpyRow passes, but the output row round-trips L1 once per
/// quad instead of once per c.
inline void Axpy4Row(const double* a0, const double* a1, const double* a2,
                     const double* a3, double b0, double b1, double b2,
                     double b3, double* o, std::size_t m) {
  const __m256d v0 = _mm256_set1_pd(b0);
  const __m256d v1 = _mm256_set1_pd(b1);
  const __m256d v2 = _mm256_set1_pd(b2);
  const __m256d v3 = _mm256_set1_pd(b3);
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    __m256d acc = _mm256_loadu_pd(o + i);
    acc = _mm256_fmadd_pd(v0, _mm256_loadu_pd(a0 + i), acc);
    acc = _mm256_fmadd_pd(v1, _mm256_loadu_pd(a1 + i), acc);
    acc = _mm256_fmadd_pd(v2, _mm256_loadu_pd(a2 + i), acc);
    acc = _mm256_fmadd_pd(v3, _mm256_loadu_pd(a3 + i), acc);
    _mm256_storeu_pd(o + i, acc);
  }
  for (; i < m; ++i) {
    double s = o[i];
    s = std::fma(b0, a0[i], s);
    s = std::fma(b1, a1[i], s);
    s = std::fma(b2, a2[i], s);
    s = std::fma(b3, a3[i], s);
    o[i] = s;
  }
}

/// out(j, 0..m) (+)= sum_c x(j, c) at(c, 0..m) for j < k. Two shapes,
/// both the identical ascending-c fused fold per element -- the tiling
/// is free to change, the per-element bits are not (see file comment):
///   k <= 2 -- streaming axpy sweep: c outer, so the operator is read
///             once, sequentially, exactly like the GEMV lane's stream
///             (memory-bound regime; prefetch-friendly).
///   k >= 3 -- register tiles: 8-wide output blocks x member groups of
///             four, c innermost, so accumulators never round-trip
///             through memory and each L1-resident operator slab is
///             re-used by every member (compute-bound regime).
void PanelImplT(const Matrix& at, const ColPanel& x, std::size_t k,
                ColPanel* out, bool zero) {
  const std::size_t n = at.rows();
  const std::size_t m = at.cols();
  const double* base = at.row(0).data();
  const Matrix& xs = x.storage();
  Matrix& os = out->storage();
  if (k <= 2) {
    for (std::size_t j = 0; j < k; ++j) {
      double* oj = os.row(j).data();
      if (zero) std::fill(oj, oj + m, 0.0);
    }
    std::size_t c = 0;
    for (; c + 4 <= n; c += 4) {
      const double* ac = base + c * m;
      for (std::size_t j = 0; j < k; ++j) {
        const double* xj = xs.row(j).data();
        Axpy4Row(ac, ac + m, ac + 2 * m, ac + 3 * m, xj[c], xj[c + 1],
                 xj[c + 2], xj[c + 3], os.row(j).data(), m);
      }
    }
    for (; c < n; ++c) {
      const double* ac = base + c * m;
      for (std::size_t j = 0; j < k; ++j)
        AxpyRow(ac, xs.row(j).data()[c], os.row(j).data(), m);
    }
    return;
  }
  std::size_t i0 = 0;
  for (; i0 + 8 <= m; i0 += 8) {
    std::size_t j = 0;
    for (; j + 4 <= k; j += 4) {
      const double* xj[4] = {xs.row(j).data(), xs.row(j + 1).data(),
                             xs.row(j + 2).data(), xs.row(j + 3).data()};
      double* oj[4] = {os.row(j).data() + i0, os.row(j + 1).data() + i0,
                       os.row(j + 2).data() + i0,
                       os.row(j + 3).data() + i0};
      Tile8<4>(base + i0, m, n, xj, oj, zero);
    }
    if (j + 2 <= k) {
      const double* xj[2] = {xs.row(j).data(), xs.row(j + 1).data()};
      double* oj[2] = {os.row(j).data() + i0, os.row(j + 1).data() + i0};
      Tile8<2>(base + i0, m, n, xj, oj, zero);
      j += 2;
    }
    if (j < k) {
      const double* xj[1] = {xs.row(j).data()};
      double* oj[1] = {os.row(j).data() + i0};
      Tile8<1>(base + i0, m, n, xj, oj, zero);
    }
  }
  for (; i0 + 4 <= m; i0 += 4)
    for (std::size_t j = 0; j < k; ++j)
      Tile4x1(base + i0, m, n, xs.row(j).data(), os.row(j).data() + i0,
              zero);
  if (i0 < m)
    for (std::size_t j = 0; j < k; ++j)
      TileScalar(base + i0, m, n, xs.row(j).data(), os.row(j).data() + i0,
                 m - i0, zero);
}

#else

/// Portable form: plain axpy sweep, ascending c, one rounded multiply
/// plus one add per element per c. Not fused -- so non-AVX2 binaries
/// produce (consistently) different bits than AVX2 ones; the
/// determinism contract is per binary (see file comment).
void PanelImplT(const Matrix& at, const ColPanel& x, std::size_t k,
                ColPanel* out, bool zero) {
  const std::size_t n = at.rows();
  const std::size_t m = at.cols();
  const Matrix& xs = x.storage();
  Matrix& os = out->storage();
  for (std::size_t j = 0; j < k; ++j) {
    const double* xj = xs.row(j).data();
    double* oj = os.row(j).data();
    if (zero) std::fill(oj, oj + m, 0.0);
    for (std::size_t c = 0; c < n; ++c) {
      const double b = xj[c];
      const double* ac = at.row(c).data();
      for (std::size_t i = 0; i < m; ++i) oj[i] += b * ac[i];
    }
  }
}

#endif

void CheckPanelShapes(const Matrix& at, const ColPanel& x, std::size_t k,
                      ColPanel* out) {
  DS_REQUIRE(out != nullptr, "PanelApplyT: null output");
  DS_REQUIRE(x.n() == at.rows() && out->n() == at.cols(),
             "PanelApplyT: A^T is " << at.rows() << "x" << at.cols()
                                    << ", x n " << x.n() << ", out n "
                                    << out->n());
  DS_REQUIRE(k <= x.k_max() && k <= out->k_max(),
             "PanelApplyT: k " << k << " exceeds panel capacity "
                               << x.k_max() << "/" << out->k_max());
}

}  // namespace

void PanelApplyT(const Matrix& at, const ColPanel& x, std::size_t k,
                 ColPanel* out) {
  CheckPanelShapes(at, x, k, out);
  PanelImplT(at, x, k, out, /*zero=*/true);
}

void PanelApplyAddT(const Matrix& at, const ColPanel& x, std::size_t k,
                    ColPanel* out) {
  CheckPanelShapes(at, x, k, out);
  PanelImplT(at, x, k, out, /*zero=*/false);
}

void PanelAddBroadcast(std::span<const double> v, std::size_t k,
                       ColPanel* out) {
  DS_REQUIRE(out != nullptr, "PanelAddBroadcast: null output");
  DS_REQUIRE(v.size() == out->n(), "PanelAddBroadcast: v "
                                       << v.size() << ", panel n "
                                       << out->n());
  DS_REQUIRE(k <= out->k_max(), "PanelAddBroadcast: k " << k
                                                        << " exceeds "
                                                        << out->k_max());
  for (std::size_t j = 0; j < k; ++j) {
    double* oj = out->storage().row(j).data();
    for (std::size_t i = 0; i < v.size(); ++i) oj[i] += v[i];
  }
}

}  // namespace ds::util
