// Dense row-major matrix and vector helpers used by the thermal RC solver.
//
// The thermal networks built in src/thermal are small (a few thousand
// nodes), so a cache-friendly dense representation with an LU
// factorization (see lu.hpp) is both simpler and faster than a sparse
// iterative stack at this scale.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/aligned.hpp"

namespace ds::util {

/// Dense row-major matrix of doubles. The backing store is 64-byte
/// aligned (util/aligned.hpp) so the blocked GEMV/GEMM kernels and the
/// multi-RHS triangular solves stream split-free cache lines.
///
/// Invariant: data_.size() == rows_ * cols_ at all times.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Creates a square n x n matrix, zero-initialized.
  static Matrix Square(std::size_t n) { return Matrix(n, n); }

  /// Creates an n x n identity matrix.
  static Matrix Identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Contiguous view of row r.
  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  std::span<const double> data() const { return data_; }
  std::span<double> data() { return data_; }

  /// y = A * x. Requires x.size() == cols().
  std::vector<double> Multiply(std::span<const double> x) const;

  /// Returns A + B elementwise. Requires identical dimensions.
  Matrix Add(const Matrix& other) const;

  /// Returns A scaled by s.
  Matrix Scaled(double s) const;

  /// Maximum absolute elementwise difference against another matrix.
  double MaxAbsDiff(const Matrix& other) const;

  /// True if the matrix is symmetric to within `tol` (absolute).
  bool IsSymmetric(double tol = 1e-9) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double, AlignedAllocator<double>> data_;
};

/// Elementwise vector helpers (kept free so they read like math).
double Dot(std::span<const double> a, std::span<const double> b);
std::vector<double> Scale(std::span<const double> v, double s);
std::vector<double> AddVec(std::span<const double> a,
                           std::span<const double> b);
std::vector<double> SubVec(std::span<const double> a,
                           std::span<const double> b);
double MaxElement(std::span<const double> v);
double MinElement(std::span<const double> v);
double Norm2(std::span<const double> v);
double MaxAbsDiffVec(std::span<const double> a, std::span<const double> b);

}  // namespace ds::util
