// Column-major state panels and the batched stepping kernels over them.
//
// A ColPanel holds k job state vectors (each of length n) as the
// columns of a conceptual n x k column-major panel. Column-major n x k
// is row-major k x n, so each job's vector is one contiguous row of the
// backing Matrix: gather/scatter of a job in or out of the panel is a
// single contiguous memcpy-class copy, allocation-free, and the batched
// kernels below sweep the (transposed) operator once while every
// member's output row accumulates in registers.
//
// Determinism contract: the batched kernels are compiled WITHOUT value-
// changing FP optimizations (see src/util/CMakeLists.txt -- the panel
// TU deliberately omits -ffast-math), the operator is supplied
// transposed, and every output element is one sequential ascending-c
// fold: out(j,i) = fold_c of x(j,c) * at(c,i), one fused multiply-add
// per c on AVX2/FMA builds (one rounded multiply plus add otherwise).
// Because each element owns exactly one dependency chain, its bits
// depend only on the contents of column j and the operator -- never on
// k, on which other jobs share the panel, on column position, or on
// the register-tile / unroll shape. This is what lets the sweep engine
// promise byte-identical CSV output at any --batch-max-k: the scalar
// lane is simply the k = 1 instance of the same code.
#pragma once

#include <cstddef>
#include <span>

#include "util/contracts.hpp"
#include "util/matrix.hpp"

namespace ds::util {

/// k job vectors of length n, stored as rows of a k_max x n Matrix
/// (i.e. a column-major n x k panel). Storage is AlignedAllocator-
/// backed via Matrix; all methods after construction are
/// allocation-free.
class ColPanel {
 public:
  ColPanel() = default;
  ColPanel(std::size_t n, std::size_t k_max) : m_(k_max, n) {}

  std::size_t n() const { return m_.cols(); }
  std::size_t k_max() const { return m_.rows(); }

  /// Contiguous view of column j of the conceptual n x k panel.
  std::span<double> col(std::size_t j) {
    DS_REQUIRE(j < m_.rows(), "ColPanel: column " << j << " of "
                                                  << m_.rows());
    return m_.row(j);
  }
  std::span<const double> col(std::size_t j) const {
    DS_REQUIRE(j < m_.rows(), "ColPanel: column " << j << " of "
                                                  << m_.rows());
    return m_.row(j);
  }

  /// Column j = v. Requires v.size() == n(). Allocation-free.
  void Gather(std::size_t j, std::span<const double> v) {
    auto c = col(j);
    DS_REQUIRE(v.size() == c.size(),
               "ColPanel::Gather: vector " << v.size() << ", panel n "
                                           << c.size());
    for (std::size_t i = 0; i < c.size(); ++i) c[i] = v[i];
  }

  /// out = column j. Requires out.size() == n(). Allocation-free.
  void Scatter(std::size_t j, std::span<double> out) const {
    auto c = col(j);
    DS_REQUIRE(out.size() == c.size(),
               "ColPanel::Scatter: out " << out.size() << ", panel n "
                                         << c.size());
    for (std::size_t i = 0; i < c.size(); ++i) out[i] = c[i];
  }

  /// Copies column `src` over column `dst` (compaction on member
  /// detach). Bitwise-safe: column values never depend on position.
  void CopyColumn(std::size_t src, std::size_t dst) {
    if (src == dst) return;
    auto s = col(src);
    auto d = col(dst);
    for (std::size_t i = 0; i < s.size(); ++i) d[i] = s[i];
  }

  Matrix& storage() { return m_; }
  const Matrix& storage() const { return m_; }

  void swap(ColPanel& other) noexcept {
    Matrix tmp = std::move(m_);
    m_ = std::move(other.m_);
    other.m_ = std::move(tmp);
  }

 private:
  Matrix m_;  // row j = column j of the conceptual n x k panel
};

/// out_j = A x_j for the first k panel columns, with the operator
/// supplied TRANSPOSED: at(c, i) = A(i, c), so at is n_in x m_out
/// row-major (StepPropagator caches these copies). Requires
/// x.n() == at.rows(), out.n() == at.cols(), and
/// k <= min(x.k_max(), out.k_max()); x and out must not alias.
/// Allocation-free; the per-element fold order is fixed and
/// independent of k (see file comment).
void PanelApplyT(const Matrix& at, const ColPanel& x, std::size_t k,
                 ColPanel* out);

/// out_j += A x_j. Same requirements as PanelApplyT; the accumulation
/// extends each element's fold chain (prior value is the fold seed).
void PanelApplyAddT(const Matrix& at, const ColPanel& x, std::size_t k,
                    ColPanel* out);

/// out_j += v for the first k columns. Requires v.size() == out.n().
void PanelAddBroadcast(std::span<const double> v, std::size_t k,
                       ColPanel* out);

}  // namespace ds::util
