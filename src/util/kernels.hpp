// Blocked dense linear-algebra kernels for the thermal step propagator.
//
// These are the allocation-free building blocks under the hot paths:
// GEMV drives every transient step on the propagator path, GEMM builds
// the k-step power-hold operators, and LuFactorization::SolveMany (see
// lu.hpp) uses the same row-panel blocking for multi-RHS triangular
// solves. All kernels write into caller-provided storage -- nothing
// here allocates -- and all of them traverse row-major data in order,
// with register blocking (4 rows per pass sharing each x load) so the
// compiler can vectorize the inner loops.
//
// At the thermal-network sizes of this project (4N+12 <= ~1500 nodes)
// a dense row-major layout with these kernels beats the permuted
// triangular solves they replace: no gather through the pivot
// permutation, no loop-carried division chain, pure multiply-add
// streams.
#pragma once

#include <cstddef>
#include <span>

#include "util/matrix.hpp"

namespace ds::util {

/// Column block width for the cache-blocked kernels: 256 doubles = 2 KiB
/// per row segment, so a 4-row register block plus x stays deep in L1.
inline constexpr std::size_t kKernelColBlock = 256;

/// y = A x. Requires x.size() == a.cols(), y.size() == a.rows(), and
/// x/y must not alias. Allocation-free.
void Gemv(const Matrix& a, std::span<const double> x, std::span<double> y);

/// y += A x. Same requirements as Gemv. Allocation-free.
void GemvAdd(const Matrix& a, std::span<const double> x,
             std::span<double> y);

/// c = A B (c is overwritten). All three matrices must be dense
/// row-major with 64-byte-aligned backing storage (util::Matrix
/// guarantees both). Requires a.cols() == b.rows(), c non-null and
/// pre-sized to a.rows() x b.cols(); c must not alias a or b. The
/// shape and null-output preconditions are enforced as DS_REQUIRE
/// contracts, same as Gemv. Allocation-free.
void Gemm(const Matrix& a, const Matrix& b, Matrix* c);

/// c += A B. Same layout/alignment/shape requirements as Gemm, and the
/// same DS_REQUIRE contracts (checked before any element of c is
/// touched). Allocation-free.
void GemmAdd(const Matrix& a, const Matrix& b, Matrix* c);

}  // namespace ds::util
