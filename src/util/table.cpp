#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/csv.hpp"

namespace ds::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::Row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::Cell(const std::string& s) {
  rows_.back().push_back(s);
  return *this;
}

Table& Table::Cell(double v, int precision) {
  return Cell(FormatFixed(v, precision));
}

Table& Table::Cell(int v) { return Cell(std::to_string(v)); }

Table& Table::Cell(std::size_t v) { return Cell(std::to_string(v)); }

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << "| " << std::setw(static_cast<int>(widths[c])) << s << ' ';
    }
    os << "|\n";
  };

  print_row(headers_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << "|-" << std::string(widths[c], '-') << '-';
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::WriteCsv(const std::string& path) const {
  CsvWriter csv(path, headers_);
  for (const auto& row : rows_) {
    std::vector<std::string> cells = row;
    cells.resize(headers_.size());
    csv.WriteRow(cells);
  }
  csv.Close();
}

std::string FormatFixed(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace ds::util
