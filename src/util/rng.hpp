// Deterministic pseudo-random number generation for workload synthesis.
//
// All experiments must be exactly reproducible run-to-run, so every
// randomized component takes an explicit seed and uses this engine
// (std::mt19937_64 wrapped to keep call sites terse).
#pragma once

#include <cstdint>
#include <random>

namespace ds::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi) {
    std::uniform_int_distribution<int> d(lo, hi);
    return d(engine_);
  }

  /// Normal with the given mean and std-dev.
  double Normal(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ds::util
