// Small statistics helpers for benchmark reporting and tests.
#pragma once

#include <span>
#include <vector>

namespace ds::util {

double Mean(std::span<const double> v);
double StdDev(std::span<const double> v);  // population std-dev

/// Geometric mean of the positive, finite samples. Non-positive or
/// non-finite samples are undefined for a geometric mean; they are
/// skipped, counted into the telemetry counter "stats.geomean_skipped"
/// and (via the second overload) reported to the caller. Returns 0.0
/// when no valid sample remains.
double GeoMean(std::span<const double> v);
double GeoMean(std::span<const double> v, std::size_t* skipped_out);

double Median(std::span<const double> v);
double Percentile(std::span<const double> v, double p);  // p in [0,100]

/// Running accumulator for streaming series (transient simulations).
class RunningStats {
 public:
  void Add(double x);
  std::size_t count() const { return count_; }
  double mean() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ds::util
