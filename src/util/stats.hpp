// Small statistics helpers for benchmark reporting and tests.
#pragma once

#include <span>
#include <vector>

namespace ds::util {

double Mean(std::span<const double> v);
double StdDev(std::span<const double> v);  // population std-dev
double GeoMean(std::span<const double> v);  // requires all elements > 0
double Median(std::span<const double> v);
double Percentile(std::span<const double> v, double p);  // p in [0,100]

/// Running accumulator for streaming series (transient simulations).
class RunningStats {
 public:
  void Add(double x);
  std::size_t count() const { return count_; }
  double mean() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ds::util
