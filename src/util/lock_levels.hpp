// The repo-wide lock hierarchy, in one place.
//
// Rule: a thread holding a mutex at level L may only acquire mutexes
// at levels strictly below L. Every long-lived ds::Mutex declares its
// level at the construction site (`ds::Mutex mu_{locks::kEventBus};`);
// the ds_lint `lock-order` rule parses these declarations together
// with this table and flags any nested acquisition that does not
// strictly descend. The constants are consumed at lint time only --
// ds::Mutex discards the level at runtime.
//
// The numbering leaves gaps on purpose so a new subsystem can slot in
// without renumbering its neighbours. Current nesting chains this
// table encodes (outer -> inner):
//
//   kShutdown    -> kEventBus            (EventBus::Close publishes)
//   kShutdown    -> kHeartbeat           (Stop's final ReportOnce)
//   kShutdown    -> kNetConnections      (HttpServer::Stop drains conns)
//   kServiceRegistry -> kServiceSweep    (admission updates a sweep)
//   kServiceSweep -> kEventBus, kMetrics (row emission telemetry)
//   kSweepQueue   / kWatchdog / kModelCache are peers; never nested
//   kWatchdog    -> kCancelToken         (watchdog cancels an attempt)
//   kModelCache  -> kMetrics             (eviction bumps counters)
//   kPropagator  -> kMetrics             (build timers/counters)
//   kJournal / kChaosLog -> kMetrics, kEventBus (append-side telemetry)
//
// See DESIGN.md section 13 for the full table with owners.
#pragma once

namespace ds::locks {

/// Close()/Stop() serializers (EventBus::close_mu_,
/// HeartbeatReporter::stop_mu_, MetricsHttpServer::stop_mu_). These
/// are held across joins and may publish final events, so they sit
/// above everything else.
inline constexpr int kShutdown = 90;

/// SweepService admission queue + sweep registry
/// (SweepService::registry_mu_); above every per-sweep lock because
/// the scheduler holds it while transitioning a sweep's state.
inline constexpr int kServiceRegistry = 85;

/// Per-sweep streaming state -- row buffer, event log, subscriber
/// condvar (SweepService Sweep::mu).
inline constexpr int kServiceSweep = 75;

/// HttpServer connection-thread registry (HttpServer::conns_mu_);
/// below kShutdown because Stop() drains it.
inline constexpr int kNetConnections = 72;

/// Per-worker sweep deques (anonymous WorkerQueue::mu).
inline constexpr int kSweepQueue = 70;

/// Watchdog slot table (anonymous Watchdog::mu_).
inline constexpr int kWatchdog = 70;

/// ModelCache map + budget accounting (ModelCache::mu_).
inline constexpr int kModelCache = 70;

/// Per-entry TSP memo inside a cache entry (Entry::tsp_mu); taken
/// after ModelCache::mu_ is released, never beneath it.
inline constexpr int kModelCacheEntry = 60;

/// Thermal propagator memo tables (StepPropagator::hold_mu_,
/// PropagatorSet::mu_).
inline constexpr int kPropagator = 60;

/// Journal append serialization (SweepEngine's journal_mu).
inline constexpr int kJournal = 50;

/// Chaos fault-log appends (SweepEngine's chaos_log_mu).
inline constexpr int kChaosLog = 50;

/// Event-bus ring + writer handshake (EventBus::mu_).
inline constexpr int kEventBus = 40;

/// Heartbeat reporter state (HeartbeatReporter::mu_).
inline constexpr int kHeartbeat = 40;

/// Metrics registry maps (MetricsRegistry::mu_).
inline constexpr int kMetrics = 30;

/// Trace buffer registry (trace.cpp BufferRegistry::mu).
inline constexpr int kTraceRegistry = 30;

/// Cancellation token (faults::CancelToken::mu_); a leaf -- nothing
/// is ever acquired beneath it.
inline constexpr int kCancelToken = 10;

}  // namespace ds::locks
