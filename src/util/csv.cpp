#include "util/csv.hpp"

#include <iomanip>
#include <stdexcept>

namespace ds::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), path_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << header[i];
  }
  out_ << '\n';
  CheckStream("header write");
}

void CsvWriter::CheckStream(const char* what) const {
  if (!out_)
    throw std::runtime_error("CsvWriter: " + std::string(what) +
                             " failed for " + path_);
}

void CsvWriter::WriteRow(const std::vector<double>& values) {
  if (values.size() != columns_)
    throw std::invalid_argument("CsvWriter: row has " +
                                std::to_string(values.size()) +
                                " values, header has " +
                                std::to_string(columns_));
  out_ << std::setprecision(12);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
  CheckStream("row write");
}

void CsvWriter::WriteRow(const std::vector<std::string>& values) {
  if (values.size() != columns_)
    throw std::invalid_argument("CsvWriter: row has " +
                                std::to_string(values.size()) +
                                " values, header has " +
                                std::to_string(columns_));
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
  CheckStream("row write");
}

void CsvWriter::Close() {
  if (!out_.is_open()) return;
  out_.flush();
  CheckStream("flush");
  out_.close();
  CheckStream("close");
}

}  // namespace ds::util
